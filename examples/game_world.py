"""Multiplayer game example (the paper's Section 1.1 motivation).

The virtual world is a 4x4 grid of regions; each player subscribes to the
regions in its area of interest.  Players with overlapping areas share
several region groups, and the ordering layer guarantees they observe the
common events — shots, pickups — in the same order, so "physical rules"
are never violated between mutually visible players.

Run::

    python examples/game_world.py
"""

import itertools
import random

from repro import OrderedPubSub
from repro.workloads.scenarios import GameWorld


def main() -> None:
    world = GameWorld(
        width=4, height=4, n_players=24, interest_radius=1, rng=random.Random(7)
    )
    membership = world.membership()

    bus = OrderedPubSub(n_hosts=world.n_players, seed=7)
    for region, players in membership.items():
        bus.create_group(players, group_id=region)

    events = world.publish_schedule(n_events=60)
    for event in events:
        bus.publish(event.sender, event.group, event.payload)
    bus.run()

    print(f"world: 4x4 regions, {world.n_players} players, "
          f"{len(membership)} active region groups")
    print(f"events published: {len(events)}")

    # Verify game consistency: any two players that both observed a pair of
    # events observed them in the same order.
    disagreements = 0
    checked = 0
    for a, b in itertools.combinations(range(world.n_players), 2):
        seq_a = [r.msg_id for r in bus.delivered(a)]
        seq_b = [r.msg_id for r in bus.delivered(b)]
        common = set(seq_a) & set(seq_b)
        if len(common) < 2:
            continue
        checked += 1
        if [m for m in seq_a if m in common] != [m for m in seq_b if m in common]:
            disagreements += 1
    print(f"player pairs sharing events: {checked}, order disagreements: "
          f"{disagreements}")
    assert disagreements == 0

    # Show one player's event log.
    watcher = max(range(world.n_players), key=lambda p: len(bus.delivered(p)))
    print(f"\nplayer {watcher} (cell {world.player_cell[watcher]}) saw:")
    for record in bus.delivered(watcher)[:10]:
        region = record.stamp.group
        cell = (region % world.width, region // world.width)
        print(f"  t={record.time:7.2f}ms region{cell} "
              f"player{record.sender}: {record.payload['action']}")


if __name__ == "__main__":
    main()
