"""Dynamic membership example — players roam between game regions.

Extends the game scenario with the paper's Section 5 future-work
direction: group membership changes over time, and the sequencing fabric
is reconfigured between rounds with *state continuity* — surviving
groups keep their sequence spaces, so late joiners slot into the stream
and established watchers see uninterrupted, still-consistent ordering.

Run::

    python examples/dynamic_regions.py
"""

import itertools
import random

from repro import OrderedPubSub


def consistent(bus, players):
    for a, b in itertools.combinations(players, 2):
        seq_a = [r.msg_id for r in bus.delivered(a)]
        seq_b = [r.msg_id for r in bus.delivered(b)]
        common = set(seq_a) & set(seq_b)
        if [m for m in seq_a if m in common] != [m for m in seq_b if m in common]:
            return False
    return True


def main() -> None:
    rng = random.Random(21)
    n_players, n_regions = 20, 4
    bus = OrderedPubSub(n_hosts=n_players, seed=21)

    # Initial placement: each player watches its region and one neighbor.
    location = {p: rng.randrange(n_regions) for p in range(n_players)}

    def sync_subscriptions():
        current = {p: set() for p in range(n_players)}
        for p, region in location.items():
            current[p] = {region, (region + 1) % n_regions}
        for p, wanted in current.items():
            have = {
                bus.broker.topic_for(g)
                for g in bus.membership.groups_of(p)
            }
            for topic in have - {f"region/{r}" for r in wanted}:
                bus.unsubscribe(p, topic)
            for r in wanted:
                if f"region/{r}" not in have:
                    bus.subscribe(p, f"region/{r}")

    sync_subscriptions()
    total_events = 0
    for round_number in range(4):
        # A round of in-game events.
        for _ in range(25):
            player = rng.randrange(n_players)
            bus.publish(player, f"region/{location[player]}",
                        {"round": round_number, "player": player})
            total_events += 1
        bus.run()
        assert consistent(bus, range(n_players)), "ordering violated!"
        print(f"round {round_number}: 25 events, order consistent "
              f"(fabric epoch has {len(bus.fabric.graph.overlap_atoms())} atoms)")

        # Some players roam to a neighboring region -> membership changes,
        # the next publish triggers a state-continuous epoch switch.
        movers = rng.sample(range(n_players), 5)
        for p in movers:
            location[p] = (location[p] + rng.choice((1, n_regions - 1))) % n_regions
        sync_subscriptions()

    deliveries = sum(len(bus.delivered(p)) for p in range(n_players))
    print(f"\n{total_events} events over 4 rounds with roaming; "
          f"{deliveries} deliveries, all consistent")


if __name__ == "__main__":
    main()
