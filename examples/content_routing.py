"""Content-based routing example.

The paper targets content-based publish/subscribe systems (its stock
ticker motivation: "Consumers at different brokerage firms may be
interested in messages that satisfy different filters — by company size,
geography, or industry").  This example registers attribute filters,
routes trade events to every matching filter group, and shows that two
analysts whose filters overlap see their common trades in the same order
— even though their filters are written differently.

Run::

    python examples/content_routing.py
"""

import itertools
import random

from repro import OrderedPubSub
from repro.pubsub.content import Constraint, ContentLayer, Filter


def main() -> None:
    bus = OrderedPubSub(n_hosts=10, seed=13, enforce_causal_sends=False)
    desk = ContentLayer(bus)

    tech = Filter.where(sector="tech")
    energy = Filter.where(sector="energy")
    large_cap = Filter([Constraint("market_cap", "ge", 10_000)])
    cheap = Filter([Constraint("price", "lt", 50)])

    # Analysts 0-3 watch overlapping slices of the market.
    desk.subscribe(0, tech)
    desk.subscribe(0, large_cap)
    desk.subscribe(1, tech)
    desk.subscribe(1, large_cap)
    desk.subscribe(2, energy)
    desk.subscribe(2, cheap)
    desk.subscribe(3, tech)
    desk.subscribe(3, cheap)

    rng = random.Random(4)
    stocks = [
        {"symbol": "AAA", "sector": "tech", "market_cap": 50_000},
        {"symbol": "BBB", "sector": "tech", "market_cap": 900},
        {"symbol": "CCC", "sector": "energy", "market_cap": 20_000},
        {"symbol": "DDD", "sector": "energy", "market_cap": 500},
    ]
    routed = 0
    for i in range(40):
        stock = rng.choice(stocks)
        event = dict(stock, price=rng.randrange(10, 200), trade=i)
        routed += len(desk.publish(0, event))
    bus.run()

    print("filters:", ", ".join(
        f.describe() for f in (tech, energy, large_cap, cheap)
    ))
    for analyst in range(4):
        trades = [r.payload["trade"] for r in bus.delivered(analyst)]
        print(f"analyst {analyst}: {len(trades)} trades, first 8: {trades[:8]}")

    disagreements = 0
    for a, b in itertools.combinations(range(4), 2):
        seq_a = [r.msg_id for r in bus.delivered(a)]
        seq_b = [r.msg_id for r in bus.delivered(b)]
        common = set(seq_a) & set(seq_b)
        if [m for m in seq_a if m in common] != [m for m in seq_b if m in common]:
            disagreements += 1
    print(f"40 events, {routed} routed copies, order disagreements: {disagreements}")
    assert disagreements == 0
    print("cross-filter order agreement verified")


if __name__ == "__main__":
    main()
