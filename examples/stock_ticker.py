"""Stock ticker example (the paper's Section 1.1 motivation).

Consumers at brokerage firms subscribe to filter groups — by sector,
geography, and market cap.  A consumer applying updates from several
filters ends with the same state as any other consumer applying the same
updates, because the ordering layer delivers common trades in the same
order everywhere.

Run::

    python examples/stock_ticker.py
"""

import itertools
import random

from repro import OrderedPubSub
from repro.workloads.scenarios import StockTickerScenario


def main() -> None:
    scenario = StockTickerScenario(n_consumers=32, n_stocks=12, rng=random.Random(3))
    membership = scenario.membership()

    bus = OrderedPubSub(n_hosts=scenario.n_consumers, seed=3)
    for filter_id, consumers in membership.items():
        bus.create_group(consumers, group_id=filter_id)

    trades = scenario.trade_schedule(n_trades=80)
    for trade in trades:
        bus.publish(trade.sender, trade.group, trade.payload)
    bus.run()

    print(f"{scenario.n_consumers} consumers, {len(membership)} filter groups, "
          f"{len(trades)} trades")
    for filter_id in sorted(membership)[:6]:
        key, value = scenario.filters[filter_id]
        print(f"  group {filter_id}: filter {key}={value}, "
              f"{len(membership[filter_id])} consumers")

    # Replay each consumer's deliveries into a last-trade-wins book and
    # check that consumers sharing filters agree on every common stock.
    books = {}
    for consumer in range(scenario.n_consumers):
        book = {}
        for record in bus.delivered(consumer):
            book[record.payload["stock"]] = record.payload["trade_id"]
        books[consumer] = book

    conflicts = 0
    for a, b in itertools.combinations(range(scenario.n_consumers), 2):
        shared_groups = bus.membership.groups_of(a) & bus.membership.groups_of(b)
        if not shared_groups:
            continue
        # Stocks whose every matching filter group is shared by both
        # consumers are applied identically on both sides.
        for stock in set(books[a]) & set(books[b]):
            matching = set(scenario.groups_for_stock(stock))
            if matching & bus.membership.groups_of(a) != matching & bus.membership.groups_of(b):
                continue
            if books[a][stock] != books[b][stock]:
                conflicts += 1
    print(f"book conflicts between consumers with identical filters: {conflicts}")
    assert conflicts == 0
    print("consistent books verified")


if __name__ == "__main__":
    main()
