"""Quickstart: consistent cross-group ordering in a dozen lines.

Three users share two chat rooms.  Alice posts to room blue, Carol posts
to room red; Bob is in both rooms, and whatever order Bob sees, every
other member of those rooms sees the same relative order of the common
messages.

The same scenario runs unmodified on both runtime backends: the
deterministic discrete-event simulator (default) and the live asyncio
event loop, where hosts and sequencing nodes run as asyncio tasks.

Run::

    python examples/quickstart.py
"""

from repro import OrderedPubSub


def chat_round(backend: str) -> None:
    kwargs = {}
    if backend == "asyncio":
        # One virtual millisecond costs a microsecond of wall time, so
        # the live run finishes as promptly as the simulated one.
        kwargs = {"backend": "asyncio", "time_scale": 1e-6}
    bus = OrderedPubSub(n_hosts=8, seed=42, **kwargs)

    alice, bob, carol = 0, 1, 2
    # Bob subscribes to both rooms -> the rooms are double-overlapped once
    # Dave joins too, so a sequencing atom orders their common messages.
    dave = 3
    for user in (alice, bob, dave):
        bus.subscribe(user, "room/blue")
    for user in (carol, bob, dave):
        bus.subscribe(user, "room/red")

    bus.publish(alice, "room/blue", "alice: hi blue!")
    bus.publish(carol, "room/red", "carol: hi red!")
    bus.publish(bob, "room/blue", "bob: welcome alice")
    bus.publish(bob, "room/red", "bob: welcome carol")
    bus.run()

    print(f"[{backend}] Bob's view:")
    for record in bus.delivered(bob):
        print(f"  {record.payload}")

    print(f"[{backend}] Dave's view (same relative order):")
    for record in bus.delivered(dave):
        print(f"  {record.payload}")

    bob_common = [r.msg_id for r in bus.delivered(bob)]
    dave_common = [r.msg_id for r in bus.delivered(dave)]
    assert bob_common == dave_common, "ordering violated!"
    print(f"[{backend}] order agreement verified")
    bus.close()


def main() -> None:
    chat_round("sim")
    chat_round("asyncio")


if __name__ == "__main__":
    main()
