"""Compare the sequencing protocol against the three baselines.

Replays one identical workload trace through:

* the paper's sequencing-atom fabric,
* a centralized sequencer (optimally placed),
* per-group vector-clock causal multicast,
* Garcia-Molina/Spauster propagation trees,

and prints delivery latency, per-protocol load concentration, and —
the paper's point — whether cross-group order stayed consistent.

Run::

    python examples/baseline_comparison.py
"""

import itertools
import random

from repro.baselines.central_sequencer import CentralSequencerFabric
from repro.baselines.propagation_tree import PropagationTreeFabric
from repro.baselines.vector_clock import VectorClockFabric
from repro.core.protocol import OrderingFabric
from repro.experiments.common import ExperimentEnv, format_table
from repro.pubsub.membership import GroupMembership
from repro.workloads.replay import WorkloadTrace
from repro.workloads.scenarios import PublishEvent
from repro.workloads.zipf import zipf_membership

N_HOSTS = 64
N_GROUPS = 10
N_EVENTS = 150


def make_trace(seed=0):
    rng = random.Random(seed)
    snapshot = zipf_membership(N_HOSTS, N_GROUPS, rng=rng)
    events = []
    groups = sorted(snapshot)
    for i in range(N_EVENTS):
        group = rng.choice(groups)
        sender = rng.choice(sorted(snapshot[group]))
        events.append(PublishEvent(sender, group, {"i": i}))
    return WorkloadTrace.from_schedule(snapshot, events, name="comparison")


def membership_from(trace):
    membership = GroupMembership()
    for group, members in sorted(trace.membership.items()):
        membership.create_group(members, group_id=group)
    return membership


def consistency_violations(fabric):
    count = 0
    for a, b in itertools.combinations(range(N_HOSTS), 2):
        seq_a = [r.msg_id for r in fabric.delivered(a)]
        seq_b = [r.msg_id for r in fabric.delivered(b)]
        common = set(seq_a) & set(seq_b)
        if [m for m in seq_a if m in common] != [m for m in seq_b if m in common]:
            count += 1
    return count


def mean_latency(fabric):
    total = count = 0
    for host in range(N_HOSTS):
        for record in fabric.delivered(host):
            total += record.time - record.publish_time
            count += 1
    return total / count if count else float("nan")


def main() -> None:
    env = ExperimentEnv(n_hosts=N_HOSTS, seed=0)
    trace = make_trace()

    fabrics = {
        "sequencing atoms": OrderingFabric(
            membership_from(trace), env.hosts, env.topology, env.routing, trace=False
        ),
        "central sequencer": CentralSequencerFabric(
            membership_from(trace), env.hosts, env.routing, trace=False
        ),
        "vector clocks": VectorClockFabric(
            membership_from(trace), env.hosts, env.routing, trace=False
        ),
        "propagation tree": PropagationTreeFabric(
            membership_from(trace), env.hosts, env.routing, trace=False
        ),
    }
    rows = []
    for name, fabric in fabrics.items():
        trace.replay(fabric)
        if name == "sequencing atoms":
            hotspot = max(fabric.sequencing_load().values())
        elif name == "central sequencer":
            hotspot = fabric.coordinator_load()
        elif name == "propagation tree":
            hotspot = max(fabric.forwarding_load().values())
        else:
            hotspot = 0  # symmetric: no sequencing hotspot at all
        rows.append(
            (name, round(mean_latency(fabric), 1), hotspot, consistency_violations(fabric))
        )

    print(format_table(
        ["protocol", "mean_latency_ms", "hotspot_msgs", "order_violations"],
        rows,
        title=f"{N_EVENTS} messages, {N_GROUPS} Zipf groups, {N_HOSTS} hosts",
    ))
    by_name = {row[0]: row for row in rows}
    assert by_name["sequencing atoms"][3] == 0
    assert by_name["central sequencer"][3] == 0
    assert by_name["propagation tree"][3] == 0
    print(
        "\nvector clocks violated cross-group order "
        f"{by_name['vector clocks'][3]} times; the sequencing network and "
        "both asymmetric baselines stayed consistent — but only the "
        "sequencing network did so without a central hotspot."
    )


if __name__ == "__main__":
    main()
