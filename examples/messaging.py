"""Messaging example (the paper's Section 1.1 motivation).

Users chat in rooms and publish presence to their buddies.  Because
senders subscribe to the groups they publish to, delivery order is
*causal*: a reply is never seen before the message it answers, in any
room, by any user.

The script demonstrates causality explicitly: user A posts a question,
user B sees it and posts an answer to the same room; every common
subscriber sees question before answer.

Run::

    python examples/messaging.py                     # simulator backend
    python examples/messaging.py --backend asyncio   # live event loop
"""

import random
import sys

from repro import OrderedPubSub
from repro.workloads.scenarios import MessagingScenario


def main() -> None:
    backend = "asyncio" if "--backend" in sys.argv and "asyncio" in sys.argv else "sim"
    kwargs = {"backend": "asyncio", "time_scale": 1e-6} if backend == "asyncio" else {}
    scenario = MessagingScenario(n_users=20, n_rooms=5, rng=random.Random(11))
    membership = scenario.membership()

    bus = OrderedPubSub(n_hosts=scenario.n_users, seed=11, **kwargs)
    for group, people in membership.items():
        bus.create_group(people, group_id=group)

    # Background chatter.
    for event in scenario.chat_schedule(n_events=50):
        bus.publish(event.sender, event.group, event.payload)
    bus.run()

    # A causal exchange: find a room with at least three members.
    room = max(
        (g for g in membership if g < scenario.n_rooms),
        key=lambda g: len(membership[g]),
    )
    asker, answerer, *watchers = sorted(membership[room])
    question_id = bus.publish(asker, room, {"text": "anyone seen the build break?"})
    bus.run()  # the answerer receives the question...
    answer_id = bus.publish(answerer, room, {"text": "yes - fixed in r1234"})
    bus.run()

    print(f"{scenario.n_users} users, {len(membership)} groups "
          f"({scenario.n_rooms} rooms + presence feeds)")
    print(f"room {room} members: {sorted(membership[room])}")
    for user in sorted(membership[room]):
        order = [r.msg_id for r in bus.delivered(user)]
        q, a = order.index(question_id), order.index(answer_id)
        status = "ok" if q < a else "VIOLATION"
        print(f"  user {user}: question at {q}, answer at {a} -> {status}")
        assert q < a, "causal order violated"
    print(f"causal order (question before answer) verified for all members "
          f"[{backend} backend]")
    bus.close()


if __name__ == "__main__":
    main()
