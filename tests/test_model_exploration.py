"""Systematic small-model exploration of ordering correctness.

Rather than sampling random workloads, these tests enumerate *all*
publish-order permutations of small message sets over adversarial group
configurations (the paper's Figure 2 triangle and a denser 4-group
layout), across several topology/placement seeds.  Every execution must
deliver everything and keep all receiver pairs consistent — a miniature
model-checking pass over the protocol.
"""

import itertools

import pytest

from repro.experiments.common import ExperimentEnv
from repro.pubsub.membership import GroupMembership

TRIANGLE = {0: [0, 1, 3], 1: [0, 1, 2], 2: [1, 2, 3]}
DENSE4 = {
    0: [0, 1, 2, 3],
    1: [2, 3, 4, 5],
    2: [4, 5, 0, 1],
    3: [1, 2, 4, 0],
}


def build_membership(layout):
    membership = GroupMembership()
    for group, members in layout.items():
        membership.create_group(members, group_id=group)
    return membership


def run_once(env, layout, publish_order, seed):
    membership = build_membership(layout)
    fabric = env.build_fabric(membership, seed=seed, trace=False)
    for sender, group in publish_order:
        fabric.publish(sender, group)
    fabric.run()
    if fabric.pending_messages():
        return None
    return {
        host.host_id: [r.msg_id for r in fabric.delivered(host.host_id)]
        for host in env.hosts
    }


def check_consistent(delivered):
    for a, b in itertools.combinations(sorted(delivered), 2):
        seq_a, seq_b = delivered[a], delivered[b]
        common = set(seq_a) & set(seq_b)
        if [m for m in seq_a if m in common] != [m for m in seq_b if m in common]:
            return False
    return True


@pytest.fixture(scope="module")
def small_env():
    return ExperimentEnv(n_hosts=8, seed=0)


# One message per group from a member of that group.
TRIANGLE_SENDS = [(0, 0), (0, 1), (2, 2)]
DENSE_SENDS = [(0, 0), (2, 1), (4, 2), (1, 3)]


@pytest.mark.parametrize("seed", range(4))
def test_triangle_all_publish_orders(small_env, seed):
    for order in itertools.permutations(TRIANGLE_SENDS):
        delivered = run_once(small_env, TRIANGLE, list(order), seed)
        assert delivered is not None, f"deadlock with order {order}"
        assert check_consistent(delivered), f"inconsistent with order {order}"
        # B (host 1) subscribes to everything -> must see all 3 messages.
        assert len(delivered[1]) == 3


@pytest.mark.parametrize("seed", range(3))
def test_dense4_all_publish_orders(small_env, seed):
    for order in itertools.permutations(DENSE_SENDS):
        delivered = run_once(small_env, DENSE4, list(order), seed)
        assert delivered is not None, f"deadlock with order {order}"
        assert check_consistent(delivered), f"inconsistent with order {order}"


def test_triangle_with_duplicated_senders(small_env):
    # Two messages to each group, still exhaustively permuted (720 runs
    # would be slow; permute group order, fix per-group send order).
    sends = [(0, 0), (0, 1), (2, 2)]
    for order in itertools.permutations(range(3)):
        schedule = []
        for index in order:
            schedule.append(sends[index])
        for index in order:
            schedule.append(sends[index])
        delivered = run_once(small_env, TRIANGLE, schedule, seed=1)
        assert delivered is not None
        assert check_consistent(delivered)
        assert len(delivered[1]) == 6


@pytest.mark.parametrize("optimize", ["none", "greedy", "local"])
def test_triangle_all_orderings_all_optimize_modes(small_env, optimize):
    """Chain-ordering mode never affects correctness."""
    from repro.core.protocol import OrderingFabric
    from repro.core.sequencing_graph import SequencingGraph

    for order in itertools.permutations(TRIANGLE_SENDS):
        membership = build_membership(TRIANGLE)
        graph = SequencingGraph.build(membership.snapshot(), optimize=optimize)
        fabric = OrderingFabric(
            membership,
            small_env.hosts,
            small_env.topology,
            small_env.routing,
            graph=graph,
            trace=False,
        )
        for sender, group in order:
            fabric.publish(sender, group)
        fabric.run()
        assert fabric.pending_messages() == {}
        delivered = {
            h.host_id: [r.msg_id for r in fabric.delivered(h.host_id)]
            for h in small_env.hosts
        }
        assert check_consistent(delivered)


def test_dense4_with_loss_sampled_orders(small_env):
    """Permutations under loss (sampled: full enumeration x loss is slow)."""
    for index, order in enumerate(itertools.permutations(DENSE_SENDS)):
        if index % 6 != 0:
            continue
        membership = build_membership(DENSE4)
        fabric = small_env.build_fabric(
            membership, seed=index, loss_rate=0.25, trace=False
        )
        for sender, group in order:
            fabric.publish(sender, group)
        fabric.run()
        assert fabric.pending_messages() == {}
        delivered = {
            h.host_id: [r.msg_id for r in fabric.delivered(h.host_id)]
            for h in small_env.hosts
        }
        assert check_consistent(delivered)
