"""Tests for the baseline ordering protocols."""

import itertools
import random

import pytest

from repro.baselines.central_sequencer import CentralSequencerFabric
from repro.baselines.propagation_tree import PropagationTreeFabric
from repro.baselines.vector_clock import VectorClockFabric
from repro.pubsub.membership import GroupMembership


def triangle_membership():
    membership = GroupMembership()
    membership.create_group([0, 1, 3], group_id=0)
    membership.create_group([0, 1, 2], group_id=1)
    membership.create_group([1, 2, 3], group_id=2)
    return membership


def pairwise_consistent(fabric, n_hosts):
    for a, b in itertools.combinations(range(n_hosts), 2):
        seq_a = [r.msg_id for r in fabric.delivered(a)]
        seq_b = [r.msg_id for r in fabric.delivered(b)]
        common = set(seq_a) & set(seq_b)
        if [m for m in seq_a if m in common] != [m for m in seq_b if m in common]:
            return False
    return True


# ---------------------------------------------------------------------------
# Central sequencer
# ---------------------------------------------------------------------------


def central(env):
    return CentralSequencerFabric(triangle_membership(), env.hosts, env.routing)


def test_central_delivers_to_members(env32):
    fabric = central(env32)
    fabric.publish(0, 0, "hello")
    fabric.run()
    for member in (0, 1, 3):
        assert [r.payload for r in fabric.delivered(member)] == ["hello"]
    assert fabric.delivered(2) == []


def test_central_orders_consistently(env32):
    fabric = central(env32)
    rng = random.Random(0)
    for _ in range(20):
        group = rng.choice([0, 1, 2])
        sender = rng.choice(sorted(fabric.membership.members(group)))
        fabric.publish(sender, group)
    fabric.run()
    assert pairwise_consistent(fabric, 4)


def test_central_total_order_is_global(env32):
    # Unlike the paper's protocol, the coordinator orders even unrelated
    # messages: global sequence numbers are strictly increasing.
    fabric = central(env32)
    fabric.publish(0, 0)
    fabric.publish(2, 2)
    fabric.run()
    seqs = sorted(
        r.stamp.group_seq for h in range(4) for r in fabric.delivered(h)
    )
    assert seqs[0] == 1


def test_central_coordinator_load_counts_everything(env32):
    fabric = central(env32)
    for i in range(9):
        fabric.publish(0, 0)
    fabric.run()
    assert fabric.coordinator_load() == 9


def test_central_unknown_group_rejected(env32):
    fabric = central(env32)
    with pytest.raises(KeyError):
        fabric.publish(0, 99)


def test_central_explicit_router(env32):
    fabric = CentralSequencerFabric(
        triangle_membership(), env32.hosts, env32.routing, coordinator_router=0
    )
    assert fabric.coordinator.router == 0


# ---------------------------------------------------------------------------
# Vector clocks (per-group causal multicast)
# ---------------------------------------------------------------------------


def vc(env):
    return VectorClockFabric(triangle_membership(), env.hosts, env.routing)


def test_vc_delivers_to_members(env32):
    fabric = vc(env32)
    fabric.publish(0, 0, "x")
    fabric.run()
    for member in (0, 1, 3):
        assert [r.payload for r in fabric.delivered(member)] == ["x"]


def test_vc_requires_sender_membership(env32):
    fabric = vc(env32)
    with pytest.raises(ValueError):
        fabric.publish(2, 0)  # host 2 not in group 0


def test_vc_fifo_per_sender(env32):
    fabric = vc(env32)
    for i in range(6):
        fabric.publish(0, 0, i)
    fabric.run()
    assert [r.payload for r in fabric.delivered(3)] == list(range(6))
    assert fabric.pending_messages() == {}


def test_vc_causal_within_group(env32):
    fabric = vc(env32)
    first = fabric.publish(0, 0, "question")
    fabric.run()
    second = fabric.publish(1, 0, "answer")
    fabric.run()
    for member in (0, 1, 3):
        order = [r.msg_id for r in fabric.delivered(member)]
        assert order.index(first) < order.index(second)


def test_vc_no_holdback_leak(env32):
    fabric = vc(env32)
    rng = random.Random(1)
    for _ in range(20):
        group = rng.choice([0, 1, 2])
        sender = rng.choice(sorted(fabric.membership.members(group)))
        fabric.publish(sender, group)
    fabric.run()
    assert fabric.pending_messages() == {}


def test_vc_overhead_scales_with_group_size(env32):
    membership = GroupMembership()
    membership.create_group(range(4), group_id=0)
    membership.create_group(range(16), group_id=1)
    fabric = VectorClockFabric(membership, env32.hosts, env32.routing)
    assert fabric.bytes_for_group(1) > fabric.bytes_for_group(0)


def test_vc_can_disagree_on_concurrent_cross_group_order(env32):
    # The anomaly the paper's protocol prevents: per-group causal delivery
    # gives no cross-group consistency.  We don't assert disagreement
    # (it's timing dependent) — only that the protocol never deadlocks.
    fabric = vc(env32)
    rng = random.Random(3)
    for _ in range(30):
        group = rng.choice([0, 1, 2])
        sender = rng.choice(sorted(fabric.membership.members(group)))
        fabric.publish(sender, group)
    fabric.run()
    assert fabric.pending_messages() == {}


# ---------------------------------------------------------------------------
# Propagation tree (Garcia-Molina & Spauster)
# ---------------------------------------------------------------------------


def tree(env):
    return PropagationTreeFabric(triangle_membership(), env.hosts, env.routing)


def test_tree_delivers_to_members(env32):
    fabric = tree(env32)
    fabric.publish(0, 0, "x")
    fabric.run()
    for member in (0, 1, 3):
        assert [r.payload for r in fabric.delivered(member)] == ["x"]
    assert fabric.delivered(2) == []


def test_tree_root_is_busiest_host(env32):
    fabric = tree(env32)
    # Host 1 (B) subscribes to all three groups -> tree root.
    assert fabric._order[0] == 1


def test_tree_entry_node_is_common_ancestor(env32):
    fabric = tree(env32)
    for group in (0, 1, 2):
        entry = fabric.entry_node(group)
        for member in fabric.membership.members(group):
            assert entry in fabric._ancestors(member)


def test_tree_orders_consistently(env32):
    fabric = tree(env32)
    rng = random.Random(4)
    for _ in range(25):
        group = rng.choice([0, 1, 2])
        sender = rng.choice(sorted(fabric.membership.members(group)))
        fabric.publish(sender, group)
    fabric.run()
    assert pairwise_consistent(fabric, 4)


def test_tree_interior_nodes_forward(env32):
    fabric = tree(env32)
    for i in range(10):
        fabric.publish(0, 0)
        fabric.publish(2, 2)
    fabric.run()
    load = fabric.forwarding_load()
    assert sum(load.values()) > 0


def test_tree_unknown_group_rejected(env32):
    fabric = tree(env32)
    with pytest.raises(KeyError):
        fabric.publish(0, 42)


def test_tree_consistency_random_memberships(env32):
    rng = random.Random(9)
    membership = GroupMembership()
    for _ in range(5):
        membership.create_group(rng.sample(range(16), rng.randint(2, 10)))
    fabric = PropagationTreeFabric(membership, env32.hosts, env32.routing)
    for _ in range(40):
        group = rng.choice(membership.groups())
        sender = rng.choice(sorted(membership.members(group)))
        fabric.publish(sender, group)
    fabric.run()
    assert pairwise_consistent(fabric, 16)


# ---------------------------------------------------------------------------
# Cross-protocol comparison sanity
# ---------------------------------------------------------------------------


def test_central_load_exceeds_decentralized_max(env32):
    """The paper's scalability claim: atoms see less traffic than a
    coordinator, which handles every message in the system."""
    membership = triangle_membership()
    central_fabric = CentralSequencerFabric(membership, env32.hosts, env32.routing)
    decentralized = env32.build_fabric(triangle_membership())
    rng = random.Random(5)
    sends = []
    for _ in range(30):
        group = rng.choice([0, 1, 2])
        sender = rng.choice(sorted(membership.members(group)))
        sends.append((sender, group))
    for sender, group in sends:
        central_fabric.publish(sender, group)
        decentralized.publish(sender, group)
    central_fabric.run()
    decentralized.run()
    max_atom_messages = max(
        r.messages_sequenced + r.messages_passed_through
        for p in decentralized.node_processes.values()
        for r in p.atom_runtimes.values()
    )
    assert central_fabric.coordinator_load() == 30
    assert max_atom_messages <= 30
