"""Tests for sequencing-node fail-stop crash and recovery.

The retransmission buffers of Section 3.1 exist so "the message can be
removed from the buffer when this sequencer receives an acknowledgment
from the next hop" — i.e., to mask sequencer unavailability.  These tests
crash sequencing nodes mid-run and assert that liveness and consistency
survive.
"""

import itertools
import random

import pytest

from repro.pubsub.membership import GroupMembership
from repro.sim.events import SimulationError


def triangle_membership():
    membership = GroupMembership()
    membership.create_group([0, 1, 3], group_id=0)
    membership.create_group([0, 1, 2], group_id=1)
    membership.create_group([1, 2, 3], group_id=2)
    return membership


def reliable_fabric(env, **kwargs):
    return env.build_fabric(
        triangle_membership(), retransmit_timeout=5.0, **kwargs
    )


def busiest_node(fabric):
    # The node hosting the most atoms sees the most traffic.
    return max(
        fabric.node_processes.values(), key=lambda p: len(p.atom_runtimes)
    )


def test_crash_requires_reliability(env32):
    fabric = env32.build_fabric(triangle_membership())  # not reliable
    node = next(iter(fabric.node_processes.values()))
    with pytest.raises(SimulationError):
        node.crash(10.0)


def test_crash_duration_positive(env32):
    fabric = reliable_fabric(env32)
    node = next(iter(fabric.node_processes.values()))
    with pytest.raises(ValueError):
        node.crash(0.0)


def test_messages_survive_crash(env32):
    fabric = reliable_fabric(env32)
    node = busiest_node(fabric)
    # Crash the node just as traffic starts.
    fabric.sim.schedule(0.5, node.crash, 30.0)
    for i in range(8):
        fabric.publish(0, 0, i)
        fabric.publish(2, 2, 100 + i)
    fabric.run()
    assert fabric.pending_messages() == {}
    assert node.crashes == 1
    # Everything was delivered despite the downtime.
    assert len([r for r in fabric.delivered(1)]) == 16


def test_crash_drops_then_retransmission_recovers(env32):
    fabric = reliable_fabric(env32)
    node = busiest_node(fabric)
    fabric.sim.schedule(0.5, node.crash, 25.0)
    for i in range(5):
        fabric.publish(0, 0, i)
    fabric.run()
    assert node.packets_dropped_while_down > 0
    assert [r.payload for r in fabric.delivered(3)] == list(range(5))


def test_order_consistent_across_crash(env32):
    fabric = reliable_fabric(env32)
    node = busiest_node(fabric)
    fabric.sim.schedule(1.0, node.crash, 20.0)
    rng = random.Random(1)
    for _ in range(20):
        group = rng.choice([0, 1, 2])
        sender = rng.choice(sorted(fabric.membership.members(group)))
        fabric.publish(sender, group)
    fabric.run()
    assert fabric.pending_messages() == {}
    for a, b in itertools.combinations(range(4), 2):
        seq_a = [r.msg_id for r in fabric.delivered(a)]
        seq_b = [r.msg_id for r in fabric.delivered(b)]
        common = set(seq_a) & set(seq_b)
        assert [m for m in seq_a if m in common] == [m for m in seq_b if m in common]


def test_crash_increases_latency(env32):
    def delivery_time(crash):
        fabric = reliable_fabric(env32)
        if crash:
            node = busiest_node(fabric)
            fabric.sim.schedule(0.1, node.crash, 40.0)
        fabric.publish(0, 0, "x")
        fabric.run()
        return fabric.delivered(3)[0].time

    assert delivery_time(crash=True) > delivery_time(crash=False)


def test_repeated_crashes(env32):
    fabric = reliable_fabric(env32)
    node = busiest_node(fabric)
    fabric.sim.schedule(0.5, node.crash, 10.0)
    fabric.sim.schedule(30.0, node.crash, 10.0)
    for i in range(6):
        fabric.sim.schedule(i * 8.0, fabric.publish, 0, 0, i)
    fabric.run()
    assert node.crashes == 2
    assert [r.payload for r in fabric.delivered(3)] == list(range(6))


def test_crash_with_service_time(env32):
    fabric = env32.build_fabric(
        triangle_membership(), retransmit_timeout=5.0, service_time=1.0
    )
    node = busiest_node(fabric)
    for i in range(10):
        fabric.publish(0, 0, i)
    # Crash while accepted work sits in the service queue: it must resume.
    fabric.sim.schedule(3.0, node.crash, 15.0)
    fabric.run()
    assert [r.payload for r in fabric.delivered(3)] == list(range(10))


def test_no_duplicates_after_recovery(env32):
    fabric = reliable_fabric(env32)
    node = busiest_node(fabric)
    fabric.sim.schedule(0.5, node.crash, 15.0)
    ids = [fabric.publish(1, 1, i) for i in range(7)]
    fabric.run()
    for member in (0, 1, 2):
        got = [r.msg_id for r in fabric.delivered(member)]
        assert sorted(got) == sorted(ids)
        assert len(set(got)) == len(got)


def test_is_down_flag(env32):
    fabric = reliable_fabric(env32)
    node = busiest_node(fabric)
    assert not node.is_down
    node.crash(10.0)
    assert node.is_down
