"""Shared fixtures for the test suite.

The expensive substrate (topology + routing + hosts) is session-scoped;
tests build cheap per-test memberships/fabrics on top of it.
"""

import random

import pytest

from repro.experiments.common import ExperimentEnv
from repro.pubsub.membership import GroupMembership
from repro.topology.clusters import attach_hosts
from repro.topology.gtitm import TransitStubParams, generate_transit_stub
from repro.topology.routing import RoutingTable


@pytest.fixture(scope="session")
def small_topology():
    """A few-hundred-router transit-stub topology (deterministic)."""
    return generate_transit_stub(TransitStubParams.small(), seed=0)


@pytest.fixture(scope="session")
def routing(small_topology):
    return RoutingTable(small_topology)


@pytest.fixture(scope="session")
def hosts16(small_topology):
    return attach_hosts(small_topology, 16, rng=random.Random(1))


@pytest.fixture(scope="session")
def env32():
    """Shared experiment environment with 32 hosts."""
    return ExperimentEnv(n_hosts=32, seed=0)


@pytest.fixture()
def membership_triangle():
    """The paper's Figure 2 memberships: G0={A,B,D}, G1={A,B,C}, G2={B,C,D}."""
    membership = GroupMembership()
    membership.create_group([0, 1, 3], group_id=0)
    membership.create_group([0, 1, 2], group_id=1)
    membership.create_group([1, 2, 3], group_id=2)
    return membership


def make_fabric(env, membership, **kwargs):
    """Build an OrderingFabric on a shared environment (helper)."""
    return env.build_fabric(membership, **kwargs)
