"""Integration tests for the ordering fabric (ingress/sequencing/distribution)."""

import itertools

import pytest

from repro.core.placement import random_placement
from repro.core.protocol import LOCAL_HOP_DELAY, OrderingFabric
from repro.pubsub.membership import GroupMembership


def triangle_membership():
    membership = GroupMembership()
    membership.create_group([0, 1, 3], group_id=0)
    membership.create_group([0, 1, 2], group_id=1)
    membership.create_group([1, 2, 3], group_id=2)
    return membership


@pytest.fixture()
def fabric(env32):
    return env32.build_fabric(triangle_membership())


def test_publish_delivers_to_all_members(fabric, env32):
    fabric.publish(0, 0, "hello")
    fabric.run()
    for member in (0, 1, 3):
        assert [r.payload for r in fabric.delivered(member)] == ["hello"]
    assert fabric.delivered(2) == []


def test_publish_unknown_group_rejected(fabric):
    with pytest.raises(KeyError):
        fabric.publish(0, 99)


def test_sender_receives_own_message(fabric):
    fabric.publish(0, 0, "echo")
    fabric.run()
    assert [r.payload for r in fabric.delivered(0)] == ["echo"]


def test_delivery_time_after_publish_time(fabric):
    fabric.publish(0, 0)
    fabric.run()
    for record in fabric.delivered(1):
        assert record.time > record.publish_time


def test_figure2_scenario_no_circular_wait(env32):
    """The paper's Figure 2: three messages, consistent order, no deadlock."""
    fabric = env32.build_fabric(triangle_membership())
    fabric.publish(0, 0, "m0")
    fabric.publish(0, 1, "m1")
    fabric.publish(2, 2, "m2")
    fabric.run()
    assert fabric.pending_messages() == {}
    # B (host 1) receives all three messages.
    assert len(fabric.delivered(1)) == 3
    # Every pair of receivers agrees on their common messages.
    for a, b in itertools.combinations(range(4), 2):
        seq_a = [r.msg_id for r in fabric.delivered(a)]
        seq_b = [r.msg_id for r in fabric.delivered(b)]
        common = set(seq_a) & set(seq_b)
        assert [m for m in seq_a if m in common] == [m for m in seq_b if m in common]


def test_stamps_contain_group_and_atom_seqs(fabric):
    fabric.publish(0, 0)
    fabric.run()
    stamp = fabric.delivered(1)[0].stamp
    assert stamp.group == 0
    assert stamp.group_seq == 1
    assert len(stamp.atom_seqs) == len(fabric.graph.atoms_of_group(0))


def test_group_seq_increments_per_group(fabric):
    fabric.publish(0, 0)
    fabric.run()
    fabric.publish(1, 0)
    fabric.run()
    seqs = [r.stamp.group_seq for r in fabric.delivered(3)]
    assert seqs == [1, 2]


def test_per_group_fifo_from_one_sender(fabric):
    for i in range(5):
        fabric.publish(0, 0, i)
    fabric.run()
    assert [r.payload for r in fabric.delivered(3)] == list(range(5))


def test_messages_to_singleton_overlap_group(env32):
    membership = GroupMembership()
    membership.create_group([0, 1], group_id=0)
    fabric = env32.build_fabric(membership)
    fabric.publish(0, 0, "only")
    fabric.run()
    assert [r.payload for r in fabric.delivered(1)] == ["only"]


def test_no_overlap_group_uses_ingress_only(env32):
    membership = GroupMembership()
    membership.create_group([0, 1, 2], group_id=0)
    membership.create_group([5, 6], group_id=1)
    fabric = env32.build_fabric(membership)
    assert fabric.graph.group_path(1)[0].is_ingress_only
    fabric.publish(5, 1, "x")
    fabric.run()
    assert [r.payload for r in fabric.delivered(6)] == ["x"]


def test_sequencing_load_accounts_messages(fabric):
    fabric.publish(0, 0)
    fabric.publish(0, 1)
    fabric.run()
    assert sum(fabric.sequencing_load().values()) >= 2


def test_unicast_delay_symmetric_and_positive(fabric):
    assert fabric.unicast_delay(0, 1) == pytest.approx(fabric.unicast_delay(1, 0))
    assert fabric.unicast_delay(0, 1) > 0
    assert fabric.unicast_delay(2, 2) == pytest.approx(
        2 * fabric.host_processes[2].host.access_delay
    )


def test_trace_records_publish_and_deliver(fabric):
    fabric.publish(0, 0)
    fabric.run()
    assert fabric.trace.count("publish") == 1
    assert fabric.trace.count("deliver") == 3


def test_on_deliver_callback(fabric):
    seen = []
    fabric.on_deliver = lambda host, record: seen.append((host, record.msg_id))
    msg = fabric.publish(0, 0)
    fabric.run()
    assert sorted(seen) == [(0, msg), (1, msg), (3, msg)]


def test_random_placement_still_correct(env32):
    """Placement is an efficiency knob, never a correctness one."""
    membership = triangle_membership()
    import random as _random

    graph = None
    fabric = OrderingFabric(
        membership,
        env32.hosts,
        env32.topology,
        env32.routing,
        seed=1,
        placement=None,
        graph=graph,
    )
    scattered = random_placement(fabric.graph, env32.topology, rng=_random.Random(0))
    fabric2 = OrderingFabric(
        membership,
        env32.hosts,
        env32.topology,
        env32.routing,
        seed=1,
        placement=scattered,
        graph=fabric.graph,
    )
    fabric2.publish(0, 0, "a")
    fabric2.publish(2, 2, "b")
    fabric2.run()
    assert fabric2.pending_messages() == {}
    for a, b in itertools.combinations(range(4), 2):
        seq_a = [r.msg_id for r in fabric2.delivered(a)]
        seq_b = [r.msg_id for r in fabric2.delivered(b)]
        common = set(seq_a) & set(seq_b)
        assert [m for m in seq_a if m in common] == [m for m in seq_b if m in common]


def test_local_hop_delay_floor():
    assert LOCAL_HOP_DELAY > 0


def test_isolated_runs_have_isolated_latency(env32):
    """Two identical publishes measured in isolation take identical time."""
    membership = triangle_membership()
    fabric = env32.build_fabric(membership)
    fabric.publish(0, 0)
    fabric.run()
    t1 = fabric.delivered(3)[0].time - fabric.delivered(3)[0].publish_time
    fabric.publish(0, 0)
    fabric.run()
    records = fabric.delivered(3)
    t2 = records[1].time - records[1].publish_time
    assert t1 == pytest.approx(t2)
