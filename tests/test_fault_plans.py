"""The fault-plan DSL: validation, determinism, and composed faults.

The composition tests are the heart: overlapping outage + loss window +
node crash must still end in a quiescent run with every ordering
invariant intact, because each fault only creates work for the reliable
link layer, never silent loss.
"""

import random

import pytest

from repro.check import verify_run
from repro.faults import (
    CrashHost,
    CrashNode,
    DelaySpike,
    FaultPlan,
    LinkOutage,
    LossWindow,
    Partition,
    random_plan,
)
from repro.pubsub.membership import GroupMembership


def triangle_membership():
    membership = GroupMembership()
    membership.create_group([0, 1, 3], group_id=0)
    membership.create_group([0, 1, 2], group_id=1)
    membership.create_group([1, 2, 3], group_id=2)
    return membership


def reliable_fabric(env, **kwargs):
    return env.build_fabric(
        triangle_membership(), retransmit_timeout=5.0, **kwargs
    )


def busiest_node(fabric):
    return max(
        fabric.node_processes.values(), key=lambda p: len(p.atom_runtimes)
    )


def publish_mixed(fabric, count, spread, seed=9):
    """Publish ``count`` messages from group members over ``[0, spread]``."""
    rng = random.Random(seed)
    for _ in range(count):
        group = rng.choice(sorted(fabric.membership.groups()))
        sender = rng.choice(sorted(fabric.membership.members(group)))
        fabric.sim.schedule_at(spread * rng.random(), fabric.publish, sender, group)


# -- validation --------------------------------------------------------------


def test_action_validation():
    with pytest.raises(ValueError):
        CrashNode(at=-1.0, node_id=0).validate()
    with pytest.raises(ValueError):
        CrashNode(at=0.0, node_id=0, duration=0.0).validate()
    with pytest.raises(ValueError):
        CrashHost(at=0.0, host_id=0, duration=-5.0).validate()
    with pytest.raises(ValueError):
        LinkOutage(at=0.0, src=("seq", 0), dst=("seq", 0), duration=1.0).validate()
    with pytest.raises(ValueError):
        Partition(at=0.0, side=(), duration=1.0).validate()
    with pytest.raises(ValueError):
        DelaySpike(at=0.0, factor=0.0, duration=1.0).validate()
    with pytest.raises(ValueError):
        LossWindow(at=0.0, loss_rate=1.5, duration=1.0).validate()
    # A permanent crash is legal.
    CrashNode(at=0.0, node_id=0, duration=None).validate()


def test_plan_validates_all_actions():
    plan = FaultPlan().add(CrashNode(at=5.0, node_id=0, duration=1.0))
    plan.add(CrashHost(at=3.0, host_id=0, duration=0.0))
    with pytest.raises(ValueError):
        plan.validate()


def test_to_dicts_sorted_by_fire_time():
    plan = FaultPlan()
    plan.add(CrashNode(at=30.0, node_id=1, duration=5.0))
    plan.add(CrashHost(at=10.0, host_id=2, duration=5.0))
    plan.add(LossWindow(at=20.0, loss_rate=0.3, duration=5.0))
    kinds = [d["kind"] for d in plan.to_dicts()]
    assert kinds == ["crash_host", "loss_window", "crash_node"]
    assert [d["at"] for d in plan.to_dicts()] == [10.0, 20.0, 30.0]


# -- composed faults ---------------------------------------------------------


def test_composed_faults_preserve_invariants(env32):
    """Overlapping outage + loss window + node crash: still exactly-once,
    still totally ordered per group, still quiescent."""
    fabric = reliable_fabric(env32)
    node = busiest_node(fabric)
    other = next(
        p for p in fabric.node_processes.values() if p is not node
    )
    plan = FaultPlan()
    plan.add(CrashNode(at=12.0, node_id=node.node_id, duration=25.0))
    plan.add(LinkOutage(at=8.0, src=node.name, dst=other.name, duration=30.0))
    plan.add(LossWindow(at=5.0, loss_rate=0.3, duration=40.0, seed=11))
    plan.add(DelaySpike(at=10.0, factor=3.0, duration=20.0))
    plan.apply(fabric)
    publish_mixed(fabric, 30, spread=60.0)
    fabric.run()
    assert fabric.pending_messages() == {}
    assert node.crashes == 1
    assert verify_run(fabric, complete=True, causal=True) == []
    # The faults actually bit: retransmissions happened for real causes.
    assert fabric.retransmissions > 0
    assert set(fabric.retransmissions_by_cause) <= {
        "loss",
        "outage",
        "peer_down",
    }


def test_partition_action_heals(env32):
    fabric = reliable_fabric(env32)
    node = busiest_node(fabric)
    # Cut the busiest node off from everything for a while.
    plan = FaultPlan().add(
        Partition(at=6.0, side=(node.name,), duration=25.0)
    )
    plan.apply(fabric)
    publish_mixed(fabric, 15, spread=40.0)
    fabric.run()
    assert fabric.pending_messages() == {}
    assert verify_run(fabric, complete=True, causal=True) == []
    assert fabric.retransmissions_by_cause.get("outage", 0) > 0


def test_delay_spike_restores_delays(env32):
    fabric = reliable_fabric(env32)
    fabric.publish(0, 0)  # creates the first channels synchronously
    channels = list(fabric.network.channels.values())
    original = [c.delay for c in channels]
    plan = FaultPlan().add(DelaySpike(at=1.0, factor=4.0, duration=10.0))
    plan.apply(fabric)
    fabric.sim.run(until=5.0)
    assert [c.delay for c in channels] == [4.0 * d for d in original]
    fabric.run()
    assert [c.delay for c in channels] == original


def test_loss_window_restores_loss_rate(env32):
    fabric = reliable_fabric(env32)
    fabric.publish(0, 0)
    channels = list(fabric.network.channels.values())
    assert all(c.loss_rate == 0.0 for c in channels)
    plan = FaultPlan().add(LossWindow(at=1.0, loss_rate=0.4, duration=10.0))
    plan.apply(fabric)
    fabric.sim.run(until=5.0)
    assert all(c.loss_rate == 0.4 for c in channels)
    fabric.run()
    assert all(c.loss_rate == 0.0 for c in channels)


def test_permanent_crash_without_failover_abandons(env32):
    fabric = reliable_fabric(env32, max_retransmits=3)
    node = busiest_node(fabric)
    plan = FaultPlan().add(CrashNode(at=0.5, node_id=node.node_id))
    plan.apply(fabric)
    fabric.publish(0, 0, "stranded")
    fabric.run()
    assert node.is_down  # still down: nobody failed it over
    assert fabric.link_failures


# -- random plans ------------------------------------------------------------


def test_random_plan_deterministic(env32):
    fabric = reliable_fabric(env32)
    plan_a = random_plan(fabric, random.Random(42), window=100.0)
    plan_b = random_plan(fabric, random.Random(42), window=100.0)
    assert plan_a.to_dicts() == plan_b.to_dicts()


def test_random_plan_composition(env32):
    fabric = reliable_fabric(env32)
    plan = random_plan(
        fabric,
        random.Random(7),
        window=100.0,
        node_crashes=2,
        host_crashes=1,
        link_outages=1,
        loss_windows=1,
        delay_spikes=1,
        permanent_crash=True,
    )
    described = plan.to_dicts()
    kinds = [d["kind"] for d in described]
    assert kinds.count("crash_node") == 2
    assert kinds.count("crash_host") == 1
    assert kinds.count("link_outage") == 1
    assert kinds.count("loss_window") == 1
    assert kinds.count("delay_spike") == 1
    # Exactly one permanent crash; all faults inside the fault window.
    permanents = [
        d for d in described if d["kind"] == "crash_node" and d["duration"] is None
    ]
    assert len(permanents) == 1
    assert all(0.15 * 100.0 <= d["at"] <= 0.85 * 100.0 for d in described)


def test_random_plan_targets_busy_nodes(env32):
    fabric = reliable_fabric(env32)
    plan = random_plan(fabric, random.Random(3), window=50.0)
    crashed = [
        d["node_id"] for d in plan.to_dicts() if d["kind"] == "crash_node"
    ]
    for node_id in crashed:
        assert fabric.node_processes[node_id].atom_runtimes
