"""Unit tests for the trace recorder."""

from repro.sim.trace import Trace, TraceRecord


def test_record_and_len():
    trace = Trace()
    trace.record(1.0, "publish", msg=1)
    trace.record(2.0, "deliver", msg=1, host=3)
    assert len(trace) == 2


def test_count_by_kind():
    trace = Trace()
    for i in range(3):
        trace.record(float(i), "publish", msg=i)
    trace.record(5.0, "deliver", msg=0)
    assert trace.count("publish") == 3
    assert trace.count("deliver") == 1
    assert trace.count("missing") == 0


def test_select_by_kind():
    trace = Trace()
    trace.record(1.0, "a", v=1)
    trace.record(2.0, "b", v=2)
    assert [r.kind for r in trace.select("a")] == ["a"]


def test_select_by_data_filter():
    trace = Trace()
    trace.record(1.0, "deliver", host=1, msg=10)
    trace.record(2.0, "deliver", host=2, msg=10)
    trace.record(3.0, "deliver", host=1, msg=11)
    hits = trace.select("deliver", host=1)
    assert [r.data["msg"] for r in hits] == [10, 11]


def test_select_all_kinds():
    trace = Trace()
    trace.record(1.0, "a")
    trace.record(2.0, "b")
    assert len(trace.select()) == 2


def test_disabled_trace_keeps_counts_only():
    trace = Trace(enabled=False)
    trace.record(1.0, "publish", msg=1)
    assert len(trace) == 0
    assert trace.count("publish") == 1


def test_clear():
    trace = Trace()
    trace.record(1.0, "a")
    trace.clear()
    assert len(trace) == 0
    assert trace.count("a") == 0


def test_records_are_frozen():
    record = TraceRecord(1.0, "a", {"x": 1})
    try:
        record.time = 2.0
        raised = False
    except Exception:
        raised = True
    assert raised


def test_iteration_order():
    trace = Trace()
    for i in range(5):
        trace.record(float(i), "k", i=i)
    assert [r.data["i"] for r in trace] == list(range(5))


def test_iter_select_lazy():
    trace = Trace()
    trace.record(1.0, "a", v=1)
    iterator = trace.iter_select("a")
    assert next(iterator).data["v"] == 1
