"""End-to-end observability: trace upgrades, event-loop stats, live gauges,
the `repro trace` CLI, and the figure runner's --metrics-out."""

import json
import random

import pytest

from repro import cli
from repro.experiments.common import ExperimentEnv
from repro.experiments.runner import run_selected
from repro.obs import exporters
from repro.obs.registry import MetricsRegistry
from repro.sim.events import Simulator
from repro.sim.trace import Trace
from repro.workloads.zipf import zipf_membership


class TestTraceUpgrades:
    def test_kind_index_matches_full_scan(self):
        trace = Trace()
        for i in range(20):
            trace.record(float(i), "a" if i % 3 else "b", msg=i)
        by_index = trace.select("a")
        by_scan = [r for r in trace if r.kind == "a"]
        assert by_index == by_scan
        assert trace.select("a", msg=4) == [r for r in by_scan if r.data["msg"] == 4]

    def test_ring_buffer_keeps_newest_but_counts_all(self):
        trace = Trace(maxlen=3)
        for i in range(7):
            trace.record(float(i), "tick", i=i)
        assert len(trace) == 3
        assert [r.data["i"] for r in trace] == [4, 5, 6]
        assert trace.count("tick") == 7
        # Index is off in ring mode; select falls back to a scan.
        assert [r.data["i"] for r in trace.select("tick")] == [4, 5, 6]

    def test_ring_buffer_rejects_nonpositive_maxlen(self):
        with pytest.raises(ValueError):
            Trace(maxlen=0)

    def test_disabled_trace_bumps_counts_only(self):
        trace = Trace(enabled=False)
        seen = []
        trace.subscribe(seen.append)
        trace.record(0.0, "publish", msg=1)
        assert len(trace) == 0
        assert trace.count("publish") == 1
        assert seen == []  # subscribers only fire while enabled

    def test_subscribers_see_records_in_order(self):
        trace = Trace()
        seen = []
        trace.subscribe(seen.append)
        trace.record(0.0, "a", x=1)
        trace.record(1.0, "b", x=2)
        assert [r.kind for r in seen] == ["a", "b"]
        trace.unsubscribe(seen.append)
        trace.record(2.0, "c")
        assert len(seen) == 2

    def test_clear_resets_index_and_counts(self):
        trace = Trace()
        trace.record(0.0, "a")
        trace.clear()
        assert len(trace) == 0
        assert trace.count("a") == 0
        assert trace.select("a") == []
        trace.record(1.0, "a")
        assert len(trace.select("a")) == 1


class TestSimulatorCounters:
    def test_pending_is_maintained_incrementally(self):
        sim = Simulator()
        handles = [sim.schedule(float(i), lambda: None) for i in range(3)]
        assert sim.pending == 3
        handles[1].cancel()
        assert sim.pending == 2
        handles[1].cancel()  # idempotent
        assert sim.pending == 2
        sim.run()
        assert sim.pending == 0

    def test_cancel_after_execution_does_not_underflow(self):
        sim = Simulator()
        handle = sim.schedule(0.0, lambda: None)
        sim.run()
        assert sim.pending == 0
        handle.cancel()
        assert sim.pending == 0

    def test_heap_high_water(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.heap_high_water == 5

    def test_callback_profiling_samples_every_nth(self):
        sim = Simulator(profile_every=2)
        for i in range(10):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.callbacks_sampled == 5
        assert sim.callback_wall_time >= 0.0

    def test_profiling_off_by_default(self):
        sim = Simulator()
        sim.schedule(0.0, lambda: None)
        sim.run()
        assert sim.callbacks_sampled == 0


def _burst_fabric(registry):
    """A bursty workload that actually exercises the hold-back buffers."""
    env = ExperimentEnv(n_hosts=16, seed=0)
    rng = random.Random(0)
    snapshot = zipf_membership(16, 4, rng=rng)
    fabric = env.build_fabric(
        env.membership_from(snapshot), trace=True, registry=registry
    )
    groups = sorted(snapshot)
    for _ in range(40):
        group = rng.choice(groups)
        fabric.publish(rng.choice(sorted(snapshot[group])), group)
    fabric.run()
    assert not fabric.pending_messages()
    return fabric


class TestLiveGauges:
    def test_live_high_water_agrees_with_post_hoc(self):
        registry = MetricsRegistry()
        fabric = _burst_fabric(registry)
        post_hoc = {
            host: process.delivery.buffered_high_water
            for host, process in fabric.host_processes.items()
        }
        assert max(post_hoc.values()) > 0  # the burst actually buffered
        for host, expected in post_hoc.items():
            gauge = registry.get("repro_holdback_high_water", host=host)
            assert gauge is not None
            assert gauge.value == expected

    def test_occupancy_returns_to_zero_at_quiescence(self):
        registry = MetricsRegistry()
        fabric = _burst_fabric(registry)
        for host in fabric.host_processes:
            gauge = registry.get("repro_holdback_occupancy", host=host)
            if gauge is not None:  # hosts that never buffered have no gauge updates
                assert gauge.value == 0

    def test_latency_histogram_counts_every_delivery(self):
        registry = MetricsRegistry()
        fabric = _burst_fabric(registry)
        hist = registry.get("repro_delivery_latency_ms")
        assert hist.count == fabric.trace.count("deliver")
        assert hist.max > 0

    def test_collector_mirrors_link_and_node_counters(self):
        registry = MetricsRegistry()
        fabric = _burst_fabric(registry)
        registry.collect()
        total = sum(
            i.value
            for i in registry.instruments()
            if i.name == "repro_link_bytes_sent"
        )
        assert total == fabric.network.total_bytes_sent()
        handled = sum(
            i.value
            for i in registry.instruments()
            if i.name == "repro_node_messages_handled"
        )
        assert handled == sum(fabric.sequencing_load().values())

    def test_disabled_registry_attaches_nothing(self):
        registry = MetricsRegistry(enabled=False)
        fabric = _burst_fabric(registry)
        assert len(registry) == 0
        for process in fabric.host_processes.values():
            assert process.delivery.on_occupancy is None


class TestCli:
    def test_trace_run_writes_all_outputs(self, tmp_path):
        out = tmp_path / "run.jsonl"
        chrome = tmp_path / "run.trace.json"
        metrics = tmp_path / "metrics.prom"
        code = cli.main(
            [
                "trace",
                "run",
                "--hosts",
                "12",
                "--groups",
                "3",
                "--events",
                "15",
                "--out",
                str(out),
                "--chrome",
                str(chrome),
                "--metrics",
                str(metrics),
            ]
        )
        assert code == 0
        records = exporters.read_trace_jsonl(out)
        assert any(r.kind == "deliver" for r in records)
        doc = json.loads(chrome.read_text())
        assert doc["traceEvents"]
        text = metrics.read_text()
        assert "repro_link_bytes_sent" in text
        assert "repro_holdback_high_water" in text

    def test_runner_metrics_out(self, tmp_path):
        metrics = tmp_path / "figs.prom"
        report = run_selected(
            [3], runs=1, paper_scale=False, n_hosts=16, metrics_out=str(metrics)
        )
        assert "metrics written" in report
        text = metrics.read_text()
        assert "repro_link_bytes_sent" in text
        assert "repro_messages_published" in text
