"""Unit tests for the transit-stub generator, routing, and host attachment."""

import math
import random

import networkx as nx
import pytest

from repro.topology.clusters import attach_hosts, host_router_map
from repro.topology.gtitm import TransitStubParams, generate_transit_stub
from repro.topology.routing import RoutingTable

# ---------------------------------------------------------------------------
# Generator
# ---------------------------------------------------------------------------


def test_expected_node_count():
    params = TransitStubParams.small()
    topology = generate_transit_stub(params, seed=0)
    assert topology.n_nodes == params.expected_nodes()


def test_paper_scale_is_ten_thousand():
    params = TransitStubParams.paper_scale()
    assert 9_500 <= params.expected_nodes() <= 10_500


def test_determinism_same_seed():
    a = generate_transit_stub(TransitStubParams.small(), seed=5)
    b = generate_transit_stub(TransitStubParams.small(), seed=5)
    assert a.edges == b.edges
    assert a.coords == b.coords


def test_different_seeds_differ():
    a = generate_transit_stub(TransitStubParams.small(), seed=1)
    b = generate_transit_stub(TransitStubParams.small(), seed=2)
    assert a.edges != b.edges


def test_graph_is_connected(small_topology):
    graph = nx.Graph()
    graph.add_nodes_from(range(small_topology.n_nodes))
    graph.add_edges_from((u, v) for u, v, _ in small_topology.edges)
    assert nx.is_connected(graph)


def test_transit_and_stub_partition(small_topology):
    transit = set(small_topology.transit_nodes)
    stubs = set(small_topology.stub_routers())
    assert transit.isdisjoint(stubs)
    assert transit | stubs == set(range(small_topology.n_nodes))


def test_all_delays_respect_floor(small_topology):
    min_delay = TransitStubParams.small().min_delay
    assert all(d >= min_delay for _, _, d in small_topology.edges)


def test_no_self_loops_or_duplicate_edges(small_topology):
    seen = set()
    for u, v, _ in small_topology.edges:
        assert u != v
        key = (min(u, v), max(u, v))
        assert key not in seen
        seen.add(key)


def test_stub_nodes_near_parent_transit(small_topology):
    params = TransitStubParams.small()
    for stub, (transit, _idx) in small_topology.stub_of.items():
        sx, sy = small_topology.coords[stub]
        tx, ty = small_topology.coords[transit]
        # stub center is within 3*radius of the transit node, stub nodes
        # within another radius of the center
        assert math.hypot(sx - tx, sy - ty) <= 4.5 * params.stub_radius


def test_adjacency_symmetric(small_topology):
    adj = small_topology.adjacency()
    for u, neighbors in adj.items():
        for v, d in neighbors:
            assert (u, d) in [(x, dd) for x, dd in adj[v]]


# ---------------------------------------------------------------------------
# Routing
# ---------------------------------------------------------------------------


def test_routing_delay_zero_to_self(routing):
    assert routing.delay(0, 0) == 0.0


def test_routing_symmetric(routing):
    assert routing.delay(0, 50) == pytest.approx(routing.delay(50, 0))


def test_routing_matches_networkx_reference(small_topology, routing):
    graph = nx.Graph()
    for u, v, d in small_topology.edges:
        graph.add_edge(u, v, weight=d)
    lengths = nx.single_source_dijkstra_path_length(graph, 0, weight="weight")
    for dst in (1, 17, 42, small_topology.n_nodes - 1):
        assert routing.delay(0, dst) == pytest.approx(lengths[dst])


def test_routing_path_endpoints(routing):
    path = routing.path(3, 77)
    assert path[0] == 3
    assert path[-1] == 77


def test_routing_path_edges_exist(small_topology, routing):
    edges = {(min(u, v), max(u, v)) for u, v, _ in small_topology.edges}
    path = routing.path(5, 120)
    for u, v in zip(path, path[1:]):
        assert (min(u, v), max(u, v)) in edges


def test_routing_path_delay_consistent(small_topology, routing):
    delays = {}
    for u, v, d in small_topology.edges:
        delays[(u, v)] = d
        delays[(v, u)] = d
    path = routing.path(2, 99)
    total = sum(delays[(u, v)] for u, v in zip(path, path[1:]))
    assert total == pytest.approx(routing.delay(2, 99))


def test_routing_path_to_self(routing):
    assert routing.path(9, 9) == [9]


def test_routing_nearest(routing):
    candidates = [10, 20, 30]
    nearest = routing.nearest(10, candidates)
    assert nearest == 10


def test_routing_nearest_empty_rejected(routing):
    with pytest.raises(ValueError):
        routing.nearest(0, [])


def test_routing_triangle_inequality(routing):
    # Shortest paths always satisfy the triangle inequality.
    for a, b, c in [(0, 40, 90), (5, 60, 110)]:
        assert routing.delay(a, c) <= routing.delay(a, b) + routing.delay(b, c) + 1e-9


def test_routing_cache_reuse(small_topology):
    routing = RoutingTable(small_topology)
    routing.delay(0, 5)
    assert routing.cache_size() == 1
    routing.delay(0, 10)
    assert routing.cache_size() == 1  # same source reused
    routing.delay(5, 0)  # dst row already cached; no new row needed
    assert routing.cache_size() == 1


# ---------------------------------------------------------------------------
# Host attachment
# ---------------------------------------------------------------------------


def test_attach_hosts_count_and_ids(small_topology):
    hosts = attach_hosts(small_topology, 24, rng=random.Random(0))
    assert [h.host_id for h in hosts] == list(range(24))


def test_attach_hosts_distinct_routers(small_topology):
    hosts = attach_hosts(small_topology, 24, rng=random.Random(0))
    routers = [h.router for h in hosts]
    assert len(set(routers)) == len(routers)


def test_attach_hosts_cluster_sizes_similar(small_topology):
    hosts = attach_hosts(small_topology, 26, cluster_size=8, rng=random.Random(0))
    from collections import Counter

    sizes = Counter(h.cluster for h in hosts).values()
    assert max(sizes) - min(sizes) <= 1


def test_attach_hosts_cluster_members_are_close(small_topology):
    hosts = attach_hosts(small_topology, 32, cluster_size=8, rng=random.Random(3))
    coords = small_topology.coords
    by_cluster = {}
    for host in hosts:
        by_cluster.setdefault(host.cluster, []).append(coords[host.router])
    plane = TransitStubParams.small().plane_size
    for points in by_cluster.values():
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        # Cluster spread is small relative to the plane.
        assert max(xs) - min(xs) < plane / 2
        assert max(ys) - min(ys) < plane / 2


def test_attach_hosts_too_many_rejected(small_topology):
    with pytest.raises(ValueError):
        attach_hosts(small_topology, small_topology.n_nodes + 1)


def test_attach_hosts_zero_rejected(small_topology):
    with pytest.raises(ValueError):
        attach_hosts(small_topology, 0)


def test_attach_hosts_bad_cluster_size(small_topology):
    with pytest.raises(ValueError):
        attach_hosts(small_topology, 8, cluster_size=0)


def test_attach_hosts_deterministic(small_topology):
    a = attach_hosts(small_topology, 16, rng=random.Random(7))
    b = attach_hosts(small_topology, 16, rng=random.Random(7))
    assert a == b


def test_host_router_map(small_topology):
    hosts = attach_hosts(small_topology, 8, rng=random.Random(0))
    mapping = host_router_map(hosts)
    assert mapping[hosts[3].host_id] == hosts[3].router
    assert len(mapping) == 8


def test_access_delay_positive(small_topology):
    hosts = attach_hosts(small_topology, 8, rng=random.Random(0))
    assert all(h.access_delay > 0 for h in hosts)
