"""``repro bench``: suite reports, determinism gate, regression compare."""

import copy
import json

import pytest

from repro.obs import bench


@pytest.fixture(scope="module")
def smoke_report():
    return bench.run_suite("smoke", runs=2, warmup=0, seed=0)


def test_unknown_suite_rejected():
    with pytest.raises(KeyError):
        bench.run_suite("nope")


def test_report_schema_and_sections(smoke_report):
    assert smoke_report["schema"] == bench.SCHEMA
    assert smoke_report["suite"] == "smoke"
    assert smoke_report["config"]["runs"] == 2
    workloads = smoke_report["workloads"]
    assert set(workloads) == {"holdback_micro", "chaos_campaign"}
    for workload in workloads.values():
        assert len(workload["wall_s"]["reps"]) == 2
        assert workload["wall_s"]["min"] <= workload["wall_s"]["mean"]
        assert workload["events"] >= 0
        assert workload["counts"]
        assert "gc" in workload
        # profiling on by default: breakdown with measured self-cost
        assert workload["breakdown"]["overhead"]["estimated_s"] >= 0
    chaos = workloads["chaos_campaign"]
    assert chaos["events"] > 0
    assert chaos["counts"]["quiescent"] is True
    assert chaos["breakdown"]["phase_exclusive_s"]["sequencing"] > 0


def test_counts_deterministic_across_suite_runs(smoke_report):
    again = bench.run_suite("smoke", runs=2, warmup=0, seed=0)
    for name, workload in smoke_report["workloads"].items():
        other = again["workloads"][name]
        assert workload["events"] == other["events"]
        assert workload["messages"] == other["messages"]
        assert workload["counts"] == other["counts"]


def test_no_profile_omits_breakdowns():
    report = bench.run_suite("smoke", runs=1, warmup=0, profile=False)
    for workload in report["workloads"].values():
        assert "breakdown" not in workload


def test_determinism_gate_trips_on_drifting_workload():
    drifting = {"calls": 0}

    def fn(seed, profiler):
        drifting["calls"] += 1
        return {"events": drifting["calls"], "messages": 0, "counts": {}}

    workload = bench.Workload("drifter", "returns different counts", fn)
    with pytest.raises(bench.BenchDeterminismError):
        bench.run_workload(workload, runs=2, warmup=0, profile=False)


def test_report_round_trips_and_self_compare_is_clean(smoke_report, tmp_path):
    path = bench.write_report(smoke_report, tmp_path / "BENCH_smoke.json")
    loaded = bench.read_report(path)
    assert loaded == json.loads(json.dumps(smoke_report))
    result = bench.compare(loaded, loaded)
    assert result["ok"]
    assert not result["regressions"]
    assert not result["warnings"]
    assert all(
        entry["ratio"] == 1.0 for entry in result["workloads"].values()
    )
    rendered = bench.render_compare(result)
    assert "ok" in rendered and "REGRESSED" not in rendered


def test_read_report_rejects_wrong_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": "other/9"}))
    with pytest.raises(ValueError):
        bench.read_report(path)


def test_injected_slowdown_is_a_regression(smoke_report):
    slow = copy.deepcopy(smoke_report)
    wall = slow["workloads"]["chaos_campaign"]["wall_s"]
    wall["min"] *= 2.0
    wall["mean"] *= 2.0
    wall["reps"] = [r * 2.0 for r in wall["reps"]]
    # absolute mode: the doubled workload trips the 25% gate directly
    result = bench.compare(smoke_report, slow, threshold=0.25, normalize=False)
    assert not result["ok"]
    assert any("chaos_campaign" in r for r in result["regressions"])
    assert "REGRESSION" in bench.render_compare(result)
    # a uniformly 2x-slower "machine" is NOT a regression when normalized
    for workload in slow["workloads"].values():
        workload["wall_s"]["min"] = workload["wall_s"]["min"] * 2.0
    uniform = copy.deepcopy(smoke_report)
    for workload in uniform["workloads"].values():
        workload["wall_s"]["min"] *= 3.0
    assert bench.compare(smoke_report, uniform, normalize=True)["ok"]
    assert not bench.compare(smoke_report, uniform, normalize=False)["ok"]


def test_count_drift_warns_but_does_not_fail(smoke_report):
    drifted = copy.deepcopy(smoke_report)
    drifted["workloads"]["chaos_campaign"]["counts"]["delivered"] += 1
    result = bench.compare(smoke_report, drifted)
    assert result["ok"]
    assert any("counts changed" in w for w in result["warnings"])


def test_missing_workload_warns(smoke_report):
    partial = copy.deepcopy(smoke_report)
    del partial["workloads"]["holdback_micro"]
    result = bench.compare(smoke_report, partial)
    assert any("missing" in w for w in result["warnings"])


def test_obs_overhead_workload_reports_ratio():
    workload = next(
        w for w in bench.SUITES["quick"] if w.name == "obs_overhead"
    )
    report = bench.run_workload(workload, runs=1, warmup=0, profile=True)
    extra = report["extra"]
    assert extra["bare_s"] > 0
    assert extra["instrumented_s"] > 0
    assert extra["overhead_ratio"] == pytest.approx(
        extra["instrumented_s"] / extra["bare_s"]
    )


def test_list_suites_names_everything():
    catalog = bench.list_suites()
    for suite in bench.SUITES:
        assert suite in catalog
    assert "holdback_micro" in catalog


def test_cli_round_trip(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "BENCH_smoke.json"
    assert (
        main(
            [
                "bench",
                "--suite",
                "smoke",
                "--runs",
                "1",
                "--warmup",
                "0",
                "--out",
                str(out),
            ]
        )
        == 0
    )
    assert out.exists()
    assert (
        main(["bench", "--compare", str(out), str(out), "--threshold", "0.25"])
        == 0
    )
    text = capsys.readouterr().out
    assert "bench comparison" in text
    assert main(["bench", "--list"]) == 0


def test_cli_compare_detects_injected_slowdown(tmp_path, capsys):
    from repro.cli import main

    old = tmp_path / "old.json"
    new = tmp_path / "new.json"
    report = bench.run_suite("smoke", runs=1, warmup=0)
    bench.write_report(report, old)
    slow = copy.deepcopy(report)
    slow["workloads"]["holdback_micro"]["wall_s"]["min"] *= 4.0
    bench.write_report(slow, new)
    assert (
        main(["bench", "--compare", str(old), str(new), "--absolute"]) == 1
    )
    assert "REGRESSION" in capsys.readouterr().out
