"""Golden tests for the SL110-SL114 asyncio-concurrency rules.

Mirrors the structure of ``test_check_simlint.py``: every rule gets a
violating snippet and a clean/suppressed variant.  Snippets are linted
under an async-scoped module name (``repro.runtime.inline``) so the
"async"-scoped rules apply; the same snippets under a sim-scoped module
must produce nothing.
"""

import textwrap

from repro.check import lint_source
from repro.check.asynclint import ASYNC_RULE_CODES, LOOP_OWNER_MODULE


def lint(source, module="repro.runtime.inline", select=None):
    return lint_source(
        textwrap.dedent(source),
        module=module,
        select=select or list(ASYNC_RULE_CODES),
    )


def codes(findings):
    return [f.code for f in findings]


# -- SL110 fire-and-forget tasks ---------------------------------------------


def test_sl110_flags_discarded_create_task():
    findings = lint(
        """
        import asyncio

        def kick(coro):
            asyncio.create_task(coro)
        """,
        select=["SL110"],
    )
    assert codes(findings) == ["SL110"]
    assert findings[0].tool == "async-lint"


def test_sl110_flags_discarded_ensure_future():
    findings = lint(
        """
        import asyncio

        def kick(loop, coro):
            asyncio.ensure_future(coro)
        """,
        select=["SL110"],
    )
    assert codes(findings) == ["SL110"]


def test_sl110_kept_handle_is_clean():
    findings = lint(
        """
        import asyncio

        class Pump:
            def start(self, coro):
                self._task = asyncio.create_task(coro)
        """,
        select=["SL110"],
    )
    assert findings == []


def test_sl110_suppressed():
    findings = lint(
        """
        import asyncio

        def kick(coro):
            asyncio.create_task(coro)  # simlint: disable=SL110 -- daemon probe
        """,
        select=["SL110"],
    )
    assert findings == []


# -- SL111 await between read and write of shared state ----------------------


def test_sl111_flags_read_await_write():
    findings = lint(
        """
        import asyncio

        class Counter:
            async def bump(self):
                current = self.count
                await asyncio.sleep(0)
                self.count = current + 1
        """,
        select=["SL111"],
    )
    assert codes(findings) == ["SL111"]
    assert "self.count" in findings[0].message


def test_sl111_write_before_await_is_clean():
    findings = lint(
        """
        import asyncio

        class Counter:
            async def bump(self):
                self.count += 1
                await asyncio.sleep(0)
        """,
        select=["SL111"],
    )
    assert findings == []


def test_sl111_constant_store_exempt():
    findings = lint(
        """
        import asyncio

        class Pump:
            async def stop(self):
                if self.running:
                    await self.drain()
                self.running = False
        """,
        select=["SL111"],
    )
    assert findings == []


def test_sl111_nested_function_does_not_leak():
    findings = lint(
        """
        class Pump:
            async def run(self):
                state = self.state

                async def helper():
                    await inner()

                self.state = transform(state)
        """,
        select=["SL111"],
    )
    assert findings == []


def test_sl111_suppressed():
    findings = lint(
        """
        import asyncio

        class Counter:
            async def bump(self):
                current = self.count
                await asyncio.sleep(0)
                # simlint: disable=SL111 -- single-writer by construction
                self.count = current + 1
        """,
        select=["SL111"],
    )
    assert findings == []


# -- SL112 wall-clock fed into asyncio.sleep ---------------------------------


def test_sl112_flags_wall_clock_sleep_argument():
    findings = lint(
        """
        import asyncio
        import time

        async def wait_until(deadline):
            await asyncio.sleep(deadline - time.monotonic())
        """,
        select=["SL112"],
    )
    assert codes(findings) == ["SL112"]


def test_sl112_plain_duration_is_clean():
    findings = lint(
        """
        import asyncio

        async def backoff(delay):
            await asyncio.sleep(delay * 2)
        """,
        select=["SL112"],
    )
    assert findings == []


def test_sl112_suppressed():
    findings = lint(
        """
        import asyncio
        import time

        async def wait_until(deadline):
            await asyncio.sleep(deadline - time.time())  # simlint: disable=SL112 -- host wall deadline
        """,
        select=["SL112"],
    )
    assert findings == []


# -- SL113 spawned tasks never retired ---------------------------------------


def test_sl113_flags_module_that_never_retires_tasks():
    findings = lint(
        """
        import asyncio

        class Pump:
            def start(self, coro):
                self._task = asyncio.create_task(coro)

            async def run(self):
                await asyncio.sleep(1.0)
        """,
        select=["SL113"],
    )
    assert codes(findings) == ["SL113"]


def test_sl113_cancel_retires():
    findings = lint(
        """
        import asyncio

        class Pump:
            def start(self, coro):
                self._task = asyncio.create_task(coro)

            def stop(self):
                self._task.cancel()
        """,
        select=["SL113"],
    )
    assert findings == []


def test_sl113_awaiting_stored_handle_retires():
    findings = lint(
        """
        import asyncio

        class Pump:
            def start(self, coro):
                self._task = asyncio.create_task(coro)

            async def join(self):
                await self._task
        """,
        select=["SL113"],
    )
    assert findings == []


def test_sl113_no_spawn_no_finding():
    findings = lint(
        """
        import asyncio

        async def run():
            await asyncio.sleep(1.0)
        """,
        select=["SL113"],
    )
    assert findings == []


# -- SL114 event-loop access outside the backend -----------------------------


def test_sl114_flags_loop_accessor():
    findings = lint(
        """
        import asyncio

        def current():
            return asyncio.get_event_loop()
        """,
        select=["SL114"],
    )
    assert codes(findings) == ["SL114"]


def test_sl114_flags_loop_method():
    findings = lint(
        """
        def arm(loop, fn):
            loop.call_later(1.0, fn)
        """,
        select=["SL114"],
    )
    assert codes(findings) == ["SL114"]


def test_sl114_exempt_in_owning_backend_module():
    findings = lint(
        """
        import asyncio

        def current():
            return asyncio.get_running_loop()
        """,
        module=LOOP_OWNER_MODULE,
        select=["SL114"],
    )
    assert findings == []


def test_sl114_suppressed():
    findings = lint(
        """
        import asyncio

        def current():
            return asyncio.get_event_loop()  # simlint: disable=SL114 -- repl helper
        """,
        select=["SL114"],
    )
    assert findings == []


# -- scoping -----------------------------------------------------------------


VIOLATES_EVERYTHING = """
import asyncio
import time

class Pump:
    def start(self, coro):
        asyncio.create_task(coro)

    async def bump(self):
        current = self.count
        await asyncio.sleep(time.time() % 1.0)
        self.count = current + 1

    def arm(self, fn):
        asyncio.get_event_loop().call_later(1.0, fn)
"""


def test_async_rules_silent_outside_runtime_scope():
    for module in ("repro.core.inline", "repro.analysis.report"):
        findings = lint(VIOLATES_EVERYTHING, module=module)
        assert findings == [], module


def test_async_rules_all_fire_inside_runtime_scope():
    findings = lint(VIOLATES_EVERYTHING)
    assert sorted(set(codes(findings))) == [
        "SL110", "SL111", "SL112", "SL113", "SL114",
    ]


def test_shipped_runtime_tree_is_async_lint_clean():
    from repro.check.runner import run_async_lint

    findings, inspected = run_async_lint()
    assert findings == []
    assert inspected >= 5  # the whole src/repro/runtime package
