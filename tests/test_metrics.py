"""Tests for the metrics layer (stats, stretch, stress, overhead)."""

import random

import pytest

from repro.core.sequencing_graph import SequencingGraph
from repro.metrics.overhead import (
    overhead_ratio_vs_vector,
    stamp_overhead_bytes,
    worst_case_stamp_entries,
)
from repro.metrics.stats import cdf, cdf_at, percentile, summarize
from repro.metrics.stress import (
    atoms_on_path_ratios,
    double_overlap_count,
    max_receiver_group_load,
    node_group_loads,
    node_stress,
    path_lengths,
    sequencing_node_count,
)
from repro.metrics.stretch import latency_stretch_by_destination, rdp_by_pair
from repro.pubsub.membership import GroupMembership

# ---------------------------------------------------------------------------
# stats
# ---------------------------------------------------------------------------


def test_percentile_interpolation():
    assert percentile([0, 10], 50) == pytest.approx(5.0)
    assert percentile([1, 2, 3, 4], 100) == 4


def test_percentile_empty_rejected():
    with pytest.raises(ValueError):
        percentile([], 50)


def test_cdf_points():
    points = cdf([3.0, 1.0, 2.0])
    assert points == [(1.0, 1 / 3), (2.0, 2 / 3), (3.0, 1.0)]


def test_cdf_empty():
    assert cdf([]) == []


def test_cdf_at_thresholds():
    fractions = cdf_at([1, 2, 3, 4], [0, 2, 5])
    assert fractions == [0.0, 0.5, 1.0]


def test_summarize_fields():
    stats = summarize([1, 2, 3, 4, 5])
    assert stats["mean"] == 3
    assert stats["min"] == 1
    assert stats["max"] == 5
    assert stats["p50"] == 3


def test_summarize_empty_rejected():
    with pytest.raises(ValueError):
        summarize([])


# ---------------------------------------------------------------------------
# graph-derived metrics
# ---------------------------------------------------------------------------


def triangle_graph():
    return SequencingGraph.build(
        {0: frozenset({0, 1, 3}), 1: frozenset({0, 1, 2}), 2: frozenset({1, 2, 3})}
    )


def test_double_overlap_count():
    assert double_overlap_count(triangle_graph()) == 3


def test_double_overlap_count_excludes_retired():
    graph = triangle_graph()
    graph.remove_group(2, lazy=True)
    assert double_overlap_count(graph) == 1


def test_atoms_on_path_ratios():
    graph = triangle_graph()
    ratios = atoms_on_path_ratios(graph, n_hosts=4)
    assert len(ratios) == 3
    assert all(r == pytest.approx(2 / 4) for r in ratios)


def test_atoms_on_path_rejects_zero_hosts():
    with pytest.raises(ValueError):
        atoms_on_path_ratios(triangle_graph(), 0)


def test_path_lengths():
    graph = triangle_graph()
    lengths = path_lengths(graph)
    assert set(lengths) == {0, 1, 2}
    assert max(lengths.values()) == 3  # the group spanning the whole chain


def test_node_stress_and_counts(env32):
    import random as _random

    from repro.workloads.zipf import zipf_membership

    snapshot = zipf_membership(32, 8, rng=_random.Random(0))
    graph = env32.build_graph(snapshot)
    placement = env32.build_placement(graph, machines=False)
    stresses = node_stress(graph, placement)
    assert len(stresses) == sequencing_node_count(placement)
    assert all(0 < s <= 1 for s in stresses)
    loads = node_group_loads(graph, placement)
    assert all(l >= 1 for l in loads)


def test_node_stress_empty_graph():
    graph = SequencingGraph()
    from repro.core.placement import Placement, co_locate_atoms

    placement = Placement(co_locate_atoms(graph))
    assert node_stress(graph, placement) == []


def test_max_receiver_group_load():
    membership = GroupMembership()
    membership.create_group([0, 1, 2])
    membership.create_group([0, 1])
    membership.create_group([0, 3])
    assert max_receiver_group_load(membership) == 3
    assert max_receiver_group_load(GroupMembership()) == 0


def test_scalability_bound_nodes_vs_receivers(env32):
    """Sequencing-node group load tracks the busiest receiver's load.

    The paper's Section 4.3 bound: a node's groups share members, so a
    member's subscription count bounds the node's load.  Our co-location
    families guarantee pairwise chained intersections rather than one
    common member, so the bound holds up to a small constant (<= 2x on
    these workloads; see EXPERIMENTS.md).
    """
    from repro.workloads.zipf import zipf_membership

    for seed in range(5):
        snapshot = zipf_membership(32, 8, rng=random.Random(seed))
        membership = env32.membership_from(snapshot)
        graph = env32.build_graph(snapshot, seed=seed)
        placement = env32.build_placement(graph, seed=seed, machines=False)
        loads = node_group_loads(graph, placement)
        if loads:
            assert max(loads) <= 2 * max_receiver_group_load(membership)


# ---------------------------------------------------------------------------
# overhead
# ---------------------------------------------------------------------------


def test_stamp_overhead_by_group():
    graph = triangle_graph()
    overhead = stamp_overhead_bytes(graph)
    assert set(overhead) == {0, 1, 2}
    assert all(v > 0 for v in overhead.values())


def test_worst_case_entries():
    assert worst_case_stamp_entries(triangle_graph()) == 2
    assert worst_case_stamp_entries(SequencingGraph()) == 0


def test_overhead_ratio_beats_vector_with_many_nodes():
    graph = triangle_graph()
    assert overhead_ratio_vs_vector(graph, n_nodes=128) < 1.0


# ---------------------------------------------------------------------------
# latency metrics (on a tiny simulated run)
# ---------------------------------------------------------------------------


@pytest.fixture()
def run_fabric(env32):
    membership = GroupMembership()
    membership.create_group([0, 1, 2, 3], group_id=0)
    membership.create_group([2, 3, 4, 5], group_id=1)
    fabric = env32.build_fabric(membership)
    env32.run_one_message_per_membership(fabric)
    return fabric


def test_latency_stretch_positive(run_fabric):
    stretch = latency_stretch_by_destination(run_fabric)
    assert stretch
    assert all(v > 0 for v in stretch.values())


def test_latency_stretch_indexed_by_destination(run_fabric):
    stretch = latency_stretch_by_destination(run_fabric)
    members = {0, 1, 2, 3, 4, 5}
    assert set(stretch) <= members


def test_rdp_points_have_positive_delay(run_fabric):
    points = rdp_by_pair(run_fabric)
    assert points
    assert all(delay > 0 and rdp > 0 for delay, rdp in points)


def test_rdp_one_point_per_pair(run_fabric):
    points = rdp_by_pair(run_fabric)
    # 6 distinct members; each (sender, dest) pair contributes one point
    # even when it exchanged several messages (hosts 2,3 are in both
    # groups), so the count is bounded by the number of pairs.
    assert 0 < len(points) <= 6 * 6
