"""Property-based tests for epoch reconfiguration.

Hypothesis generates arbitrary before/after membership matrices; the
epoch switch must always produce a valid graph, continue surviving
sequence spaces, and leave the new fabric able to deliver everything
consistently.
"""

import itertools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.reconfigure import reconfigure
from repro.experiments.common import ExperimentEnv
from repro.pubsub.membership import GroupMembership

ENV = ExperimentEnv(n_hosts=12, seed=0)

memberships = st.dictionaries(
    keys=st.integers(min_value=0, max_value=5),
    values=st.frozensets(st.integers(min_value=0, max_value=11), min_size=2, max_size=12),
    min_size=1,
    max_size=5,
)

loose = settings(
    max_examples=25, suppress_health_check=[HealthCheck.too_slow], deadline=None
)


def materialize(snapshot):
    membership = GroupMembership()
    for group, members in sorted(snapshot.items()):
        membership.create_group(members, group_id=group)
    return membership


def pump(fabric, count=6):
    groups = fabric.membership.groups()
    for index in range(count):
        group = groups[index % len(groups)]
        sender = sorted(fabric.membership.members(group))[0]
        fabric.publish(sender, group)
    fabric.run()
    assert fabric.pending_messages() == {}


@given(memberships, memberships)
@loose
def test_reconfigure_always_valid_and_live(before, after):
    fabric = ENV.build_fabric(materialize(before), trace=False)
    pump(fabric)
    next_fabric = reconfigure(fabric, materialize(after))
    next_fabric.graph.validate()
    pump(next_fabric)
    # Consistency within the new epoch.
    delivered = {
        h.host_id: [r.msg_id for r in next_fabric.delivered(h.host_id)]
        for h in ENV.hosts
    }
    for a, b in itertools.combinations(sorted(delivered), 2):
        seq_a, seq_b = delivered[a], delivered[b]
        common = set(seq_a) & set(seq_b)
        assert [m for m in seq_a if m in common] == [m for m in seq_b if m in common]


@given(memberships)
@loose
def test_reconfigure_identity_preserves_spaces(snapshot):
    """Reconfiguring onto the identical membership continues every group's
    sequence space exactly."""
    fabric = ENV.build_fabric(materialize(snapshot), trace=False)
    pump(fabric, count=4)
    counts = {}
    for host in ENV.hosts:
        for record in fabric.delivered(host.host_id):
            counts[record.stamp.group] = max(
                counts.get(record.stamp.group, 0), record.stamp.group_seq
            )
    next_fabric = reconfigure(fabric, materialize(snapshot))
    groups = next_fabric.membership.groups()
    group = groups[0]
    sender = sorted(next_fabric.membership.members(group))[0]
    next_fabric.publish(sender, group)
    next_fabric.run()
    new_seqs = [
        r.stamp.group_seq
        for r in next_fabric.delivered(sender)
        if r.stamp.group == group
    ]
    assert new_seqs == [counts.get(group, 0) + 1]
