"""Unit tests for double-overlap analysis."""

import pytest

from repro.core.overlaps import (
    double_overlaps,
    groups_with_overlaps,
    overlap_clusters,
    overlap_count_by_group,
)


def snap(**groups):
    """Helper: snap(g0=[1,2], g1=[2,3]) -> {0: fs, 1: fs}."""
    return {int(k[1:]): frozenset(v) for k, v in groups.items()}


def test_shared_pair_detected():
    result = double_overlaps(snap(g0=[1, 2, 3], g1=[2, 3, 4]))
    assert result == {(0, 1): frozenset({2, 3})}


def test_single_shared_member_not_double():
    assert double_overlaps(snap(g0=[1, 2], g1=[2, 3])) == {}


def test_disjoint_groups_no_overlap():
    assert double_overlaps(snap(g0=[1, 2], g1=[3, 4])) == {}


def test_threshold_one_counts_single_overlap():
    result = double_overlaps(snap(g0=[1, 2], g1=[2, 3]), threshold=1)
    assert result == {(0, 1): frozenset({2})}


def test_threshold_zero_rejected():
    with pytest.raises(ValueError):
        double_overlaps({}, threshold=0)


def test_pair_keys_sorted():
    result = double_overlaps(snap(g5=[1, 2], g2=[1, 2]))
    assert list(result) == [(2, 5)]


def test_full_intersection_returned():
    result = double_overlaps(snap(g0=[1, 2, 3, 4], g1=[2, 3, 4, 5]))
    assert result[(0, 1)] == frozenset({2, 3, 4})


def test_triangle_example():
    # The paper's Figure 2: three groups, three pairwise double overlaps.
    result = double_overlaps(
        snap(g0=[0, 1, 3], g1=[0, 1, 2], g2=[1, 2, 3])
    )
    assert set(result) == {(0, 1), (0, 2), (1, 2)}
    assert result[(0, 1)] == frozenset({0, 1})
    assert result[(0, 2)] == frozenset({1, 3})
    assert result[(1, 2)] == frozenset({1, 2})


def test_identical_groups_fully_overlap():
    result = double_overlaps(snap(g0=[1, 2, 3], g1=[1, 2, 3]))
    assert result[(0, 1)] == frozenset({1, 2, 3})


def test_many_groups_quadratic_pairs():
    groups = {g: frozenset({1, 2}) for g in range(6)}
    result = double_overlaps(groups)
    assert len(result) == 15  # C(6,2)


def test_empty_snapshot():
    assert double_overlaps({}) == {}


# ---------------------------------------------------------------------------
# Clusters
# ---------------------------------------------------------------------------


def test_clusters_of_disjoint_pairs():
    clusters = overlap_clusters([(0, 1), (2, 3)])
    assert clusters == [[(0, 1)], [(2, 3)]]


def test_clusters_merge_on_shared_group():
    clusters = overlap_clusters([(0, 1), (1, 2)])
    assert clusters == [[(0, 1), (1, 2)]]


def test_clusters_transitive_merge():
    clusters = overlap_clusters([(0, 1), (1, 2), (2, 3), (5, 6)])
    assert len(clusters) == 2
    assert [(5, 6)] in clusters


def test_group_atoms_always_one_cluster():
    # All pairs containing group 0 must land in a single cluster.
    pairs = [(0, g) for g in range(1, 8)]
    assert len(overlap_clusters(pairs)) == 1


def test_clusters_deterministic_order():
    pairs = [(3, 4), (0, 1), (1, 2)]
    assert overlap_clusters(pairs) == overlap_clusters(list(reversed(pairs)))


def test_clusters_empty():
    assert overlap_clusters([]) == []


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def test_groups_with_overlaps():
    assert groups_with_overlaps([(0, 1), (1, 2)]) == {0, 1, 2}


def test_overlap_count_by_group():
    counts = overlap_count_by_group([(0, 1), (0, 2), (1, 2)])
    assert counts == {0: 2, 1: 2, 2: 2}
