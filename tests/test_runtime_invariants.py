"""The RT3xx runtime verifier: clean runs pass, corrupted logs fail.

The verifier audits delivery logs, so seeded corruption of those logs is
the natural negative test: each mutation must trip exactly the check
that claims to detect it.
"""

import dataclasses
import random

from repro.check import verify_run
from repro.check.invariants import (
    check_causal_order,
    check_exactly_once,
    check_group_order,
    check_mutual_consistency,
    check_no_residual_buffering,
    check_publisher_fifo,
    check_stability,
)
from repro.pubsub.membership import GroupMembership


def triangle_membership():
    membership = GroupMembership()
    membership.create_group([0, 1, 3], group_id=0)
    membership.create_group([0, 1, 2], group_id=1)
    membership.create_group([1, 2, 3], group_id=2)
    return membership


def ran_fabric(env, n_messages=20, seed=2, spread=50.0, **kwargs):
    fabric = env.build_fabric(triangle_membership(), **kwargs)
    rng = random.Random(seed)
    for _ in range(n_messages):
        group = rng.choice([0, 1, 2])
        sender = rng.choice(sorted(fabric.membership.members(group)))
        # Spread publishes over virtual time so publish-after-deliver
        # dependencies actually exist (all-at-zero has no causality).
        fabric.sim.schedule_at(spread * rng.random(), fabric.publish, sender, group)
    fabric.run()
    return fabric


def test_clean_run_has_no_findings(env32):
    fabric = ran_fabric(env32)
    assert verify_run(fabric, complete=True, causal=True) == []


def test_clean_lossy_run_has_no_findings(env32):
    fabric = ran_fabric(env32, loss_rate=0.15, seed=4)
    assert verify_run(fabric, complete=True, causal=True) == []


def test_group_order_violation_detected(env32):
    fabric = ran_fabric(env32)
    # Corrupt host 1's log: reverse its deliveries for group 0.
    process = fabric.host_processes[1]
    group0 = [r for r in process.delivered if r.stamp.group == 0]
    assert len(group0) >= 2
    others = [r for r in process.delivered if r.stamp.group != 0]
    process.delivered[:] = others + list(reversed(group0))
    findings = check_group_order(fabric)
    assert findings and all(f.code == "RT300" for f in findings)
    assert any("group 0" in (f.anchor or "") for f in findings)


def test_duplicate_delivery_detected(env32):
    fabric = ran_fabric(env32)
    process = fabric.host_processes[2]
    process.delivered.append(process.delivered[0])
    findings = check_exactly_once(fabric, complete=False)
    assert [f.code for f in findings] == ["RT301"]


def test_missing_delivery_detected(env32):
    fabric = ran_fabric(env32)
    process = fabric.host_processes[3]
    dropped = process.delivered.pop()
    findings = check_exactly_once(fabric, complete=True)
    codes = {f.code for f in findings}
    assert "RT302" in codes
    assert any(f"message {dropped.msg_id}" in f.message for f in findings)
    # With completeness waived, the hole is tolerated.
    assert check_exactly_once(fabric, complete=False) == []


def test_residual_buffering_detected(env32):
    fabric = ran_fabric(env32)
    assert check_no_residual_buffering(fabric) == []
    fabric.pending_messages = lambda: {0: 2}
    findings = check_no_residual_buffering(fabric)
    assert [f.code for f in findings] == ["RT303"]


def test_publisher_fifo_violation_detected(env32):
    fabric = ran_fabric(env32)
    # Find a host that delivered two messages from one (sender, group).
    target = None
    for host_id, process in sorted(fabric.host_processes.items()):
        seen = {}
        for index, record in enumerate(process.delivered):
            key = (record.sender, record.stamp.group)
            if key in seen:
                target = (host_id, seen[key], index)
                break
            seen[key] = index
        if target:
            break
    assert target is not None
    host_id, i, j = target
    log = fabric.host_processes[host_id].delivered
    log[i], log[j] = log[j], log[i]
    findings = check_publisher_fifo(fabric)
    assert findings and all(f.code == "RT304" for f in findings)


def test_mutual_consistency_violation_detected(env32):
    fabric = ran_fabric(env32)
    # Hosts 0 and 2 share group 1 only; swapping two group-1 records at
    # host 0 breaks pairwise agreement (and group order, checked apart).
    process = fabric.host_processes[0]
    group1 = [i for i, r in enumerate(process.delivered) if r.stamp.group == 1]
    assert len(group1) >= 2
    i, j = group1[0], group1[1]
    process.delivered[i], process.delivered[j] = (
        process.delivered[j],
        process.delivered[i],
    )
    findings = check_mutual_consistency(fabric)
    assert findings and all(f.code == "RT305" for f in findings)


def test_causal_order_violation_detected(env32):
    fabric = ran_fabric(env32, n_messages=30)
    assert check_causal_order(fabric) == []
    # Publisher 1 delivered something before publishing a later message;
    # move that dependency to the end of another host's log.
    violation_made = False
    for msg_id in sorted(fabric.published):
        message = fabric.published[msg_id]
        publisher = fabric.host_processes[message.sender]
        deps = [
            r.msg_id for r in publisher.delivered if r.time < message.publish_time
        ]
        if not deps:
            continue
        dep = deps[0]
        for host_id, process in sorted(fabric.host_processes.items()):
            ids = [r.msg_id for r in process.delivered]
            if msg_id in ids and dep in ids and ids.index(dep) < ids.index(msg_id):
                index = ids.index(dep)
                record = process.delivered.pop(index)
                process.delivered.append(record)
                violation_made = True
                break
        if violation_made:
            break
    assert violation_made
    findings = check_causal_order(fabric)
    assert findings and all(f.code == "RT306" for f in findings)


def test_stability_violation_detected(env32):
    fabric = ran_fabric(env32, track_stability=True)
    assert check_stability(fabric) == []
    # Claim stability for a message some member never delivered.
    process = fabric.host_processes[1]
    msg_id = process.delivered[0].msg_id
    message = fabric.published[msg_id]
    victim = sorted(fabric.membership.members(message.group))[0]
    victim_log = fabric.host_processes[victim].delivered
    victim_log[:] = [r for r in victim_log if r.msg_id != msg_id]
    process.stable_ids.add(msg_id)
    findings = check_stability(fabric)
    assert any(f.code == "RT307" for f in findings)


def test_stability_check_skipped_without_tracking(env32):
    fabric = ran_fabric(env32)
    fabric.host_processes[0].stable_ids.add(999)  # nonsense, but untracked
    assert check_stability(fabric) == []


def test_findings_capped(env32):
    from repro.check.invariants import MAX_FINDINGS_PER_CHECK

    fabric = ran_fabric(env32)
    # Destroy every log: the checker must cap, not drown.
    for process in fabric.host_processes.values():
        process.delivered[:] = list(reversed(process.delivered))
    findings = check_group_order(fabric)
    assert len(findings) <= MAX_FINDINGS_PER_CHECK


def test_verify_run_composes_and_orders(env32):
    fabric = ran_fabric(env32)
    process = fabric.host_processes[2]
    process.delivered.append(process.delivered[0])  # RT301
    fabric.pending_messages = lambda: {3: 1}  # RT303
    codes = [f.code for f in verify_run(fabric, complete=False, causal=False)]
    assert "RT301" in codes
    assert "RT303" in codes
    # Composition preserves per-check grouping order (RT300 block first).
    assert codes == sorted(codes)


def test_findings_are_runtime_verify_tool(env32):
    fabric = ran_fabric(env32)
    fabric.host_processes[0].delivered.append(
        dataclasses.replace(fabric.host_processes[0].delivered[0])
    )
    for finding in verify_run(fabric, complete=False, causal=False):
        assert finding.tool == "runtime-verify"
        assert finding.severity == "error"
