"""Transport conformance: both runtime backends honor the same contract.

Every test here runs twice — once on :class:`SimTransport` (the
deterministic discrete-event simulator) and once on
:class:`AsyncioTransport` (live event-loop timers, per-process inbox
queues, pump tasks) — driving the *same unmodified* OrderingFabric
scenario through each.  What is asserted is the protocol-visible
contract: per-group total order, exactly-once and causal delivery
(``verify_run``), FIFO links under retransmission-induced reordering,
heartbeat suspicion timing, and channel retirement across failover.

Wall-clock timing naturally differs between backends (the live backend
may execute events slightly past a ``run(until=...)`` horizon before the
poll loop observes it), so no test asserts exact virtual timestamps on
the asyncio backend — only ordering, counts of protocol-level outcomes,
and invariant cleanliness.
"""

import random

import pytest

from repro.check import verify_graph, verify_run
from repro.faults import HeartbeatDetector
from repro.pubsub.membership import GroupMembership
from repro.runtime.asyncio_backend import AsyncioTransport
from repro.runtime.sim_backend import SimTransport

BACKENDS = ("sim", "asyncio")

#: live backend runs with microsecond wall time per virtual millisecond
#: so even long virtual horizons finish in milliseconds of real time.
LIVE_TIME_SCALE = 1e-6


@pytest.fixture(params=BACKENDS)
def runtime_factory(request):
    """A per-backend runtime factory; closes every runtime it built."""
    created = []

    def factory(seed=0, loss_rate=0.0, time_scale=LIVE_TIME_SCALE):
        if request.param == "sim":
            runtime = SimTransport(seed=seed, loss_rate=loss_rate)
        else:
            runtime = AsyncioTransport(
                seed=seed, loss_rate=loss_rate, time_scale=time_scale
            )
        created.append(runtime)
        return runtime

    factory.backend = request.param
    yield factory
    for runtime in created:
        runtime.close()


def triangle_membership():
    membership = GroupMembership()
    membership.create_group([0, 1, 3], group_id=0)
    membership.create_group([0, 1, 2], group_id=1)
    membership.create_group([1, 2, 3], group_id=2)
    return membership


def build_fabric(env, runtime, **kwargs):
    kwargs.setdefault("retransmit_timeout", 5.0)
    return env.build_fabric(triangle_membership(), runtime=runtime, **kwargs)


def publish_mixed(fabric, count, spread, seed=9):
    # Relative delays (not absolute times) so a second batch can be
    # injected after the clock has already advanced past t=0.
    rng = random.Random(seed)
    for _ in range(count):
        group = rng.choice(sorted(fabric.membership.groups()))
        sender = rng.choice(sorted(fabric.membership.members(group)))
        fabric.sim.schedule(spread * rng.random(), fabric.publish, sender, group)


def busiest_node(fabric):
    return max(
        fabric.node_processes.values(), key=lambda p: len(p.atom_runtimes)
    )


# -- basic contract ----------------------------------------------------------


def test_backend_identity(runtime_factory):
    runtime = runtime_factory()
    assert runtime.backend_name == runtime_factory.backend
    assert runtime.scheduler.now >= 0.0
    assert runtime.scheduler.pending == 0
    assert runtime.transport is not None


def test_lossless_run_delivers_everything(env32, runtime_factory):
    """The same scenario, unmodified, delivers identically on both."""
    fabric = build_fabric(env32, runtime_factory())
    publish_mixed(fabric, 20, spread=40.0)
    fabric.run()
    assert fabric.pending_messages() == {}
    assert verify_run(fabric, complete=True, causal=True) == []
    delivered_ids = {
        r.msg_id for p in fabric.host_processes.values() for r in p.delivered
    }
    assert delivered_ids == set(fabric.published)


def test_graph_verification_holds_on_live_fabric(env32, runtime_factory):
    """C1/C2 hold for the sequencing graph regardless of backend."""
    fabric = build_fabric(env32, runtime_factory())
    publish_mixed(fabric, 6, spread=10.0)
    fabric.run()
    assert verify_graph(fabric.graph, fabric.placement) == []


# -- ordering under reordered arrivals ---------------------------------------


def test_ordering_survives_loss_induced_reordering(env32, runtime_factory):
    """Loss forces retransmissions, so arrivals interleave out of send
    order; the hold-back layer must still deliver each group's messages
    in one agreed total order on every backend."""
    fabric = build_fabric(env32, runtime_factory(seed=3, loss_rate=0.12), seed=3)
    publish_mixed(fabric, 25, spread=60.0, seed=11)
    fabric.run()
    assert fabric.retransmissions > 0  # reordering actually happened
    assert verify_run(fabric, complete=True, causal=True) == []


def test_retransmission_backoff_recovers_all_traffic(env32, runtime_factory):
    """Loss + exponential backoff: every published message is still
    delivered exactly once everywhere, with no link failures."""
    fabric = build_fabric(env32, runtime_factory(seed=5, loss_rate=0.2), seed=5)
    publish_mixed(fabric, 15, spread=50.0, seed=4)
    fabric.run()
    assert fabric.retransmissions > 0
    assert fabric.link_failures == []
    assert fabric.retransmissions_by_cause  # causes were attributed
    assert verify_run(fabric, complete=True, causal=True) == []
    delivered_ids = {
        r.msg_id for p in fabric.host_processes.values() for r in p.delivered
    }
    assert delivered_ids == set(fabric.published)


# -- heartbeat suspicion -----------------------------------------------------

#: Heartbeat tests on the live backend scale 1 virtual ms to 1 real ms:
#: at the default microsecond scale, Python's own callback execution
#: time counts as virtual silence and false-positives the detector.
HEARTBEAT_TIME_SCALE = 1e-3


def test_heartbeat_suspects_crashed_node(env32, runtime_factory):
    fabric = build_fabric(
        env32, runtime_factory(time_scale=HEARTBEAT_TIME_SCALE)
    )
    detector = HeartbeatDetector(fabric, interval=20.0, suspect_after=3)
    node = busiest_node(fabric)
    node.crash(float("inf"))
    detector.start()
    fabric.run(until=400.0)
    detector.stop()
    suspected = [node_id for _, node_id, _ in detector.suspicions]
    assert node.node_id in suspected
    assert detector.heartbeats_sent > 0


def test_heartbeat_quiet_when_healthy(env32, runtime_factory):
    fabric = build_fabric(
        env32, runtime_factory(time_scale=HEARTBEAT_TIME_SCALE)
    )
    detector = HeartbeatDetector(fabric, interval=20.0, suspect_after=3)
    detector.start()
    fabric.run(until=200.0)
    detector.stop()
    fabric.run()
    assert detector.suspicions == []
    assert detector.pongs_received > 0


# -- channel retirement on failover ------------------------------------------


def test_failover_retires_channels_and_keeps_invariants(env32, runtime_factory):
    fabric = build_fabric(env32, runtime_factory())
    node = busiest_node(fabric)
    publish_mixed(fabric, 8, spread=10.0)
    fabric.run()
    touching = [key for key in fabric.network.channels if node.name in key]
    assert touching  # the busiest node saw traffic
    retired_before = fabric.network.channels_retired
    fabric.relocate_node(
        node.node_id, (node.machine + 1) % fabric.topology.n_nodes
    )
    assert all(node.name not in key for key in fabric.network.channels)
    assert fabric.network.channels_retired >= retired_before + len(touching)
    # Traffic after the move flows over fresh channels and stays ordered.
    publish_mixed(fabric, 8, spread=10.0, seed=21)
    fabric.run()
    assert verify_run(fabric, complete=True, causal=True) == []


def test_retired_channel_stats_fold_into_totals(env32, runtime_factory):
    fabric = build_fabric(env32, runtime_factory())
    publish_mixed(fabric, 8, spread=10.0)
    fabric.run()
    sends_before = fabric.network.total_sends()
    node = busiest_node(fabric)
    fabric.relocate_node(
        node.node_id, (node.machine + 1) % fabric.topology.n_nodes
    )
    # Retiring channels must not lose their accumulated send counts.
    assert fabric.network.total_sends() >= sends_before


# -- sim-only determinism guarantee ------------------------------------------


def test_sim_backend_is_deterministic(env32):
    """Two same-seed sim runs produce byte-identical delivery orders.

    (The live backend makes no such promise — its interleaving depends
    on wall-clock timer firing — which is exactly why the simulator
    remains the default backend for experiments.)
    """
    orders = []
    for _ in range(2):
        runtime = SimTransport(seed=7, loss_rate=0.1)
        fabric = build_fabric(env32, runtime, seed=7)
        publish_mixed(fabric, 15, spread=40.0, seed=7)
        fabric.run()
        orders.append(
            [
                (h, r.msg_id, r.time)
                for h, p in sorted(fabric.host_processes.items())
                for r in p.delivered
            ]
        )
    assert orders[0] == orders[1]
