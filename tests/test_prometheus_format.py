"""Golden-format tests for the Prometheus text exposition.

The ``metrics`` service verb and ``repro trace run --metrics`` both go
through :func:`repro.obs.exporters.registry_to_prometheus`; this file
pins the output to the exposition-format grammar so the scrape endpoint
cannot silently emit unscrapeable text.
"""

import math
import re

from repro.obs.exporters import registry_to_prometheus
from repro.obs.live import PhaseLatencyTracker, PHASES
from repro.obs.registry import MetricsRegistry

# Exposition-format grammar: metric names and label names.
NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>\+Inf|-Inf|NaN|[0-9eE.+-]+)$"
)
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _tracked_registry():
    registry = MetricsRegistry()
    tracker = PhaseLatencyTracker(registry)
    for value in (0.05, 0.4, 3.0, 12.0, 80.0, 700.0):
        tracker.histograms["delivery"].observe(value)
        tracker.histograms["sequencing"].observe(value / 2)
    registry.counter("repro_messages_published", "Messages published").inc(6)
    return registry


class TestGoldenFormat:
    def test_every_line_is_comment_or_valid_sample(self):
        text = registry_to_prometheus(_tracked_registry())
        assert text.endswith("\n")
        for line in text.splitlines():
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                name = line.split()[2]
                assert NAME_RE.fullmatch(name), line
                continue
            match = SAMPLE_RE.match(line)
            assert match, f"unscrapeable sample line: {line!r}"
            for label_pair in LABEL_RE.finditer(match.group("labels") or ""):
                assert NAME_RE.fullmatch(label_pair.group(1))

    def test_help_and_type_appear_once_per_name_before_samples(self):
        text = registry_to_prometheus(_tracked_registry())
        seen_types = {}
        for line in text.splitlines():
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split()
                assert name not in seen_types, f"duplicate TYPE for {name}"
                seen_types[name] = kind
            elif not line.startswith("#"):
                name = SAMPLE_RE.match(line).group("name")
                base = re.sub(r"_(bucket|sum|count|max)$", "", name)
                assert base in seen_types or name in seen_types, (
                    f"sample {name} before its TYPE line"
                )
        assert seen_types["repro_phase_latency_ms"] == "histogram"
        assert seen_types["repro_messages_published"] == "counter"

    def test_phase_histogram_series_are_complete(self):
        text = registry_to_prometheus(_tracked_registry())
        for phase in PHASES:
            for suffix in ("bucket", "sum", "count", "max"):
                pattern = f"repro_phase_latency_ms_{suffix}{{"
                lines = [
                    line for line in text.splitlines()
                    if line.startswith(pattern) and f'phase="{phase}"' in line
                ]
                assert lines, f"missing _{suffix} series for phase {phase}"

    def test_buckets_are_cumulative_and_end_at_inf(self):
        text = registry_to_prometheus(_tracked_registry())
        buckets = []
        for line in text.splitlines():
            if not line.startswith("repro_phase_latency_ms_bucket"):
                continue
            if 'phase="delivery"' not in line:
                continue
            labels, value = line.rsplit(" ", 1)
            bound = labels.split('le="')[1].split('"')[0]
            buckets.append(
                (math.inf if bound == "+Inf" else float(bound), int(value))
            )
        assert buckets, "no delivery buckets found"
        bounds = [b for b, _ in buckets]
        counts = [c for _, c in buckets]
        assert bounds == sorted(bounds)
        assert bounds[-1] == math.inf
        assert counts == sorted(counts), "bucket counts must be cumulative"
        count_line = next(
            line for line in text.splitlines()
            if line.startswith("repro_phase_latency_ms_count")
            and 'phase="delivery"' in line
        )
        assert int(count_line.rsplit(" ", 1)[1]) == counts[-1]

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_test_total", "Escaping", target='a"b\\c\nd'
        ).inc()
        text = registry_to_prometheus(registry)
        assert 'target="a\\"b\\\\c\\nd"' in text
        # Exactly one physical sample line: the newline stayed escaped.
        samples = [
            line for line in text.splitlines() if not line.startswith("#")
        ]
        assert len(samples) == 1
