"""Retransmission backoff, jitter, per-link attribution, link failure.

The reliable link layer now backs off exponentially (capped), jitters
deterministically, attributes every retransmission to a cause and a
link, and surfaces budget exhaustion as a :class:`LinkFailure` instead
of aborting the simulation.
"""

import math
import random

import pytest

from repro.core.protocol import (
    RETRANSMIT_BACKOFF_CAP,
    RETRANSMIT_JITTER,
    LinkFailure,
    retransmit_jitter_fraction,
)
from repro.pubsub.membership import GroupMembership


def triangle_membership():
    membership = GroupMembership()
    membership.create_group([0, 1, 3], group_id=0)
    membership.create_group([0, 1, 2], group_id=1)
    membership.create_group([1, 2, 3], group_id=2)
    return membership


def reliable_fabric(env, **kwargs):
    return env.build_fabric(
        triangle_membership(), retransmit_timeout=5.0, **kwargs
    )


def busiest_node(fabric):
    return max(
        fabric.node_processes.values(), key=lambda p: len(p.atom_runtimes)
    )


def test_jitter_fraction_deterministic_and_bounded():
    for seq in range(50):
        for attempts in range(10):
            value = retransmit_jitter_fraction(seq, attempts)
            assert value == retransmit_jitter_fraction(seq, attempts)
            assert 0.0 <= value < 1.0
    # Different packets / attempts actually spread out.
    values = {retransmit_jitter_fraction(seq, 0) for seq in range(100)}
    assert len(values) > 50


def test_timeout_doubles_then_caps(env32):
    fabric = reliable_fabric(env32)
    src = fabric.host_processes[0]
    dst = busiest_node(fabric)

    class FakeHop:
        seq = 17

    hop = FakeHop()
    timeouts = [
        fabric._retransmit_timeout(src, dst, hop, attempts)
        for attempts in range(RETRANSMIT_BACKOFF_CAP + 4)
    ]
    # Strip the (bounded, deterministic) jitter to observe pure backoff.
    bare = [
        t / (1.0 + RETRANSMIT_JITTER * retransmit_jitter_fraction(hop.seq, a))
        for a, t in enumerate(timeouts)
    ]
    for attempts in range(1, RETRANSMIT_BACKOFF_CAP + 1):
        assert math.isclose(bare[attempts] / bare[attempts - 1], 2.0)
    # Past the cap the bare timeout stays flat.
    assert math.isclose(bare[RETRANSMIT_BACKOFF_CAP + 1], bare[RETRANSMIT_BACKOFF_CAP])
    assert math.isclose(bare[RETRANSMIT_BACKOFF_CAP + 3], bare[RETRANSMIT_BACKOFF_CAP])
    # Jitter never exceeds its advertised bound.
    for attempts, timeout in enumerate(timeouts):
        assert timeout >= bare[attempts]
        assert timeout <= bare[attempts] * (1.0 + RETRANSMIT_JITTER)


def test_retransmissions_attributed_to_loss(env32):
    fabric = env32.build_fabric(triangle_membership(), loss_rate=0.2, seed=5)
    rng = random.Random(3)
    for _ in range(20):
        group = rng.choice([0, 1, 2])
        sender = rng.choice(sorted(fabric.membership.members(group)))
        fabric.publish(sender, group)
    fabric.run()
    assert fabric.pending_messages() == {}
    assert fabric.retransmissions > 0
    assert fabric.retransmissions == sum(fabric.retransmissions_by_cause.values())
    assert fabric.retransmissions == sum(fabric.retransmits_by_link.values())
    assert set(fabric.retransmissions_by_cause) == {"loss"}
    # Per-link attribution uses process names on both ends.
    for (src, dst), count in fabric.retransmits_by_link.items():
        assert count > 0
        assert isinstance(src, tuple) and isinstance(dst, tuple)


def test_retransmissions_attributed_to_peer_down(env32):
    fabric = reliable_fabric(env32)
    node = busiest_node(fabric)
    fabric.sim.schedule(0.5, node.crash, 30.0)
    for i in range(5):
        fabric.publish(0, 0, i)
    fabric.run()
    assert fabric.retransmissions_by_cause.get("peer_down", 0) > 0
    assert fabric.pending_messages() == {}


def test_budget_exhaustion_surfaces_link_failure(env32):
    fabric = reliable_fabric(env32, max_retransmits=2)
    assert fabric.max_retransmits == 2
    node = busiest_node(fabric)
    seen = []
    fabric.on_link_failure = seen.append
    # Crash the node forever: every packet toward it exhausts its budget.
    fabric.sim.schedule(0.1, node.crash, float("inf"))
    for i in range(4):
        fabric.publish(0, 0, i)
    fabric.run()  # must NOT raise SimulationError
    assert fabric.link_failures
    assert seen == fabric.link_failures
    for failure in fabric.link_failures:
        assert isinstance(failure, LinkFailure)
        assert failure.dst == node.name
        assert failure.attempts == 2
    # Abandoned packets left the output retransmission buffers.
    for (src, dst), link in fabric._links.items():
        if dst == node.name:
            assert link.pending == {}


def test_abandoned_traffic_visible_to_checker(env32):
    from repro.check import verify_run

    fabric = reliable_fabric(env32, max_retransmits=1)
    node = busiest_node(fabric)
    fabric.sim.schedule(0.1, node.crash, float("inf"))
    fabric.publish(0, 0, "doomed")
    fabric.run()
    findings = verify_run(fabric, complete=True, causal=False)
    assert any(f.code == "RT302" for f in findings)
    # With completeness waived (abandonment was explicit), the run is clean.
    assert verify_run(fabric, complete=False, causal=False) == []


def test_give_up_budget_respected(env32):
    fabric = reliable_fabric(env32, max_retransmits=3)
    node = busiest_node(fabric)
    fabric.sim.schedule(0.1, node.crash, float("inf"))
    fabric.publish(0, 0, "x")
    fabric.run()
    # No packet was retransmitted more than the budget allows.
    assert all(f.attempts <= 3 for f in fabric.link_failures)
    with pytest.raises(ValueError):
        fabric.relocate_node(node.node_id, 0, transfer_delay=-1.0)
