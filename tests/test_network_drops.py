"""Drop attribution, partitions, and channel retirement in the network.

``Channel.drops`` is now split into ``loss_drops`` (Bernoulli loss) and
``outage_drops`` (link down), with ``drops`` kept as their sum; the
network aggregates both and keeps totals monotonic across the channel
retirement that failover performs.
"""

import random

import pytest

from repro.sim.events import Simulator
from repro.sim.network import Channel, Network
from repro.sim.processes import Process


class Sink(Process):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def receive(self, payload, channel):
        self.received.append((payload, self.sim.now))


def make_network(loss_rate=0.0, seed=0):
    sim = Simulator()
    network = Network(
        sim,
        loss_rate=loss_rate,
        rng=random.Random(seed) if loss_rate > 0 else None,
    )
    names = ["a", "b", "c"]
    for name in names:
        network.add_process(Sink(sim, name))
    return sim, network


def test_outage_drops_counted_separately():
    sim, network = make_network()
    channel = network.connect("a", "b", 1.0)
    channel.send("before")
    channel.fail(10.0)
    channel.send("during-1")
    channel.send("during-2")
    sim.run()
    assert channel.outage_drops == 2
    assert channel.loss_drops == 0
    assert channel.drops == 2


def test_loss_drops_counted_separately():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    channel = Channel(sim, a, b, 1.0, loss_rate=0.5, rng=random.Random(4))
    for i in range(200):
        channel.send(i)
    sim.run()
    assert channel.loss_drops > 0
    assert channel.outage_drops == 0
    assert channel.drops == channel.loss_drops
    assert channel.loss_drops + channel.receives == 200


def test_outage_checked_before_loss():
    # A packet dropped during an outage is attributed to the outage even
    # on a lossy channel: the wire was down, the coin never flipped.
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    channel = Channel(sim, a, b, 1.0, loss_rate=0.99, rng=random.Random(0))
    channel.fail(5.0)
    for i in range(50):
        channel.send(i)
    sim.run()
    assert channel.outage_drops == 50
    assert channel.loss_drops == 0


def test_network_totals_by_cause():
    sim, network = make_network()
    ab = network.connect("a", "b", 1.0)
    bc = network.connect("b", "c", 1.0)
    ab.fail(10.0)
    ab.send("lost-to-outage")
    bc.send("fine")
    sim.run()
    assert network.total_outage_drops() == 1
    assert network.total_loss_drops() == 0
    assert network.total_drops() == 1


def test_partition_cuts_both_directions():
    sim, network = make_network()
    ab = network.connect("a", "b", 1.0)
    ba = network.connect("b", "a", 1.0)
    cc = network.connect("a", "c", 1.0)
    failed = network.partition(frozenset({"a"}), 10.0, frozenset({"b"}))
    assert failed == 2
    assert ab.is_down and ba.is_down
    assert not cc.is_down


def test_partition_against_rest():
    sim, network = make_network()
    ab = network.connect("a", "b", 1.0)
    bc = network.connect("b", "c", 1.0)
    failed = network.partition(frozenset({"a"}), 10.0)
    assert failed == 1
    assert ab.is_down
    assert not bc.is_down


def test_channel_created_during_cut_inherits_outage():
    sim, network = make_network()
    network.partition(frozenset({"a"}), 10.0)
    late = network.connect("a", "c", 1.0)
    assert late.is_down
    # After the cut heals, new channels come up clean.
    sim.schedule(20.0, lambda: None)
    sim.run()
    assert not late.is_down
    fresh = network.connect("c", "a", 1.0)
    assert not fresh.is_down


def test_partition_duration_validated():
    _sim, network = make_network()
    with pytest.raises(ValueError):
        network.partition(frozenset({"a"}), 0.0)


def test_retire_channels_preserves_totals():
    sim, network = make_network()
    ab = network.connect("a", "b", 1.0)
    bc = network.connect("b", "c", 1.0)
    ab.fail(5.0)
    ab.send("dropped", size_bytes=10)
    bc.send("ok", size_bytes=7)
    sim.run()
    before = (
        network.total_sends(),
        network.total_drops(),
        network.total_bytes_sent(),
    )
    retired = network.retire_channels("b")
    assert retired == 2
    assert network.channels_retired == 2
    assert network.channels == {}
    after = (
        network.total_sends(),
        network.total_drops(),
        network.total_bytes_sent(),
    )
    assert after == before
    # Re-created channels may carry a new delay (the process moved).
    fresh = network.connect("a", "b", 3.5)
    assert fresh.delay == 3.5


def test_retired_inflight_packets_still_deliver():
    sim, network = make_network()
    ab = network.connect("a", "b", 5.0)
    ab.send("on-the-wire")
    network.retire_channels("a")
    sim.run()
    assert [p for p, _ in network.process("b").received] == ["on-the-wire"]
