"""Tests for the OrderedPubSub facade."""

import pytest

from repro import OrderedPubSub, OrderingViolation


@pytest.fixture()
def bus():
    return OrderedPubSub(n_hosts=8, seed=1)


def test_subscribe_and_publish_by_topic(bus):
    bus.subscribe(0, "t")
    bus.subscribe(1, "t")
    bus.publish(0, "t", "hi")
    bus.run()
    assert bus.delivered_payloads(1) == ["hi"]


def test_publish_by_group_id(bus):
    group = bus.create_group([0, 1, 2])
    bus.publish(0, group, "x")
    bus.run()
    assert bus.delivered_payloads(2) == ["x"]


def test_causal_send_enforced(bus):
    bus.subscribe(0, "t")
    bus.subscribe(1, "t")
    with pytest.raises(OrderingViolation):
        bus.publish(5, "t", "intruder")


def test_non_member_send_allowed_when_disabled():
    bus = OrderedPubSub(n_hosts=8, seed=1, enforce_causal_sends=False)
    group = bus.create_group([0, 1])
    bus.publish(5, group, "outside")
    bus.run()
    assert bus.delivered_payloads(1) == ["outside"]


def test_unknown_host_rejected(bus):
    with pytest.raises(KeyError):
        bus.subscribe(99, "t")
    with pytest.raises(KeyError):
        bus.publish(99, "t")


def test_unknown_topic_rejected(bus):
    from repro.pubsub.membership import MembershipError

    bus.subscribe(0, "known")
    with pytest.raises(MembershipError):
        bus.publish(0, "unknown")


def test_membership_change_rebuilds_fabric(bus):
    group = bus.create_group([0, 1])
    bus.publish(0, group, "a")
    bus.run()
    fabric_before = bus.fabric
    bus.create_group([2, 3])
    assert bus._dirty
    bus.publish(0, group, "b")
    assert bus.fabric is not fabric_before
    bus.run()
    assert bus.delivered_payloads(1) == ["a", "b"]


def test_delivery_history_survives_rebuild(bus):
    group = bus.create_group([0, 1])
    bus.publish(0, group, "epoch1")
    bus.run()
    bus.create_group([2, 3])  # forces rebuild on next publish
    bus.publish(0, group, "epoch2")
    bus.run()
    assert bus.delivered_payloads(1) == ["epoch1", "epoch2"]


def test_rebuild_mid_flight_fences_and_drains(bus):
    group = bus.create_group([0, 1])
    bus.publish(0, group, "inflight")
    # Membership change while the message is still undelivered: the
    # rebuild fences the old epoch and drains it online — no quiescence
    # precondition, nothing lost, ordering preserved across the switch.
    bus.create_group([2, 3])
    bus.publish(0, group, "after")
    bus.run()
    assert bus.delivered_payloads(1) == ["inflight", "after"]


def test_unsubscribe_updates_groups(bus):
    bus.subscribe(0, "t")
    bus.subscribe(1, "t")
    bus.subscribe(2, "t")
    bus.unsubscribe(2, "t")
    group = bus.broker.group_for("t")
    assert bus.membership.members(group) == frozenset({0, 1})


def test_now_advances(bus):
    assert bus.now == 0.0
    group = bus.create_group([0, 1])
    bus.publish(0, group)
    bus.run()
    assert bus.now > 0


def test_run_without_fabric_is_noop():
    bus = OrderedPubSub(n_hosts=4, seed=0)
    assert bus.run() == 0


def test_loss_rate_propagates():
    bus = OrderedPubSub(n_hosts=8, seed=2, loss_rate=0.2)
    group = bus.create_group([0, 1, 2])
    bus.publish(0, group, "lossy")
    bus.run()
    assert bus.fabric.reliable
    assert bus.delivered_payloads(2) == ["lossy"]


def test_seed_reproducibility():
    def run_once():
        bus = OrderedPubSub(n_hosts=8, seed=3)
        g0 = bus.create_group([0, 1, 2])
        g1 = bus.create_group([1, 2, 3])
        bus.publish(0, g0, "a")
        bus.publish(3, g1, "b")
        bus.run()
        return [(r.msg_id, r.time) for r in bus.delivered(1)]

    assert run_once() == run_once()


def test_delivered_unknown_host_rejected(bus):
    with pytest.raises(KeyError):
        bus.delivered(50)
