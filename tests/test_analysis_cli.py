"""Tests for the analysis package and the CLI."""

import pytest

from repro.analysis.graphviz import placement_to_dot, sequencing_graph_to_dot
from repro.analysis.report import analyze
from repro.cli import main as cli_main
from repro.core.placement import Placement, co_locate_and_order
from repro.core.sequencing_graph import SequencingGraph


def triangle_graph():
    return SequencingGraph.build(
        {0: frozenset({0, 1, 3}), 1: frozenset({0, 1, 2}), 2: frozenset({1, 2, 3})}
    )


# ---------------------------------------------------------------------------
# analyze / GraphReport
# ---------------------------------------------------------------------------


def test_report_counts():
    graph = triangle_graph()
    report = analyze(graph)
    assert report.groups == 3
    assert report.overlap_atoms == 3
    assert report.chains == 1
    assert report.longest_chain == 3
    assert report.max_stamp_entries == 2
    assert report.stamp_bound_holds


def test_report_group_profiles():
    graph = triangle_graph()
    report = analyze(graph)
    profiles = {p.group: p for p in report.group_profiles}
    assert set(profiles) == {0, 1, 2}
    assert sum(p.pass_through_atoms for p in profiles.values()) == 1
    assert all(p.own_atoms == 2 for p in profiles.values())


def test_report_overhead_fraction():
    graph = triangle_graph()
    report = analyze(graph)
    worst = max(report.group_profiles, key=lambda p: p.overhead_fraction)
    assert worst.overhead_fraction == pytest.approx(1 / 3)


def test_report_with_placement():
    graph = triangle_graph()
    placement = Placement(co_locate_and_order(graph))
    report = analyze(graph, placement)
    assert report.sequencing_nodes >= 1
    assert report.mean_stress is not None
    assert all(p.machine_hops is not None for p in report.group_profiles)


def test_report_counts_retired():
    graph = triangle_graph()
    graph.remove_group(2, lazy=True)
    report = analyze(graph)
    assert report.retired_atoms == 2
    assert report.overlap_atoms == 1


def test_report_str():
    text = str(analyze(triangle_graph()))
    assert "groups:" in text
    assert "overlap atoms:" in text


def test_report_empty_graph():
    report = analyze(SequencingGraph())
    assert report.groups == 0
    assert report.longest_chain == 0
    assert report.stamp_bound_holds


# ---------------------------------------------------------------------------
# DOT export
# ---------------------------------------------------------------------------


def test_graph_dot_structure():
    graph = triangle_graph()
    dot = sequencing_graph_to_dot(graph)
    assert dot.startswith("graph sequencing {")
    assert dot.rstrip().endswith("}")
    assert dot.count(" -- ") == 2  # chain of 3 atoms -> 2 edges


def test_graph_dot_highlight():
    graph = triangle_graph()
    group = graph.groups()[0]
    dot = sequencing_graph_to_dot(graph, highlight_group=group)
    assert "lightblue" in dot


def test_graph_dot_retired_dashed():
    graph = triangle_graph()
    graph.remove_group(0, lazy=True)
    assert "style=dashed" in sequencing_graph_to_dot(graph)


def test_graph_dot_ingress_box():
    graph = SequencingGraph.build({0: frozenset({1, 2})})
    assert "shape=box" in sequencing_graph_to_dot(graph)


def test_placement_dot_clusters():
    graph = triangle_graph()
    placement = Placement(co_locate_and_order(graph))
    dot = placement_to_dot(graph, placement)
    assert "subgraph cluster_0" in dot
    assert dot.count(" -- ") == 2


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_demo(capsys):
    assert cli_main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "agree on order: True" in out


def test_cli_analyze(capsys, tmp_path):
    dot_path = tmp_path / "placement.dot"
    graph_dot = tmp_path / "graph.dot"
    code = cli_main(
        [
            "analyze",
            "--hosts", "16",
            "--groups", "4",
            "--dot", str(dot_path),
            "--graph-dot", str(graph_dot),
        ]
    )
    assert code == 0
    assert dot_path.read_text().startswith("graph placement {")
    assert graph_dot.read_text().startswith("graph sequencing {")
    assert "groups:" in capsys.readouterr().out


def test_cli_workload_roundtrip(capsys, tmp_path):
    path = tmp_path / "w.json"
    assert cli_main(
        ["workload", "record", str(path), "--hosts", "16", "--groups", "4",
         "--events", "10"]
    ) == 0
    assert cli_main(["workload", "replay", str(path)]) == 0
    out = capsys.readouterr().out
    assert "pairwise order violations: 0" in out


def test_cli_figures_passthrough(capsys):
    assert cli_main(["figures", "--figures", "7", "--runs", "2", "--hosts", "16"]) == 0
    assert "Figure 7" in capsys.readouterr().out


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        cli_main([])
