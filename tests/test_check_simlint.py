"""Golden tests for the simlint determinism rules.

Every rule gets (at least) a violating snippet and the same snippet with
an inline suppression; the linter must flag the former and stay silent
on the latter.  Snippets are linted under a sim-scoped module name
(``repro.core.inline``) so the "sim"-scoped rules apply.
"""

import textwrap

from repro.check import RULES, lint_source


def lint(source, module="repro.core.inline", select=None):
    return lint_source(textwrap.dedent(source), module=module, select=select)


def codes(findings):
    return [f.code for f in findings]


# -- SL101 wall-clock --------------------------------------------------------


def test_sl101_flags_time_time():
    findings = lint(
        """
        import time

        def stamp():
            return time.time()
        """,
        select=["SL101"],
    )
    assert codes(findings) == ["SL101"]
    assert "wall-clock" in findings[0].message


def test_sl101_resolves_from_import_and_alias():
    findings = lint(
        """
        from time import perf_counter
        import time as _t

        def profile():
            return perf_counter() + _t.monotonic()
        """,
        select=["SL101"],
    )
    assert codes(findings) == ["SL101", "SL101"]


def test_sl101_trailing_suppression():
    findings = lint(
        """
        import time

        def stamp():
            return time.time()  # simlint: disable=SL101 -- host-side log only
        """,
        select=["SL101"],
    )
    assert findings == []


def test_sl101_comment_above_suppression():
    findings = lint(
        """
        from time import perf_counter

        def profile():
            # simlint: disable=SL101 -- wall-time accounting only
            return perf_counter()
        """,
        select=["SL101"],
    )
    assert findings == []


def test_sl101_not_applied_outside_sim_scope():
    findings = lint(
        """
        import time

        def stamp():
            return time.time()
        """,
        module="repro.analysis.report",
        select=["SL101"],
    )
    assert findings == []


# -- SL102 global random -----------------------------------------------------


def test_sl102_flags_global_random_call():
    findings = lint(
        """
        import random

        def pick(items):
            return random.choice(items)
        """,
        select=["SL102"],
    )
    assert codes(findings) == ["SL102"]


def test_sl102_allows_constructing_random_instances():
    findings = lint(
        """
        import random

        def make_rng(seed):
            return random.Random(seed)
        """,
        select=["SL102"],
    )
    assert findings == []


def test_sl102_allows_injected_rng_methods():
    findings = lint(
        """
        def pick(rng, items):
            return rng.choice(items)
        """,
        select=["SL102"],
    )
    assert findings == []


def test_sl102_suppressed():
    findings = lint(
        """
        import random

        def pick(items):
            return random.choice(items)  # simlint: disable=SL102 -- demo code
        """,
        select=["SL102"],
    )
    assert findings == []


# -- SL103 float time equality -----------------------------------------------


def test_sl103_flags_timestamp_equality():
    findings = lint(
        """
        def ready(event, sim):
            return event.time == sim.now
        """,
        select=["SL103"],
    )
    assert codes(findings) == ["SL103"]


def test_sl103_allows_ordering_comparisons():
    findings = lint(
        """
        def ready(event, sim):
            return event.time <= sim.now
        """,
        select=["SL103"],
    )
    assert findings == []


def test_sl103_exempts_none_and_zero():
    findings = lint(
        """
        def unset(deadline, arrival):
            return deadline is not None and arrival != 0 and deadline == None
        """,
        select=["SL103"],
    )
    assert findings == []


def test_sl103_durations_not_flagged():
    findings = lint(
        """
        def same_delay(a, b):
            return a.delay == b.delay
        """,
        select=["SL103"],
    )
    assert findings == []


def test_sl103_suppressed():
    findings = lint(
        """
        def ready(event, sim):
            return event.time == sim.now  # simlint: disable=SL103 -- exact replay check
        """,
        select=["SL103"],
    )
    assert findings == []


# -- SL104 mutable default ---------------------------------------------------


def test_sl104_flags_mutable_defaults():
    findings = lint(
        """
        def enqueue(item, queue=[]):
            queue.append(item)
            return queue
        """,
        select=["SL104"],
    )
    assert codes(findings) == ["SL104"]


def test_sl104_flags_constructor_call_defaults():
    findings = lint(
        """
        def track(seen=set()):
            return seen
        """,
        select=["SL104"],
    )
    assert codes(findings) == ["SL104"]


def test_sl104_none_default_clean_and_suppression():
    assert lint(
        """
        def enqueue(item, queue=None):
            queue = [] if queue is None else queue
            return queue
        """,
        select=["SL104"],
    ) == []
    assert lint(
        """
        def enqueue(item, queue=[]):  # simlint: disable=SL104 -- read-only sentinel
            return queue
        """,
        select=["SL104"],
    ) == []


def test_sl104_applies_outside_sim_scope():
    findings = lint(
        """
        def enqueue(item, queue=[]):
            return queue
        """,
        module="repro.analysis.report",
        select=["SL104"],
    )
    assert codes(findings) == ["SL104"]


# -- SL105 bare except -------------------------------------------------------


def test_sl105_flags_bare_except():
    findings = lint(
        """
        def run(step):
            try:
                step()
            except:
                pass
        """,
        select=["SL105"],
    )
    assert codes(findings) == ["SL105"]


def test_sl105_typed_except_clean_and_suppression():
    assert lint(
        """
        def run(step):
            try:
                step()
            except ValueError:
                pass
        """,
        select=["SL105"],
    ) == []
    assert lint(
        """
        def run(step):
            try:
                step()
            except:  # simlint: disable=SL105 -- last-resort crash shield
                pass
        """,
        select=["SL105"],
    ) == []


# -- SL106 unordered iteration into sinks ------------------------------------


def test_sl106_flags_set_literal_into_schedule():
    findings = lint(
        """
        def fanout(sim, callbacks):
            for cb in {c for c in callbacks}:
                sim.schedule(1.0, cb)
        """,
        select=["SL106"],
    )
    assert codes(findings) == ["SL106"]


def test_sl106_flags_set_algebra_into_send():
    findings = lint(
        """
        def notify(channel, a_members, b_members):
            for host in a_members & b_members:
                channel.send(host)
        """,
        select=["SL106"],
    )
    assert codes(findings) == ["SL106"]


def test_sl106_sorted_launders_order():
    findings = lint(
        """
        def notify(channel, a_members, b_members):
            for host in sorted(a_members & b_members):
                channel.send(host)
        """,
        select=["SL106"],
    )
    assert findings == []


def test_sl106_set_without_sink_clean_and_suppression():
    assert lint(
        """
        def total(values):
            acc = 0
            for v in {x for x in values}:
                acc += v
            return acc
        """,
        select=["SL106"],
    ) == []
    assert lint(
        """
        def fanout(sim, callbacks):
            # simlint: disable=SL106 -- commutative: all at the same instant
            for cb in {c for c in callbacks}:
                sim.schedule(1.0, cb)
        """,
        select=["SL106"],
    ) == []


# -- machinery ---------------------------------------------------------------


def test_sl100_syntax_error():
    findings = lint_source("def broken(:\n    pass\n", rel="bad.py")
    assert codes(findings) == ["SL100"]
    assert findings[0].file == "bad.py"


def test_disable_file_directive():
    findings = lint(
        """
        # simlint: disable-file=SL102
        import random

        def pick(items):
            return random.choice(items) or random.random()
        """,
        select=["SL102"],
    )
    assert findings == []


def test_disable_all_on_line():
    findings = lint(
        """
        import time, random

        def stamp(items):
            return time.time(), random.choice(items)  # simlint: disable=all
        """,
        select=["SL101", "SL102"],
    )
    assert findings == []


def test_select_restricts_rules():
    source = """
    import time

    def stamp(queue=[]):
        return time.time(), queue
    """
    assert codes(lint(source, select=["SL104"])) == ["SL104"]
    assert sorted(codes(lint(source))) == ["SL101", "SL104"]


def test_rule_registry_is_complete():
    assert set(RULES) == {
        "SL101", "SL102", "SL103", "SL104", "SL105", "SL106",
        # asyncio-concurrency family (repro.check.asynclint)
        "SL110", "SL111", "SL112", "SL113", "SL114",
    }
    for code, rule in RULES.items():
        assert rule.code == code
        assert rule.scope in ("sim", "async", "all")
        assert rule.summary


def test_findings_carry_location_metadata():
    findings = lint_source(
        "import time\n\n\ndef f():\n    return time.time()\n",
        rel="src/repro/core/fake.py",
        module="repro.core.fake",
    )
    (finding,) = findings
    assert finding.file == "src/repro/core/fake.py"
    assert finding.line == 5
    assert finding.tool == "simlint"
    assert finding.location() == "src/repro/core/fake.py:5"
