"""Tests for state-continuous epoch reconfiguration.

Covers the paper's Section 5 future-work direction as implemented in
:mod:`repro.core.reconfigure`: surviving sequence spaces continue across
membership changes, new subscribers join mid-stream, retired atoms pass
messages through without stamping, and unsafe reconfigurations are
rejected.
"""

import itertools
import random

import pytest

from repro.core.messages import AtomId
from repro.core.reconfigure import ReconfigurationError, reconfigure
from repro.pubsub.membership import GroupMembership


def base_membership():
    membership = GroupMembership()
    membership.create_group([0, 1, 2, 3], group_id=0)
    membership.create_group([2, 3, 4, 5], group_id=1)
    return membership


def copy_membership(membership):
    clone = GroupMembership()
    for group, members in membership.snapshot().items():
        clone.create_group(members, group_id=group)
    return clone


def test_group_sequence_space_continues(env32):
    fabric = env32.build_fabric(base_membership())
    fabric.publish(0, 0)
    fabric.publish(1, 0)
    fabric.run()
    new_membership = copy_membership(fabric.membership)
    new_membership.create_group([10, 11], group_id=7)
    nxt = reconfigure(fabric, new_membership)
    nxt.publish(0, 0)
    nxt.run()
    assert [r.stamp.group_seq for r in nxt.delivered(3) if r.stamp.group == 0] == [3]


def test_atom_counter_continues(env32):
    fabric = env32.build_fabric(base_membership())
    fabric.publish(2, 0)
    fabric.publish(2, 1)
    fabric.run()
    atom = AtomId.overlap(0, 1)
    old_counter = next(
        r.seq_counter
        for p in fabric.node_processes.values()
        for a, r in p.atom_runtimes.items()
        if a == atom
    )
    assert old_counter == 2
    new_membership = copy_membership(fabric.membership)
    new_membership.create_group([6, 7], group_id=9)
    nxt = reconfigure(fabric, new_membership)
    nxt.publish(2, 0)
    nxt.run()
    record = next(r for r in nxt.delivered(3) if r.stamp.group == 0)
    assert record.stamp.seq_of(atom) == 3


def test_msg_ids_continue(env32):
    fabric = env32.build_fabric(base_membership())
    first = fabric.publish(0, 0)
    fabric.run()
    nxt = reconfigure(fabric, copy_membership(fabric.membership))
    second = nxt.publish(0, 0)
    assert second == first + 1


def test_new_subscriber_joins_midstream(env32):
    fabric = env32.build_fabric(base_membership())
    fabric.publish(0, 0, "before")
    fabric.run()
    new_membership = copy_membership(fabric.membership)
    new_membership.join(0, 9)  # host 9 joins group 0
    nxt = reconfigure(fabric, new_membership)
    nxt.publish(0, 0, "after")
    nxt.run()
    assert nxt.pending_messages() == {}
    # The newcomer sees only the new epoch's message...
    assert [r.payload for r in nxt.delivered(9)] == ["after"]
    # ...and existing members see it as a continuation.
    assert [r.payload for r in nxt.delivered(3) if r.stamp.group == 0] == ["after"]


def test_join_creating_new_overlap(env32):
    # Host 4 and 5 join group 0 too, creating a bigger overlap with group 1.
    fabric = env32.build_fabric(base_membership())
    fabric.publish(0, 0)
    fabric.run()
    new_membership = copy_membership(fabric.membership)
    new_membership.join(0, 4)
    new_membership.join(0, 5)
    nxt = reconfigure(fabric, new_membership)
    nxt.publish(4, 0)
    nxt.publish(4, 1)
    nxt.run()
    assert nxt.pending_messages() == {}


def test_remove_group_lazy_retires_but_still_forwards(env32):
    membership = GroupMembership()
    membership.create_group([0, 1, 2, 3], group_id=0)
    membership.create_group([2, 3, 4, 5], group_id=1)
    membership.create_group([0, 1, 4, 5], group_id=2)
    fabric = env32.build_fabric(membership)
    for g in (0, 1, 2):
        fabric.publish(sorted(membership.members(g))[0], g)
    fabric.run()
    new_membership = copy_membership(membership)
    new_membership.remove_group(2)
    nxt = reconfigure(fabric, new_membership, lazy=True)
    retired = [a for a in nxt.graph.retired]
    # Remaining groups still deliver fine through any retired placeholders.
    nxt.publish(0, 0, "x")
    nxt.publish(2, 1, "y")
    nxt.run()
    assert nxt.pending_messages() == {}
    for record in nxt.delivered(3):
        stamped = [a for a, _ in record.stamp.atom_seqs]
        assert all(a not in retired for a in stamped)


def test_reconfigure_strict_mode_rejects_inflight(env32):
    fabric = env32.build_fabric(base_membership())
    fabric.publish(0, 0)
    with pytest.raises(ReconfigurationError):
        reconfigure(fabric, copy_membership(fabric.membership), online=False)


def test_online_reconfigure_fences_inflight_traffic(env32):
    fabric = env32.build_fabric(base_membership())
    first = fabric.publish(0, 0, "in-flight")
    # No run(): the message is still on the wire when the switch starts.
    new_membership = copy_membership(fabric.membership)
    new_membership.create_group([10, 11], group_id=7)
    nxt = reconfigure(fabric, new_membership)
    # The fence drained the old epoch: the in-flight message reached every
    # member before the cutover, and nothing is buffered.
    assert [r.payload for r in fabric.delivered(3) if r.stamp.group == 0] == [
        "in-flight"
    ]
    assert fabric.pending_messages() == {}
    assert fabric.fences_outstanding() == {}
    stats = fabric.epoch_switch_stats
    assert stats is not None and stats["online"] and stats["fences"] == 2
    assert nxt.epoch == fabric.epoch + 1
    # The fence consumed one group-local number after the in-flight
    # message, so the next epoch's traffic continues past both.
    nxt.publish(1, 0, "next-epoch")
    nxt.run()
    records = [r for r in nxt.delivered(3) if r.stamp.group == 0]
    assert [r.payload for r in records] == ["next-epoch"]
    assert records[0].stamp.group_seq == 3
    assert records[0].msg_id == first + 3  # two fences took ids in between


def test_online_reconfigure_fences_are_not_app_deliveries(env32):
    fabric = env32.build_fabric(base_membership())
    fabric.publish(0, 0)
    before = {h: len(fabric.delivered(h)) for h in range(6)}
    reconfigure(fabric, copy_membership(fabric.membership))
    # The drain delivered the in-flight message but consumed the fences:
    # fences never land in delivered logs or fabric.published.
    for host, count in before.items():
        extra = [r.payload for r in fabric.delivered(host)[count:]]
        assert all(not repr(p).startswith("EpochFence") for p in extra)
    assert all(m not in fabric.published for m in fabric.fences)
    assert set(fabric.fence_expected) == {0, 1}


def full_scan_group_counters(fabric):
    """The pre-optimization implementation: scan every atom runtime."""
    counters = {}
    for process in fabric.node_processes.values():
        for runtime in process.atom_runtimes.values():
            for group, value in runtime.group_local_counters.items():
                counters[group] = max(counters.get(group, 0), value)
    return counters


def test_group_local_counters_ingress_only_matches_full_scan(env32):
    from repro.core.reconfigure import group_local_counters

    membership = GroupMembership()
    membership.create_group([0, 1, 2, 3], group_id=0)
    membership.create_group([2, 3, 4, 5], group_id=1)
    membership.create_group([0, 1, 4, 5], group_id=2)
    membership.create_group([8, 9], group_id=3)  # never published to
    fabric = env32.build_fabric(membership)
    rng = random.Random(7)
    for _ in range(20):
        group = rng.choice([0, 1, 2])
        sender = rng.choice(sorted(membership.members(group)))
        fabric.publish(sender, group)
    fabric.run()
    assert group_local_counters(fabric) == full_scan_group_counters(fabric)
    # ...and across an epoch switch, where carried counters are installed
    # at (possibly relocated) ingress atoms.
    new_membership = copy_membership(membership)
    new_membership.remove_group(3)
    new_membership.join(2, 7)
    nxt = reconfigure(fabric, new_membership)
    nxt.publish(0, 0)
    nxt.publish(7, 2)
    nxt.run()
    assert group_local_counters(nxt) == full_scan_group_counters(nxt)


def test_changed_group_restarts_its_space(env32):
    fabric = env32.build_fabric(base_membership())
    fabric.publish(0, 0)
    fabric.publish(0, 0)
    fabric.run()
    new_membership = copy_membership(fabric.membership)
    new_membership.replace_group(0, [0, 1, 2, 3, 8])
    nxt = reconfigure(fabric, new_membership)
    nxt.publish(0, 0)
    nxt.run()
    record = next(r for r in nxt.delivered(8))
    assert record.stamp.group_seq == 1  # fresh space for the changed group


def test_compact_reconfigure_drops_placeholders(env32):
    membership = GroupMembership()
    membership.create_group([0, 1, 2, 3], group_id=0)
    membership.create_group([2, 3, 4, 5], group_id=1)
    fabric = env32.build_fabric(membership)
    fabric.run()
    new_membership = copy_membership(membership)
    new_membership.remove_group(1)
    nxt = reconfigure(fabric, new_membership, lazy=True, compact=True)
    assert not nxt.graph.retired
    assert AtomId.overlap(0, 1) not in nxt.graph.atoms


def test_multi_epoch_consistency(env32):
    """Three epochs of churn: common messages stay consistently ordered
    within each epoch, counters never collide."""
    rng = random.Random(0)
    membership = base_membership()
    fabric = env32.build_fabric(membership)
    all_delivered = {h.host_id: [] for h in env32.hosts}

    def pump(fabric, n):
        groups = fabric.membership.groups()
        for _ in range(n):
            g = rng.choice(groups)
            s = rng.choice(sorted(fabric.membership.members(g)))
            fabric.publish(s, g)
        fabric.run()
        assert fabric.pending_messages() == {}
        for host_id in all_delivered:
            all_delivered[host_id].extend(
                r.msg_id for r in fabric.delivered(host_id)
            )

    pump(fabric, 10)
    m2 = copy_membership(fabric.membership)
    m2.create_group([1, 2, 6, 7], group_id=5)
    fabric = reconfigure(fabric, m2)
    pump(fabric, 10)
    m3 = copy_membership(fabric.membership)
    m3.remove_group(1)
    m3.join(0, 10)
    fabric = reconfigure(fabric, m3)
    pump(fabric, 10)

    for a, b in itertools.combinations(sorted(all_delivered), 2):
        seq_a, seq_b = all_delivered[a], all_delivered[b]
        common = set(seq_a) & set(seq_b)
        assert [m for m in seq_a if m in common] == [m for m in seq_b if m in common]
        assert len(set(seq_a)) == len(seq_a)


def test_facade_uses_continuity(env32):
    from repro import OrderedPubSub

    bus = OrderedPubSub(n_hosts=12, seed=4)
    group = bus.create_group([0, 1, 2])
    bus.publish(0, group, "a")
    bus.run()
    bus.create_group([5, 6])  # dirty -> epoch switch on next publish
    bus.publish(0, group, "b")
    bus.run()
    records = [r for r in bus.delivered(1)]
    assert [r.payload for r in records] == ["a", "b"]
    # Continuity: the second message continues the group sequence space.
    assert [r.stamp.group_seq for r in records] == [1, 2]
