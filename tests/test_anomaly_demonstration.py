"""The ordering anomaly the paper exists to prevent — demonstrated.

Per-group causal multicast (the symmetric, vector-timestamp baseline)
delivers *concurrent* messages in arrival order.  When two receivers
subscribe to the same two groups but sit at different network distances
from the two publishers, they receive the messages in opposite orders —
the inconsistent observation the paper's Section 1 game example warns
about.  Routing the same workload through the sequencing network removes
the disagreement.

The host/sender choice below was found by exhaustive search over the
shared test topology and is deterministic (fixed seeds everywhere).
"""

import itertools

from repro.baselines.vector_clock import VectorClockFabric
from repro.pubsub.membership import GroupMembership

# (receiver1, receiver2, senderA, senderB) on the env32 topology: r1 is
# nearer senderB's side, r2 nearer senderA's, so concurrent A/B arrive in
# opposite orders.
R1, R2, SA, SB = 0, 1, 2, 7


def anomaly_membership():
    membership = GroupMembership()
    membership.create_group([R1, R2, SA], group_id=0)
    membership.create_group([R1, R2, SB], group_id=1)
    return membership


def orders(fabric):
    a = [r.payload for r in fabric.delivered(R1)]
    b = [r.payload for r in fabric.delivered(R2)]
    return a, b


def test_vector_clocks_disagree_on_concurrent_cross_group(env32):
    fabric = VectorClockFabric(anomaly_membership(), env32.hosts, env32.routing)
    fabric.publish(SA, 0, "A")
    fabric.publish(SB, 1, "B")
    fabric.run()
    order1, order2 = orders(fabric)
    assert sorted(order1) == sorted(order2) == ["A", "B"]
    # The anomaly: same messages, opposite orders.
    assert order1 != order2


def test_sequencing_network_removes_the_disagreement(env32):
    fabric = env32.build_fabric(anomaly_membership(), trace=False)
    fabric.publish(SA, 0, "A")
    fabric.publish(SB, 1, "B")
    fabric.run()
    order1, order2 = orders(fabric)
    assert sorted(order1) == ["A", "B"]
    assert order1 == order2


def test_anomaly_is_not_a_fluke_of_one_schedule(env32):
    """Whatever publish order the app uses, the sequenced fabric agrees
    and the overlap atom is why: both messages carry its numbers."""
    for first, second in itertools.permutations([(SA, 0, "A"), (SB, 1, "B")]):
        fabric = env32.build_fabric(anomaly_membership(), trace=False)
        fabric.publish(*first)
        fabric.publish(*second)
        fabric.run()
        order1, order2 = orders(fabric)
        assert order1 == order2
        for record in fabric.delivered(R1):
            assert len(record.stamp.atom_seqs) == 1  # stamped by Q(0,1)
