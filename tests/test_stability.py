"""Tests for uniform-delivery (stability) tracking."""

import random

from repro.pubsub.membership import GroupMembership


def membership_two_groups():
    membership = GroupMembership()
    membership.create_group([0, 1, 2, 3], group_id=0)
    membership.create_group([2, 3, 4, 5], group_id=1)
    return membership


def test_stability_off_by_default(env32):
    fabric = env32.build_fabric(membership_two_groups())
    msg = fabric.publish(0, 0)
    fabric.run()
    assert fabric.stable_messages(1) == set()


def test_message_becomes_stable_everywhere(env32):
    fabric = env32.build_fabric(membership_two_groups(), track_stability=True)
    msg = fabric.publish(0, 0)
    fabric.run()
    for member in (0, 1, 2, 3):
        assert msg in fabric.stable_messages(member)
    for non_member in (4, 5):
        assert msg not in fabric.stable_messages(non_member)


def test_stability_only_after_all_deliver(env32):
    """Before quiescence, a message may be delivered locally but not yet
    stable; after quiescence it must be."""
    fabric = env32.build_fabric(membership_two_groups(), track_stability=True)
    msg = fabric.publish(0, 0)
    # Run only until the first delivery happens somewhere.
    while not any(fabric.delivered(h) for h in (0, 1, 2, 3)):
        fabric.sim.step()
    delivered_hosts = [h for h in (0, 1, 2, 3) if fabric.delivered(h)]
    # Freshly delivered but the full ack round-trip cannot be done.
    assert all(msg not in fabric.stable_messages(h) for h in delivered_hosts)
    fabric.run()
    assert all(msg in fabric.stable_messages(h) for h in (0, 1, 2, 3))


def test_stability_many_messages(env32):
    fabric = env32.build_fabric(membership_two_groups(), track_stability=True)
    rng = random.Random(0)
    ids = []
    for _ in range(12):
        group = rng.choice([0, 1])
        sender = rng.choice(sorted(fabric.membership.members(group)))
        ids.append((fabric.publish(sender, group), group))
    fabric.run()
    for msg, group in ids:
        for member in fabric.membership.members(group):
            assert msg in fabric.stable_messages(member)


def test_stability_under_loss(env32):
    fabric = env32.build_fabric(
        membership_two_groups(), track_stability=True, loss_rate=0.25, seed=2
    )
    msg = fabric.publish(1, 0)
    fabric.run()
    for member in (0, 1, 2, 3):
        assert msg in fabric.stable_messages(member)


def test_stability_with_host_crash(env32):
    fabric = env32.build_fabric(
        membership_two_groups(), track_stability=True, retransmit_timeout=5.0
    )
    fabric.sim.schedule(0.1, fabric.host_processes[3].crash, 20.0)
    msg = fabric.publish(0, 0)
    fabric.run()
    # Stability is only declared after the crashed member recovered and
    # delivered; then everyone learns it.
    for member in (0, 1, 2, 3):
        assert msg in fabric.stable_messages(member)


def test_duplicate_acks_harmless(env32):
    """Retransmitted acks after stability was declared are ignored."""
    fabric = env32.build_fabric(
        membership_two_groups(), track_stability=True, loss_rate=0.3, seed=7
    )
    ids = [fabric.publish(0, 0) for _ in range(5)]
    fabric.run()
    for msg in ids:
        assert msg in fabric.stable_messages(2)
    # All tracking state drained.
    for node in fabric.node_processes.values():
        assert not node._stability_waiting
        assert not node._stability_members
