"""Adversarial fixtures for the independent graph verifier.

Each corrupted certificate must produce *exactly one* finding with the
right code — a verifier that floods secondary findings for one root
cause is as useless in CI as one that misses the violation.
"""

import json
import random

from repro.check import CERTIFICATE_FORMAT, load_certificate, verify_certificate
from repro.check.graph_verify import verify_graph
from repro.core.sequencing_graph import SequencingGraph


def base_certificate():
    """A minimal well-formed certificate: three groups on one chain.

    Groups 0/1 share members {2, 3}; groups 1/2 share {4, 5}; the two
    overlap atoms Q(0,1) and Q(1,2) form a single two-atom chain, so
    every group's atoms trivially lie on one path.
    """
    return {
        "format": CERTIFICATE_FORMAT,
        "version": 1,
        "threshold": 2,
        "groups": {"0": [0, 1, 2, 3], "1": [2, 3, 4, 5], "2": [4, 5, 6, 7]},
        "atoms": [
            {"kind": "overlap", "groups": [0, 1], "overlap_members": [2, 3],
             "retired": False},
            {"kind": "overlap", "groups": [1, 2], "overlap_members": [4, 5],
             "retired": False},
        ],
        "chains": [[["overlap", [0, 1]], ["overlap", [1, 2]]]],
        "ingress_only": {},
    }


def test_base_certificate_is_clean():
    assert verify_certificate(base_certificate()) == []


def test_c2_cycle_yields_exactly_one_gv202():
    cert = base_certificate()
    # The chain revisits Q(0,1): serialized form of a loop A-B-A.
    cert["chains"] = [
        [["overlap", [0, 1]], ["overlap", [1, 2]], ["overlap", [0, 1]]]
    ]
    findings = verify_certificate(cert)
    assert [f.code for f in findings] == ["GV202"]
    assert findings[0].anchor == "Q(0,1)"
    assert "C2" in findings[0].message


def test_c1_split_path_yields_exactly_one_gv201():
    cert = {
        "format": CERTIFICATE_FORMAT,
        "version": 1,
        "threshold": 2,
        # Group 0 overlaps group 1 (members 0, 1) and group 2 (members
        # 2, 3), but its two atoms sit on two disconnected chains.
        "groups": {"0": [0, 1, 2, 3], "1": [0, 1, 8], "2": [2, 3, 9]},
        "atoms": [
            {"kind": "overlap", "groups": [0, 1], "overlap_members": [0, 1],
             "retired": False},
            {"kind": "overlap", "groups": [0, 2], "overlap_members": [2, 3],
             "retired": False},
        ],
        "chains": [[["overlap", [0, 1]]], [["overlap", [0, 2]]]],
        "ingress_only": {},
    }
    findings = verify_certificate(cert)
    assert [f.code for f in findings] == ["GV201"]
    assert findings[0].anchor == "group 0"
    assert "disconnected" in findings[0].message


def test_c1_group_split_across_chains_yields_gv201():
    # Group 3 gains atoms on both chains while every other group stays
    # on a single path; only group 3 may be reported.
    cert = base_certificate()
    cert["groups"]["3"] = [2, 3, 6, 7]
    cert["groups"]["4"] = [6, 7, 12]
    cert["atoms"].append(
        {"kind": "overlap", "groups": [0, 3], "overlap_members": [2, 3],
         "retired": False}
    )
    cert["atoms"].append(
        {"kind": "overlap", "groups": [3, 4], "overlap_members": [6, 7],
         "retired": False}
    )
    cert["chains"] = [
        [["overlap", [0, 1]], ["overlap", [1, 2]], ["overlap", [0, 3]]],
        [["overlap", [3, 4]]],
    ]
    findings = verify_certificate(cert)
    assert [f.code for f in findings] == ["GV201"]
    assert findings[0].anchor == "group 3"


def test_duplicated_ingress_yields_exactly_one_gv203():
    cert = base_certificate()
    # Group 1 already has active overlap atoms; an ingress-only atom on
    # top of them is a second, independent group-local sequence space.
    cert["atoms"].append(
        {"kind": "ingress", "groups": [1], "overlap_members": [],
         "retired": False}
    )
    cert["ingress_only"] = {"1": ["ingress", [1]]}
    findings = verify_certificate(cert)
    assert [f.code for f in findings] == ["GV203"]
    assert findings[0].anchor == "group 1"
    assert "duplicated ingress" in findings[0].message


def test_group_without_ingress_yields_gv203():
    cert = base_certificate()
    cert["groups"]["9"] = [20, 21]  # no atoms, no ingress entry
    findings = verify_certificate(cert)
    assert [f.code for f in findings] == ["GV203"]
    assert findings[0].anchor == "group 9"
    assert "no ingress" in findings[0].message


def test_below_threshold_overlap_yields_gv204():
    cert = base_certificate()
    cert["groups"]["1"] = [3, 4, 5]  # groups 0 and 1 now share only {3}
    findings = verify_certificate(cert)
    assert [f.code for f in findings] == ["GV204"]
    assert findings[0].anchor == "Q(0,1)"


def test_atom_on_unknown_group_yields_gv204():
    cert = base_certificate()
    del cert["groups"]["2"]
    findings = verify_certificate(cert)
    codes = [f.code for f in findings]
    assert "GV204" in codes
    gv204 = [f for f in findings if f.code == "GV204"]
    assert gv204[0].anchor == "Q(1,2)"


def test_undeclared_chain_atom_yields_gv200():
    cert = base_certificate()
    cert["atoms"] = cert["atoms"][:1]  # chain still references Q(1,2)
    findings = verify_certificate(cert)
    assert "GV200" in [f.code for f in findings]


def test_malformed_certificate_yields_gv200():
    findings = verify_certificate(
        {"format": CERTIFICATE_FORMAT, "chains": [[["overlap", "oops"]]]}
    )
    assert [f.code for f in findings] == ["GV200"]


def test_placement_double_colocation_yields_gv205():
    cert = base_certificate()
    cert["placement"] = {
        "nodes": [
            {"node_id": 0, "machine": 3, "ingress_only": False,
             "atom_ids": [["overlap", [0, 1]], ["overlap", [1, 2]]]},
            {"node_id": 1, "machine": 4, "ingress_only": False,
             "atom_ids": [["overlap", [1, 2]]]},
        ]
    }
    findings = verify_certificate(cert)
    assert [f.code for f in findings] == ["GV205"]
    assert findings[0].anchor == "Q(1,2)"


def test_placement_missing_machine_and_chain_atom():
    cert = base_certificate()
    cert["placement"] = {
        "nodes": [
            {"node_id": 0, "machine": None, "ingress_only": False,
             "atom_ids": [["overlap", [0, 1]]]},
        ]
    }
    findings = verify_certificate(cert)
    codes = sorted(f.code for f in findings)
    assert codes == ["GV205", "GV205"]  # no machine + Q(1,2) unplaced


# -- live graphs -------------------------------------------------------------


def membership(spec):
    return {g: frozenset(m) for g, m in spec.items()}


def test_live_graph_verifies_clean():
    graph = SequencingGraph.build(
        membership({0: {0, 1, 2, 3}, 1: {2, 3, 4, 5}, 2: {4, 5, 6, 7},
                    3: {10, 11}}),
        rng=random.Random(0),
    )
    assert verify_graph(graph) == []


def test_live_graph_after_churn_verifies_clean():
    graph = SequencingGraph.build(
        membership({0: {0, 1, 2, 3}, 1: {2, 3, 4, 5}, 2: {4, 5, 6, 7}}),
        rng=random.Random(0),
    )
    graph.remove_group(1, lazy=True)
    graph.add_group(3, [0, 1, 6, 7])
    assert verify_graph(graph) == []


def test_certificate_round_trip(tmp_path):
    graph = SequencingGraph.build(
        membership({0: {0, 1, 2, 3}, 1: {2, 3, 4, 5}}),
        rng=random.Random(0),
    )
    path = tmp_path / "graph-cert.json"
    path.write_text(json.dumps(graph.export_certificate()))
    cert = load_certificate(path)
    assert cert["format"] == CERTIFICATE_FORMAT
    assert verify_certificate(cert) == []


def test_load_certificate_rejects_wrong_format(tmp_path):
    path = tmp_path / "not-a-cert.json"
    path.write_text(json.dumps({"format": "something-else"}))
    try:
        load_certificate(path)
    except ValueError as exc:
        assert CERTIFICATE_FORMAT in str(exc)
    else:
        raise AssertionError("expected ValueError for wrong format")
