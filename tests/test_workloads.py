"""Tests for workload generators (Zipf, occupancy, scenarios)."""

import random

import pytest

from repro.workloads.occupancy import occupancy_membership
from repro.workloads.scenarios import (
    GameWorld,
    MessagingScenario,
    StockTickerScenario,
)
from repro.workloads.zipf import harmonic_number, zipf_group_sizes, zipf_membership

# ---------------------------------------------------------------------------
# Zipf
# ---------------------------------------------------------------------------


def test_harmonic_number_values():
    assert harmonic_number(1) == 1.0
    assert harmonic_number(2) == pytest.approx(1.5)
    assert harmonic_number(4) == pytest.approx(1 + 0.5 + 1 / 3 + 0.25)


def test_harmonic_number_rejects_zero():
    with pytest.raises(ValueError):
        harmonic_number(0)


def test_zipf_sizes_monotone_decreasing():
    sizes = zipf_group_sizes(128, 16)
    assert sizes == sorted(sizes, reverse=True)


def test_zipf_rank1_is_three_quarters():
    sizes = zipf_group_sizes(128, 4)
    assert sizes[0] == 96  # 0.75 * 128


def test_zipf_sizes_follow_inverse_rank():
    sizes = zipf_group_sizes(128, 8)
    assert sizes[1] == pytest.approx(sizes[0] / 2, abs=1)
    assert sizes[3] == pytest.approx(sizes[0] / 4, abs=1)


def test_zipf_min_size_clamp():
    sizes = zipf_group_sizes(128, 64, min_size=2)
    assert min(sizes) >= 2


def test_zipf_sizes_capped_at_population():
    sizes = zipf_group_sizes(16, 4, largest=100)
    assert max(sizes) <= 16


def test_zipf_custom_largest():
    sizes = zipf_group_sizes(128, 4, largest=64)
    assert sizes[0] == 64


def test_zipf_exponent_two_steeper():
    flat = zipf_group_sizes(128, 8, exponent=1.0)
    steep = zipf_group_sizes(128, 8, exponent=2.0)
    assert steep[4] < flat[4]


def test_zipf_zero_groups_rejected():
    with pytest.raises(ValueError):
        zipf_group_sizes(128, 0)


def test_zipf_membership_sizes_match():
    snapshot = zipf_membership(64, 8, rng=random.Random(0))
    sizes = zipf_group_sizes(64, 8)
    assert [len(snapshot[g]) for g in range(8)] == sizes


def test_zipf_membership_members_in_range():
    snapshot = zipf_membership(32, 8, rng=random.Random(1))
    for members in snapshot.values():
        assert all(0 <= m < 32 for m in members)


def test_zipf_membership_deterministic():
    a = zipf_membership(64, 8, rng=random.Random(5))
    b = zipf_membership(64, 8, rng=random.Random(5))
    assert a == b


# ---------------------------------------------------------------------------
# Occupancy
# ---------------------------------------------------------------------------


def test_occupancy_zero_is_empty():
    assert occupancy_membership(32, 8, 0.0, rng=random.Random(0)) == {}


def test_occupancy_one_is_full():
    snapshot = occupancy_membership(32, 8, 1.0, rng=random.Random(0))
    assert len(snapshot) == 8
    assert all(members == frozenset(range(32)) for members in snapshot.values())


def test_occupancy_density_roughly_matches():
    snapshot = occupancy_membership(100, 50, 0.3, rng=random.Random(2))
    total = sum(len(m) for m in snapshot.values())
    assert 0.25 < total / (100 * 50) < 0.35


def test_occupancy_out_of_range_rejected():
    with pytest.raises(ValueError):
        occupancy_membership(10, 5, 1.5)


def test_occupancy_group_ids_dense():
    snapshot = occupancy_membership(50, 20, 0.1, rng=random.Random(3))
    assert sorted(snapshot) == list(range(len(snapshot)))


# ---------------------------------------------------------------------------
# Scenarios
# ---------------------------------------------------------------------------


def test_game_world_membership_regions():
    world = GameWorld(width=3, height=3, n_players=18, rng=random.Random(0))
    membership = world.membership()
    assert membership  # some regions active
    for region, players in membership.items():
        assert 0 <= region < 9
        assert len(players) >= 2


def test_game_world_interest_radius():
    world = GameWorld(width=5, height=5, n_players=10, interest_radius=1,
                      rng=random.Random(1))
    for player in range(10):
        px, py = world.player_cell[player]
        own = world.region_id(px, py)
        regions = world.regions_of(player)
        assert own in regions
        assert len(regions) <= 9


def test_game_world_overlapping_players_share_groups():
    world = GameWorld(width=2, height=2, n_players=8, rng=random.Random(2))
    membership = world.membership()
    # With 8 players on 4 cells and radius 1, overlaps are inevitable.
    shared = [g for g, players in membership.items() if len(players) >= 3]
    assert shared


def test_game_world_schedule_senders_in_group():
    world = GameWorld(n_players=16, rng=random.Random(3))
    membership = world.membership()
    for event in world.publish_schedule(30):
        assert event.sender in membership[event.group]


def test_stock_ticker_membership_and_filters():
    scenario = StockTickerScenario(n_consumers=16, rng=random.Random(0))
    membership = scenario.membership()
    for group, consumers in membership.items():
        assert len(consumers) >= 2
        key, value = scenario.filters[group]
        assert key in ("sector", "region", "cap")


def test_stock_ticker_trades_match_filters():
    scenario = StockTickerScenario(n_consumers=16, rng=random.Random(1))
    for trade in scenario.trade_schedule(20):
        stock = trade.payload["stock"]
        key, value = scenario.filters[trade.group]
        assert scenario.stock_attrs[stock][key] == value


def test_stock_ticker_senders_are_members():
    scenario = StockTickerScenario(n_consumers=16, rng=random.Random(2))
    membership = scenario.membership()
    for trade in scenario.trade_schedule(20):
        assert trade.sender in membership[trade.group]


def test_messaging_membership_rooms_and_presence():
    scenario = MessagingScenario(n_users=12, n_rooms=4, rng=random.Random(0))
    membership = scenario.membership()
    rooms = [g for g in membership if g < 4]
    feeds = [g for g in membership if g >= 4]
    assert rooms and feeds


def test_messaging_presence_includes_owner():
    scenario = MessagingScenario(n_users=12, rng=random.Random(1))
    membership = scenario.membership()
    for user in range(12):
        feed = scenario.presence_group_id(user)
        if feed in membership:
            assert user in membership[feed]


def test_messaging_schedule_senders_are_members():
    scenario = MessagingScenario(n_users=12, rng=random.Random(2))
    membership = scenario.membership()
    for event in scenario.chat_schedule(40):
        assert event.sender in membership[event.group]
