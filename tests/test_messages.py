"""Unit tests for atom ids, stamps, and messages."""

import pytest

from repro.core.messages import (
    ATOM_ENTRY_BYTES,
    HEADER_BYTES,
    AtomId,
    Message,
    Stamp,
    vector_timestamp_bytes,
)

# ---------------------------------------------------------------------------
# AtomId
# ---------------------------------------------------------------------------


def test_overlap_atom_sorts_groups():
    assert AtomId.overlap(5, 2) == AtomId.overlap(2, 5)
    assert AtomId.overlap(5, 2).groups == (2, 5)


def test_overlap_atom_same_group_rejected():
    with pytest.raises(ValueError):
        AtomId.overlap(3, 3)


def test_ingress_atom():
    atom = AtomId.ingress(4)
    assert atom.is_ingress_only
    assert atom.groups == (4,)


def test_overlap_atom_not_ingress_only():
    assert not AtomId.overlap(1, 2).is_ingress_only


def test_sequences_group():
    atom = AtomId.overlap(1, 2)
    assert atom.sequences_group(1)
    assert atom.sequences_group(2)
    assert not atom.sequences_group(3)
    assert AtomId.ingress(7).sequences_group(7)


def test_atom_ids_hashable_and_ordered():
    atoms = {AtomId.overlap(1, 2), AtomId.overlap(2, 1), AtomId.ingress(1)}
    assert len(atoms) == 2
    assert sorted([AtomId.overlap(3, 4), AtomId.overlap(1, 2)])[0] == AtomId.overlap(1, 2)


def test_atom_repr():
    assert repr(AtomId.overlap(1, 2)) == "Q(1,2)"
    assert repr(AtomId.ingress(3)) == "I(3)"


# ---------------------------------------------------------------------------
# Stamp
# ---------------------------------------------------------------------------


def test_stamp_seq_of():
    q = AtomId.overlap(0, 1)
    stamp = Stamp(group=0, group_seq=3, atom_seqs=((q, 7),))
    assert stamp.seq_of(q) == 7
    assert stamp.seq_of(AtomId.overlap(0, 2)) is None


def test_stamp_size_grows_with_entries():
    q1, q2 = AtomId.overlap(0, 1), AtomId.overlap(0, 2)
    s0 = Stamp(group=0, group_seq=1)
    s2 = Stamp(group=0, group_seq=1, atom_seqs=((q1, 1), (q2, 2)))
    assert s0.size_bytes() == HEADER_BYTES
    assert s2.size_bytes() == HEADER_BYTES + 2 * ATOM_ENTRY_BYTES


def test_stamp_immutable():
    stamp = Stamp(group=0, group_seq=1)
    with pytest.raises(Exception):
        stamp.group_seq = 2


# ---------------------------------------------------------------------------
# Message
# ---------------------------------------------------------------------------


def test_message_accumulates_stamp():
    msg = Message(msg_id=1, group=0, sender=2, payload="x", publish_time=1.5)
    msg.assign_group_seq(4)
    q = AtomId.overlap(0, 1)
    msg.add_atom_seq(q, 9)
    stamp = msg.stamp()
    assert stamp.group == 0
    assert stamp.group_seq == 4
    assert stamp.atom_seqs == ((q, 9),)


def test_message_group_seq_assigned_once():
    msg = Message(1, 0, 2)
    msg.assign_group_seq(1)
    with pytest.raises(ValueError):
        msg.assign_group_seq(2)


def test_message_atom_stamps_once_per_atom():
    msg = Message(1, 0, 2)
    q = AtomId.overlap(0, 1)
    msg.add_atom_seq(q, 1)
    with pytest.raises(ValueError):
        msg.add_atom_seq(q, 2)


def test_message_stamp_requires_ingress():
    msg = Message(1, 0, 2)
    with pytest.raises(ValueError):
        msg.stamp()


def test_message_atom_seqs_in_path_order():
    msg = Message(1, 0, 2)
    msg.assign_group_seq(1)
    q1, q2 = AtomId.overlap(0, 1), AtomId.overlap(0, 2)
    msg.add_atom_seq(q1, 5)
    msg.add_atom_seq(q2, 3)
    assert msg.atom_seqs == ((q1, 5), (q2, 3))


def test_message_repr():
    msg = Message(1, 0, 2)
    assert "id=1" in repr(msg)


# ---------------------------------------------------------------------------
# Vector timestamp size (overhead comparison)
# ---------------------------------------------------------------------------


def test_vector_timestamp_bytes_scales_with_nodes():
    assert vector_timestamp_bytes(128) > vector_timestamp_bytes(32)


def test_stamp_smaller_than_vector_when_nodes_exceed_groups():
    # The paper's Section 4.4 claim: with fewer stamp entries than nodes,
    # the sequencing approach wins.
    n_nodes, n_entries = 128, 63
    q_entries = tuple((AtomId.overlap(0, g), 1) for g in range(1, n_entries + 1))
    stamp = Stamp(group=0, group_seq=1, atom_seqs=q_entries)
    assert stamp.size_bytes() < vector_timestamp_bytes(n_nodes) + HEADER_BYTES
