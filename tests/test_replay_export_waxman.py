"""Tests for workload replay, result export, and the Waxman topology."""

import itertools
import random

import networkx as nx
import pytest

from repro.experiments.export import (
    ascii_cdf,
    ascii_xy,
    cdf_rows,
    export_figure,
    write_csv,
)
from repro.topology.clusters import attach_hosts
from repro.topology.routing import RoutingTable
from repro.topology.waxman import WaxmanParams, generate_waxman
from repro.workloads.replay import WorkloadTrace
from repro.workloads.scenarios import GameWorld, PublishEvent

# ---------------------------------------------------------------------------
# WorkloadTrace
# ---------------------------------------------------------------------------


def small_trace():
    membership = {0: frozenset({0, 1, 2}), 1: frozenset({1, 2, 3})}
    events = [
        PublishEvent(0, 0, {"n": 1}),
        PublishEvent(3, 1, {"n": 2}),
        PublishEvent(1, 0, None),
    ]
    return WorkloadTrace.from_schedule(membership, events, name="small")


def test_trace_roundtrip_json():
    trace = small_trace()
    restored = WorkloadTrace.from_json(trace.to_json())
    assert restored.membership == trace.membership
    assert restored.name == "small"
    assert [(e.sender, e.group, e.payload) for e in restored.events] == [
        (e.sender, e.group, e.payload) for e in trace.events
    ]


def test_trace_save_load(tmp_path):
    trace = small_trace()
    path = trace.save(tmp_path / "w.json")
    assert WorkloadTrace.load(path).membership == trace.membership


def test_trace_rejects_unknown_version():
    with pytest.raises(ValueError):
        WorkloadTrace.from_json('{"version": 99, "membership": {}, "events": []}')


def test_trace_validate_detects_bad_sender():
    trace = small_trace()
    trace.events.append(PublishEvent(9, 0, None))
    with pytest.raises(ValueError):
        trace.validate()


def test_trace_validate_detects_bad_group():
    trace = small_trace()
    trace.events.append(PublishEvent(0, 42, None))
    with pytest.raises(ValueError):
        trace.validate()


def test_trace_n_hosts():
    assert small_trace().n_hosts() == 4


def test_trace_replay_into_fabric(env32):
    trace = small_trace()
    fabric = env32.build_fabric(env32.membership_from(trace.membership))
    published = trace.replay(fabric)
    assert published == 3
    assert fabric.pending_messages() == {}
    # Concurrent publishes are ordered by ingress arrival, so assert the
    # message *set* and that members agree on the order.
    group0 = [r.msg_id for r in fabric.delivered(2) if r.stamp.group == 0]
    assert len(group0) == 2
    for member in (0, 1):
        assert [
            r.msg_id for r in fabric.delivered(member) if r.stamp.group == 0
        ] == group0


def test_trace_replay_limit_and_isolation(env32):
    trace = small_trace()
    fabric = env32.build_fabric(env32.membership_from(trace.membership))
    assert trace.replay(fabric, run_between=True, limit=1) == 1
    assert len(fabric.delivered(0)) == 1


def test_trace_from_scenario_validates():
    world = GameWorld(n_players=12, rng=random.Random(0))
    trace = WorkloadTrace.from_schedule(
        world.membership(), world.publish_schedule(20), name="game"
    )
    trace.validate()


def test_trace_replay_same_result_on_baselines(env32):
    """The same trace replayed on our protocol and the central sequencer
    delivers the same message sets (order may differ)."""
    from repro.baselines.central_sequencer import CentralSequencerFabric

    trace = small_trace()
    ours = env32.build_fabric(env32.membership_from(trace.membership))
    central = CentralSequencerFabric(
        env32.membership_from(trace.membership), env32.hosts, env32.routing
    )
    trace.replay(ours)
    trace.replay(central)
    for host in range(4):
        assert sorted(r.msg_id for r in ours.delivered(host)) == sorted(
            r.msg_id for r in central.delivered(host)
        )


# ---------------------------------------------------------------------------
# Export helpers
# ---------------------------------------------------------------------------


def test_write_csv(tmp_path):
    path = write_csv(tmp_path / "x.csv", ["a", "b"], [[1, 2], [3, 4]])
    assert path.read_text().splitlines() == ["a,b", "1,2", "3,4"]


def test_cdf_rows_fractions():
    rows = cdf_rows({"s": [3.0, 1.0]})
    assert rows == [("s", 1.0, 0.5), ("s", 3.0, 1.0)]


def test_ascii_cdf_renders():
    plot = ascii_cdf({"a": [1, 2, 3], "b": [2, 4, 6]}, title="T")
    assert plot.startswith("T")
    assert "*=a" in plot
    assert "o=b" in plot


def test_ascii_cdf_empty():
    assert ascii_cdf({}, title="empty") == "empty"


def test_ascii_xy_renders():
    plot = ascii_xy({"line": [(0, 0), (1, 1), (2, 4)]}, title="XY")
    assert "XY" in plot
    assert "*=line" in plot


def test_export_figure_requires_exactly_one(tmp_path):
    with pytest.raises(ValueError):
        export_figure("f", tmp_path)
    with pytest.raises(ValueError):
        export_figure("f", tmp_path, samples={"a": [1]}, xy={"a": [(1, 2)]})


def test_export_figure_samples(tmp_path):
    paths = export_figure("fig", tmp_path, samples={"a": [1.0, 2.0]})
    assert paths[0].name == "fig_cdf.csv"
    assert "series,value,cum_fraction" in paths[0].read_text()


def test_export_figure_xy(tmp_path):
    paths = export_figure("fig", tmp_path, xy={"a": [(1.0, 2.0)]})
    assert paths[0].name == "fig_xy.csv"


# ---------------------------------------------------------------------------
# Waxman topology
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def waxman():
    return generate_waxman(WaxmanParams(n_nodes=200), seed=3)


def test_waxman_node_count(waxman):
    assert waxman.n_nodes == 200
    assert len(waxman.coords) == 200


def test_waxman_connected(waxman):
    graph = nx.Graph()
    graph.add_nodes_from(range(waxman.n_nodes))
    graph.add_edges_from((u, v) for u, v, _ in waxman.edges)
    assert nx.is_connected(graph)


def test_waxman_deterministic():
    a = generate_waxman(WaxmanParams(n_nodes=50), seed=1)
    b = generate_waxman(WaxmanParams(n_nodes=50), seed=1)
    assert a.edges == b.edges


def test_waxman_min_nodes_rejected():
    with pytest.raises(ValueError):
        generate_waxman(WaxmanParams(n_nodes=1))


def test_waxman_delay_floor(waxman):
    assert all(d >= 1.0 for _, _, d in waxman.edges)


def test_waxman_is_flat(waxman):
    assert waxman.transit_nodes == []
    assert waxman.stub_of == {}


def test_waxman_supports_full_stack(waxman):
    """End-to-end: ordering protocol over a Waxman underlay."""
    from repro.core.protocol import OrderingFabric
    from repro.pubsub.membership import GroupMembership

    routing = RoutingTable(waxman)
    hosts = attach_hosts(waxman, 8, rng=random.Random(0))
    membership = GroupMembership()
    membership.create_group([0, 1, 2, 3], group_id=0)
    membership.create_group([2, 3, 4, 5], group_id=1)
    fabric = OrderingFabric(membership, hosts, waxman, routing)
    fabric.publish(0, 0, "w")
    fabric.publish(2, 1, "x")
    fabric.run()
    assert fabric.pending_messages() == {}
    for a, b in itertools.combinations(range(8), 2):
        seq_a = [r.msg_id for r in fabric.delivered(a)]
        seq_b = [r.msg_id for r in fabric.delivered(b)]
        common = set(seq_a) & set(seq_b)
        assert [m for m in seq_a if m in common] == [m for m in seq_b if m in common]
