"""Metric instruments: counters, gauges, histogram bucket edges, null mode."""

import math

import pytest

from repro.obs.registry import (
    NULL_INSTRUMENT,
    NULL_REGISTRY,
    MetricsRegistry,
    log_buckets,
)


class TestCounter:
    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("m_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_set_total_mirrors_external_count(self):
        reg = MetricsRegistry()
        c = reg.counter("bytes")
        c.set_total(1024)
        assert c.value == 1024

    def test_identity_per_label_set(self):
        reg = MetricsRegistry()
        a = reg.counter("hits", host=1)
        b = reg.counter("hits", host=1)
        other = reg.counter("hits", host=2)
        assert a is b
        assert a is not other
        a.inc()
        assert reg.counter("hits", host=1).value == 1

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        assert reg.counter("x", a=1, b=2) is reg.counter("x", b=2, a=1)


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("depth")
        g.set(5)
        g.inc(3)
        g.dec()
        assert g.value == 7

    def test_set_max_is_high_water(self):
        g = MetricsRegistry().gauge("peak")
        for v in (3, 7, 2, 7, 1):
            g.set_max(v)
        assert g.value == 7


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 10.0, 100.0))
        # Boundary values land in the bucket whose bound equals them
        # (Prometheus `le` semantics), values above the last bound overflow.
        for v in (0.5, 1.0, 10.0, 10.1, 1000.0):
            h.observe(v)
        assert h.bucket_counts == [2, 1, 1, 1]
        assert h.cumulative() == [(1.0, 2), (10.0, 3), (100.0, 4), (math.inf, 5)]

    def test_sum_count_and_high_water(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 10.0))
        for v in (0.25, 4.0, 40.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(44.25)
        assert h.max == 40.0

    def test_rejects_unsorted_buckets(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("bad", buckets=(10.0, 1.0))

    def test_default_buckets_are_log_spaced(self):
        h = MetricsRegistry().histogram("lat")
        assert h.buckets == log_buckets()


class TestLogBuckets:
    def test_spans_range_and_is_increasing(self):
        buckets = log_buckets(0.1, 1000.0, per_decade=2)
        assert buckets[0] == pytest.approx(0.1)
        assert buckets[-1] == 1000.0
        assert list(buckets) == sorted(buckets)
        assert len(buckets) == 9  # 4 decades * 2 + 1

    def test_ratio_between_adjacent_bounds_is_constant(self):
        buckets = log_buckets(1.0, 100.0, per_decade=4)
        ratios = [b / a for a, b in zip(buckets, buckets[1:])]
        for ratio in ratios:
            assert ratio == pytest.approx(10 ** 0.25, rel=1e-6)

    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            log_buckets(0.0, 10.0)
        with pytest.raises(ValueError):
            log_buckets(10.0, 1.0)


class TestRegistry:
    def test_type_conflict_is_rejected(self):
        reg = MetricsRegistry()
        reg.counter("thing")
        with pytest.raises(ValueError):
            reg.gauge("thing")

    def test_collectors_run_on_collect(self):
        reg = MetricsRegistry()
        reg.register_collector(lambda r: r.gauge("pulled").set(42))
        assert reg.get("pulled") is None
        reg.collect()
        assert reg.get("pulled").value == 42

    def test_instruments_sorted_for_stable_export(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.counter("a", x=2)
        reg.counter("a", x=1)
        names = [(i.name, i.labels) for i in reg.instruments()]
        assert names == sorted(names)


class TestDisabledRegistry:
    def test_instruments_are_shared_null_noops(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("n")
        g = reg.gauge("g")
        h = reg.histogram("h")
        assert c is NULL_INSTRUMENT and g is NULL_INSTRUMENT and h is NULL_INSTRUMENT
        c.inc()
        g.set(9)
        g.set_max(9)
        h.observe(1.0)
        assert c.value == 0 and h.count == 0
        assert len(reg) == 0

    def test_collect_is_noop(self):
        reg = MetricsRegistry(enabled=False)
        fired = []
        reg.register_collector(lambda r: fired.append(1))
        reg.collect()
        assert fired == []

    def test_null_registry_is_disabled(self):
        assert not NULL_REGISTRY.enabled
        assert NULL_REGISTRY.counter("anything") is NULL_INSTRUMENT
