"""Lifecycle-span reconstruction from fabric traces."""

import pytest

from repro.experiments.common import ExperimentEnv
from repro.obs.spans import (
    PHASES,
    build_spans,
    hop_intervals,
    phase_breakdown_by_group,
    render_phase_table,
)

#: A membership crafted so group 0's sequencing path has exactly 3 atoms:
#: group 0 double-overlaps each of groups 1/2/3 (two shared members apiece)
#: and the satellite groups share nothing with each other, so the cluster
#: chain is Q(0,1)-Q(0,2)-Q(0,3) in some order — all sequencing group 0.
THREE_ATOM_SNAPSHOT = {
    0: frozenset({0, 1, 2, 3, 4, 5}),
    1: frozenset({0, 1}),
    2: frozenset({2, 3}),
    3: frozenset({4, 5}),
}


@pytest.fixture(scope="module")
def three_atom_fabric():
    env = ExperimentEnv(n_hosts=6, seed=0)
    fabric = env.build_fabric(env.membership_from(THREE_ATOM_SNAPSHOT), trace=True)
    assert len(fabric.graph.group_path(0)) == 3
    fabric.publish(0, 0, payload="hello")
    fabric.run()
    assert not fabric.pending_messages()
    return fabric


class TestThreeAtomPath:
    def test_span_covers_full_pipeline(self, three_atom_fabric):
        spans = build_spans(three_atom_fabric.trace)
        assert set(spans) == {0}
        span = spans[0]
        assert span.complete
        assert span.group == 0 and span.sender == 0
        # One hop per sequencing-node visit; 3 atoms on <= 3 machines.
        assert 1 <= len(span.hops) <= 3
        assert set(span.deliveries) == set(THREE_ATOM_SNAPSHOT[0])

    def test_phases_are_exactly_the_three_pipeline_phases(self, three_atom_fabric):
        span = build_spans(three_atom_fabric.trace)[0]
        for host in span.deliveries:
            assert tuple(span.phases(host)) == PHASES

    def test_phase_latencies_sum_to_delivery_latency(self, three_atom_fabric):
        span = build_spans(three_atom_fabric.trace)[0]
        for host in span.deliveries:
            phases = span.phases(host)
            assert all(latency >= 0 for latency in phases.values())
            assert sum(phases.values()) == pytest.approx(
                span.delivery_latency(host), abs=1e-9
            )

    def test_hop_intervals_tile_the_sequencing_phase(self, three_atom_fabric):
        span = build_spans(three_atom_fabric.trace)[0]
        intervals = hop_intervals(span)
        assert len(intervals) == len(span.hops)
        assert intervals[0][1] == span.hops[0].time
        assert intervals[-1][2] == span.distribute_time
        for (_, _, end), (_, start, _) in zip(intervals, intervals[1:]):
            assert end == start
        total = sum(end - start for _, start, end in intervals)
        assert total == pytest.approx(
            span.distribute_time - span.hops[0].time, abs=1e-9
        )


class TestAggregation:
    def test_group_breakdown_means_match_single_span(self, three_atom_fabric):
        span = build_spans(three_atom_fabric.trace)[0]
        breakdown = phase_breakdown_by_group(build_spans(three_atom_fabric.trace))
        assert set(breakdown) == {0}
        expected = {phase: 0.0 for phase in PHASES}
        for host in span.deliveries:
            for phase, latency in span.phases(host).items():
                expected[phase] += latency / len(span.deliveries)
        for phase in PHASES:
            assert breakdown[0][phase] == pytest.approx(expected[phase])

    def test_render_phase_table_lists_each_group(self, three_atom_fabric):
        breakdown = phase_breakdown_by_group(build_spans(three_atom_fabric.trace))
        table = render_phase_table(breakdown)
        assert "ingress_ms" in table and "total_ms" in table
        assert any(line.startswith("0") for line in table.splitlines())


class TestIncompleteSpans:
    def test_disabled_trace_yields_no_spans(self):
        env = ExperimentEnv(n_hosts=6, seed=0)
        fabric = env.build_fabric(env.membership_from(THREE_ATOM_SNAPSHOT), trace=False)
        fabric.publish(0, 0)
        fabric.run()
        assert build_spans(fabric.trace) == {}

    def test_incomplete_span_raises_on_phases(self):
        from repro.obs.spans import MessageSpan

        span = MessageSpan(msg_id=9, group=0, sender=1, publish_time=0.0)
        assert not span.complete
        with pytest.raises(ValueError):
            span.phases(0)

    def test_multi_message_spans_reconstruct_independently(self):
        env = ExperimentEnv(n_hosts=6, seed=0)
        fabric = env.build_fabric(env.membership_from(THREE_ATOM_SNAPSHOT), trace=True)
        for sender, group in ((0, 0), (0, 1), (2, 2), (0, 0)):
            fabric.publish(sender, group)
        fabric.run()
        spans = build_spans(fabric.trace)
        assert set(spans) == {0, 1, 2, 3}
        for span in spans.values():
            assert span.complete
            for host in span.deliveries:
                assert sum(span.phases(host).values()) == pytest.approx(
                    span.delivery_latency(host), abs=1e-9
                )
