"""Unit tests for membership, broker, and multicast delivery trees."""

import pytest

from repro.pubsub.broker import SubscriptionBroker
from repro.pubsub.membership import GroupMembership, MembershipError
from repro.pubsub.multicast import DeliveryTree

# ---------------------------------------------------------------------------
# GroupMembership
# ---------------------------------------------------------------------------


def test_create_group_auto_id():
    m = GroupMembership()
    g0 = m.create_group([1, 2])
    g1 = m.create_group([3])
    assert g0 != g1
    assert m.members(g0) == frozenset({1, 2})


def test_create_group_explicit_id():
    m = GroupMembership()
    assert m.create_group([1], group_id=42) == 42
    assert m.has_group(42)


def test_create_group_duplicate_id_rejected():
    m = GroupMembership()
    m.create_group([1], group_id=7)
    with pytest.raises(MembershipError):
        m.create_group([2], group_id=7)


def test_auto_id_skips_explicit_ids():
    m = GroupMembership()
    m.create_group([1], group_id=0)
    g = m.create_group([2])
    assert g != 0


def test_groups_sorted():
    m = GroupMembership()
    m.create_group([1], group_id=5)
    m.create_group([1], group_id=2)
    assert m.groups() == [2, 5]


def test_groups_of_node():
    m = GroupMembership()
    a = m.create_group([1, 2])
    b = m.create_group([2, 3])
    assert m.groups_of(2) == frozenset({a, b})
    assert m.groups_of(1) == frozenset({a})
    assert m.groups_of(99) == frozenset()


def test_remove_group():
    m = GroupMembership()
    g = m.create_group([1, 2])
    m.remove_group(g)
    assert not m.has_group(g)
    assert m.groups_of(1) == frozenset()


def test_remove_missing_group_rejected():
    m = GroupMembership()
    with pytest.raises(MembershipError):
        m.remove_group(3)


def test_members_missing_group_rejected():
    m = GroupMembership()
    with pytest.raises(MembershipError):
        m.members(1)


def test_join_and_leave():
    m = GroupMembership()
    g = m.create_group([1, 2])
    m.join(g, 3)
    assert m.members(g) == frozenset({1, 2, 3})
    m.leave(g, 1)
    assert m.members(g) == frozenset({2, 3})


def test_join_idempotent():
    m = GroupMembership()
    g = m.create_group([1])
    m.join(g, 1)
    assert m.members(g) == frozenset({1})


def test_leave_last_member_deletes_group():
    m = GroupMembership()
    g = m.create_group([1])
    m.leave(g, 1)
    assert not m.has_group(g)


def test_leave_non_member_is_noop():
    m = GroupMembership()
    g = m.create_group([1])
    m.leave(g, 9)
    assert m.members(g) == frozenset({1})


def test_replace_group():
    m = GroupMembership()
    g = m.create_group([1, 2])
    m.replace_group(g, [3, 4])
    assert m.members(g) == frozenset({3, 4})
    assert m.groups_of(1) == frozenset()


def test_listener_sees_add_and_remove():
    m = GroupMembership()
    events = []
    m.add_listener(lambda op, gid, members: events.append((op, gid, members)))
    g = m.create_group([1, 2])
    m.remove_group(g)
    assert events == [
        ("add", g, frozenset({1, 2})),
        ("remove", g, frozenset({1, 2})),
    ]


def test_listener_sees_join_as_remove_add():
    m = GroupMembership()
    events = []
    g = m.create_group([1])
    m.add_listener(lambda op, gid, members: events.append(op))
    m.join(g, 2)
    assert events == ["remove", "add"]


def test_snapshot_is_immutable_copy():
    m = GroupMembership()
    g = m.create_group([1, 2])
    snapshot = m.snapshot()
    assert snapshot == {g: frozenset({1, 2})}
    m.join(g, 3)
    assert snapshot[g] == frozenset({1, 2})


def test_nodes_and_counts():
    m = GroupMembership()
    m.create_group([3, 1])
    m.create_group([1])
    assert m.nodes() == [1, 3]
    assert m.group_count() == 2


def test_contains():
    m = GroupMembership()
    g = m.create_group([1])
    assert g in m
    assert (g + 1) not in m


# ---------------------------------------------------------------------------
# SubscriptionBroker
# ---------------------------------------------------------------------------


def test_broker_subscribe_creates_group():
    broker = SubscriptionBroker()
    g = broker.subscribe(1, "news")
    assert broker.group_for("news") == g
    assert broker.subscribers("news") == frozenset({1})


def test_broker_same_topic_same_group():
    broker = SubscriptionBroker()
    g1 = broker.subscribe(1, "news")
    g2 = broker.subscribe(2, "news")
    assert g1 == g2
    assert broker.subscribers("news") == frozenset({1, 2})


def test_broker_distinct_topics_distinct_groups():
    broker = SubscriptionBroker()
    assert broker.subscribe(1, "a") != broker.subscribe(1, "b")


def test_broker_unsubscribe():
    broker = SubscriptionBroker()
    broker.subscribe(1, "t")
    broker.subscribe(2, "t")
    broker.unsubscribe(1, "t")
    assert broker.subscribers("t") == frozenset({2})


def test_broker_unsubscribe_last_deletes_topic():
    broker = SubscriptionBroker()
    broker.subscribe(1, "t")
    broker.unsubscribe(1, "t")
    with pytest.raises(MembershipError):
        broker.group_for("t")


def test_broker_unsubscribe_unknown_topic():
    broker = SubscriptionBroker()
    with pytest.raises(MembershipError):
        broker.unsubscribe(1, "nope")


def test_broker_topic_for_group():
    broker = SubscriptionBroker()
    g = broker.subscribe(1, "x")
    assert broker.topic_for(g) == "x"
    with pytest.raises(MembershipError):
        broker.topic_for(g + 100)


def test_broker_topics_map():
    broker = SubscriptionBroker()
    g = broker.subscribe(1, "x")
    assert broker.topics() == {"x": g}


# ---------------------------------------------------------------------------
# DeliveryTree
# ---------------------------------------------------------------------------


def test_tree_delay_matches_unicast(routing):
    tree = DeliveryTree(routing, root=0, members=[10, 20, 30])
    for member in (10, 20, 30):
        assert tree.delay_to(member) == pytest.approx(routing.delay(0, member))


def test_tree_members_deduped(routing):
    tree = DeliveryTree(routing, root=0, members=[5, 5, 5])
    assert tree.members == [5]


def test_tree_link_sharing_gain(routing):
    members = [40, 41, 42, 43, 44]
    tree = DeliveryTree(routing, root=0, members=members)
    assert tree.link_count() <= tree.unicast_link_count()


def test_tree_root_member(routing):
    tree = DeliveryTree(routing, root=7, members=[7])
    assert tree.delay_to(7) == 0.0
    assert tree.link_count() == 0


def test_tree_delays_map(routing):
    tree = DeliveryTree(routing, root=0, members=[3, 9])
    delays = tree.delays()
    assert set(delays) == {3, 9}
