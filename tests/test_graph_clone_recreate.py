"""Focused tests for graph cloning and atom re-creation after lazy removal."""

import random

from repro.core.messages import AtomId
from repro.core.sequencing_graph import SequencingGraph


def build(snapshot):
    return SequencingGraph.build({g: frozenset(m) for g, m in snapshot.items()})


def test_clone_is_independent():
    graph = build({0: {0, 1, 2}, 1: {1, 2, 3}})
    copy = graph.clone()
    copy.add_group(7, {0, 1, 9})
    assert 7 in copy.groups()
    assert 7 not in graph.groups()
    assert AtomId.overlap(0, 7) in copy.atoms
    assert AtomId.overlap(0, 7) not in graph.atoms


def test_clone_preserves_chains_and_retired():
    graph = build({0: {0, 1, 2}, 1: {1, 2, 3}, 2: {0, 1, 3}})
    graph.remove_group(2, lazy=True)
    copy = graph.clone()
    assert copy.chains == graph.chains
    assert copy.retired == graph.retired
    copy.validate()


def test_clone_chain_mutation_does_not_leak():
    graph = build({0: {0, 1, 2}, 1: {1, 2, 3}})
    copy = graph.clone()
    copy.chains[0].append(AtomId.overlap(40, 41))
    assert AtomId.overlap(40, 41) not in graph.chains[0]


def test_recreate_atom_after_lazy_removal():
    graph = build({0: {0, 1, 2}, 1: {1, 2, 3}})
    atom = AtomId.overlap(0, 1)
    graph.remove_group(1, lazy=True)
    assert atom in graph.retired
    graph.add_group(1, {1, 2, 4})
    graph.validate()
    assert atom not in graph.retired
    # The atom appears exactly once across all chains.
    occurrences = sum(chain.count(atom) for chain in graph.chains)
    assert occurrences == 1
    assert graph.atoms[atom].overlap_members == frozenset({1, 2})


def test_recreate_many_atoms_after_churn():
    rng = random.Random(5)
    graph = SequencingGraph()
    snapshot = {g: set(rng.sample(range(16), 6)) for g in range(6)}
    for g, members in snapshot.items():
        graph.add_group(g, members)
    # Remove and re-add every group twice, lazily.
    for _ in range(2):
        for g in list(snapshot):
            graph.remove_group(g, lazy=True)
            graph.add_group(g, snapshot[g])
            graph.validate()
    # No duplicates anywhere.
    seen = set()
    for chain in graph.chains:
        for atom in chain:
            assert atom not in seen
            seen.add(atom)


def test_recreated_atom_still_orders(env32):
    """End-to-end: a recreated atom's sequence space keeps working."""
    from repro.pubsub.membership import GroupMembership

    membership = GroupMembership()
    membership.create_group([0, 1, 2], group_id=0)
    membership.create_group([1, 2, 3], group_id=1)
    graph = SequencingGraph.build(membership.snapshot())
    graph.remove_group(1, lazy=True)
    graph.add_group(1, frozenset({1, 2, 3}))
    graph.validate()
    fabric = env32.build_fabric(membership, graph=graph)
    fabric.publish(0, 0, "a")
    fabric.publish(3, 1, "b")
    fabric.run()
    assert fabric.pending_messages() == {}
    order1 = [r.msg_id for r in fabric.delivered(1)]
    order2 = [r.msg_id for r in fabric.delivered(2)]
    assert order1 == order2
