"""End-to-end tests for the ``repro check`` CLI and runner plumbing."""

import io
import json

from repro import cli
from repro.check import CheckReport, Finding, render_json, render_text, sort_findings
from repro.check.runner import DEFAULT_SCENARIOS, run_check


def test_repro_check_exits_zero_on_this_repo(capsys):
    # The CI gate: the shipped sources plus the self-verification graph
    # sweep must be clean.
    exit_code = cli.main(["check", "--format", "json"])
    assert exit_code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["tool"] == "repro.check"
    assert payload["summary"] == {"errors": 0, "warnings": 0}
    assert payload["findings"] == []
    assert payload["inspected"]["files"] > 30
    assert payload["inspected"]["graphs"] >= len(DEFAULT_SCENARIOS)


def test_check_lint_only_on_explicit_path(tmp_path, capsys):
    bad = tmp_path / "repro" / "core"
    bad.mkdir(parents=True)
    (bad / "__init__.py").write_text("")
    (bad / "clock.py").write_text(
        "import time\n\n\ndef stamp():\n    return time.time()\n"
    )
    exit_code = cli.main(
        ["check", str(tmp_path / "repro"), "--no-graph", "--format", "json"]
    )
    assert exit_code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["errors"] == 1
    (finding,) = payload["findings"]
    assert finding["code"] == "SL101"
    assert finding["file"].endswith("clock.py")


def test_check_select_restricts_rules(tmp_path, capsys):
    pkg = tmp_path / "repro"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "util.py").write_text("def f(q=[]):\n    return q\n")
    exit_code = cli.main(
        ["check", str(pkg), "--no-graph", "--select", "SL105", "--format", "json"]
    )
    assert exit_code == 0
    assert json.loads(capsys.readouterr().out)["findings"] == []


def test_analyze_exports_verifiable_certificate(tmp_path, capsys):
    cert_path = tmp_path / "cert.json"
    exit_code = cli.main(
        [
            "analyze", "--hosts", "24", "--groups", "8", "--seed", "3",
            "--export-certificate", str(cert_path),
        ]
    )
    assert exit_code == 0
    capsys.readouterr()  # drop the analyze report

    exit_code = cli.main(
        [
            "check", "--no-lint", "--no-graph",
            "--certificate", str(cert_path), "--format", "json",
        ]
    )
    assert exit_code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["inspected"] == {"certificates": 1}
    assert payload["findings"] == []


def test_check_reports_corrupt_certificate(tmp_path, capsys):
    cert_path = tmp_path / "bogus.json"
    cert_path.write_text(json.dumps({"format": "wrong"}))
    exit_code = cli.main(
        ["check", "--no-lint", "--no-graph", "--certificate", str(cert_path)]
    )
    assert exit_code == 1
    out = capsys.readouterr().out
    assert "GV200" in out


def test_run_check_text_format_to_stream():
    stream = io.StringIO()
    exit_code = run_check(
        paths=(), certificates=(), lint=False, graphs=False,
        fmt="text", stream=stream,
    )
    assert exit_code == 0
    assert "0 error(s), 0 warning(s)" in stream.getvalue()


# -- report plumbing ---------------------------------------------------------


def test_sort_findings_orders_severity_then_location():
    warn = Finding(code="SL104", message="w", severity="warning",
                   file="b.py", line=1)
    err_late = Finding(code="SL101", message="e", file="z.py", line=9)
    err_early = Finding(code="SL101", message="e", file="a.py", line=2)
    ordered = sort_findings([warn, err_late, err_early])
    assert ordered == [err_early, err_late, warn]


def test_render_text_and_json_agree_on_counts():
    report = CheckReport(
        findings=[
            Finding(code="GV202", message="loop", anchor="Q(0,1)",
                    tool="graph-verify"),
            Finding(code="SL104", message="mutable", severity="warning",
                    file="x.py", line=3, tool="simlint"),
        ],
        tools=["simlint", "graph-verify"],
        inspected={"files": 1},
    )
    assert report.exit_code == 1
    text = render_text(report)
    assert "1 error(s), 1 warning(s)" in text
    assert "Q(0,1): error: GV202" in text
    payload = json.loads(render_json(report))
    assert payload["summary"] == {"errors": 1, "warnings": 1}
    assert payload["findings"][0]["code"] == "GV202"
    assert payload["findings"][0]["anchor"] == "Q(0,1)"
    assert payload["findings"][1]["file"] == "x.py"
