"""Integration tests of the paper's guarantees over random workloads.

These are the theorems under test:

* **Theorem 1 / consistency** — for any two receivers, the messages both
  deliver appear in the same relative order.
* **Liveness** — every published message is delivered to every group
  member; no receiver buffer deadlocks.
* **Causality** — when senders subscribe to the groups they send to,
  delivery respects the happens-before order of publishes.
* **Commit** — the deliver-or-buffer decision is instantaneous: messages
  buffered at any point are only those with an undelivered predecessor.
"""

import itertools
import random

import pytest

from repro.pubsub.membership import GroupMembership


def random_membership(rng, n_hosts, n_groups):
    membership = GroupMembership()
    for _ in range(n_groups):
        size = rng.randint(2, n_hosts)
        membership.create_group(rng.sample(range(n_hosts), size))
    return membership


def run_random_workload(env, seed, n_groups=6, msgs=40, loss=0.0):
    rng = random.Random(seed)
    n_hosts = len(env.hosts)
    membership = random_membership(rng, n_hosts, n_groups)
    fabric = env.build_fabric(membership, seed=seed, loss_rate=loss)
    groups = membership.groups()
    for _ in range(msgs):
        group = rng.choice(groups)
        sender = rng.choice(sorted(membership.members(group)))
        fabric.publish(sender, group)
    fabric.run()
    return fabric


@pytest.mark.parametrize("seed", range(8))
def test_liveness_every_message_delivered(env32, seed):
    fabric = run_random_workload(env32, seed)
    assert fabric.pending_messages() == {}
    for msg in fabric.published.values():
        for member in fabric.membership.members(msg.group):
            ids = [r.msg_id for r in fabric.delivered(member)]
            assert msg.msg_id in ids


@pytest.mark.parametrize("seed", range(8))
def test_pairwise_consistency(env32, seed):
    fabric = run_random_workload(env32, seed)
    hosts = range(len(env32.hosts))
    for a, b in itertools.combinations(hosts, 2):
        seq_a = [r.msg_id for r in fabric.delivered(a)]
        seq_b = [r.msg_id for r in fabric.delivered(b)]
        common = set(seq_a) & set(seq_b)
        assert [m for m in seq_a if m in common] == [m for m in seq_b if m in common]


@pytest.mark.parametrize("seed", range(4))
def test_consistency_under_loss(env32, seed):
    fabric = run_random_workload(env32, seed, msgs=20, loss=0.25)
    assert fabric.pending_messages() == {}
    hosts = range(len(env32.hosts))
    for a, b in itertools.combinations(hosts, 2):
        seq_a = [r.msg_id for r in fabric.delivered(a)]
        seq_b = [r.msg_id for r in fabric.delivered(b)]
        common = set(seq_a) & set(seq_b)
        assert [m for m in seq_a if m in common] == [m for m in seq_b if m in common]


@pytest.mark.parametrize("seed", range(4))
def test_no_duplicates_and_exact_counts(env32, seed):
    fabric = run_random_workload(env32, seed)
    per_group = {}
    for msg in fabric.published.values():
        per_group[msg.group] = per_group.get(msg.group, 0) + 1
    for group, count in per_group.items():
        for member in fabric.membership.members(group):
            got = [r for r in fabric.delivered(member) if r.stamp.group == group]
            assert len(got) == count
            assert len({r.msg_id for r in got}) == count


def test_causal_reply_never_precedes_question(env32):
    """B replies to A's message; no common subscriber sees reply first."""
    rng = random.Random(99)
    membership = random_membership(rng, len(env32.hosts), 5)
    fabric = env32.build_fabric(membership, seed=99)
    groups = membership.groups()
    # Pick two overlapping groups and a node in both.
    pivot = None
    for g, h in itertools.combinations(groups, 2):
        shared = membership.members(g) & membership.members(h)
        if len(shared) >= 2:
            pivot = (g, h, sorted(shared))
            break
    if pivot is None:
        pytest.skip("no double overlap in this membership")
    g, h, shared = pivot
    asker, replier = shared[0], shared[1]
    question = fabric.publish(asker, g, "question")
    fabric.run()  # replier has seen the question
    reply = fabric.publish(replier, h, "reply")
    fabric.run()
    for member in membership.members(g) & membership.members(h):
        order = [r.msg_id for r in fabric.delivered(member)]
        assert order.index(question) < order.index(reply)


def test_causal_chain_within_group(env32):
    """A chain of replies within one group delivers in chain order."""
    membership = GroupMembership()
    group = membership.create_group([0, 1, 2, 3])
    fabric = env32.build_fabric(membership, seed=5)
    chain = []
    for sender in (0, 1, 2, 3):
        chain.append(fabric.publish(sender, group, f"from {sender}"))
        fabric.run()  # everyone sees it before the next link
    for member in (0, 1, 2, 3):
        order = [r.msg_id for r in fabric.delivered(member)]
        assert order == chain


def test_commit_signal_no_spurious_buffering(env32):
    """With isolated publishes, nothing is ever buffered at receivers."""
    fabric = run_random_workload(env32, 7, msgs=0)
    rng = random.Random(7)
    groups = fabric.membership.groups()
    for _ in range(15):
        group = rng.choice(groups)
        sender = rng.choice(sorted(fabric.membership.members(group)))
        fabric.publish(sender, group)
        fabric.run()
    for process in fabric.host_processes.values():
        assert process.delivery.buffered_high_water == 0


def test_interleaved_publish_may_buffer_but_always_drains(env32):
    fabric = run_random_workload(env32, 13, msgs=60)
    assert fabric.pending_messages() == {}
    buffered = max(
        p.delivery.buffered_high_water for p in fabric.host_processes.values()
    )
    # Buffering may or may not occur depending on timing, but never leaks.
    assert buffered >= 0


def test_many_groups_stress(env32):
    fabric = run_random_workload(env32, 21, n_groups=12, msgs=80)
    assert fabric.pending_messages() == {}
    total_delivered = sum(
        len(fabric.delivered(h.host_id)) for h in env32.hosts
    )
    expected = sum(
        len(fabric.membership.members(m.group)) for m in fabric.published.values()
    )
    assert total_delivered == expected
