"""Tests for distribution-phase delivery-tree accounting."""

from repro.pubsub.membership import GroupMembership


def membership_two_groups():
    membership = GroupMembership()
    membership.create_group([0, 1, 2, 3, 4, 5], group_id=0)
    membership.create_group([4, 5, 6, 7], group_id=1)
    return membership


def test_tree_accounting_populated(env32):
    fabric = env32.build_fabric(membership_two_groups())
    fabric.publish(0, 0)
    fabric.run()
    assert fabric.distribution_tree_links > 0
    assert fabric.distribution_unicast_links > 0
    assert fabric.distribution_tree_bytes > 0


def test_tree_never_worse_than_unicast(env32):
    fabric = env32.build_fabric(membership_two_groups())
    for i in range(5):
        fabric.publish(0, 0)
        fabric.publish(4, 1)
    fabric.run()
    assert fabric.distribution_tree_links <= fabric.distribution_unicast_links


def test_tree_accounting_scales_with_messages(env32):
    fabric = env32.build_fabric(membership_two_groups())
    fabric.publish(0, 0)
    fabric.run()
    first = fabric.distribution_tree_links
    fabric.publish(0, 0)
    fabric.run()
    assert fabric.distribution_tree_links == 2 * first  # same tree reused


def test_tree_cache_by_egress_and_group(env32):
    fabric = env32.build_fabric(membership_two_groups())
    fabric.publish(0, 0)
    fabric.publish(4, 1)
    fabric.run()
    assert len(fabric._delivery_trees) >= 1
    for (machine, group), tree in fabric._delivery_trees.items():
        assert tree.root == machine
        members = {
            fabric._host_by_id[m].router for m in fabric.membership.members(group)
        }
        assert set(tree.members) == members


def test_multicast_gain_with_clustered_members(env32):
    """Members sharing clusters produce real link sharing (> 1 gain)."""
    membership = GroupMembership()
    # Hosts 0..7 are attached near each other (clusters of 8).
    membership.create_group(list(range(8)), group_id=0)
    fabric = env32.build_fabric(membership)
    fabric.publish(0, 0)
    fabric.run()
    assert fabric.distribution_tree_links < fabric.distribution_unicast_links
