"""Unit tests for the discrete-event simulator kernel."""

import pytest

from repro.sim.events import SimulationError, Simulator


def test_initial_state():
    sim = Simulator()
    assert sim.now == 0.0
    assert sim.pending == 0
    assert sim.events_executed == 0


def test_schedule_and_run_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, "a")
    assert sim.pending == 1
    executed = sim.run()
    assert executed == 1
    assert fired == ["a"]
    assert sim.now == 5.0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, fired.append, "late")
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(2.0, fired.append, "middle")
    sim.run()
    assert fired == ["early", "middle", "late"]


def test_tie_break_is_scheduling_order():
    sim = Simulator()
    fired = []
    for name in ("first", "second", "third"):
        sim.schedule(1.0, fired.append, name)
    sim.run()
    assert fired == ["first", "second", "third"]


def test_zero_delay_allowed():
    sim = Simulator()
    fired = []
    sim.schedule(0.0, fired.append, 1)
    sim.run()
    assert fired == [1]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, lambda: sim.schedule_at(7.0, lambda: fired.append(sim.now)))
    sim.run()
    assert fired == [7.0]


def test_cancel_prevents_execution():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    handle.cancel()
    assert sim.run() == 0
    assert fired == []


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert sim.pending == 0


def test_cancel_mid_run():
    sim = Simulator()
    fired = []
    later = sim.schedule(2.0, fired.append, "later")
    sim.schedule(1.0, later.cancel)
    sim.run()
    assert fired == []


def test_pending_excludes_cancelled():
    sim = Simulator()
    keep = sim.schedule(1.0, lambda: None)
    drop = sim.schedule(2.0, lambda: None)
    drop.cancel()
    assert sim.pending == 1
    assert keep is not None


def test_run_until_stops_clock_at_until():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(10.0, fired.append, "b")
    sim.run(until=5.0)
    assert fired == ["a"]
    assert sim.now == 5.0
    sim.run()
    assert fired == ["a", "b"]


def test_run_until_includes_events_at_boundary():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, "exact")
    sim.run(until=5.0)
    assert fired == ["exact"]


def test_run_max_events():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i + 1), fired.append, i)
    assert sim.run(max_events=3) == 3
    assert fired == [0, 1, 2]


def test_events_can_schedule_events():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 4:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(1.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3, 4]
    assert sim.now == 5.0


def test_run_not_reentrant():
    sim = Simulator()
    errors = []

    def nested():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, nested)
    sim.run()
    assert len(errors) == 1


def test_peek_time():
    sim = Simulator()
    assert sim.peek_time() is None
    sim.schedule(4.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.peek_time() == 2.0


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False


def test_step_executes_one_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    assert sim.step() is True
    assert fired == ["a"]
    assert sim.pending == 1


def test_events_executed_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_executed == 5


def test_clock_monotonicity_across_many_events():
    sim = Simulator()
    times = []
    import random

    rng = random.Random(0)
    for _ in range(200):
        sim.schedule(rng.uniform(0, 100), lambda: times.append(sim.now))
    sim.run()
    assert times == sorted(times)
    assert len(times) == 200


def test_repr_smoke():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    assert "pending" in repr(sim)
    assert "pending" in repr(handle)
    handle.cancel()
    assert "cancelled" in repr(handle)
