"""Ordering forensics: journey reconstruction, stall attribution, CLI.

The acceptance criterion for the forensics layer: on a fixed-seed chaos
run every buffer event carries its blocking ``(atom_id, expected_seq)``
pair and a resolved cause, ``repro explain --message`` reconstructs the
full ingress -> atoms -> receiver journey, and all output is
byte-identical across two same-seed runs.
"""

import json

import pytest

from repro.cli import main
from repro.faults.campaign import ChaosConfig, execute_campaign
from repro.obs.exporters import trace_to_jsonl
from repro.obs.forensics import (
    CAUSE_IN_FLIGHT,
    CAUSE_LINK_FAILURE,
    CAUSE_PRIORITY,
    JourneyIndex,
    render_journey,
    render_stalls,
    waits_to_dot,
)

#: Same shape as the CLI's inline `repro explain` run: small topology,
#: enough traffic to cross the fault window and force real hold-backs.
CONFIG = ChaosConfig(seed=0, hosts=16, groups=6, events=40, horizon=250.0)

KNOWN_CAUSES = set(CAUSE_PRIORITY) | {CAUSE_IN_FLIGHT, CAUSE_LINK_FAILURE}


@pytest.fixture(scope="module")
def chaos_run():
    return execute_campaign(CONFIG)


@pytest.fixture(scope="module")
def index(chaos_run):
    return JourneyIndex(chaos_run.fabric.trace)


class TestJourneyReconstruction:
    def test_every_published_message_has_a_journey(self, chaos_run, index):
        assert set(index.journeys) == set(chaos_run.fabric.published)

    def test_journeys_cover_ingress_atoms_distribution_receivers(self, index):
        complete = 0
        for journey in index.journeys.values():
            assert journey.publish_time >= 0.0
            if not journey.atom_events:
                continue  # stranded before reaching a sequencing node
            complete += 1
            # Ingress stamping assigns the group-local number first.
            first = journey.atom_events[0]
            assert first.action == "seq"
            assert first.group_seq is not None
            assert journey.distribute_time is not None
            assert journey.distribute_node is not None
            assert journey.legs
        assert complete > 0

    def test_atom_events_in_path_order(self, index):
        for journey in index.journeys.values():
            times = [e.time for e in journey.atom_events]
            assert times == sorted(times)

    def test_breakdown_components_sum_exactly(self, index):
        checked = 0
        for journey in index.journeys.values():
            for host in journey.legs:
                breakdown = journey.breakdown(host)
                if breakdown is None:
                    continue
                checked += 1
                assert breakdown["total"] == pytest.approx(
                    breakdown["propagation"]
                    + breakdown["sequencing"]
                    + breakdown["holdback"]
                )
                assert breakdown["holdback"] >= 0.0
                assert breakdown["sequencing"] >= 0.0
        assert checked > 0

    def test_buffered_legs_have_positive_holdback(self, index):
        for event in index.buffer_events:
            if not event.resolved:
                continue
            journey = index.journeys[event.msg_id]
            breakdown = journey.breakdown(event.host)
            if breakdown is None:
                continue
            assert breakdown["holdback"] == pytest.approx(event.waited)


class TestStallAttribution:
    def test_every_buffer_event_has_blocking_pair_and_cause(self, index):
        assert index.buffer_events
        for event in index.buffer_events:
            assert event.blocked_kind in ("group", "atom")
            assert event.blocked_on
            assert isinstance(event.expected_seq, int)
            assert event.have_seq != event.expected_seq
            assert event.cause in KNOWN_CAUSES

    def test_missing_msg_is_the_sequence_space_owner(self, index):
        for event in index.buffer_events:
            if event.missing_msg is None:
                continue
            missing = index.journeys[event.missing_msg]
            # The predecessor really was assigned the expected number in
            # the blocking space.
            owned = set()
            for atom_event in missing.atom_events:
                if atom_event.seq is not None:
                    owned.add((atom_event.atom, atom_event.seq))
                if atom_event.group_seq is not None:
                    owned.add((f"group:{missing.group}", atom_event.group_seq))
            assert (event.blocked_on, event.expected_seq) in owned

    def test_drained_events_have_wait_and_unblocker(self, index):
        for event in index.buffer_events:
            if event.resolved:
                assert event.waited is not None and event.waited >= 0.0
                assert event.unblocked_by in index.journeys

    def test_attributed_causes_carry_evidence(self, index):
        for event in index.buffer_events:
            if event.cause != CAUSE_IN_FLIGHT:
                assert event.evidence.get(event.cause, 0) > 0

    def test_stall_threshold_filters(self, index):
        everything = index.stalls(0.0)
        assert len(everything) == len(index.buffer_events)
        slow = index.stalls(10.0)
        assert len(slow) < len(everything)
        for event in slow:
            assert not event.resolved or event.waited >= 10.0

    def test_stall_report_shape(self, index):
        report = index.stall_report(threshold=0.0)
        assert report["messages"] == len(index.journeys)
        assert report["buffer_events"] == len(index.buffer_events)
        assert sum(report["by_cause"].values()) == len(index.buffer_events)
        assert json.loads(json.dumps(report)) == report


class TestHoldbackHistory:
    def test_history_matches_buffer_and_drain_counts(self, index):
        for event in index.buffer_events:
            history = index.holdback_history(event.host)
            assert history
            # Depth never negative, and back to zero iff everything drained.
            depths = [depth for _, depth in history]
            assert min(depths) >= 0
            host_events = [
                e for e in index.buffer_events if e.host == event.host
            ]
            unresolved = sum(1 for e in host_events if not e.resolved)
            assert depths[-1] == unresolved

    def test_history_empty_for_quiet_host(self, index):
        buffered_hosts = {e.host for e in index.buffer_events}
        quiet = next(h for h in range(CONFIG.hosts) if h not in buffered_hosts)
        assert index.holdback_history(quiet) == []


class TestWaitGraph:
    def test_one_edge_per_buffer_event(self, index):
        edges = index.waits_edges()
        assert len(edges) == len(index.buffer_events)
        for edge in edges:
            assert edge["waiter"] in index.journeys

    def test_json_document_nodes_cover_edges(self, index):
        doc = index.waits_to_json()
        nodes = set(doc["messages"])
        for edge in doc["waits"]:
            assert edge["waiter"] in nodes
            if edge["on"] is not None:
                assert edge["on"] in nodes

    def test_dot_export(self, index):
        dot = waits_to_dot(index)
        assert dot.startswith("digraph waits {")
        assert dot.rstrip().endswith("}")
        for edge in index.waits_edges():
            if edge["on"] is not None:
                assert f"m{edge['waiter']} -> m{edge['on']}" in dot


class TestRoundTripAndDeterminism:
    def test_jsonl_rebuild_is_identical(self, chaos_run, index):
        rebuilt = JourneyIndex.from_jsonl(trace_to_jsonl(chaos_run.fabric.trace))
        live = json.dumps(index.stall_report(0.0), sort_keys=True)
        disk = json.dumps(rebuilt.stall_report(0.0), sort_keys=True)
        assert live == disk
        assert json.dumps(
            {m: j.to_dict() for m, j in sorted(index.journeys.items())},
            sort_keys=True,
        ) == json.dumps(
            {m: j.to_dict() for m, j in sorted(rebuilt.journeys.items())},
            sort_keys=True,
        )
        assert waits_to_dot(index) == waits_to_dot(rebuilt)

    def test_same_seed_runs_are_byte_identical(self, index):
        second = JourneyIndex(execute_campaign(CONFIG).fabric.trace)
        assert json.dumps(index.stall_report(0.0), sort_keys=True) == json.dumps(
            second.stall_report(0.0), sort_keys=True
        )


class TestRendering:
    def test_render_journey_shows_path_and_waits(self, index):
        buffered = index.buffer_events[0]
        text = render_journey(index.journeys[buffered.msg_id])
        assert f"message {buffered.msg_id}:" in text
        assert buffered.blocked_on in text
        assert f"[{buffered.cause}]" in text

    def test_render_stalls_lists_blocking_pairs(self, index):
        text = render_stalls(index.stall_report(0.0))
        for event in index.buffer_events[:3]:
            assert event.blocked_on in text

    def test_render_stalls_empty(self):
        text = render_stalls(
            {
                "threshold_ms": 1.0,
                "messages": 0,
                "buffer_events": 0,
                "unresolved": 0,
                "by_cause": {},
                "stalls": [],
            }
        )
        assert "no stalls" in text


class TestCampaignForensics:
    def test_passing_campaign_has_no_forensics_block(self, chaos_run):
        assert chaos_run.report["ok"] is True
        assert "forensics" not in chaos_run.report

    def test_failing_campaign_attaches_stall_report(self):
        # Detection slowed far past the retransmit budget: traffic to the
        # crashed node is abandoned, findings appear, forensics attach.
        config = ChaosConfig(
            seed=0,
            hosts=16,
            groups=6,
            events=40,
            horizon=250.0,
            heartbeat_interval=60.0,
            suspect_after=60,
            max_retransmits=2,
        )
        run = execute_campaign(config)
        assert run.report["ok"] is False
        forensics = run.report["forensics"]
        assert forensics["buffer_events"] == len(
            JourneyIndex(run.fabric.trace).buffer_events
        )
        assert json.loads(json.dumps(run.report)) == run.report


# -- CLI ---------------------------------------------------------------------


class TestExplainCli:
    def test_stalls_json_deterministic(self, tmp_path):
        args = [
            "explain",
            "--stalls",
            "--format", "json",
        ]
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(args + ["--out", str(a)]) == 0
        assert main(args + ["--out", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()
        payload = json.loads(a.read_text())
        assert payload["stalls"]["buffer_events"] > 0
        for stall in payload["stalls"]["stalls"]:
            assert stall["blocked_on"]
            assert stall["cause"]

    def test_message_journey(self, index, capsys):
        msg_id = index.buffer_events[0].msg_id
        assert main(["explain", "--message", str(msg_id)]) == 0
        out = capsys.readouterr().out
        assert f"message {msg_id}:" in out
        assert "stamped" in out
        assert "latency: total" in out

    def test_unknown_message_fails(self, capsys):
        assert main(["explain", "--message", "99999"]) == 1
        assert "not in" in capsys.readouterr().err

    def test_receiver_history(self, index, capsys):
        host = index.buffer_events[0].host
        assert main(["explain", "--receiver", str(host)]) == 0
        out = capsys.readouterr().out
        assert f"host {host}:" in out
        assert "depth=" in out

    def test_dot_export(self, tmp_path, capsys):
        dot = tmp_path / "waits.dot"
        assert main(["explain", "--stalls", "--dot", str(dot)]) == 0
        assert dot.read_text().startswith("digraph waits {")

    def test_trace_file_source(self, chaos_run, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        path.write_text(trace_to_jsonl(chaos_run.fabric.trace) + "\n")
        assert main(["explain", "--trace", str(path), "--stalls"]) == 0
        out = capsys.readouterr().out
        assert "buffer event(s)" in out
