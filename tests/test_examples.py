"""Run each example script end-to-end (they self-verify with asserts)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "game_world", "stock_ticker", "messaging"} <= names


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()
