"""Tests for host crashes, delivery callbacks, and new metric helpers."""

import pytest

from repro import OrderedPubSub
from repro.metrics.stats import mean_confidence_interval
from repro.metrics.stretch import delivery_latencies
from repro.pubsub.membership import GroupMembership
from repro.sim.events import SimulationError


def pair_membership():
    membership = GroupMembership()
    membership.create_group([0, 1, 2, 3], group_id=0)
    return membership


# ---------------------------------------------------------------------------
# Host crash
# ---------------------------------------------------------------------------


def test_host_crash_requires_reliability(env32):
    fabric = env32.build_fabric(pair_membership())
    with pytest.raises(SimulationError):
        fabric.host_processes[1].crash(10.0)


def test_host_crash_duration_positive(env32):
    fabric = env32.build_fabric(pair_membership(), retransmit_timeout=5.0)
    with pytest.raises(ValueError):
        fabric.host_processes[1].crash(-1.0)


def test_host_crash_misses_nothing(env32):
    fabric = env32.build_fabric(pair_membership(), retransmit_timeout=5.0)
    fabric.sim.schedule(0.5, fabric.host_processes[2].crash, 25.0)
    for i in range(6):
        fabric.publish(0, 0, i)
    fabric.run()
    assert [r.payload for r in fabric.delivered(2)] == list(range(6))
    assert fabric.host_processes[2].crashes == 1


def test_host_crash_in_order_after_recovery(env32):
    fabric = env32.build_fabric(pair_membership(), retransmit_timeout=5.0)
    fabric.sim.schedule(0.1, fabric.host_processes[3].crash, 20.0)
    ids = [fabric.publish(1, 0, i) for i in range(5)]
    fabric.run()
    got = [r.msg_id for r in fabric.delivered(3)]
    assert got == ids  # FIFO restored by the hold-back layer


def test_host_crash_other_hosts_unaffected(env32):
    def first_delivery_time(crash):
        fabric = env32.build_fabric(pair_membership(), retransmit_timeout=5.0)
        if crash:
            fabric.sim.schedule(0.1, fabric.host_processes[3].crash, 30.0)
        fabric.publish(0, 0, "x")
        fabric.run()
        return fabric.delivered(1)[0].time

    assert first_delivery_time(True) == pytest.approx(first_delivery_time(False))


# ---------------------------------------------------------------------------
# Facade delivery callback
# ---------------------------------------------------------------------------


def test_on_deliver_callback_via_facade():
    bus = OrderedPubSub(n_hosts=8, seed=1)
    seen = []
    bus.on_deliver = lambda host, record: seen.append((host, record.payload))
    group = bus.create_group([0, 1])
    bus.publish(0, group, "hello")
    bus.run()
    assert sorted(seen) == [(0, "hello"), (1, "hello")]


def test_on_deliver_survives_epoch_switch():
    bus = OrderedPubSub(n_hosts=8, seed=1)
    seen = []
    bus.on_deliver = lambda host, record: seen.append(record.payload)
    group = bus.create_group([0, 1])
    bus.publish(0, group, "a")
    bus.run()
    bus.create_group([3, 4])  # forces a new epoch
    bus.publish(0, group, "b")
    bus.run()
    assert seen.count("a") == 2 and seen.count("b") == 2


def test_on_deliver_can_be_attached_late():
    bus = OrderedPubSub(n_hosts=8, seed=1)
    group = bus.create_group([0, 1])
    bus.publish(0, group, "early")
    bus.run()
    seen = []
    bus.on_deliver = lambda host, record: seen.append(record.payload)
    bus.publish(1, group, "late")
    bus.run()
    assert seen == ["late", "late"]


# ---------------------------------------------------------------------------
# Metric helpers
# ---------------------------------------------------------------------------


def test_delivery_latencies(env32):
    fabric = env32.build_fabric(pair_membership())
    fabric.publish(0, 0)
    fabric.run()
    latencies = delivery_latencies(fabric)
    assert len(latencies) == 4
    assert all(v > 0 for v in latencies)


def test_mean_confidence_interval_basic():
    mean, low, high = mean_confidence_interval([1.0, 2.0, 3.0, 4.0, 5.0])
    assert mean == 3.0
    assert low < mean < high


def test_mean_confidence_interval_single_point():
    assert mean_confidence_interval([7.0]) == (7.0, 7.0, 7.0)


def test_mean_confidence_interval_constant_sample():
    assert mean_confidence_interval([2.0, 2.0, 2.0]) == (2.0, 2.0, 2.0)


def test_mean_confidence_interval_empty_rejected():
    with pytest.raises(ValueError):
        mean_confidence_interval([])


def test_mean_confidence_interval_widens_with_confidence():
    sample = [1.0, 5.0, 3.0, 4.0, 2.0]
    _, low95, high95 = mean_confidence_interval(sample, 0.95)
    _, low99, high99 = mean_confidence_interval(sample, 0.99)
    assert low99 < low95 and high99 > high95
