"""Smoke tests at the paper's full topology scale (10,000 routers).

The evaluation topology is cheap to build (coordinates + sparse edges)
and cheap to route over (on-demand single-source Dijkstra), so a
paper-scale end-to-end run belongs in the regular suite.
"""

import random

import pytest

from repro.experiments.common import ExperimentEnv
from repro.metrics.stretch import latency_stretch_by_destination
from repro.topology.gtitm import TransitStubParams
from repro.workloads.zipf import zipf_membership


@pytest.fixture(scope="module")
def paper_env():
    return ExperimentEnv(n_hosts=128, seed=0, paper_scale=True)


def test_paper_scale_topology_size(paper_env):
    params = TransitStubParams.paper_scale()
    assert paper_env.topology.n_nodes == params.expected_nodes()
    assert paper_env.topology.n_nodes >= 10_000


def test_paper_scale_end_to_end(paper_env):
    snapshot = zipf_membership(128, 8, rng=random.Random(1))
    fabric = paper_env.build_fabric(
        paper_env.membership_from(snapshot), seed=0, trace=False
    )
    paper_env.run_one_message_per_membership(fabric)
    assert fabric.pending_messages() == {}
    stretch = latency_stretch_by_destination(fabric)
    assert stretch
    assert all(v > 0 for v in stretch.values())


def test_paper_scale_hosts_on_distinct_routers(paper_env):
    routers = [h.router for h in paper_env.hosts]
    assert len(set(routers)) == len(routers)


def test_paper_scale_routing_sane(paper_env):
    routing = paper_env.routing
    a, b = paper_env.hosts[0].router, paper_env.hosts[-1].router
    assert routing.delay(a, b) > 0
    path = routing.path(a, b)
    assert path[0] == a and path[-1] == b
