"""Unit tests for atom runtime state and receiver delivery logic."""

import pytest

from repro.core.atoms import AtomRuntime, build_atom_runtimes
from repro.core.delivery import DeliveryState
from repro.core.messages import AtomId, Message, Stamp
from repro.core.sequencing_graph import SequencingGraph


def build(snapshot, **kwargs):
    return SequencingGraph.build(
        {g: frozenset(m) for g, m in snapshot.items()}, **kwargs
    )


TRIANGLE = {0: {0, 1, 3}, 1: {0, 1, 2}, 2: {1, 2, 3}}


# ---------------------------------------------------------------------------
# AtomRuntime
# ---------------------------------------------------------------------------


def test_overlap_seq_monotonic():
    runtime = AtomRuntime(AtomId.overlap(0, 1))
    assert [runtime.next_overlap_seq() for _ in range(3)] == [1, 2, 3]


def test_group_local_counters_independent():
    runtime = AtomRuntime(AtomId.overlap(0, 1))
    assert runtime.next_group_local_seq(0) == 1
    assert runtime.next_group_local_seq(1) == 1
    assert runtime.next_group_local_seq(0) == 2


def test_build_runtimes_wires_forwarding_tables():
    graph = build(TRIANGLE)
    runtimes = build_atom_runtimes(graph)
    for group in graph.groups():
        path = graph.group_path(group)
        assert runtimes[path[0]].prev_atom[group] is None
        assert runtimes[path[-1]].next_atom[group] is None
        for a, b in zip(path, path[1:]):
            assert runtimes[a].next_atom[group] == b
            assert runtimes[b].prev_atom[group] == a


def test_process_assigns_group_local_at_ingress():
    graph = build(TRIANGLE)
    runtimes = build_atom_runtimes(graph)
    group = 0
    path = graph.group_path(group)
    msg = Message(1, group, sender=0)
    runtimes[path[0]].process(msg)
    assert msg.group_seq == 1


def test_process_stamps_own_groups_only():
    graph = build(TRIANGLE)
    runtimes = build_atom_runtimes(graph)
    # Find a group with a pass-through atom (the triangle always has one).
    group = next(g for g in graph.groups() if graph.pass_through_atoms(g))
    msg = Message(1, group, sender=0)
    current = graph.group_path(group)[0]
    while current is not None:
        current = runtimes[current].process(msg)
    stamped = {atom for atom, _ in msg.atom_seqs}
    assert stamped == set(graph.atoms_of_group(group))


def test_process_pass_through_counts():
    graph = build(TRIANGLE)
    runtimes = build_atom_runtimes(graph)
    group = next(g for g in graph.groups() if graph.pass_through_atoms(g))
    passthrough = graph.pass_through_atoms(group)[0]
    msg = Message(1, group, sender=0)
    current = graph.group_path(group)[0]
    while current is not None:
        current = runtimes[current].process(msg)
    assert runtimes[passthrough].messages_passed_through == 1


def test_process_unknown_group_rejected():
    runtime = AtomRuntime(AtomId.overlap(0, 1))
    with pytest.raises(KeyError):
        runtime.process(Message(1, 5, sender=0))


def test_ingress_only_atom_runtime():
    graph = build({0: {1, 2}})
    runtimes = build_atom_runtimes(graph)
    atom = AtomId.ingress(0)
    msg = Message(1, 0, sender=1)
    assert runtimes[atom].process(msg) is None
    assert msg.group_seq == 1
    assert msg.atom_seqs == ()


def test_runtime_repr():
    runtime = AtomRuntime(AtomId.overlap(0, 1))
    assert "Q(0,1)" in repr(runtime)


# ---------------------------------------------------------------------------
# DeliveryState
# ---------------------------------------------------------------------------


def q(g, h):
    return AtomId.overlap(g, h)


def test_in_order_group_sequence_delivers():
    state = DeliveryState(0, groups=[0], relevant_atoms=[])
    out1 = state.on_receive(Stamp(0, 1))
    out2 = state.on_receive(Stamp(0, 2))
    assert len(out1) == len(out2) == 1


def test_gap_buffers_until_filled():
    state = DeliveryState(0, groups=[0], relevant_atoms=[])
    assert state.on_receive(Stamp(0, 2)) == []
    assert state.pending == 1
    released = state.on_receive(Stamp(0, 1))
    assert [s.group_seq for s, _ in released] == [1, 2]
    assert state.pending == 0


def test_relevant_atom_gates_delivery():
    state = DeliveryState(0, groups=[0, 1], relevant_atoms=[q(0, 1)])
    # Message to group 1 holding atom seq 2 must wait for seq 1 (group 0).
    assert state.on_receive(Stamp(1, 1, ((q(0, 1), 2),))) == []
    released = state.on_receive(Stamp(0, 1, ((q(0, 1), 1),)))
    assert [s.group for s, _ in released] == [0, 1]


def test_irrelevant_atom_ignored():
    state = DeliveryState(0, groups=[0], relevant_atoms=[])
    # Stamp carries an atom this receiver is not in: ignored entirely.
    out = state.on_receive(Stamp(0, 1, ((q(0, 1), 42),)))
    assert len(out) == 1


def test_unsubscribed_group_rejected():
    state = DeliveryState(0, groups=[0], relevant_atoms=[])
    with pytest.raises(KeyError):
        state.on_receive(Stamp(5, 1))


def test_deliverable_is_pure_check():
    state = DeliveryState(0, groups=[0], relevant_atoms=[])
    stamp = Stamp(0, 1)
    assert state.deliverable(stamp)
    assert state.deliverable(stamp)  # no side effects
    assert state.expected_group_seq(0) == 1


def test_counters_advance_on_delivery():
    state = DeliveryState(0, groups=[0], relevant_atoms=[q(0, 1)])
    state.on_receive(Stamp(0, 1, ((q(0, 1), 1),)))
    assert state.expected_group_seq(0) == 2
    # Next atom seq expected is 2: a stamp with atom seq 3 must wait.
    assert state.on_receive(Stamp(0, 2, ((q(0, 1), 3),))) == []


def test_chained_release():
    state = DeliveryState(0, groups=[0], relevant_atoms=[])
    assert state.on_receive(Stamp(0, 3)) == []
    assert state.on_receive(Stamp(0, 2)) == []
    released = state.on_receive(Stamp(0, 1))
    assert [s.group_seq for s, _ in released] == [1, 2, 3]


def test_cross_group_independent_sequences():
    state = DeliveryState(0, groups=[0, 1], relevant_atoms=[])
    out_a = state.on_receive(Stamp(0, 1))
    out_b = state.on_receive(Stamp(1, 1))
    assert len(out_a) == len(out_b) == 1


def test_payload_carried_through():
    state = DeliveryState(0, groups=[0], relevant_atoms=[])
    released = state.on_receive(Stamp(0, 1), payload="hello")
    assert released[0][1] == "hello"


def test_buffered_high_water():
    state = DeliveryState(0, groups=[0], relevant_atoms=[])
    state.on_receive(Stamp(0, 3))
    state.on_receive(Stamp(0, 2))
    assert state.buffered_high_water == 2


def test_pending_stamps():
    state = DeliveryState(0, groups=[0], relevant_atoms=[])
    state.on_receive(Stamp(0, 5))
    assert [s.group_seq for s in state.pending_stamps()] == [5]


def test_delivered_count():
    state = DeliveryState(0, groups=[0], relevant_atoms=[])
    for seq in (1, 2, 3):
        state.on_receive(Stamp(0, seq))
    assert state.delivered_count == 3


def test_subscribes_to():
    state = DeliveryState(0, groups=[3], relevant_atoms=[])
    assert state.subscribes_to(3)
    assert not state.subscribes_to(4)


def test_repr():
    state = DeliveryState(7, groups=[0], relevant_atoms=[])
    assert "host=7" in repr(state)


# ---------------------------------------------------------------------------
# Blocking explainer and observers
# ---------------------------------------------------------------------------


def test_blocking_of_names_group_gap():
    state = DeliveryState(0, groups=[0], relevant_atoms=[])
    blocking = state.blocking_of(Stamp(0, 3))
    assert blocking == ("group", "group:0", 3, 1)


def test_blocking_of_names_atom_gap():
    state = DeliveryState(0, groups=[0], relevant_atoms=[q(0, 1)])
    blocking = state.blocking_of(Stamp(0, 1, ((q(0, 1), 4),)))
    assert blocking == ("atom", "Q(0,1)", 4, 1)


def test_blocking_of_deliverable_is_none():
    state = DeliveryState(0, groups=[0], relevant_atoms=[])
    assert state.blocking_of(Stamp(0, 1)) is None


def test_blocking_of_checks_group_before_atoms():
    state = DeliveryState(0, groups=[0], relevant_atoms=[q(0, 1)])
    # Both constraints unmet: the group counter is reported (decision order).
    blocking = state.blocking_of(Stamp(0, 2, ((q(0, 1), 2),)))
    assert blocking.kind == "group"


def test_blocking_of_unsubscribed_group_rejected():
    state = DeliveryState(0, groups=[0], relevant_atoms=[])
    with pytest.raises(KeyError):
        state.blocking_of(Stamp(9, 1))


def test_on_buffer_observer_reports_gap():
    state = DeliveryState(0, groups=[0], relevant_atoms=[])
    seen = []
    state.on_buffer = lambda stamp, payload, blocking: seen.append(
        (stamp.group_seq, payload, blocking)
    )
    state.on_receive(Stamp(0, 2), payload="late")
    assert seen == [(2, "late", ("group", "group:0", 2, 1))]
    # Deliverable arrivals never hit the observer.
    state.on_receive(Stamp(0, 1))
    assert len(seen) == 1


def test_on_drain_observer_reports_unblocking_arrival():
    state = DeliveryState(0, groups=[0], relevant_atoms=[])
    drains = []
    state.on_drain = lambda stamp, payload, by_stamp, by_payload: drains.append(
        (stamp.group_seq, payload, by_stamp.group_seq, by_payload)
    )
    state.on_receive(Stamp(0, 2), payload="second")
    state.on_receive(Stamp(0, 1), payload="first")
    assert drains == [(2, "second", 1, "first")]


def test_cascade_drain_releases_in_order_with_root_arrival():
    """One arrival releasing >= 3 buffered messages: delivery order is the
    sequence order and every drain is credited to the root arrival."""
    state = DeliveryState(0, groups=[0], relevant_atoms=[])
    drains = []
    state.on_drain = lambda stamp, payload, by_stamp, by_payload: drains.append(
        (stamp.group_seq, by_stamp.group_seq)
    )
    for seq in (4, 2, 3):  # buffered out of order
        assert state.on_receive(Stamp(0, seq)) == []
    assert state.pending == 3
    assert state.buffered_high_water == 3
    released = state.on_receive(Stamp(0, 1))
    assert [s.group_seq for s, _ in released] == [1, 2, 3, 4]
    assert drains == [(2, 1), (3, 1), (4, 1)]
    assert state.pending == 0
    # High-water reflects the cascade peak, not the drained end state.
    assert state.buffered_high_water == 3


def test_on_occupancy_tracks_cascade_depths():
    state = DeliveryState(0, groups=[0], relevant_atoms=[])
    depths = []
    state.on_occupancy = depths.append
    for seq in (4, 2, 3):
        state.on_receive(Stamp(0, seq))
    state.on_receive(Stamp(0, 1))
    # One callback per net size change: three buffers, then the cascade
    # empties the buffer within a single on_receive (one callback, depth 0).
    assert depths == [1, 2, 3, 0]


def test_on_occupancy_not_called_for_direct_delivery():
    state = DeliveryState(0, groups=[0], relevant_atoms=[])
    depths = []
    state.on_occupancy = depths.append
    state.on_receive(Stamp(0, 1))
    assert depths == []


def test_partial_cascade_occupancy_and_order():
    """An arrival that releases only part of the buffer: the still-blocked
    message stays, occupancy reflects the partial drain."""
    state = DeliveryState(0, groups=[0], relevant_atoms=[])
    depths = []
    state.on_occupancy = depths.append
    state.on_receive(Stamp(0, 2))
    state.on_receive(Stamp(0, 5))  # still blocked after 1-3 arrive
    state.on_receive(Stamp(0, 3))
    released = state.on_receive(Stamp(0, 1))
    assert [s.group_seq for s, _ in released] == [1, 2, 3]
    assert state.pending == 1
    assert depths == [1, 2, 3, 1]
    assert state.buffered_high_water == 3


def test_pending_blocking_reflects_current_counters():
    state = DeliveryState(0, groups=[0], relevant_atoms=[])
    state.on_receive(Stamp(0, 3))
    state.on_receive(Stamp(0, 4))
    [(s3, b3), (s4, b4)] = state.pending_blocking()
    assert (s3.group_seq, b3.expected) == (3, 1)
    assert (s4.group_seq, b4.expected) == (4, 1)
    state.on_receive(Stamp(0, 1))  # 3 and 4 still blocked, now on seq 2
    assert [b.expected for _, b in state.pending_blocking()] == [2, 2]
