"""The ``repro top`` operator view: rendering, replay, membership rebuild."""

import io
import random

import pytest

from repro.experiments.common import ExperimentEnv
from repro.obs.exporters import write_trace_jsonl
from repro.obs.live import LiveMonitor, TelemetrySnapshot
from repro.obs.live.top import (
    iter_replay,
    membership_from_records,
    read_trace_jsonl,
    render_frame,
    run_top,
)

SNAPSHOT = {
    0: frozenset({0, 1, 2, 3}),
    1: frozenset({1, 2, 4, 5}),
}


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    env = ExperimentEnv(n_hosts=6, seed=1)
    fabric = env.build_fabric(
        env.membership_from(SNAPSHOT), seed=1, trace=True, loss_rate=0.05
    )
    monitor = LiveMonitor(node="origin")
    monitor.attach(fabric)
    rng = random.Random(1)
    for _ in range(25):
        group = rng.choice(sorted(SNAPSHOT))
        fabric.publish(rng.choice(sorted(SNAPSHOT[group])), group)
    fabric.run()
    assert not fabric.pending_messages()
    path = write_trace_jsonl(
        fabric.trace, tmp_path_factory.mktemp("top") / "run.jsonl"
    )
    return str(path), fabric, monitor


class TestMembershipReconstruction:
    def test_rebuilt_from_deliver_records(self, trace_file):
        path, fabric, _ = trace_file
        membership = membership_from_records(read_trace_jsonl(path))
        for group, members in SNAPSHOT.items():
            assert membership[group] == members

    def test_empty_trace_gives_empty_membership(self):
        assert membership_from_records([]) == {}


class TestReplay:
    def test_final_frame_matches_the_live_monitor(self, trace_file):
        path, _, live = trace_file
        frames = list(iter_replay(path, window_ms=25.0))
        assert len(frames) >= 2
        final = frames[-1]
        assert final.published == live.published_total
        assert final.delivered == live.delivered_total
        assert final.violations == 0
        live_summary = live.latency.summary()["delivery"]
        replay_summary = final.phase_summaries()["delivery"]
        assert replay_summary["count"] == live_summary["count"]
        assert replay_summary["p99"] == pytest.approx(live_summary["p99"])

    def test_frames_advance_in_virtual_time(self, trace_file):
        path, _, _ = trace_file
        frames = list(iter_replay(path, window_ms=25.0))
        times = [frame.now for frame in frames]
        assert times == sorted(times)

    def test_rejects_nonpositive_window(self, trace_file):
        path, _, _ = trace_file
        with pytest.raises(ValueError):
            list(iter_replay(path, window_ms=0.0))


class TestRenderFrame:
    def test_contains_the_operator_sections(self, trace_file):
        path, _, _ = trace_file
        frames = list(iter_replay(path, window_ms=25.0))
        text = render_frame(frames[-1], frames[-2])
        assert "repro top — node replay" in text
        assert "delivery" in text and "sequencing" in text
        assert "hold-back" in text
        assert "fences" in text
        assert "recent alerts" in text

    def test_rate_uses_virtual_time_deltas(self):
        monitor = LiveMonitor(node="n", retain_audit=False)
        previous = TelemetrySnapshot.from_monitor(monitor)
        monitor.delivered_total = 50
        monitor.now = 100.0
        current = TelemetrySnapshot.from_monitor(monitor)
        text = render_frame(current, previous)
        # 50 deliveries over 100 virtual ms = 500 msg/s.
        assert "500.0 msg/s" in text

    def test_no_previous_frame_renders_dash_rate(self):
        monitor = LiveMonitor(node="n", retain_audit=False)
        text = render_frame(TelemetrySnapshot.from_monitor(monitor))
        assert "- msg/s" in text


class TestRunTop:
    def test_writes_frames_and_returns_final(self, trace_file):
        path, _, _ = trace_file
        out = io.StringIO()
        final = run_top(iter_replay(path, window_ms=25.0), out=out, clear=False)
        body = out.getvalue()
        assert body.count("repro top — node replay") >= 2
        assert "\x1b[2J" not in body
        assert final.violations == 0

    def test_clear_mode_emits_ansi_clear(self, trace_file):
        path, _, _ = trace_file
        out = io.StringIO()
        run_top(iter_replay(path, window_ms=1000.0), out=out, clear=True)
        assert out.getvalue().startswith("\x1b[2J\x1b[H")

    def test_raises_on_empty_stream(self):
        with pytest.raises(RuntimeError):
            run_top(iter(()), out=io.StringIO())
