"""Certificate export/verify round trips on live fabrics + GV206.

Satellite coverage for the previously-untested offline path: a fabric on
the live :class:`AsyncioTransport` exports a certificate through
``fabric.export_certificate()`` which ``verify_certificate`` proves
clean, including the new ``channels`` section (GV206: retired channels
never reappear as live edges), through a JSON file round trip, and
through the service's ``check`` endpoint — all without opening a socket.
Adversarial fixtures tamper with the channel section to show GV206
actually rejects inconsistent certificates.
"""

import asyncio
import copy
import json

import pytest

from repro.check import load_certificate, verify_certificate
from tests.test_runtime_conformance import (
    LIVE_TIME_SCALE,
    build_fabric,
    busiest_node,
    publish_mixed,
    runtime_factory,  # noqa: F401 - pytest fixture re-export
)


def drive_failover(fabric):
    """Publish, then relocate the busiest node, retiring its channels.

    Stops *before* any post-move traffic: channel keys are process names
    (machine-independent), so new traffic would re-create — and thereby
    un-retire — the very edges these tests inspect.
    """
    publish_mixed(fabric, 8, spread=10.0)
    fabric.run()
    node = busiest_node(fabric)
    fabric.relocate_node(
        node.node_id, (node.machine + 1) % fabric.topology.n_nodes
    )


# -- export + verify on both backends ----------------------------------------


def test_certificate_includes_channel_section(env32, runtime_factory):
    fabric = build_fabric(env32, runtime_factory())
    publish_mixed(fabric, 6, spread=10.0)
    fabric.run()
    cert = fabric.export_certificate()
    channels = cert["channels"]
    assert channels["retired_count"] == 0
    assert channels["retired"] == []
    assert len(channels["live"]) == len(fabric.network.channels)
    assert verify_certificate(cert) == []


def test_failover_certificate_verifies_clean(env32, runtime_factory):
    """After a relocation the retired edges are recorded, disjoint from
    the live set, and the certificate still proves GV206 clean."""
    fabric = build_fabric(env32, runtime_factory())
    drive_failover(fabric)
    assert fabric.network.retired_edges  # retirement actually happened
    cert = fabric.export_certificate()
    channels = cert["channels"]
    assert channels["retired_count"] >= len(channels["retired"]) > 0
    assert not set(map(tuple, channels["live"])) & set(
        map(tuple, channels["retired"])
    )
    assert verify_certificate(cert) == []
    # Post-move traffic re-creates the moved node's edges; the refreshed
    # certificate must verify clean with those edges live again.
    publish_mixed(fabric, 8, spread=10.0, seed=21)
    fabric.run()
    refreshed = fabric.export_certificate()
    assert not set(map(tuple, refreshed["channels"]["live"])) & set(
        map(tuple, refreshed["channels"]["retired"])
    )
    assert verify_certificate(refreshed) == []


def test_reconnected_edge_is_live_again(env32):
    """An edge retired by failover and later re-created must move back to
    the live set — the exact state GV206 polices."""
    from repro.runtime.sim_backend import SimTransport

    fabric = build_fabric(env32, SimTransport(seed=0))
    publish_mixed(fabric, 6, spread=10.0)
    fabric.run()
    node = busiest_node(fabric)
    machine = node.machine
    fabric.relocate_node(node.node_id, (machine + 1) % fabric.topology.n_nodes)
    retired_after_first = set(fabric.network.retired_edges)
    assert retired_after_first
    # Move it back: the original channels get re-created and must no
    # longer be reported as retired.
    fabric.relocate_node(node.node_id, machine)
    publish_mixed(fabric, 6, spread=10.0, seed=21)
    fabric.run()
    live = set(fabric.network.channels)
    assert not live & set(fabric.network.retired_edges)
    assert verify_certificate(fabric.export_certificate()) == []


def test_certificate_file_round_trip(env32, runtime_factory, tmp_path):
    fabric = build_fabric(env32, runtime_factory())
    drive_failover(fabric)
    path = tmp_path / "cert.json"
    path.write_text(json.dumps(fabric.export_certificate(), indent=2))
    cert = load_certificate(path)
    assert cert["channels"]["retired_count"] > 0
    assert verify_certificate(cert) == []


# -- GV206 adversarial fixtures ----------------------------------------------


@pytest.fixture()
def failover_cert(env32):
    from repro.runtime.sim_backend import SimTransport

    fabric = build_fabric(env32, SimTransport(seed=0))
    drive_failover(fabric)
    cert = fabric.export_certificate()
    assert verify_certificate(cert) == []
    return cert


def gv206(findings):
    return [f for f in findings if f.code == "GV206"]


def test_gv206_rejects_retired_edge_resurrected_as_live(failover_cert):
    tampered = copy.deepcopy(failover_cert)
    tampered["channels"]["live"].append(tampered["channels"]["retired"][0])
    findings = gv206(verify_certificate(tampered))
    assert findings
    assert "retired" in findings[0].message


def test_gv206_rejects_duplicate_retirement_records(failover_cert):
    tampered = copy.deepcopy(failover_cert)
    tampered["channels"]["retired"].append(tampered["channels"]["retired"][0])
    assert gv206(verify_certificate(tampered))


def test_gv206_rejects_understated_retired_count(failover_cert):
    tampered = copy.deepcopy(failover_cert)
    tampered["channels"]["retired_count"] = (
        len(tampered["channels"]["retired"]) - 1
    )
    assert gv206(verify_certificate(tampered))


def test_certificates_without_channel_section_still_verify(failover_cert):
    """Pre-GV206 certificates (no channels section) stay accepted."""
    legacy = copy.deepcopy(failover_cert)
    del legacy["channels"]
    assert verify_certificate(legacy) == []


# -- service `check` endpoint (offline, no socket) ---------------------------


def test_service_check_endpoint_covers_certificate():
    from repro.runtime.service import OrderingService

    async def scenario():
        service = OrderingService(
            n_hosts=4, seed=0, time_scale=LIVE_TIME_SCALE
        )
        try:
            for host, topic in ((0, "a"), (1, "a"), (1, "b"), (2, "b")):
                resp = await service.handle(
                    {"op": "subscribe", "host": host, "topic": topic}
                )
                assert resp["ok"]
            for sender, topic in ((0, "a"), (1, "b")):
                resp = await service.handle(
                    {"op": "publish", "sender": sender, "topic": topic,
                     "payload": topic}
                )
                assert resp["ok"]
            await service.handle({"op": "drain"})
            return await service.handle({"op": "check"})
        finally:
            service.bus.close()

    resp = asyncio.run(scenario())
    assert resp == {"ok": True, "findings": []}
