"""Unit tests for atom co-location and machine assignment (Section 3.4)."""

import random

import pytest

from repro.core.messages import AtomId
from repro.core.placement import (
    Placement,
    SequencingNode,
    assign_machines,
    co_locate_atoms,
    co_locate_and_order,
    place,
    random_placement,
)
from repro.core.sequencing_graph import SequencingGraph
from repro.topology.clusters import attach_hosts, host_router_map


def build(snapshot, **kwargs):
    return SequencingGraph.build(
        {g: frozenset(m) for g, m in snapshot.items()}, **kwargs
    )


TRIANGLE = {0: {0, 1, 3}, 1: {0, 1, 2}, 2: {1, 2, 3}}


# ---------------------------------------------------------------------------
# Co-location
# ---------------------------------------------------------------------------


def test_every_atom_co_located_exactly_once():
    graph = build(TRIANGLE)
    nodes = co_locate_atoms(graph)
    placed = [a for node in nodes for a in node.atom_ids]
    assert sorted(placed) == sorted(graph.atoms)


def test_subset_rule_merges():
    # overlap(0,1) = {1,2,3}; overlap(0,2) = {1,2} — subset relation.
    graph = build({0: {1, 2, 3, 4}, 1: {1, 2, 3, 5}, 2: {1, 2, 6, 7}})
    nodes = co_locate_atoms(graph)
    node_of = {}
    for node in nodes:
        for atom in node.atom_ids:
            node_of[atom] = node.node_id
    assert node_of[AtomId.overlap(0, 1)] == node_of[AtomId.overlap(0, 2)]


def test_shared_member_rule_merges():
    graph = build(TRIANGLE)
    nodes = [n for n in co_locate_atoms(graph) if not n.ingress_only]
    # Node 1 (B) is in all three overlaps; with the anchor choice seeded at 0
    # all three atoms share some anchor node, so few sequencing nodes result.
    assert 1 <= len(nodes) <= 3


def test_disjoint_overlaps_stay_apart():
    graph = build({0: {1, 2}, 1: {1, 2}, 2: {8, 9}, 3: {8, 9}})
    nodes = [n for n in co_locate_atoms(graph) if not n.ingress_only]
    assert len(nodes) == 2


def test_ingress_only_atoms_get_own_nodes():
    graph = build({0: {1, 2}, 1: {8, 9}})
    nodes = co_locate_atoms(graph)
    assert all(n.ingress_only for n in nodes)
    assert len(nodes) == 2


def test_colocated_groups_share_a_member():
    # The paper's scalability argument: all groups a node forwards share
    # at least one subscriber (via their overlaps' anchor chains).
    rng = random.Random(5)
    snapshot = {g: set(rng.sample(range(30), rng.randint(4, 12))) for g in range(10)}
    graph = build(snapshot)
    for node in co_locate_atoms(graph, rng=random.Random(0)):
        if node.ingress_only or len(node.atom_ids) == 1:
            continue
        members = [graph.atoms[a].overlap_members for a in node.atom_ids]
        union_rest = frozenset().union(*members[1:])
        # Weaker but testable form: the node's overlaps are chained through
        # common members (each overlap intersects the union of the others).
        for current in members:
            others = [m for m in members if m is not current]
            assert current & frozenset().union(*others)


def test_placement_rejects_double_colocation():
    atom = AtomId.overlap(0, 1)
    nodes = [
        SequencingNode(0, [atom]),
        SequencingNode(1, [atom]),
    ]
    with pytest.raises(ValueError):
        Placement(nodes)


def test_sequencing_nodes_excludes_ingress_by_default():
    graph = build({0: {1, 2, 3}, 1: {2, 3, 4}, 2: {8, 9}})
    placement = Placement(co_locate_atoms(graph))
    assert all(not n.ingress_only for n in placement.sequencing_nodes())
    assert len(placement.sequencing_nodes(include_ingress_only=True)) > len(
        placement.sequencing_nodes()
    )


# ---------------------------------------------------------------------------
# Machine assignment
# ---------------------------------------------------------------------------


@pytest.fixture()
def placed(small_topology, routing):
    rng = random.Random(0)
    hosts = attach_hosts(small_topology, 16, rng=rng)
    snapshot = {
        0: {0, 1, 2, 3, 4},
        1: {3, 4, 5, 6},
        2: {5, 6, 7, 8},
        3: {14, 15},
    }
    graph = build(snapshot)
    placement = place(
        graph, host_router_map(hosts), small_topology, routing, rng=random.Random(1)
    )
    return graph, placement, hosts


def test_all_nodes_get_machines(placed):
    _graph, placement, _hosts = placed
    assert all(node.machine is not None for node in placement.nodes)


def test_machine_of_atom(placed):
    graph, placement, _hosts = placed
    for atom in graph.atoms:
        machine = placement.machine_of(atom)
        assert 0 <= machine


def test_machine_of_unassigned_rejected():
    graph = build(TRIANGLE)
    placement = Placement(co_locate_atoms(graph))
    with pytest.raises(ValueError):
        placement.machine_of(graph.overlap_atoms()[0])


def test_machines_near_subscribers(placed, small_topology, routing):
    # Every sequencing node's machine should be within a modest delay of
    # some subscriber of a group it serves (seeded at members, walked to
    # neighbors).
    graph, placement, hosts = placed
    router_of = {h.host_id: h.router for h in hosts}
    diameter = max(
        routing.delay(hosts[0].router, h.router) for h in hosts
    )
    for node in placement.sequencing_nodes():
        groups = {g for a in node.atom_ids for g in a.groups}
        best = min(
            routing.delay(node.machine, router_of[m])
            for g in groups
            for m in graph.members(g)
        )
        assert best <= diameter


def test_placement_deterministic(small_topology, routing):
    hosts = attach_hosts(small_topology, 16, rng=random.Random(0))
    snapshot = {0: {0, 1, 2, 3}, 1: {2, 3, 4, 5}}
    machines = []
    for _ in range(2):
        graph = build(snapshot, rng=random.Random(9))
        placement = place(
            graph, host_router_map(hosts), small_topology, routing, rng=random.Random(9)
        )
        machines.append([n.machine for n in placement.nodes])
    assert machines[0] == machines[1]


def test_random_placement_covers_all_atoms(small_topology):
    graph = build(TRIANGLE)
    placement = random_placement(graph, small_topology, rng=random.Random(0))
    assert len(placement.nodes) == len(graph.atoms)
    assert all(n.machine is not None for n in placement.nodes)


def test_colocate_and_order_makes_blocks_contiguous():
    rng = random.Random(8)
    snapshot = {g: set(rng.sample(range(40), rng.randint(5, 20))) for g in range(12)}
    graph = build(snapshot)
    nodes = co_locate_and_order(graph, rng=random.Random(1))
    block_of = {a: n.node_id for n in nodes for a in n.atom_ids}
    graph.validate()
    for chain in graph.chains:
        blocks = [block_of[a] for a in chain]
        seen = set()
        previous = None
        for block in blocks:
            if block != previous:
                assert block not in seen, "block split across the chain"
                seen.add(block)
                previous = block


def test_assign_machines_with_prebuilt_nodes(small_topology, routing):
    hosts = attach_hosts(small_topology, 8, rng=random.Random(0))
    graph = build({0: {0, 1, 2}, 1: {1, 2, 3}})
    nodes = co_locate_atoms(graph)
    placement = assign_machines(
        nodes, graph, host_router_map(hosts), small_topology, routing
    )
    assert all(n.machine is not None for n in placement.nodes)


def test_len_placement():
    graph = build(TRIANGLE)
    placement = Placement(co_locate_atoms(graph))
    assert len(placement) == len(placement.nodes)
