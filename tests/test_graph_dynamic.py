"""Unit tests for dynamic sequencing-graph maintenance (Section 3.2 ops)."""

import random

import pytest

from repro.core.messages import AtomId
from repro.core.sequencing_graph import SequencingGraph


def build(snapshot, **kwargs):
    return SequencingGraph.build(
        {g: frozenset(m) for g, m in snapshot.items()}, **kwargs
    )


def test_add_first_group_creates_ingress():
    graph = SequencingGraph()
    created = graph.add_group(0, {1, 2, 3})
    assert created == []
    assert graph.group_path(0) == [AtomId.ingress(0)]


def test_add_overlapping_group_creates_atom():
    graph = SequencingGraph()
    graph.add_group(0, {1, 2, 3})
    created = graph.add_group(1, {2, 3, 4})
    assert created == [AtomId.overlap(0, 1)]
    graph.validate()


def test_add_group_drops_partner_ingress():
    graph = SequencingGraph()
    graph.add_group(0, {1, 2, 3})
    graph.add_group(1, {2, 3, 4})
    assert AtomId.ingress(0) not in graph.atoms
    assert AtomId.ingress(1) not in graph.atoms


def test_add_group_without_overlap_gets_ingress():
    graph = SequencingGraph()
    graph.add_group(0, {1, 2})
    graph.add_group(1, {8, 9})
    assert graph.group_path(1) == [AtomId.ingress(1)]


def test_add_duplicate_group_rejected():
    graph = SequencingGraph()
    graph.add_group(0, {1, 2})
    with pytest.raises(ValueError):
        graph.add_group(0, {3, 4})


def test_incremental_equals_batch_atoms():
    snapshot = {
        0: {0, 1, 2, 3},
        1: {2, 3, 4, 5},
        2: {4, 5, 0, 1},
        3: {6, 7},
    }
    batch = build(snapshot)
    incremental = SequencingGraph()
    for g, members in snapshot.items():
        incremental.add_group(g, members)
    incremental.validate()
    assert set(batch.atoms) == set(incremental.atoms)


def test_add_group_merges_clusters():
    graph = SequencingGraph()
    graph.add_group(0, {0, 1})
    graph.add_group(1, {0, 1})  # cluster A
    graph.add_group(2, {8, 9})
    graph.add_group(3, {8, 9})  # cluster B
    assert len(graph.chains) == 2
    # A group overlapping both clusters merges them.
    graph.add_group(4, {0, 1, 8, 9})
    graph.validate()
    assert len(graph.chains) == 1


def test_add_group_preserves_existing_relative_order():
    rng = random.Random(2)
    snapshot = {g: set(rng.sample(range(24), 8)) for g in range(6)}
    graph = build(snapshot)
    before = list(graph.chains[0]) if graph.chains else []
    graph.add_group(99, set(rng.sample(range(24), 10)))
    graph.validate()
    after_chain = None
    for chain in graph.chains:
        if all(a in chain for a in before):
            after_chain = chain
            break
    if before and after_chain is not None:
        positions = [after_chain.index(a) for a in before]
        assert positions == sorted(positions)


def test_remove_group_lazy_retires_atoms():
    graph = SequencingGraph()
    graph.add_group(0, {1, 2, 3})
    graph.add_group(1, {2, 3, 4})
    retired = graph.remove_group(0, lazy=True)
    assert retired == [AtomId.overlap(0, 1)]
    assert AtomId.overlap(0, 1) in graph.retired
    # The atom stays on its chain as a placeholder.
    assert AtomId.overlap(0, 1) in graph.chains[0]
    graph.validate()


def test_remove_group_lazy_partner_regains_ingress():
    graph = SequencingGraph()
    graph.add_group(0, {1, 2, 3})
    graph.add_group(1, {2, 3, 4})
    graph.remove_group(0, lazy=True)
    assert graph.group_path(1) == [AtomId.ingress(1)]


def test_remove_group_eager_splices():
    graph = SequencingGraph()
    graph.add_group(0, {1, 2, 3})
    graph.add_group(1, {2, 3, 4})
    graph.remove_group(0, lazy=False)
    assert AtomId.overlap(0, 1) not in graph.atoms
    assert all(AtomId.overlap(0, 1) not in chain for chain in graph.chains)
    graph.validate()


def test_remove_missing_group_rejected():
    graph = SequencingGraph()
    with pytest.raises(KeyError):
        graph.remove_group(5)


def test_remove_group_splits_cluster():
    # Groups 0-1 and 2-3 joined only through group 4.
    graph = SequencingGraph()
    graph.add_group(0, {0, 1})
    graph.add_group(1, {0, 1})
    graph.add_group(2, {8, 9})
    graph.add_group(3, {8, 9})
    graph.add_group(4, {0, 1, 8, 9})
    assert len(graph.chains) == 1
    graph.remove_group(4, lazy=False)
    graph.validate()
    assert len(graph.chains) == 2


def test_compact_drops_retired():
    graph = SequencingGraph()
    graph.add_group(0, {1, 2, 3})
    graph.add_group(1, {2, 3, 4})
    graph.remove_group(0, lazy=True)
    removed = graph.compact()
    assert removed == [AtomId.overlap(0, 1)]
    assert not graph.retired
    assert AtomId.overlap(0, 1) not in graph.atoms
    graph.validate()


def test_retired_atoms_excluded_from_group_queries():
    graph = SequencingGraph()
    graph.add_group(0, {1, 2, 3})
    graph.add_group(1, {2, 3, 4})
    graph.add_group(2, {1, 2, 4})
    graph.remove_group(2, lazy=True)
    assert graph.atoms_of_group(0) == [AtomId.overlap(0, 1)]
    assert AtomId.overlap(0, 2) not in graph.relevant_atoms_of(1)


def test_membership_change_as_remove_add():
    # The paper's model: change = remove old group + add new membership.
    graph = SequencingGraph()
    graph.add_group(0, {1, 2, 3})
    graph.add_group(1, {2, 3, 4})
    graph.remove_group(1, lazy=False)
    graph.add_group(1, {1, 2, 5})
    graph.validate()
    assert AtomId.overlap(0, 1) in graph.atoms
    assert graph.atoms[AtomId.overlap(0, 1)].overlap_members == frozenset({1, 2})


def test_churn_sequence_keeps_invariants():
    rng = random.Random(4)
    graph = SequencingGraph()
    live = {}
    next_id = 0
    for step in range(60):
        if live and rng.random() < 0.4:
            victim = rng.choice(sorted(live))
            graph.remove_group(victim, lazy=rng.random() < 0.5)
            del live[victim]
        else:
            members = set(rng.sample(range(20), rng.randint(2, 8)))
            graph.add_group(next_id, members)
            live[next_id] = members
            next_id += 1
        graph.validate()


def test_repr_smoke():
    graph = SequencingGraph()
    graph.add_group(0, {1, 2})
    assert "groups=1" in repr(graph)
