"""Exporter formats: JSONL round-trip, Chrome trace events, Prometheus text."""

import json
import re

import pytest

from repro.experiments.common import ExperimentEnv
from repro.obs import exporters
from repro.obs.registry import MetricsRegistry
from repro.sim.trace import Trace, TraceRecord

SNAPSHOT = {
    0: frozenset({0, 1, 2, 3}),
    1: frozenset({0, 1}),
    2: frozenset({2, 3, 4}),
}


@pytest.fixture(scope="module")
def traced_run():
    env = ExperimentEnv(n_hosts=5, seed=0)
    registry = MetricsRegistry()
    fabric = env.build_fabric(
        env.membership_from(SNAPSHOT), trace=True, registry=registry
    )
    for sender, group in ((0, 0), (2, 2), (1, 1), (3, 0)):
        fabric.publish(sender, group)
    fabric.run()
    assert not fabric.pending_messages()
    return fabric, registry


class TestJsonl:
    def test_round_trips_to_equal_records(self, traced_run):
        fabric, _ = traced_run
        text = exporters.trace_to_jsonl(fabric.trace)
        restored = exporters.trace_from_jsonl(text)
        assert restored == list(fabric.trace)

    def test_file_round_trip(self, traced_run, tmp_path):
        fabric, _ = traced_run
        path = exporters.write_trace_jsonl(fabric.trace, tmp_path / "run.jsonl")
        assert exporters.read_trace_jsonl(path) == list(fabric.trace)

    def test_each_line_is_standalone_json(self, traced_run):
        fabric, _ = traced_run
        lines = exporters.trace_to_jsonl(fabric.trace).splitlines()
        assert len(lines) == len(fabric.trace)
        for line in lines:
            obj = json.loads(line)
            assert set(obj) == {"time", "kind", "data"}

    def test_empty_trace(self, tmp_path):
        trace = Trace()
        assert exporters.trace_to_jsonl(trace) == ""
        path = exporters.write_trace_jsonl(trace, tmp_path / "empty.jsonl")
        assert exporters.read_trace_jsonl(path) == []


class TestChromeTrace:
    def test_document_round_trips_through_json(self, traced_run):
        fabric, _ = traced_run
        doc = exporters.trace_to_chrome(fabric.trace)
        assert json.loads(json.dumps(doc)) == doc

    def test_events_carry_required_fields(self, traced_run):
        fabric, _ = traced_run
        events = exporters.trace_to_chrome(fabric.trace)["traceEvents"]
        assert events
        for event in events:
            assert "ph" in event and "pid" in event
            if event["ph"] != "M":
                assert "ts" in event and event["ts"] >= 0

    def test_one_track_per_sequencing_node_one_slice_per_hop(self, traced_run):
        fabric, _ = traced_run
        events = exporters.trace_to_chrome(fabric.trace)["traceEvents"]
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == fabric.trace.count("seq_hop")
        visited_nodes = {e["tid"] for e in slices}
        tracks = {
            e["tid"]
            for e in events
            if e["ph"] == "M"
            and e["name"] == "thread_name"
            and e["pid"] == exporters.SEQUENCING_PID
        }
        assert tracks == visited_nodes

    def test_instant_events_cover_publish_and_deliver(self, traced_run):
        fabric, _ = traced_run
        events = exporters.trace_to_chrome(fabric.trace)["traceEvents"]
        instants = [e for e in events if e["ph"] == "i"]
        publishes = [e for e in instants if e["name"].startswith("publish")]
        delivers = [e for e in instants if e["name"].startswith("deliver")]
        assert len(publishes) == fabric.trace.count("publish")
        assert len(delivers) == fabric.trace.count("deliver")

    def test_written_file_parses(self, traced_run, tmp_path):
        fabric, _ = traced_run
        path = exporters.write_chrome_trace(fabric.trace, tmp_path / "run.trace.json")
        doc = json.loads(path.read_text())
        assert "traceEvents" in doc


#: `name value` or `name{labels} value` where value is a float, inf, or nan.
PROM_SAMPLE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? '
    r"[-+]?((\d+(\.\d+)?([eE][-+]?\d+)?)|Inf|NaN)$"
)


class TestPrometheus:
    def test_every_line_parses(self, traced_run):
        _, registry = traced_run
        text = exporters.registry_to_prometheus(registry)
        assert text.endswith("\n")
        for line in text.strip().splitlines():
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                continue
            assert PROM_SAMPLE.match(line), f"unparseable sample line: {line!r}"

    def test_contains_per_link_bytes_and_holdback_gauges(self, traced_run):
        _, registry = traced_run
        text = exporters.registry_to_prometheus(registry)
        assert re.search(r'^repro_link_bytes_sent\{[^}]*\} \d+$', text, re.M)
        assert re.search(r'^repro_holdback_high_water\{host="\d+"\} \d+$', text, re.M)

    def test_histogram_exposition(self, traced_run):
        _, registry = traced_run
        text = exporters.registry_to_prometheus(registry)
        assert "# TYPE repro_delivery_latency_ms histogram" in text
        assert 'repro_delivery_latency_ms_bucket{le="+Inf"}' in text
        assert "repro_delivery_latency_ms_sum" in text
        assert "repro_delivery_latency_ms_count" in text

    def test_type_lines_match_instrument_kinds(self, traced_run):
        _, registry = traced_run
        text = exporters.registry_to_prometheus(registry)
        assert "# TYPE repro_link_bytes_sent counter" in text
        assert "# TYPE repro_holdback_occupancy gauge" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("weird", label='a"b\\c\nd').inc()
        text = exporters.registry_to_prometheus(registry)
        assert '\\"' in text and "\\\\" in text and "\\n" in text

    def test_empty_registry_exports_empty(self):
        assert exporters.registry_to_prometheus(MetricsRegistry()) == ""


class TestTraceRecordEquality:
    def test_record_equality_includes_data(self):
        a = TraceRecord(1.0, "publish", {"msg": 1})
        b = TraceRecord(1.0, "publish", {"msg": 1})
        c = TraceRecord(1.0, "publish", {"msg": 2})
        assert a == b and a != c


class TestJsonlNumericTypes:
    """Regression: numeric fields must come back as real ints/floats so
    JourneyIndex rebuilds identically from disk and from a live trace."""

    def test_numeric_fields_round_trip_as_numbers(self, traced_run):
        fabric, _ = traced_run
        restored = exporters.trace_from_jsonl(
            exporters.trace_to_jsonl(fabric.trace)
        )
        assert restored
        for record in restored:
            assert isinstance(record.time, float)
            for key, value in record.data.items():
                assert not isinstance(value, bool)
                assert isinstance(value, (int, float, str, type(None))), (
                    record.kind,
                    key,
                    value,
                )
        seqs = [r.data["seq"] for r in restored if r.kind == "atom_seq"]
        assert seqs and all(
            isinstance(s, int) for s in seqs if s is not None
        )

    def test_integer_written_time_loads_as_float(self):
        line = json.dumps(
            {"time": 3, "kind": "publish", "data": {"msg": 0, "group": 1, "sender": 2}}
        )
        [record] = exporters.trace_from_jsonl(line)
        assert isinstance(record.time, float)
        assert record.time == 3.0
        assert isinstance(record.data["msg"], int)


class TestChromeFlowEvents:
    def test_every_deliver_has_matching_ingress_flow(self, traced_run):
        """Each flow finish ('f') binds to a start ('s') emitted at the
        message's publish: same id, cat, and name."""
        fabric, _ = traced_run
        events = exporters.trace_to_chrome(fabric.trace)["traceEvents"]
        starts = {
            (e["cat"], e["name"], e["id"]) for e in events if e["ph"] == "s"
        }
        finishes = [e for e in events if e["ph"] == "f"]
        assert len(finishes) == fabric.trace.count("deliver")
        for event in finishes:
            assert (event["cat"], event["name"], event["id"]) in starts
            assert event["bp"] == "e"

    def test_flow_ids_are_message_ids(self, traced_run):
        fabric, _ = traced_run
        events = exporters.trace_to_chrome(fabric.trace)["traceEvents"]
        published = {r.data["msg"] for r in fabric.trace if r.kind == "publish"}
        starts = [e for e in events if e["ph"] == "s"]
        assert {e["id"] for e in starts} == published
        assert len(starts) == len(published)

    def test_flow_steps_ride_the_hop_slices(self, traced_run):
        fabric, _ = traced_run
        events = exporters.trace_to_chrome(fabric.trace)["traceEvents"]
        steps = [e for e in events if e["ph"] == "t"]
        slices = [e for e in events if e["ph"] == "X"]
        assert len(steps) == len(slices)
        slice_keys = {(e["pid"], e["tid"], e["ts"]) for e in slices}
        for step in steps:
            assert (step["pid"], step["tid"], step["ts"]) in slice_keys

    def test_flow_timestamps_ordered_start_to_finish(self, traced_run):
        fabric, _ = traced_run
        events = exporters.trace_to_chrome(fabric.trace)["traceEvents"]
        by_id = {}
        for event in events:
            if event["ph"] in ("s", "t", "f"):
                by_id.setdefault(event["id"], []).append(event)
        for flow_events in by_id.values():
            start = [e["ts"] for e in flow_events if e["ph"] == "s"]
            assert len(start) == 1
            for event in flow_events:
                assert event["ts"] >= start[0]


@pytest.fixture(scope="module")
def epoch_trace():
    """A synthetic trace with the PR 9 reconfiguration record kinds."""
    trace = Trace()
    trace.record(10.0, "epoch_switch", phase="begin", epoch=1, groups=2)
    trace.record(10.5, "epoch_fence", phase="publish", msg=7, group=0,
                 epoch=1, sender=0)
    trace.record(11.0, "epoch_fence", phase="publish", msg=8, group=1,
                 epoch=1, sender=2)
    trace.record(12.5, "epoch_fence", phase="deliver", msg=7, group=0,
                 epoch=1, host=1)
    trace.record(13.0, "epoch_fence", phase="deliver", msg=8, group=1,
                 epoch=1, host=3)
    trace.record(14.0, "epoch_switch", phase="end", epoch=1, drain_events=9)
    trace.record(30.0, "epoch_switch", phase="begin", epoch=2, groups=2)
    return trace


class TestEpochEvents:
    def test_switch_pairs_become_slices(self, epoch_trace):
        events = exporters.epoch_events(epoch_trace)
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == 1
        (event,) = slices
        assert event["pid"] == exporters.EPOCHS_PID
        assert event["tid"] == 0
        assert event["ts"] == 10.0 * 1000.0
        assert event["dur"] == 4.0 * 1000.0
        assert event["args"] == {"epoch": 1, "drain_events": 9}

    def test_unmatched_begin_degrades_to_instant(self, epoch_trace):
        events = exporters.epoch_events(epoch_trace)
        instants = [
            e for e in events
            if e["ph"] == "i" and e["name"].startswith("switch")
        ]
        assert len(instants) == 1
        assert instants[0]["args"]["epoch"] == 2

    def test_fences_land_on_their_group_track(self, epoch_trace):
        events = exporters.epoch_events(epoch_trace)
        fences = [
            e for e in events
            if e["ph"] == "i" and e["name"].startswith("fence")
        ]
        assert len(fences) == 4
        for event in fences:
            assert event["pid"] == exporters.EPOCHS_PID
        by_group = {}
        for event in fences:
            by_group.setdefault(event["tid"], []).append(event)
        # tid = group + 1: group 0 -> tid 1, group 1 -> tid 2.
        assert set(by_group) == {1, 2}
        publishes = [e for e in fences if e["args"]["phase"] == "publish"]
        delivers = [e for e in fences if e["args"]["phase"] == "deliver"]
        assert {e["args"]["sender"] for e in publishes} == {0, 2}
        assert {e["args"]["host"] for e in delivers} == {1, 3}

    def test_tracks_are_named(self, epoch_trace):
        events = exporters.epoch_events(epoch_trace)
        names = {
            (e["pid"], e["tid"]): e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] in ("process_name", "thread_name")
        }
        assert names[(exporters.EPOCHS_PID, 0)] in ("epochs", "epoch switches")
        assert names[(exporters.EPOCHS_PID, 1)] == "group 0 fences"
        assert names[(exporters.EPOCHS_PID, 2)] == "group 1 fences"

    def test_chrome_document_includes_epoch_events(self, epoch_trace):
        doc = exporters.trace_to_chrome(epoch_trace)
        pids = {e.get("pid") for e in doc["traceEvents"]}
        assert exporters.EPOCHS_PID in pids

    def test_epoch_free_trace_emits_no_epoch_process(self, traced_run):
        fabric, _ = traced_run
        assert exporters.epoch_events(fabric.trace) == []
        doc = exporters.trace_to_chrome(fabric.trace)
        assert exporters.EPOCHS_PID not in {
            e.get("pid") for e in doc["traceEvents"]
        }

    def test_epoch_records_round_trip_jsonl_with_types(self, epoch_trace):
        restored = exporters.trace_from_jsonl(
            exporters.trace_to_jsonl(epoch_trace)
        )
        assert restored == list(epoch_trace)
        for record in restored:
            assert isinstance(record.time, float)
            assert isinstance(record.data["epoch"], int)
            if record.kind == "epoch_fence":
                assert isinstance(record.data["msg"], int)
                assert isinstance(record.data["group"], int)
                assert record.data["phase"] in ("publish", "deliver")
