"""End-to-end chaos campaigns and the ``repro chaos`` CLI.

The acceptance criterion for the robustness layer: a seeded campaign
that permanently crashes a sequencing node mid-traffic completes with
zero ordering-consistency violations, exactly-once delivery to every
subscriber, and a JSON report carrying failover count, retransmissions
by cause, and detection latency.
"""

import json

import pytest

from repro.cli import main
from repro.faults import ChaosConfig, CrashNode, FaultPlan, run_campaign

#: Small-but-real campaign shape used across these tests (fast topology,
#: enough traffic to cross the fault window).
FAST = dict(hosts=16, groups=6, events=40, horizon=250.0)


def test_campaign_acceptance_criterion():
    """Seeded run, permanent node crash mid-traffic: all invariants hold."""
    report = run_campaign(ChaosConfig(seed=0, **FAST))
    assert report["ok"] is True
    assert report["findings"] == []
    assert report["quiescent"] is True
    # A sequencing node actually crashed permanently...
    permanent = [
        f
        for f in report["faults"]
        if f["kind"] == "crash_node" and f["duration"] is None
    ]
    assert len(permanent) == 1
    # ...was failed over, with a measured detection latency.
    crashed = permanent[0]["node_id"]
    matching = [f for f in report["failovers"] if f["node_id"] == crashed]
    assert len(matching) >= 1
    assert matching[0]["detection_latency_ms"] is not None
    assert matching[0]["detection_latency_ms"] > 0
    # The report attributes retransmissions by cause.
    assert report["retransmissions"]["total"] == sum(
        report["retransmissions"]["by_cause"].values()
    )
    assert report["published"] == FAST["events"]


def test_campaign_deterministic():
    a = run_campaign(ChaosConfig(seed=5, **FAST))
    b = run_campaign(ChaosConfig(seed=5, **FAST))
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


def test_campaign_seeds_differ():
    a = run_campaign(ChaosConfig(seed=1, **FAST))
    b = run_campaign(ChaosConfig(seed=2, **FAST))
    assert a["faults"] != b["faults"]


def test_campaign_with_explicit_plan():
    config = ChaosConfig(seed=3, **FAST)
    plan = FaultPlan().add(CrashNode(at=60.0, node_id=0, duration=None))
    report = run_campaign(config, plan=plan)
    assert report["ok"] is True
    assert [f["kind"] for f in report["faults"]] == ["crash_node"]
    assert any(f["node_id"] == 0 for f in report["failovers"])


def test_campaign_detects_real_violations():
    """With detection slowed far past the retransmit budget, traffic to
    the crashed node is abandoned before any failover can save it — the
    invariant checker reports the stranded messages, ok flips False."""
    config = ChaosConfig(
        seed=0,
        heartbeat_interval=60.0,
        suspect_after=60,  # suspicion comes thousands of ms too late...
        max_retransmits=2,  # ...but the budget runs out within ~35 ms
        **FAST,
    )
    report = run_campaign(config)
    assert report["ok"] is False
    codes = {f["code"] for f in report["findings"]}
    assert "RT302" in codes  # stranded messages never delivered
    assert report["link_failures"] > 0


def test_config_validation():
    with pytest.raises(ValueError):
        run_campaign(ChaosConfig(hosts=1))
    with pytest.raises(ValueError):
        run_campaign(ChaosConfig(horizon=0.0))


# -- CLI ---------------------------------------------------------------------


def test_cli_chaos_json_report(tmp_path):
    out = tmp_path / "chaos.json"
    code = main(
        [
            "chaos",
            "--hosts", "16",
            "--groups", "6",
            "--events", "40",
            "--horizon", "250",
            "--runs", "2",
            "--seed", "0",
            "--format", "json",
            "--out", str(out),
        ]
    )
    assert code == 0
    payload = json.loads(out.read_text())
    assert payload["ok"] is True
    assert payload["runs"] == 2
    assert payload["failed"] == 0
    for report in payload["reports"]:
        assert report["findings"] == []
        assert len(report["failovers"]) >= 1
        assert "by_cause" in report["retransmissions"]
        assert set(report["drops"]) == {"loss", "outage"}


def test_cli_chaos_text_format(capsys):
    code = main(
        [
            "chaos",
            "--hosts", "16",
            "--groups", "6",
            "--events", "30",
            "--horizon", "200",
            "--seed", "1",
        ]
    )
    assert code == 0
    text = capsys.readouterr().out
    assert "failovers" in text
    assert "retransmissions" in text
    assert "0 failed" in text


def test_cli_chaos_nonzero_exit_on_violation(capsys):
    code = main(
        [
            "chaos",
            "--hosts", "16",
            "--groups", "6",
            "--events", "30",
            "--horizon", "200",
            "--seed", "0",
            "--interval", "60",
            "--suspect-after", "60",
            "--max-retransmits", "2",
        ]
    )
    assert code == 1
    text = capsys.readouterr().out
    assert "FAIL" in text
    assert "RT30" in text  # the violating codes are printed
