"""Tests for sustained-churn campaigns and the RT32x cross-epoch audit.

Covers the churn driver (:mod:`repro.faults.churn`), the epoch-fence
forensics cause, and the end-to-end acceptance scenario: ≥ 50 join/leave
events composed with crash/partition faults — including a permanent
crash landing mid-epoch-switch — completing with zero RT30x/RT32x
findings, deterministically, on both runtime backends.
"""

import random

import pytest

from repro.check.churn import verify_churn
from repro.faults.churn import (
    ChurnConfig,
    ChurnPlan,
    execute_churn_campaign,
    random_churn,
    run_churn_campaign,
)
from repro.obs.forensics import CAUSE_EPOCH_SWITCH, JourneyIndex
from repro.runtime.trace import Trace


# -- churn driver -----------------------------------------------------------


def sample_snapshot():
    return {
        0: frozenset(range(8)),
        1: frozenset({2, 3, 4, 5}),
        2: frozenset({6, 7, 8, 9}),
    }


def test_random_churn_is_deterministic():
    a = random_churn(sample_snapshot(), 16, random.Random(9), 100.0, events=30)
    b = random_churn(sample_snapshot(), 16, random.Random(9), 100.0, events=30)
    assert a.events == b.events
    assert a.switch_times == b.switch_times


def test_random_churn_valid_when_replayed():
    plan = random_churn(
        sample_snapshot(), 16, random.Random(3), 100.0, events=60, min_size=2
    )
    assert len(plan.events) == 60
    working = {g: set(m) for g, m in sample_snapshot().items()}
    for event in plan.events:
        members = working[event.group]
        if event.op == "join":
            assert event.host not in members
            members.add(event.host)
        else:
            assert event.host in members
            members.discard(event.host)
            assert len(members) >= 2  # never shrinks below min_size
    # Every event lands before the last switch, so all are applied.
    assert all(e.at <= plan.switch_times[-1] for e in plan.events)


def test_churn_batches_partition_all_events():
    plan = random_churn(sample_snapshot(), 16, random.Random(5), 80.0, events=25)
    batches = plan.batches()
    assert [at for at, _ in batches] == plan.switch_times
    flattened = [e for _, ops in batches for e in ops]
    assert sorted(flattened, key=lambda e: e.at) == sorted(
        plan.events, key=lambda e: e.at
    )
    for at, ops in batches:
        assert all(e.at <= at for e in ops)


def test_zipf_popularity_prefers_low_ranks():
    plan = random_churn(
        sample_snapshot(), 32, random.Random(0), 100.0, events=300, min_size=2
    )
    counts = {g: 0 for g in sample_snapshot()}
    for event in plan.events:
        counts[event.group] += 1
    assert counts[0] > counts[2]  # rank-0 group churns the most


# -- forensics: the epoch_switch stall cause --------------------------------


def stalled_trace(switch_begin, switch_end, drain_at):
    """Msg 2 buffers at t=1 waiting for msg 1's number, draining at
    ``drain_at``; an epoch switch spans ``switch_begin..switch_end``."""
    trace = Trace(enabled=True)
    trace.record(0.0, "publish", msg=1, group=0, sender=0)
    trace.record(0.2, "atom_seq", msg=1, atom="Q(0,1)", seq=1, node=0)
    trace.record(0.5, "publish", msg=2, group=0, sender=2)
    trace.record(0.7, "atom_seq", msg=2, atom="Q(0,1)", seq=2, node=0)
    trace.record(
        1.0, "buffer", msg=2, host=1, group=0, blocked_kind="atom",
        blocked_on="Q(0,1)", have_seq=0, expected_seq=1,
    )
    trace.record(
        switch_begin, "epoch_switch", phase="begin", epoch=1, groups=2
    )
    trace.record(
        switch_end, "epoch_switch", phase="end", epoch=1, drain_events=9
    )
    trace.record(drain_at, "deliver", msg=1, host=1, group=0)
    trace.record(drain_at, "drain", msg=2, host=1, group=0, unblocked_by=1)
    trace.record(drain_at, "deliver", msg=2, host=1, group=0)
    return trace


def test_epoch_switch_attributed_as_stall_cause():
    # The stall (1.0..30.0) overlaps the switch window (5..25): absent
    # stronger fault evidence the verdict is the reconfiguration itself,
    # not the in_flight fallback.
    index = JourneyIndex(stalled_trace(5.0, 25.0, 30.0))
    (event,) = index.buffer_events
    assert event.cause == CAUSE_EPOCH_SWITCH
    assert event.evidence.get(CAUSE_EPOCH_SWITCH) == 1
    # A stall resolved before the switch began is not blamed on it.
    index2 = JourneyIndex(stalled_trace(5.0, 9.0, 2.0))
    (event2,) = index2.buffer_events
    assert event2.cause != CAUSE_EPOCH_SWITCH
    assert CAUSE_EPOCH_SWITCH not in event2.evidence


def test_fences_registered_but_not_counted_as_messages():
    trace = Trace(enabled=True)
    trace.record(1.0, "epoch_fence", phase="publish", msg=7, group=0, epoch=1,
                 sender=0)
    trace.record(1.0, "atom_seq", msg=7, atom="A(0)", seq=4, node=0)
    trace.record(3.0, "epoch_fence", phase="deliver", msg=7, group=0, epoch=1,
                 host=2)
    index = JourneyIndex(trace)
    report = index.stall_report(threshold=0.0)
    assert report["messages"] == 0
    assert report["fences"] == 1
    # The fence's sequence number is registered, so a gap blocked on it
    # is explainable.
    assert index.journeys[7].is_fence


# -- campaigns --------------------------------------------------------------


def fast_config(**overrides):
    base = dict(
        hosts=12,
        groups=4,
        events=20,
        churn_events=12,
        switches=2,
        seed=3,
        horizon=150.0,
        loss_rate=0.005,
        node_crashes=1,
        host_crashes=0,
        loss_windows=0,
        delay_spikes=0,
        permanent_crash=True,
        mid_switch_crash=True,
    )
    base.update(overrides)
    return ChurnConfig(**base)


def test_small_campaign_clean_and_structured():
    run = execute_churn_campaign(fast_config())
    report = run.report
    assert report["ok"], report["findings"]
    assert report["quiescent"]
    assert report["published"] == 20
    assert len(report["epochs"]) == 3  # 2 switches -> 3 epochs
    assert len(run.fabrics) == 3
    assert [f.epoch for f in run.fabrics] == [0, 1, 2]
    # Every non-final epoch switched online with fences.
    for summary in report["epochs"][:-1]:
        assert summary["switch"]["online"]
        assert summary["fences"] == summary["groups"]
    assert report["epochs"][-1]["switch"] is None
    assert report["mid_switch_crash"] is not None
    assert report["failovers"] >= 1  # the mid-switch crash healed
    # The epoch logs re-verify clean in isolation too.
    assert verify_churn(run.epoch_logs) == []


def test_campaign_is_deterministic_across_runs():
    first = run_churn_campaign(fast_config())
    second = run_churn_campaign(fast_config())
    assert first["delivery_digest"] == second["delivery_digest"]
    assert first["churn"] == second["churn"]
    assert first["faults"] == second["faults"]
    assert first["epochs"] == second["epochs"]
    assert first["events"] == second["events"]


def test_campaign_differs_across_seeds():
    a = run_churn_campaign(fast_config())
    b = run_churn_campaign(fast_config(seed=4))
    assert a["delivery_digest"] != b["delivery_digest"]


def test_publishes_deferred_not_dropped():
    # All configured events are published even when ticks land inside a
    # fence-drain blackout (they defer to the next epoch's start).
    report = run_churn_campaign(fast_config(events=40, switches=3))
    assert report["ok"], report["findings"]
    assert report["published"] == 40


def test_acceptance_scale_campaign():
    """ISSUE acceptance: >= 50 churn events composed with crash faults,
    a permanent crash mid-epoch-switch, zero RT30x/RT32x findings,
    deterministic across two runs."""
    config = ChurnConfig(seed=0)  # defaults: 50 churn events, faults on
    assert config.churn_events >= 50
    assert config.mid_switch_crash and config.permanent_crash
    first = run_churn_campaign(config)
    assert first["ok"], first["findings"]
    assert first["churn_applied"] >= 50
    assert first["mid_switch_crash"] is not None
    assert first["quiescent"]
    second = run_churn_campaign(config)
    assert second["delivery_digest"] == first["delivery_digest"]


def test_asyncio_backend_campaign_clean():
    """The live runtime passes the same invariants (not byte-identity:
    real timers jitter arrival order; see docs/FAULTS.md)."""
    report = run_churn_campaign(
        fast_config(
            backend="asyncio",
            time_scale=0.0003,
            loss_rate=0.0,
            churn_events=8,
            events=12,
        )
    )
    assert report["ok"], report["findings"]
    assert report["quiescent"]


def test_config_validation():
    with pytest.raises(ValueError):
        ChurnConfig(hosts=2).validate()
    with pytest.raises(ValueError):
        ChurnConfig(backend="threads").validate()
    with pytest.raises(ValueError):
        ChurnConfig(horizon=0.0).validate()


def test_batches_empty_without_switches():
    assert ChurnPlan(events=[], switch_times=[]).batches() == []
    report = run_churn_campaign(
        fast_config(switches=0, churn_events=0, mid_switch_crash=False)
    )
    # Degenerates to a single-epoch fault campaign; still clean.
    assert report["ok"], report["findings"]
    assert len(report["epochs"]) == 1
