"""Schedule-space model checker: backend conformance, DFS, MC4xx rules.

Covers the explore stack bottom-up: the controller-driven
:class:`ExploreTransport` conforms to the runtime protocols and matches
the simulator's default-policy semantics; the sleep-set DFS exhausts its
reduced schedule space deterministically; the MC400-MC406 invariants
pass on the healthy protocol and each seeded mutation trips its intended
code with a replayable, minimized counterexample; and the check runner
merges explore/async-lint findings crash-tolerantly.
"""

import io
import json

import pytest

from repro.check.explore import (
    CHECK_SCENARIOS,
    ExploreConfig,
    ScheduleDivergence,
    counterexample_document,
    explore,
    minimize_counterexample,
    render_counterexample_trace,
    replay_schedule,
    run_explore_check,
)
from repro.runtime.explore_backend import ExploreTransport
from repro.runtime.interfaces import Link, NodeHandle, RuntimeBackend, Transport


SMALL = ExploreConfig(groups=2, hosts=3, messages=1, seed=0,
                      max_schedules=400, max_depth=80)


# -- backend conformance -----------------------------------------------------


def test_explore_transport_implements_runtime_protocols():
    runtime = ExploreTransport(seed=0)
    assert isinstance(runtime, RuntimeBackend)
    assert isinstance(runtime.scheduler, NodeHandle)
    assert isinstance(runtime.transport, Transport)
    assert runtime.backend_name == "explore"


def test_explore_channel_implements_link_protocol():
    runtime = ExploreTransport(seed=0)

    class _Probe:
        name = ("probe", 0)

        def receive(self, payload, channel):
            pass

    a, b = _Probe(), _Probe()
    b.name = ("probe", 1)
    runtime.transport.add_process(a)
    runtime.transport.add_process(b)
    channel = runtime.transport.connect(a.name, b.name, delay=1.0)
    assert isinstance(channel, Link)


def test_default_run_policy_matches_simulator_results(env32):
    """Driven by its earliest-first default policy (no controller), the
    explore backend reaches the same delivered set as the simulator."""
    from repro.runtime.sim_backend import SimTransport
    from tests.test_runtime_conformance import build_fabric, publish_mixed

    delivered = []
    for runtime in (SimTransport(seed=0), ExploreTransport(seed=0)):
        fabric = build_fabric(env32, runtime)
        publish_mixed(fabric, 10, spread=20.0)
        fabric.run()
        assert fabric.pending_messages() == {}
        delivered.append(
            {
                host: [r.msg_id for r in p.delivered]
                for host, p in sorted(fabric.host_processes.items())
            }
        )
    # Same messages everywhere; the *order* may differ (policies differ),
    # but each host's delivered set must match.
    assert {h: sorted(v) for h, v in delivered[0].items()} == {
        h: sorted(v) for h, v in delivered[1].items()
    }


# -- exhaustive exploration --------------------------------------------------


def test_small_config_exhausts_deterministically():
    first = explore(SMALL)
    second = explore(SMALL)
    assert first.exhausted and second.exhausted
    assert first.violations == [] and second.violations == []
    assert first.stats() == second.stats()
    assert first.terminal_states > 1  # genuinely multiple interleavings


def test_partial_order_reduction_prunes_schedules():
    """Sleep sets must block some interleavings of independent deliveries
    (2 overlapping groups x 3 hosts guarantees commuting pairs exist)."""
    result = explore(SMALL)
    assert result.sleep_blocked > 0
    assert result.schedules == result.terminal_states + result.sleep_blocked


def test_three_group_config_explores_clean():
    config = ExploreConfig(groups=3, hosts=4, messages=1, seed=1,
                           max_schedules=200, max_depth=120)
    result = explore(config)
    assert result.violations == []
    assert result.terminal_states > 0


def test_schedule_budget_stops_search():
    config = ExploreConfig(groups=2, hosts=3, messages=2, seed=0,
                           max_schedules=5, max_depth=200)
    result = explore(config)
    assert result.schedules <= 6  # budget + the in-flight descent
    assert not result.exhausted


def test_crash_plan_timers_interleave_clean():
    config = ExploreConfig(groups=2, hosts=3, messages=1, seed=0,
                           crashes=((0, 1.0, 3.0),),
                           max_schedules=150, max_depth=200)
    result = explore(config)
    assert result.violations == []
    assert result.terminal_states > 0


def test_loss_exploration_stays_clean():
    config = ExploreConfig(groups=2, hosts=3, messages=1, seed=0,
                           loss_rate=0.2, max_schedules=150, max_depth=300)
    result = explore(config)
    assert result.violations == []


# -- mutation harness: each seeded bug trips its MC code ---------------------


MUTATION_CODES = {
    "skip-stamp": {"MC404"},
    "drop-delivery": {"MC402", "MC403"},
    "dup-delivery": {"MC401"},
}


@pytest.mark.parametrize("mutation,expected", sorted(MUTATION_CODES.items()))
def test_mutation_yields_violation_with_replayable_counterexample(
    mutation, expected
):
    config = ExploreConfig(groups=2, hosts=3, messages=2, seed=0,
                           mutate=mutation, max_schedules=2000, max_depth=120)
    result = explore(config)
    found = {f.code for f in result.violations}
    assert found & expected, f"{mutation}: got {found}, wanted {expected}"
    assert result.counterexample_schedule is not None

    # The recorded schedule replays to the same violation codes.
    fabric, findings = replay_schedule(
        config, result.counterexample_schedule, trace=True
    )
    assert {f.code for f in findings} & expected
    # ... and the forensics layer renders the implicated journeys.
    text = render_counterexample_trace(fabric, findings)
    assert text.strip()


def test_counterexample_minimization_shrinks_workload():
    config = ExploreConfig(groups=2, hosts=3, messages=2, seed=0,
                           mutate="skip-stamp", max_schedules=2000,
                           max_depth=120)
    result = explore(config)
    minimal_config, minimal = minimize_counterexample(config, result)
    assert minimal.counterexample_schedule is not None
    assert len(minimal_config.skip_messages) > 0
    assert len(minimal.counterexample_schedule) < len(
        result.counterexample_schedule
    )
    # Minimal counterexamples survive their own JSON round trip.
    document = counterexample_document(
        minimal_config, minimal.counterexample_schedule, minimal.violations
    )
    parsed = json.loads(json.dumps(document))
    round_tripped = ExploreConfig.from_dict(parsed["config"])
    _fabric, findings = replay_schedule(round_tripped, parsed["schedule"])
    assert {f.code for f in findings} & {"MC404"}


def test_replay_divergence_is_detected():
    result = explore(SMALL)
    assert result.counterexample_schedule is None
    with pytest.raises(ScheduleDivergence):
        replay_schedule(SMALL, [["deliver", "('nope', 9)", "('nope', 8)"]])


def test_config_validation_rejects_bad_input():
    with pytest.raises(ValueError):
        ExploreConfig(groups=0)
    with pytest.raises(ValueError):
        ExploreConfig(mutate="no-such-mutation")


def test_config_dict_round_trip():
    config = ExploreConfig(groups=3, hosts=4, messages=2, seed=5,
                           loss_rate=0.1, crashes=((1, 2.0, None),),
                           mutate="dup-delivery", skip_messages=(1, 3))
    assert ExploreConfig.from_dict(config.to_dict()) == config


# -- runner integration ------------------------------------------------------


def test_run_explore_check_smoke_scenarios_pass():
    findings, schedules = run_explore_check()
    assert findings == []
    assert schedules > 0
    assert len(CHECK_SCENARIOS) >= 2


def test_run_check_merges_explore_and_async_lint():
    from repro.check.runner import run_check

    stream = io.StringIO()
    code = run_check(paths=(), certificates=(), lint=False, graphs=False,
                     fmt="json", stream=stream, explore=True,
                     async_lint=True)
    assert code == 0
    payload = json.loads(stream.getvalue())
    assert payload["version"] == 2
    assert "model-check" in payload["tools"]
    assert "async-lint" in payload["tools"]
    assert payload["inspected"]["schedules"] > 0
    assert payload["inspected"]["async_files"] > 0
    assert payload["findings"] == []


def test_run_check_survives_crashing_analyzer(monkeypatch):
    """A raising analyzer becomes a CK000 finding; the JSON report still
    renders and the other analyzers' results survive."""
    from repro.check import runner as runner_mod
    from repro.check.runner import run_check

    def boom():
        raise RuntimeError("rule module exploded")

    monkeypatch.setattr(runner_mod, "run_explore_smoke", boom)
    stream = io.StringIO()
    code = run_check(paths=(), certificates=(), lint=False, graphs=False,
                     fmt="json", stream=stream, explore=True,
                     async_lint=True)
    assert code == 1
    payload = json.loads(stream.getvalue())
    crash = [f for f in payload["findings"] if f["code"] == "CK000"]
    assert len(crash) == 1
    assert "rule module exploded" in crash[0]["message"]
    assert crash[0]["tool"] == "model-check"
    # The async-lint analyzer still contributed.
    assert payload["inspected"]["async_files"] > 0
