"""Baseline history: projection, JSONL round-trip, rendering, CLI."""

import json

import pytest

from repro.cli import main
from repro.obs import bench

QUICK_REPORT = "benchmarks/results/BENCH_quick.json"


@pytest.fixture(scope="module")
def report():
    return bench.read_report(QUICK_REPORT)


class TestHistoryRecord:
    def test_projects_the_suite_totals(self, report):
        record = bench.history_record(report, commit="abc123")
        assert record["format"] == bench.HISTORY_FORMAT
        assert record["suite"] == report["suite"]
        assert record["commit"] == "abc123"
        assert record["events"] == report["totals"]["events"]
        assert record["messages"] == report["totals"]["messages"]
        assert record["events_per_s"] == pytest.approx(
            report["totals"]["events"] / report["totals"]["wall_s"]
        )

    def test_workload_entries_carry_phase_shares(self, report):
        record = bench.history_record(report)
        assert set(record["workloads"]) == set(report["workloads"])
        for entry in record["workloads"].values():
            shares = entry.get("phase_share")
            if shares:
                assert sum(shares.values()) == pytest.approx(1.0)

    def test_record_is_json_serializable(self, report):
        json.dumps(bench.history_record(report))


class TestAppendReadRoundTrip:
    def test_appends_one_line_per_call(self, report, tmp_path):
        path = tmp_path / "history.jsonl"
        bench.append_history(report, path, commit="one")
        bench.append_history(report, path, commit="two")
        records = bench.read_history(path)
        assert [r["commit"] for r in records] == ["one", "two"]
        assert records[0] == bench.history_record(report, commit="one")

    def test_creates_parent_directories(self, report, tmp_path):
        path = tmp_path / "nested" / "dir" / "history.jsonl"
        resolved = bench.append_history(report, path)
        assert resolved.exists()

    def test_read_skips_blank_lines(self, report, tmp_path):
        path = tmp_path / "history.jsonl"
        bench.append_history(report, path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("\n")
        assert len(bench.read_history(path)) == 1

    def test_read_rejects_foreign_records(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text(json.dumps({"format": "bogus/1"}) + "\n")
        with pytest.raises(ValueError, match="bogus/1"):
            bench.read_history(path)


class TestRenderHistory:
    def test_table_lists_records_oldest_first(self, report, tmp_path):
        path = tmp_path / "history.jsonl"
        bench.append_history(report, path, commit="aaaaaaaaaaaaaaaa")
        bench.append_history(report, path, commit="bbbbbbbbbbbbbbbb")
        text = bench.render_history(bench.read_history(path))
        assert "2 baseline record(s), oldest first" in text
        # Commits truncated to 12 characters, in append order.
        assert text.index("aaaaaaaaaaaa") < text.index("bbbbbbbbbbbb")
        assert "aaaaaaaaaaaaa" not in text

    def test_empty_commit_renders_dash(self, report):
        text = bench.render_history([bench.history_record(report)])
        assert "-" in text


class TestCli:
    def test_bench_history_renders_committed_file(self, capsys):
        assert main(
            ["bench", "--history", "benchmarks/results/BENCH_history.jsonl"]
        ) == 0
        out = capsys.readouterr().out
        assert "baseline record(s)" in out

    def test_bench_history_json_output(self, capsys):
        assert main(
            [
                "bench",
                "--history", "benchmarks/results/BENCH_history.jsonl",
                "--format", "json",
            ]
        ) == 0
        records = json.loads(capsys.readouterr().out)
        assert records and all(
            r["format"] == bench.HISTORY_FORMAT for r in records
        )

    def test_append_history_cli_round_trip(self, report, tmp_path, capsys):
        path = tmp_path / "history.jsonl"
        bench.append_history(report, path, commit="cli")
        assert main(["bench", "--history", str(path)]) == 0
        assert "1 baseline record(s)" in capsys.readouterr().out
