"""Unit tests for sequencing-graph construction (C1/C2) and ordering."""

import random

import pytest

from repro.core.messages import AtomId
from repro.core.sequencing_graph import (
    GraphInvariantError,
    SequencingGraph,
    block_extent_cost,
    pass_through_cost,
)


def build(snapshot, **kwargs):
    return SequencingGraph.build(
        {g: frozenset(m) for g, m in snapshot.items()}, **kwargs
    )


TRIANGLE = {0: {0, 1, 3}, 1: {0, 1, 2}, 2: {1, 2, 3}}


# ---------------------------------------------------------------------------
# Construction
# ---------------------------------------------------------------------------


def test_single_group_gets_ingress_only_atom():
    graph = build({0: {1, 2, 3}})
    assert graph.group_path(0) == [AtomId.ingress(0)]
    assert graph.overlap_atoms() == []


def test_two_overlapping_groups_one_atom():
    graph = build({0: {1, 2, 3}, 1: {2, 3, 4}})
    atom = AtomId.overlap(0, 1)
    assert graph.overlap_atoms() == [atom]
    assert graph.group_path(0) == [atom]
    assert graph.group_path(1) == [atom]


def test_overlapped_groups_lose_ingress_only_atoms():
    graph = build({0: {1, 2, 3}, 1: {2, 3, 4}})
    assert AtomId.ingress(0) not in graph.atoms
    assert AtomId.ingress(1) not in graph.atoms


def test_non_overlapping_group_keeps_ingress():
    graph = build({0: {1, 2, 3}, 1: {2, 3, 4}, 2: {8, 9}})
    assert graph.group_path(2) == [AtomId.ingress(2)]


def test_triangle_forms_single_chain():
    graph = build(TRIANGLE)
    assert len(graph.chains) == 1
    assert len(graph.chains[0]) == 3
    graph.validate()


def test_triangle_middle_group_passes_through():
    # Whatever the chain order, the group whose two atoms sit at the ends
    # passes through the middle atom (the paper's Figure 2(b) fix).
    graph = build(TRIANGLE)
    chain = graph.chains[0]
    ends_groups = set(chain[0].groups) & set(chain[2].groups)
    assert len(ends_groups) == 1
    group = ends_groups.pop()
    assert graph.pass_through_atoms(group) == [chain[1]]


def test_atom_specs_hold_intersections():
    graph = build(TRIANGLE)
    assert graph.atoms[AtomId.overlap(0, 1)].overlap_members == frozenset({0, 1})
    assert graph.atoms[AtomId.overlap(1, 2)].overlap_members == frozenset({1, 2})


def test_group_path_is_contiguous_chain_segment():
    graph = build(TRIANGLE)
    chain = graph.chains[0]
    for group in graph.groups():
        path = graph.group_path(group)
        start = chain.index(path[0])
        assert chain[start : start + len(path)] == path


def test_ingress_atom_is_first_of_path():
    graph = build(TRIANGLE)
    for group in graph.groups():
        path = graph.group_path(group)
        assert graph.ingress_atom(group) == path[0]
        assert path[0].sequences_group(group)


def test_path_endpoints_sequence_group():
    graph = build(TRIANGLE)
    for group in graph.groups():
        path = graph.group_path(group)
        assert path[0].sequences_group(group)
        assert path[-1].sequences_group(group)


def test_separate_clusters_separate_chains():
    graph = build({0: {1, 2}, 1: {1, 2}, 2: {8, 9}, 3: {8, 9}})
    assert len(graph.chains) == 2


def test_relevant_atoms_of_node():
    graph = build(TRIANGLE)
    # Node 1 (B) is in every pairwise overlap.
    assert set(graph.relevant_atoms_of(1)) == {
        AtomId.overlap(0, 1),
        AtomId.overlap(0, 2),
        AtomId.overlap(1, 2),
    }
    # Node 0 (A) only in overlap of groups 0 and 1.
    assert graph.relevant_atoms_of(0) == [AtomId.overlap(0, 1)]


def test_unknown_group_path_rejected():
    graph = build(TRIANGLE)
    with pytest.raises(KeyError):
        graph.group_path(99)


def test_edges_are_chain_links():
    graph = build(TRIANGLE)
    chain = graph.chains[0]
    assert graph.edges() == list(zip(chain, chain[1:]))


def test_optimize_none_is_valid():
    graph = build(TRIANGLE, optimize="none")
    graph.validate()
    assert graph.chains[0] == sorted(graph.chains[0])


def test_optimize_local_is_valid():
    snapshot = {g: set(range(g, g + 4)) for g in range(6)}
    graph = build(snapshot, optimize="local")
    graph.validate()


def test_unknown_optimize_rejected():
    with pytest.raises(ValueError):
        SequencingGraph(optimize="magic")


def test_deterministic_given_seed():
    snapshot = {g: set(random.Random(g).sample(range(30), 8)) for g in range(8)}
    a = build(snapshot, rng=random.Random(3))
    b = build(snapshot, rng=random.Random(3))
    assert a.chains == b.chains


# ---------------------------------------------------------------------------
# Invariants (C1 / C2)
# ---------------------------------------------------------------------------


def test_validate_accepts_random_memberships():
    rng = random.Random(0)
    for trial in range(20):
        snapshot = {
            g: frozenset(rng.sample(range(20), rng.randint(2, 10)))
            for g in range(rng.randint(1, 10))
        }
        graph = build(snapshot)
        graph.validate()


def test_validate_rejects_duplicate_atom_in_chains():
    graph = build(TRIANGLE)
    graph.chains.append([graph.chains[0][0]])
    with pytest.raises(GraphInvariantError):
        graph.validate()


def test_validate_rejects_split_group():
    graph = build(TRIANGLE)
    chain = graph.chains[0]
    graph.chains = [chain[:1], chain[1:]]
    with pytest.raises(GraphInvariantError):
        graph.validate()


def test_validate_rejects_unknown_atom():
    graph = build(TRIANGLE)
    graph.chains[0].append(AtomId.overlap(50, 51))
    with pytest.raises(GraphInvariantError):
        graph.validate()


def test_validate_rejects_stale_active_atom():
    graph = build({0: {1, 2, 3}, 1: {2, 3, 4}})
    # Shrink the overlap behind the graph's back.
    graph._group_members[0] = frozenset({1, 2})
    graph._group_members[1] = frozenset({3, 4})
    with pytest.raises(GraphInvariantError):
        graph.validate()


def test_c2_no_cycles_in_any_random_build():
    import networkx as nx

    rng = random.Random(7)
    for _ in range(10):
        snapshot = {
            g: frozenset(rng.sample(range(24), rng.randint(3, 12)))
            for g in range(10)
        }
        graph = build(snapshot)
        undirected = nx.Graph(graph.edges())
        assert nx.is_forest(undirected) or undirected.number_of_nodes() == 0


# ---------------------------------------------------------------------------
# Cost functions and ordering quality
# ---------------------------------------------------------------------------


def test_pass_through_cost_zero_when_contiguous():
    a, b = AtomId.overlap(0, 1), AtomId.overlap(0, 2)
    cost = pass_through_cost([a, b], {0: [a, b], 1: [a], 2: [b]})
    assert cost == 0


def test_pass_through_cost_counts_gaps():
    a, b, c = AtomId.overlap(0, 1), AtomId.overlap(2, 3), AtomId.overlap(0, 4)
    cost = pass_through_cost([a, b, c], {0: [a, c]})
    assert cost == 1  # b sits inside group 0's extent


def test_block_extent_cost():
    groups = {"x": frozenset({0}), "y": frozenset({0, 1}), "z": frozenset({1})}
    assert block_extent_cost(["x", "y", "z"], groups) == 2 + 2  # g0 spans 2, g1 spans 2
    assert block_extent_cost(["x", "z", "y"], groups) == 3 + 2


def test_greedy_not_worse_than_sorted_on_average():
    rng = random.Random(1)
    worse = 0
    trials = 12
    for t in range(trials):
        snapshot = {
            g: frozenset(rng.sample(range(30), rng.randint(4, 15)))
            for g in range(10)
        }
        greedy = build(snapshot, optimize="greedy")
        naive = build(snapshot, optimize="none")

        def total_cost(graph):
            return sum(len(graph.pass_through_atoms(g)) for g in graph.groups())

        if total_cost(greedy) > total_cost(naive):
            worse += 1
    assert worse <= trials // 3


def test_reorder_for_colocation_preserves_validity():
    snapshot = {g: set(random.Random(g).sample(range(30), 10)) for g in range(8)}
    graph = build(snapshot)
    atoms = graph.overlap_atoms()
    # Arbitrary 2-block partition.
    block_of = {a: (0 if i % 2 else 1) for i, a in enumerate(atoms)}
    graph.reorder_for_colocation(block_of)
    graph.validate()
    # Blocks are contiguous runs on each chain.
    for chain in graph.chains:
        blocks = [block_of[a] for a in chain]
        transitions = sum(1 for x, y in zip(blocks, blocks[1:]) if x != y)
        assert transitions <= 1
