"""Tests for the service-time (queuing) model at sequencing machines."""

import itertools
import random

import pytest

from repro.baselines.central_sequencer import CentralSequencerFabric
from repro.pubsub.membership import GroupMembership


def triangle_membership():
    membership = GroupMembership()
    membership.create_group([0, 1, 3], group_id=0)
    membership.create_group([0, 1, 2], group_id=1)
    membership.create_group([1, 2, 3], group_id=2)
    return membership


def test_negative_service_time_rejected(env32):
    with pytest.raises(ValueError):
        env32.build_fabric(triangle_membership(), service_time=-1.0)


def test_service_time_adds_latency(env32):
    fast = env32.build_fabric(triangle_membership(), service_time=0.0)
    slow = env32.build_fabric(triangle_membership(), service_time=5.0)
    for fabric in (fast, slow):
        fabric.publish(0, 0)
        fabric.run()
    t_fast = fast.delivered(3)[0].time - fast.delivered(3)[0].publish_time
    t_slow = slow.delivered(3)[0].time - slow.delivered(3)[0].publish_time
    assert t_slow > t_fast
    # Each machine visit costs at least one service quantum.
    assert t_slow >= t_fast + 5.0


def test_queue_builds_under_burst(env32):
    fabric = env32.build_fabric(triangle_membership(), service_time=2.0)
    for i in range(20):
        fabric.publish(0, 0, i)
    fabric.run()
    assert max(p.queue_high_water for p in fabric.node_processes.values()) > 1
    assert fabric.pending_messages() == {}


def test_ordering_consistent_with_service_time(env32):
    fabric = env32.build_fabric(triangle_membership(), service_time=1.5)
    rng = random.Random(0)
    for _ in range(30):
        group = rng.choice([0, 1, 2])
        sender = rng.choice(sorted(fabric.membership.members(group)))
        fabric.publish(sender, group)
    fabric.run()
    assert fabric.pending_messages() == {}
    for a, b in itertools.combinations(range(4), 2):
        seq_a = [r.msg_id for r in fabric.delivered(a)]
        seq_b = [r.msg_id for r in fabric.delivered(b)]
        common = set(seq_a) & set(seq_b)
        assert [m for m in seq_a if m in common] == [m for m in seq_b if m in common]


def test_per_sender_fifo_with_service_time(env32):
    fabric = env32.build_fabric(triangle_membership(), service_time=1.0)
    for i in range(8):
        fabric.publish(0, 0, i)
    fabric.run()
    assert [r.payload for r in fabric.delivered(3)] == list(range(8))


def test_service_time_with_loss(env32):
    fabric = env32.build_fabric(
        triangle_membership(), service_time=1.0, loss_rate=0.2, seed=3
    )
    for i in range(6):
        fabric.publish(0, 0, i)
    fabric.run()
    assert fabric.pending_messages() == {}
    assert [r.payload for r in fabric.delivered(3)] == list(range(6))


def test_coordinator_service_time_queues(env32):
    fabric = CentralSequencerFabric(
        triangle_membership(), env32.hosts, env32.routing, service_time=2.0
    )
    for i in range(15):
        fabric.publish(0, 0, i)
    fabric.run()
    assert fabric.coordinator.queue_high_water > 1
    assert fabric.coordinator_load() == 15
    # Delivery order still consistent (single FIFO server).
    for member in (0, 1, 3):
        assert [r.payload for r in fabric.delivered(member)] == list(range(15))


def test_coordinator_saturation_latency_grows(env32):
    membership = triangle_membership()

    def run_at_gap(gap_ms):
        fabric = CentralSequencerFabric(
            membership, env32.hosts, env32.routing, service_time=5.0
        )
        for i in range(30):
            fabric.sim.schedule(i * gap_ms, fabric.publish, 0, 0, i)
        fabric.run()
        last = fabric.delivered(3)[-1]
        return last.time - last.publish_time

    # Offered interval below the 5 ms service time -> queueing delay grows.
    assert run_at_gap(1.0) > run_at_gap(10.0)
