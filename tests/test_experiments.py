"""Smoke tests for the figure-reproduction experiment harness.

Each figure runs with tiny parameters (few hosts, few runs) to keep the
suite fast; the full-parameter runs live in benchmarks/.  The assertions
check the *structure* of each experiment's output and the coarse shape
properties that must hold at any scale.
"""

import pytest

from repro.experiments import fig3_latency_stretch as fig3
from repro.experiments import fig4_rdp as fig4
from repro.experiments import fig5_sequencing_nodes as fig5
from repro.experiments import fig6_stress as fig6
from repro.experiments import fig7_atoms_on_path as fig7
from repro.experiments import fig8_occupancy as fig8
from repro.experiments.common import ExperimentEnv, format_table
from repro.experiments.runner import run_selected


@pytest.fixture(scope="module")
def env():
    return ExperimentEnv(n_hosts=32, seed=0)


def test_fig3_structure(env):
    results = fig3.run_fig3(env, group_counts=(4, 8))
    assert set(results) == {4, 8}
    for values in results.values():
        assert values
        assert all(v > 0 for v in values)
        assert values == sorted(values)
    assert "Figure 3" in fig3.render(results)


def test_fig4_structure(env):
    points = fig4.run_fig4(env, n_groups=8)
    assert points
    assert all(delay > 0 and rdp > 0 for delay, rdp in points)
    table = fig4.render(points)
    assert "Figure 4" in table


def test_fig4_close_pairs_pay_most(env):
    points = fig4.run_fig4(env, n_groups=8)
    rows = fig4.bin_points(points, n_bins=4)
    assert rows[0][4] >= rows[-1][4]  # max RDP in closest bin >= farthest


def test_fig5_structure(env):
    results = fig5.run_fig5(env, group_counts=(2, 8), runs=3)
    assert set(results) == {2, 8}
    assert all(len(counts) == 3 for counts in results.values())
    assert "Figure 5" in fig5.render(results)


def test_fig5_nodes_grow_with_groups(env):
    results = fig5.run_fig5(env, group_counts=(2, 16), runs=5)
    mean = lambda v: sum(v) / len(v)
    assert mean(results[16]) >= mean(results[2])


def test_fig6_structure(env):
    results = fig6.run_fig6(env, group_counts=(4, 8), runs=3)
    for values in results.values():
        assert all(0 <= v <= 1 for v in values)
    assert "Figure 6" in fig6.render(results)


def test_fig6_stress_declines_with_groups(env):
    results = fig6.run_fig6(env, group_counts=(2, 16), runs=5)
    mean = lambda v: sum(v) / len(v) if v else 0
    assert mean(results[16]) <= mean(results[2])


def test_fig7_structure(env):
    results = fig7.run_fig7(env, group_counts=(4, 8), runs=3)
    for values in results.values():
        assert all(0 <= v < 1 for v in values)
    assert "Figure 7" in fig7.render(results)


def test_fig7_worst_case_below_half(env):
    results = fig7.run_fig7(env, group_counts=(8,), runs=5)
    assert max(results[8]) < 0.5


def test_fig8_structure(env):
    results = fig8.run_fig8(env, n_groups=8, occupancies=(0.1, 0.5, 1.0), runs=2)
    assert set(results) == {0.1, 0.5, 1.0}
    assert "Figure 8" in fig8.render(results)


def test_fig8_full_occupancy_one_node(env):
    results = fig8.run_fig8(env, n_groups=8, occupancies=(1.0,), runs=1)
    overlaps, nodes = results[1.0]
    assert overlaps == 8 * 7 / 2  # all pairs fully overlap
    assert nodes == 1  # subset rule collapses everything


def test_fig8_overlaps_monotone_in_occupancy(env):
    results = fig8.run_fig8(env, n_groups=8, occupancies=(0.1, 0.9), runs=3)
    assert results[0.9][0] >= results[0.1][0]


def test_runner_subset(env):
    report = run_selected([5, 7], runs=2, paper_scale=False, n_hosts=16)
    assert "Figure 5" in report
    assert "Figure 7" in report
    assert "Figure 3" not in report


def test_format_table_alignment():
    table = format_table(["a", "long_header"], [[1, 2.5], [10, 3.25]], title="T")
    lines = table.splitlines()
    assert lines[0] == "T"
    assert "long_header" in lines[1]
    assert "2.500" in table
