"""Heartbeat detection and live sequencing-node failover.

The acceptance property of the robustness layer: a sequencing node that
crashes permanently mid-traffic is suspected by the heartbeat detector,
its atoms relocate live to a standby machine, in-flight traffic replays
from retransmission buffers — and every ordering invariant (per-group
total order, exactly-once, causal order) holds for every subscriber.
"""

import random

import pytest

from repro.check import verify_run
from repro.faults import HeartbeatDetector, choose_standby, fail_over, wire_failover
from repro.pubsub.membership import GroupMembership
from repro.sim.events import SimulationError


def triangle_membership():
    membership = GroupMembership()
    membership.create_group([0, 1, 3], group_id=0)
    membership.create_group([0, 1, 2], group_id=1)
    membership.create_group([1, 2, 3], group_id=2)
    return membership


def reliable_fabric(env, **kwargs):
    return env.build_fabric(
        triangle_membership(), retransmit_timeout=5.0, **kwargs
    )


def busiest_node(fabric):
    return max(
        fabric.node_processes.values(), key=lambda p: len(p.atom_runtimes)
    )


def publish_mixed(fabric, count, spread, seed=9):
    rng = random.Random(seed)
    for _ in range(count):
        group = rng.choice(sorted(fabric.membership.groups()))
        sender = rng.choice(sorted(fabric.membership.members(group)))
        fabric.sim.schedule_at(spread * rng.random(), fabric.publish, sender, group)


# -- relocate_node (the fabric primitive) ------------------------------------


def test_relocate_requires_reliability(env32):
    fabric = env32.build_fabric(triangle_membership())
    with pytest.raises(SimulationError):
        fabric.relocate_node(0, 1)


def test_relocate_moves_machine_and_placement(env32):
    fabric = reliable_fabric(env32)
    node = busiest_node(fabric)
    old_machine = node.machine
    target = (old_machine + 1) % fabric.topology.n_nodes
    record = fabric.relocate_node(node.node_id, target)
    assert node.machine == target
    assert record.old_machine == old_machine
    assert record.new_machine == target
    placement_entry = next(
        n for n in fabric.placement.nodes if n.node_id == node.node_id
    )
    assert placement_entry.machine == target
    assert fabric.failovers == [record]


def test_relocate_retires_channels(env32):
    fabric = reliable_fabric(env32)
    node = busiest_node(fabric)
    publish_mixed(fabric, 6, spread=5.0)
    fabric.run()
    touching = [
        key for key in fabric.network.channels if node.name in key
    ]
    assert touching  # the busiest node saw traffic
    fabric.relocate_node(node.node_id, (node.machine + 1) % fabric.topology.n_nodes)
    assert all(
        node.name not in key for key in fabric.network.channels
    )
    assert fabric.network.channels_retired >= len(touching)


def test_failover_mid_traffic_preserves_all_invariants(env32):
    """Permanent crash + manual failover: order, exactly-once, causality."""
    fabric = reliable_fabric(env32)
    node = busiest_node(fabric)
    target = (node.machine + 7) % fabric.topology.n_nodes
    fabric.sim.schedule_at(10.0, node.crash, float("inf"))
    fabric.sim.schedule_at(
        40.0, fabric.relocate_node, node.node_id, target, 1.0
    )
    publish_mixed(fabric, 30, spread=80.0)
    fabric.run()
    assert fabric.pending_messages() == {}
    assert node.machine == target
    assert len(fabric.failovers) == 1
    assert verify_run(fabric, complete=True, causal=True) == []
    # Sequencing counters continued across the move: stamps stay unique
    # and dense enough that every published message was delivered.
    delivered_ids = {
        r.msg_id for p in fabric.host_processes.values() for r in p.delivered
    }
    assert delivered_ids == set(fabric.published)


def test_failover_replays_pending_buffers(env32):
    fabric = reliable_fabric(env32)
    node = busiest_node(fabric)
    fabric.sim.schedule_at(2.0, node.crash, float("inf"))
    publish_mixed(fabric, 10, spread=8.0)
    fabric.sim.run(until=30.0)
    # Traffic toward the dead node is parked in retransmission buffers.
    parked = sum(
        len(link.pending)
        for (src, dst), link in fabric._links.items()
        if dst == node.name
    )
    assert parked > 0
    record = fabric.relocate_node(
        node.node_id, (node.machine + 1) % fabric.topology.n_nodes
    )
    assert record.replayed >= parked
    assert fabric.retransmissions_by_cause.get("failover_replay", 0) >= parked
    fabric.run()
    assert verify_run(fabric, complete=True, causal=True) == []


def test_transfer_delay_keeps_node_down(env32):
    fabric = reliable_fabric(env32)
    node = busiest_node(fabric)
    node.crash(float("inf"))
    fabric.relocate_node(node.node_id, node.machine, transfer_delay=5.0)
    assert node.is_down  # still transferring state
    fabric.sim.schedule(6.0, lambda: None)
    fabric.run()
    assert not node.is_down  # the relocation cleared the permanent crash


# -- standby selection -------------------------------------------------------


def test_choose_standby_prefers_subscriber_routers(env32):
    fabric = reliable_fabric(env32)
    node = busiest_node(fabric)
    groups = set()
    for atom_id in node.atom_runtimes:
        groups.update(atom_id.groups)
    member_routers = {
        fabric._host_by_id[m].router
        for g in groups
        for m in fabric.membership.members(g)
    }
    for seed in range(5):
        standby = choose_standby(fabric, node.node_id, random.Random(seed))
        assert standby != node.machine
        assert standby in member_routers


def test_fail_over_default_rng_deterministic(env32):
    targets = []
    for _ in range(2):
        fabric = reliable_fabric(env32)
        node = busiest_node(fabric)
        record = fail_over(fabric, node.node_id)
        targets.append(record.new_machine)
    assert targets[0] == targets[1]


# -- the heartbeat detector --------------------------------------------------


def test_detector_validation(env32):
    fabric = reliable_fabric(env32)
    with pytest.raises(ValueError):
        HeartbeatDetector(fabric, interval=0.0)
    with pytest.raises(ValueError):
        HeartbeatDetector(fabric, interval=5.0, suspect_after=0)


def test_detector_no_false_positives_when_healthy(env32):
    fabric = reliable_fabric(env32)
    detector = HeartbeatDetector(fabric, interval=5.0, suspect_after=3)
    detector.start()
    publish_mixed(fabric, 10, spread=50.0)
    fabric.sim.run(until=150.0)
    detector.stop()
    fabric.run()
    assert detector.suspicions == []
    assert detector.heartbeats_sent > 0
    assert detector.pongs_received > 0
    assert fabric.pending_messages() == {}


def test_detector_suspects_crashed_node(env32):
    fabric = reliable_fabric(env32)
    detector = HeartbeatDetector(fabric, interval=5.0, suspect_after=3)
    node = busiest_node(fabric)
    fabric.sim.schedule_at(20.0, node.crash, float("inf"))
    detector.start()
    fabric.sim.run(until=200.0)
    detector.stop()
    suspected = [node_id for _t, node_id, _s in detector.suspicions]
    assert node.node_id in suspected
    # Suspicion came after the crash, within a few thresholds.
    time = next(t for t, n, _s in detector.suspicions if n == node.node_id)
    assert 20.0 < time < 20.0 + 3 * detector.threshold(node.node_id)


def test_detector_stops_pinging_suspected_nodes(env32):
    fabric = reliable_fabric(env32)
    detector = HeartbeatDetector(fabric, interval=5.0, suspect_after=2)
    node = busiest_node(fabric)
    node.crash(float("inf"))
    detector.start()
    fabric.sim.run(until=300.0)
    detector.stop()
    fabric.run()
    assert [n for _t, n, _s in detector.suspicions] == [node.node_id]
    # A suspected node is not pinged again (no re-suspicion spam).
    assert detector.suspicions[0][1] == node.node_id


def test_detector_clear_restores_monitoring(env32):
    fabric = reliable_fabric(env32)
    detector = HeartbeatDetector(fabric, interval=5.0, suspect_after=2)
    node = busiest_node(fabric)
    node.crash(30.0)
    detector.start()
    fabric.sim.run(until=100.0)
    assert [n for _t, n, _s in detector.suspicions] == [node.node_id]
    detector.clear(node.node_id)
    fabric.sim.run(until=200.0)
    detector.stop()
    fabric.run()
    # The node recovered at t=30; after clear it is monitored and healthy.
    assert [n for _t, n, _s in detector.suspicions] == [node.node_id]


# -- wired end-to-end --------------------------------------------------------


def test_wired_failover_end_to_end(env32):
    """Detection -> standby selection -> live relocation, automatically."""
    fabric = reliable_fabric(env32)
    detector = HeartbeatDetector(fabric, interval=5.0, suspect_after=3)
    wire_failover(fabric, detector, rng=random.Random(0), transfer_delay=1.0)
    node = busiest_node(fabric)
    old_machine = node.machine
    fabric.sim.schedule_at(15.0, node.crash, float("inf"))
    publish_mixed(fabric, 24, spread=60.0)
    detector.start()
    fabric.sim.run(until=250.0)
    detector.stop()
    fabric.run()
    assert fabric.sim.pending == 0
    failed_over = [r for r in fabric.failovers if r.node_id == node.node_id]
    assert len(failed_over) == 1
    assert failed_over[0].old_machine == old_machine
    assert not node.is_down
    assert verify_run(fabric, complete=True, causal=True) == []


def test_failover_and_retransmit_metrics_exported(env32):
    from repro.obs.registry import MetricsRegistry

    registry = MetricsRegistry()
    fabric = env32.build_fabric(
        triangle_membership(), retransmit_timeout=5.0, registry=registry
    )
    detector = HeartbeatDetector(
        fabric, interval=5.0, suspect_after=3, registry=registry
    )
    wire_failover(fabric, detector, rng=random.Random(0))
    node = busiest_node(fabric)
    fabric.sim.schedule_at(10.0, node.crash, float("inf"))
    publish_mixed(fabric, 15, spread=40.0)
    detector.start()
    fabric.sim.run(until=200.0)
    detector.stop()
    fabric.run()
    registry.collect()
    assert registry.get("repro_failovers").value == len(fabric.failovers) >= 1
    assert registry.get("repro_link_failures").value == 0
    assert registry.get("repro_detector_heartbeats").value > 0
    assert registry.get("repro_detector_pongs").value > 0
    assert registry.get("repro_detector_suspicions").value >= 1
    by_cause = fabric.retransmissions_by_cause
    for cause in by_cause:
        counter = registry.get("repro_retransmissions_by_cause", cause=cause)
        assert counter.value == by_cause[cause]
    # Per-link drop counters split by cause.
    total_loss = sum(
        registry.get("repro_link_drops", cause="loss", src=src, dst=dst).value
        for (src, dst) in (
            (key[0], key[1])
            for key in (
                tuple(
                    ":".join(str(part) for part in name)
                    for name in channel_key
                )
                for channel_key in fabric.network.channels
            )
        )
    )
    assert total_loss == sum(
        c.loss_drops for c in fabric.network.channels.values()
    )


def test_failover_of_healthy_node_is_safe(env32):
    """A false suspicion relocates a live node — and nothing breaks."""
    fabric = reliable_fabric(env32)
    node = busiest_node(fabric)
    fabric.sim.schedule_at(
        20.0,
        fabric.relocate_node,
        node.node_id,
        (node.machine + 3) % fabric.topology.n_nodes,
        0.5,
    )
    publish_mixed(fabric, 25, spread=50.0)
    fabric.run()
    assert fabric.pending_messages() == {}
    assert verify_run(fabric, complete=True, causal=True) == []
