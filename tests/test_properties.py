"""Property-based tests (hypothesis) for the core invariants.

These encode the DESIGN.md invariant list: C1/C2 on arbitrary
memberships, total order per receiver pair, delivery liveness, stamp
bounds, and workload generator properties.
"""

import itertools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.delivery import DeliveryState
from repro.core.messages import AtomId, Stamp
from repro.core.overlaps import double_overlaps, overlap_clusters
from repro.core.sequencing_graph import SequencingGraph, pass_through_cost
from repro.workloads.occupancy import occupancy_membership
from repro.workloads.zipf import zipf_group_sizes

# A membership snapshot: up to 8 groups over up to 16 hosts, sizes >= 2.
memberships = st.dictionaries(
    keys=st.integers(min_value=0, max_value=7),
    values=st.frozensets(st.integers(min_value=0, max_value=15), min_size=2, max_size=16),
    min_size=1,
    max_size=8,
)

loose_settings = settings(
    max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None
)


# ---------------------------------------------------------------------------
# Overlap analysis
# ---------------------------------------------------------------------------


@given(memberships)
@loose_settings
def test_double_overlaps_are_correct(snapshot):
    result = double_overlaps(snapshot)
    # Soundness: every reported pair truly shares >= 2 members.
    for (g, h), members in result.items():
        assert members == snapshot[g] & snapshot[h]
        assert len(members) >= 2
        assert g < h
    # Completeness: every qualifying pair is reported.
    for g, h in itertools.combinations(sorted(snapshot), 2):
        if len(snapshot[g] & snapshot[h]) >= 2:
            assert (g, h) in result


@given(memberships)
@loose_settings
def test_overlap_clusters_partition(snapshot):
    pairs = list(double_overlaps(snapshot))
    clusters = overlap_clusters(pairs)
    flattened = [p for cluster in clusters for p in cluster]
    assert sorted(flattened) == sorted(pairs)
    # Groups never straddle clusters.
    group_cluster = {}
    for index, cluster in enumerate(clusters):
        for g, h in cluster:
            for group in (g, h):
                assert group_cluster.setdefault(group, index) == index


# ---------------------------------------------------------------------------
# Sequencing graph invariants (C1 / C2)
# ---------------------------------------------------------------------------


@given(memberships)
@loose_settings
def test_graph_invariants_hold(snapshot):
    graph = SequencingGraph.build(snapshot)
    graph.validate()
    # C2: the undirected sequencing graph is a forest (chains are paths).
    atoms_in_chains = [a for chain in graph.chains for a in chain]
    assert len(atoms_in_chains) == len(set(atoms_in_chains))
    # C1: each group's atoms form a contiguous-by-construction path.
    for group in snapshot:
        path = graph.group_path(group)
        assert path, f"group {group} has no path"
        own = [
            a
            for a in path
            if a.sequences_group(group)
            and graph.is_active(a)
            and not a.is_ingress_only
        ]
        assert own == graph.atoms_of_group(group)
        if own:
            assert path[0] == own[0]
            assert path[-1] == own[-1]
        else:
            assert path == [AtomId.ingress(group)]


@given(memberships)
@loose_settings
def test_stamp_entries_bounded_by_groups(snapshot):
    graph = SequencingGraph.build(snapshot)
    n_groups = len(snapshot)
    for group in snapshot:
        # A group can double-overlap at most each other group.
        assert len(graph.atoms_of_group(group)) <= n_groups - 1


@given(memberships)
@loose_settings
def test_every_relevant_atom_on_both_group_paths(snapshot):
    graph = SequencingGraph.build(snapshot)
    for atom in graph.overlap_atoms():
        g, h = atom.groups
        assert atom in graph.group_path(g)
        assert atom in graph.group_path(h)


@given(memberships, memberships)
@loose_settings
def test_dynamic_add_remove_keeps_invariants(base, extra):
    graph = SequencingGraph.build(base)
    offset = 100
    for group, members in sorted(extra.items()):
        graph.add_group(group + offset, members)
        graph.validate()
    for group in sorted(extra):
        graph.remove_group(group + offset, lazy=(group % 2 == 0))
        graph.validate()
    graph.compact()
    graph.validate()
    # The surviving groups are exactly the base ones.
    assert graph.groups() == sorted(base)


@given(memberships)
@loose_settings
def test_chain_order_cost_nonnegative(snapshot):
    graph = SequencingGraph.build(snapshot)
    for chain in graph.chains:
        atoms_by_group = {}
        for atom in chain:
            for g in atom.groups:
                atoms_by_group.setdefault(g, []).append(atom)
        assert pass_through_cost(chain, atoms_by_group) >= 0


# ---------------------------------------------------------------------------
# Delivery state: total order per receiver
# ---------------------------------------------------------------------------


@given(st.permutations(list(range(1, 9))))
@loose_settings
def test_any_arrival_order_delivers_in_sequence(arrival):
    """A single group's messages deliver in group-seq order regardless of
    arrival permutation (buffering reconstructs the order)."""
    state = DeliveryState(0, groups=[0], relevant_atoms=[])
    delivered = []
    for seq in arrival:
        for stamp, _ in state.on_receive(Stamp(0, seq)):
            delivered.append(stamp.group_seq)
    assert delivered == sorted(arrival)
    assert state.pending == 0


@given(
    st.lists(st.tuples(st.integers(0, 1), st.booleans()), min_size=1, max_size=20)
)
@loose_settings
def test_two_group_interleaving_consistent(script):
    """Two receivers fed the same stamp stream deliver identically."""
    q = AtomId.overlap(0, 1)
    seqs = {0: 0, 1: 0}
    atom_seq = 0
    stamps = []
    for group, _ in script:
        seqs[group] += 1
        atom_seq += 1
        stamps.append(Stamp(group, seqs[group], ((q, atom_seq),)))
    a = DeliveryState(0, groups=[0, 1], relevant_atoms=[q])
    b = DeliveryState(1, groups=[0, 1], relevant_atoms=[q])
    out_a = [s.group_seq for stamp in stamps for s, _ in a.on_receive(stamp)]
    out_b = [s.group_seq for stamp in stamps for s, _ in b.on_receive(stamp)]
    assert out_a == out_b
    assert a.pending == b.pending == 0


# ---------------------------------------------------------------------------
# Workload generators
# ---------------------------------------------------------------------------


@given(
    st.integers(min_value=4, max_value=256),
    st.integers(min_value=1, max_value=64),
)
@loose_settings
def test_zipf_sizes_valid(n_hosts, n_groups):
    sizes = zipf_group_sizes(n_hosts, n_groups)
    assert len(sizes) == n_groups
    assert all(2 <= s <= n_hosts for s in sizes)
    assert sizes == sorted(sizes, reverse=True)


@given(
    st.integers(min_value=1, max_value=64),
    st.integers(min_value=1, max_value=32),
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=0, max_value=1000),
)
@loose_settings
def test_occupancy_membership_valid(n_hosts, n_groups, occupancy, seed):
    import random

    snapshot = occupancy_membership(n_hosts, n_groups, occupancy, rng=random.Random(seed))
    assert len(snapshot) <= n_groups
    for members in snapshot.values():
        assert members
        assert all(0 <= m < n_hosts for m in members)
