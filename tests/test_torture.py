"""Composite torture tests: every hostile condition at once.

Loss, sequencer downtime, service-time queueing, membership churn with
state-continuous reconfiguration — stacked together across epochs.  The
invariants (liveness, no duplicates, pairwise consistency, causal chains)
must survive the combination, not just each condition in isolation.
"""

import itertools
import random

import pytest

from repro.core.reconfigure import reconfigure
from repro.pubsub.membership import GroupMembership


def copy_membership(membership):
    clone = GroupMembership()
    for group, members in membership.snapshot().items():
        clone.create_group(members, group_id=group)
    return clone


def check_pairwise(delivered):
    for a, b in itertools.combinations(sorted(delivered), 2):
        seq_a, seq_b = delivered[a], delivered[b]
        common = set(seq_a) & set(seq_b)
        assert [m for m in seq_a if m in common] == [m for m in seq_b if m in common]


@pytest.mark.parametrize("seed", range(3))
def test_loss_crash_queueing_churn(env32, seed):
    rng = random.Random(seed)
    n_hosts = len(env32.hosts)
    membership = GroupMembership()
    for _ in range(5):
        membership.create_group(rng.sample(range(n_hosts), rng.randint(3, 12)))

    delivered = {h.host_id: [] for h in env32.hosts}
    sent_per_group = {}
    fabric = env32.build_fabric(
        membership, seed=seed, loss_rate=0.15, service_time=0.5
    )

    for epoch in range(3):
        # Crash a random sequencing node shortly into the epoch.
        overlap_nodes = [
            p for p in fabric.node_processes.values() if p.atom_runtimes
        ]
        victim = rng.choice(overlap_nodes)
        fabric.sim.schedule(2.0, victim.crash, 15.0)

        groups = fabric.membership.groups()
        for _ in range(15):
            group = rng.choice(groups)
            sender = rng.choice(sorted(fabric.membership.members(group)))
            fabric.publish(sender, group)
            sent_per_group[group] = sent_per_group.get(group, 0) + 1
        fabric.run()
        assert fabric.pending_messages() == {}, f"epoch {epoch} stuck"
        for host_id in delivered:
            delivered[host_id].extend(
                r.msg_id for r in fabric.delivered(host_id)
            )

        # Churn membership for the next epoch.
        next_membership = copy_membership(fabric.membership)
        victims = [g for g in next_membership.groups() if rng.random() < 0.3]
        for group in victims:
            if next_membership.group_count() > 2:
                next_membership.remove_group(group)
        next_membership.create_group(
            rng.sample(range(n_hosts), rng.randint(3, 10))
        )
        fabric = reconfigure(fabric, next_membership, seed=seed + epoch)

    check_pairwise(delivered)
    for host_id, ids in delivered.items():
        assert len(set(ids)) == len(ids), f"host {host_id} saw duplicates"


def test_causal_chain_through_crash_and_loss(env32):
    membership = GroupMembership()
    group = membership.create_group([0, 1, 2, 3, 4])
    fabric = env32.build_fabric(membership, seed=9, loss_rate=0.2, service_time=0.3)
    node = max(fabric.node_processes.values(), key=lambda p: len(p.atom_runtimes))
    fabric.sim.schedule(1.0, node.crash, 10.0)
    chain = []
    for sender in (0, 1, 2, 3, 4):
        chain.append(fabric.publish(sender, group, f"link-{sender}"))
        fabric.run()  # each link observed before the next is sent
    for member in (0, 1, 2, 3, 4):
        assert [r.msg_id for r in fabric.delivered(member)] == chain


def test_epoch_switch_under_queue_pressure(env32):
    """Reconfigure right after a heavy burst drains; counters stay sane."""
    membership = GroupMembership()
    g0 = membership.create_group([0, 1, 2, 3])
    g1 = membership.create_group([2, 3, 4, 5])
    fabric = env32.build_fabric(membership, seed=2, service_time=1.0)
    for i in range(30):
        fabric.publish(i % 4, g0)
    fabric.run()
    next_membership = copy_membership(membership)
    next_membership.join(g0, 9)
    fabric = reconfigure(fabric, next_membership)
    fabric.publish(0, g0)
    fabric.run()
    record = [r for r in fabric.delivered(9)][0]
    # The joined group changed membership, so (per the paper's
    # remove-then-add model) its group-local space restarts ...
    assert record.stamp.group_seq == 1
    # ... while the surviving overlap atom's space continues past the 30
    # messages of the previous epoch.
    atom_seqs = dict(record.stamp.atom_seqs)
    assert all(seq > 30 for seq in atom_seqs.values())
    assert fabric.pending_messages() == {}
    assert g1 in fabric.membership.groups()
