"""Streaming invariant monitors, phase percentiles, telemetry snapshots."""

import json

import pytest

from repro.check.explore import MUTATIONS
from repro.check.invariants import fabric_view, verify_run
from repro.experiments.common import ExperimentEnv
from repro.faults.campaign import ChaosConfig, execute_campaign, run_campaign
from repro.faults.churn import ChurnConfig, run_churn_campaign
from repro.obs.live import (
    MONITOR_RULES,
    LiveMonitor,
    TelemetrySnapshot,
    merge_snapshots,
)
from repro.runtime.trace import TraceRecord

SNAPSHOT = {
    0: frozenset({0, 1, 2, 3}),
    1: frozenset({1, 2, 4, 5}),
}


def _clean_run(seed=0, monitor=None):
    env = ExperimentEnv(n_hosts=6, seed=seed)
    fabric = env.build_fabric(
        env.membership_from(SNAPSHOT), seed=seed, trace=True, loss_rate=0.05
    )
    if monitor is not None:
        monitor.attach(fabric)
    import random

    rng = random.Random(seed)
    for _ in range(30):
        group = rng.choice(sorted(SNAPSHOT))
        sender = rng.choice(sorted(SNAPSHOT[group]))
        fabric.publish(sender, group)
    fabric.run()
    assert not fabric.pending_messages()
    return fabric


class TestCleanRun:
    def test_no_alerts_on_a_healthy_run(self):
        monitor = LiveMonitor()
        _clean_run(monitor=monitor)
        assert monitor.alerts == []
        assert monitor.violations == 0

    def test_stream_audit_equals_fabric_audit(self):
        monitor = LiveMonitor()
        fabric = _clean_run(monitor=monitor)
        live = monitor.final_findings(complete=True, causal=True)
        post = verify_run(
            fabric_view(fabric),
            complete=True,
            causal=True,
            mutual=True,
        )
        assert [f.code for f in live] == [f.code for f in post]
        assert live == post

    def test_counts_track_the_run(self):
        monitor = LiveMonitor()
        fabric = _clean_run(monitor=monitor)
        assert monitor.published_total == 30
        assert monitor.delivered_total == sum(
            len(fabric.delivered(h)) for h in range(6)
        )

    def test_confirmation_eviction_bounds_memory(self):
        monitor = LiveMonitor()
        _clean_run(monitor=monitor)
        # Every message fully delivered -> all per-message state evicted.
        assert monitor._deliver_count == {}
        assert monitor._msg_group_seq == {}
        assert all(not seen for seen in monitor._seen.values())
        assert monitor.holdback_occupancy() == {}

    def test_retain_audit_false_has_no_run_view(self):
        monitor = LiveMonitor(retain_audit=False)
        _clean_run(monitor=monitor)
        with pytest.raises(RuntimeError):
            monitor.run_view()


class TestSyntheticRules:
    """Hand-fed record streams trip each monitor precisely."""

    def _monitor(self):
        monitor = LiveMonitor(retain_audit=False)
        monitor.adopt_membership({0: frozenset({0, 1})})
        return monitor

    @staticmethod
    def _deliver(time, host, msg, sender=0, group=0):
        return TraceRecord(
            time,
            "deliver",
            {
                "msg": msg,
                "host": host,
                "group": group,
                "sender": sender,
                "publish_time": 0.0,
            },
        )

    def test_lm301_duplicate_in_window(self):
        monitor = self._monitor()
        monitor.observe(self._deliver(1.0, 0, 5))
        monitor.observe(self._deliver(2.0, 0, 5))
        assert [a.rule for a in monitor.alerts] == ["LM301"]
        assert monitor.violations == 1

    def test_lm302_group_sequence_gap(self):
        monitor = self._monitor()
        for msg, group_seq in ((1, 0), (2, 1), (3, 2)):
            monitor.observe(
                TraceRecord(
                    0.5, "atom_seq",
                    {"msg": msg, "node": 0, "atom": "a", "seq": group_seq,
                     "group_seq": group_seq},
                )
            )
        monitor.observe(self._deliver(1.0, 0, 1))
        monitor.observe(self._deliver(2.0, 0, 3))  # skipped group_seq 1
        lm302 = [a for a in monitor.alerts if a.rule == "LM302"]
        assert len(lm302) == 1
        assert "skipped" in lm302[0].message

    def test_lm304_publisher_fifo(self):
        monitor = self._monitor()
        monitor.observe(self._deliver(1.0, 0, 7, sender=2))
        monitor.observe(self._deliver(2.0, 0, 3, sender=2))
        assert [a.rule for a in monitor.alerts] == ["LM304"]

    def test_lm300_order_divergence(self):
        monitor = self._monitor()
        monitor.observe(self._deliver(1.0, 0, 10))
        monitor.observe(self._deliver(2.0, 0, 11))
        monitor.observe(self._deliver(3.0, 1, 11))  # host 1 starts with 11
        lm300 = [a for a in monitor.alerts if a.rule == "LM300"]
        assert len(lm300) == 1
        assert lm300[0].anchor == "group 0"

    def test_lm303_stall_fires_past_threshold_with_cause(self):
        monitor = self._monitor()
        monitor.observe(
            TraceRecord(0.0, "buffer", {"msg": 1, "host": 0, "group": 0})
        )
        monitor.observe(
            TraceRecord(
                10.0, "retransmit", {"src": 0, "dst": 1, "cause": "loss"}
            )
        )
        assert monitor.alerts == []
        monitor.observe(
            TraceRecord(61.0, "publish", {"msg": 9, "group": 0, "sender": 0})
        )
        lm303 = [a for a in monitor.alerts if a.rule == "LM303"]
        assert len(lm303) == 1
        assert lm303[0].severity == "warning"
        assert lm303[0].cause == "loss"
        assert lm303[0].evidence == {"loss": 1}
        assert monitor.violations == 0  # warnings are not violations

    def test_lm303_silent_when_drained_in_time(self):
        monitor = self._monitor()
        monitor.observe(
            TraceRecord(0.0, "buffer", {"msg": 1, "host": 0, "group": 0})
        )
        monitor.observe(
            TraceRecord(
                20.0, "drain",
                {"msg": 1, "host": 0, "group": 0, "unblocked_by": 2,
                 "waited": 20.0},
            )
        )
        monitor.observe(
            TraceRecord(100.0, "publish", {"msg": 9, "group": 0, "sender": 0})
        )
        assert monitor.alerts == []
        assert monitor.holdback_occupancy() == {}

    def test_alert_cap_counts_drops(self):
        monitor = LiveMonitor(retain_audit=False, max_alerts=2)
        monitor.adopt_membership({0: frozenset({0, 1})})
        # Every second delivery of the same message is a duplicate inside
        # the confirmation window (the even ones evict it again).
        for step in range(6):
            monitor.observe(self._deliver(float(step), 0, 5))
        assert len(monitor.alerts) == 2
        assert monitor.alerts_dropped == 1

    def test_rule_table_matches_alert_severities(self):
        assert set(MONITOR_RULES) == {
            "LM300", "LM301", "LM302", "LM303", "LM304"
        }
        assert MONITOR_RULES["LM303"][0] == "warning"


class TestMutationDetection:
    def test_dup_delivery_mutation_fires_live(self):
        monitor = LiveMonitor()
        env = ExperimentEnv(n_hosts=6, seed=0)
        fabric = env.build_fabric(
            env.membership_from(SNAPSHOT), seed=0, trace=True
        )
        monitor.attach(fabric)
        MUTATIONS["dup-delivery"](fabric)
        for sender, group in ((0, 0), (1, 1), (2, 0), (4, 1)):
            fabric.publish(sender, group)
        fabric.run()
        assert monitor.violations > 0
        live = monitor.final_findings(complete=True, causal=True)
        post = verify_run(
            fabric_view(fabric),
            complete=True, causal=True, mutual=True,
        )
        assert live == post
        assert post, "post-hoc audit should also flag the mutation"


class TestCampaignIntegration:
    CONFIG = ChaosConfig(
        hosts=16, groups=6, events=40, seed=7, horizon=250.0
    )

    def test_live_block_agrees_and_is_deterministic(self):
        reports = [
            run_campaign(self.CONFIG, live_monitor=True) for _ in range(2)
        ]
        for report in reports:
            live = report["live_monitor"]
            assert live["agrees_with_audit"], live["findings"]
            assert live["violations"] == 0
        assert json.dumps(reports[0], sort_keys=True) == json.dumps(
            reports[1], sort_keys=True
        )

    def test_stall_warnings_carry_attributed_causes(self):
        # The CI smoke config: heavy enough that hold-back stalls occur.
        config = ChaosConfig(
            hosts=24, groups=8, events=80, seed=7, horizon=400.0
        )
        report = run_campaign(config, live_monitor=True)
        warnings = [
            a for a in report["live_monitor"]["alerts"]
            if a["severity"] == "warning"
        ]
        assert warnings, "fault campaign should produce stall warnings"
        causes = {a["cause"] for a in warnings}
        assert causes <= {
            "loss", "outage", "peer_down", "failover_replay",
            "epoch_switch", "link_failure", "in_flight",
        }

    def test_mutated_campaign_fires_and_still_agrees(self):
        report = run_campaign(
            self.CONFIG, live_monitor=True, mutate="dup-delivery"
        )
        assert not report["ok"]
        assert report["mutation"] == "dup-delivery"
        live = report["live_monitor"]
        assert live["violations"] > 0
        assert live["agrees_with_audit"], live["findings"]

    def test_unknown_mutation_is_rejected(self):
        with pytest.raises(ValueError):
            execute_campaign(self.CONFIG, mutate="no-such-mutation")

    def test_monitor_off_leaves_report_unchanged(self):
        with_monitor = run_campaign(self.CONFIG, live_monitor=True)
        without = run_campaign(self.CONFIG)
        assert "live_monitor" not in without
        pruned = {
            k: v for k, v in with_monitor.items() if k != "live_monitor"
        }
        assert json.dumps(pruned, sort_keys=True) == json.dumps(
            without, sort_keys=True
        )


class TestChurnIntegration:
    def test_per_epoch_agreement_across_switches(self):
        config = ChurnConfig(
            hosts=12, groups=4, events=30, churn_events=15, switches=2,
            seed=5, horizon=300.0, mid_switch_crash=False,
        )
        report = run_churn_campaign(config, live_monitor=True)
        live = report["live_monitor"]
        assert live["agrees_with_audit"], live["epoch_agreement"]
        assert len(live["epoch_agreement"]) == len(report["epochs"])
        assert all(e["agrees"] for e in live["epoch_agreement"])


class TestTelemetrySnapshot:
    def _snapshot(self):
        monitor = LiveMonitor(node="n0")
        _clean_run(monitor=monitor)
        return TelemetrySnapshot.from_monitor(monitor)

    def test_round_trips_through_dict(self):
        snapshot = self._snapshot()
        restored = TelemetrySnapshot.from_dict(
            json.loads(json.dumps(snapshot.to_dict()))
        )
        assert restored.to_dict() == snapshot.to_dict()

    def test_rejects_unknown_format(self):
        payload = self._snapshot().to_dict()
        payload["format"] = "bogus/9"
        with pytest.raises(ValueError):
            TelemetrySnapshot.from_dict(payload)

    def test_merge_adds_counts_and_preserves_quantiles(self):
        a = self._snapshot()
        b = self._snapshot()
        merged = merge_snapshots([a, b])
        assert merged.delivered == a.delivered + b.delivered
        assert merged.published == a.published + b.published
        single = a.phase_summaries()["delivery"]
        combined = merged.phase_summaries()["delivery"]
        assert combined["count"] == 2 * single["count"]
        # Identical inputs: merged quantiles equal the single-node ones.
        assert combined["p99"] == pytest.approx(single["p99"])
        assert combined["max"] == single["max"]
