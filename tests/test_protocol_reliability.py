"""Tests for the reliable link layer: loss, retransmission, FIFO hold-back."""

import itertools
import random

from repro.core.protocol import AckPacket, HopPacket
from repro.pubsub.membership import GroupMembership


def triangle_membership():
    membership = GroupMembership()
    membership.create_group([0, 1, 3], group_id=0)
    membership.create_group([0, 1, 2], group_id=1)
    membership.create_group([1, 2, 3], group_id=2)
    return membership


def lossy_fabric(env, loss, seed=0):
    return env.build_fabric(triangle_membership(), seed=seed, loss_rate=loss)


def test_loss_enables_reliability(env32):
    fabric = lossy_fabric(env32, 0.2)
    assert fabric.reliable
    fabric_clean = env32.build_fabric(triangle_membership())
    assert not fabric_clean.reliable


def test_all_messages_delivered_under_loss(env32):
    fabric = lossy_fabric(env32, 0.3, seed=3)
    for i in range(10):
        sender = [0, 2, 1][i % 3]
        group = [0, 2, 1][i % 3]
        fabric.publish(sender, group, i)
    fabric.run()
    assert fabric.pending_messages() == {}
    # Host 1 (B) subscribes to everything.
    assert len(fabric.delivered(1)) == 10


def test_no_duplicate_deliveries_under_loss(env32):
    fabric = lossy_fabric(env32, 0.35, seed=5)
    ids = [fabric.publish(0, 0, i) for i in range(8)]
    fabric.run()
    for member in (0, 1, 3):
        got = [r.msg_id for r in fabric.delivered(member)]
        assert sorted(got) == sorted(ids)
        assert len(set(got)) == len(got)


def test_order_consistency_under_loss(env32):
    for seed in range(5):
        fabric = lossy_fabric(env32, 0.25, seed=seed)
        rng = random.Random(seed)
        for _ in range(12):
            group = rng.choice([0, 1, 2])
            sender = rng.choice(sorted(fabric.membership.members(group)))
            fabric.publish(sender, group)
        fabric.run()
        assert fabric.pending_messages() == {}
        for a, b in itertools.combinations(range(4), 2):
            seq_a = [r.msg_id for r in fabric.delivered(a)]
            seq_b = [r.msg_id for r in fabric.delivered(b)]
            common = set(seq_a) & set(seq_b)
            assert [m for m in seq_a if m in common] == [
                m for m in seq_b if m in common
            ]


def test_per_sender_fifo_survives_loss(env32):
    fabric = lossy_fabric(env32, 0.3, seed=11)
    for i in range(10):
        fabric.publish(0, 0, i)
    fabric.run()
    assert [r.payload for r in fabric.delivered(3)] == list(range(10))


def test_retransmissions_happen(env32):
    fabric = lossy_fabric(env32, 0.4, seed=2)
    for i in range(6):
        fabric.publish(0, 0, i)
    fabric.run()
    total_drops = sum(c.drops for c in fabric.network.channels.values())
    assert total_drops > 0  # loss occurred and was recovered
    assert fabric.pending_messages() == {}


def test_hop_packet_sizes():
    from repro.core.messages import Stamp
    from repro.core.protocol import DeliverPacket

    inner = DeliverPacket(
        stamp=Stamp(0, 1), payload=None, msg_id=1, sender=0, publish_time=0.0, dest=2
    )
    hop = HopPacket(3, inner)
    assert hop.size_bytes() == 4 + inner.size_bytes()
    assert AckPacket(3).size_bytes() > 0


def test_lossless_runs_have_no_link_state(env32):
    fabric = env32.build_fabric(triangle_membership())
    fabric.publish(0, 0)
    fabric.run()
    assert fabric._links == {}


def test_reliable_lossless_link_layer_roundtrip(env32):
    # Reliability machinery enabled but zero effective loss still works.
    fabric = env32.build_fabric(
        triangle_membership(), loss_rate=1e-9, seed=0
    )
    assert fabric.reliable
    fabric.publish(0, 0, "x")
    fabric.run()
    assert [r.payload for r in fabric.delivered(3)] == ["x"]
    # All retransmission buffers drained by acks.
    assert all(not link.pending for link in fabric._links.values())


def test_holdback_preserves_hop_fifo(env32):
    # After a run under loss, every link's hold-back must be empty and all
    # packets must have been released in sequence order.
    fabric = lossy_fabric(env32, 0.3, seed=7)
    for i in range(8):
        fabric.publish(2, 2, i)
    fabric.run()
    for link in fabric._links.values():
        assert not link.holdback
        assert not link.pending


def test_high_loss_eventually_delivers(env32):
    fabric = lossy_fabric(env32, 0.6, seed=13)
    fabric.publish(0, 0, "stubborn")
    fabric.run()
    assert [r.payload for r in fabric.delivered(3)] == ["stubborn"]
