"""Tests for content-based subscriptions (filters, index, layer)."""

import itertools

import pytest

from repro import OrderedPubSub
from repro.pubsub.content import Constraint, ContentIndex, ContentLayer, Filter

# ---------------------------------------------------------------------------
# Constraint
# ---------------------------------------------------------------------------


def test_constraint_eq():
    c = Constraint("sector", "eq", "tech")
    assert c.matches({"sector": "tech"})
    assert not c.matches({"sector": "energy"})
    assert not c.matches({})


def test_constraint_ranges():
    assert Constraint("price", "lt", 100).matches({"price": 99})
    assert not Constraint("price", "lt", 100).matches({"price": 100})
    assert Constraint("price", "le", 100).matches({"price": 100})
    assert Constraint("price", "gt", 10).matches({"price": 11})
    assert Constraint("price", "ge", 10).matches({"price": 10})
    assert Constraint("price", "ne", 5).matches({"price": 6})


def test_constraint_prefix():
    c = Constraint("symbol", "prefix", "AA")
    assert c.matches({"symbol": "AAPL"})
    assert not c.matches({"symbol": "MSFT"})
    assert not c.matches({"symbol": 42})


def test_constraint_type_mismatch_is_nonmatch():
    assert not Constraint("price", "lt", 100).matches({"price": "cheap"})


def test_constraint_unknown_op_rejected():
    with pytest.raises(ValueError):
        Constraint("a", "like", "x")


# ---------------------------------------------------------------------------
# Filter
# ---------------------------------------------------------------------------


def test_filter_conjunction():
    f = Filter([Constraint("sector", "eq", "tech"), Constraint("price", "lt", 100)])
    assert f.matches({"sector": "tech", "price": 50})
    assert not f.matches({"sector": "tech", "price": 150})


def test_filter_canonical_identity():
    a = Filter([Constraint("x", "eq", 1), Constraint("y", "eq", 2)])
    b = Filter([Constraint("y", "eq", 2), Constraint("x", "eq", 1)])
    assert a == b
    assert hash(a) == hash(b)
    assert a.describe() == b.describe()


def test_filter_where_shorthand():
    assert Filter.where(sector="tech") == Filter([Constraint("sector", "eq", "tech")])


def test_empty_filter_matches_everything():
    assert Filter([]).matches({"anything": 1})
    assert Filter([]).describe() == "<match-all>"


def test_filter_covers_eq_implies_range():
    broad = Filter([Constraint("price", "lt", 100)])
    narrow = Filter([Constraint("price", "eq", 50)])
    assert broad.covers(narrow)
    assert not narrow.covers(broad)


def test_filter_covers_tighter_range():
    broad = Filter([Constraint("price", "lt", 100)])
    tight = Filter([Constraint("price", "lt", 50)])
    assert broad.covers(tight)
    assert not tight.covers(broad)


def test_filter_covers_prefix():
    broad = Filter([Constraint("symbol", "prefix", "A")])
    tight = Filter([Constraint("symbol", "prefix", "AAP")])
    assert broad.covers(tight)
    assert not tight.covers(broad)


def test_filter_covers_unrelated_attributes():
    a = Filter([Constraint("x", "eq", 1)])
    b = Filter([Constraint("y", "eq", 1)])
    assert not a.covers(b)


def test_match_all_covers_anything():
    assert Filter([]).covers(Filter.where(x=1))


# ---------------------------------------------------------------------------
# ContentIndex
# ---------------------------------------------------------------------------


def test_index_matches_eq_and_scan():
    index = ContentIndex()
    index.add(Filter.where(sector="tech"), 0)
    index.add(Filter([Constraint("price", "lt", 100)]), 1)
    assert index.matching({"sector": "tech", "price": 200}) == [0]
    assert index.matching({"sector": "tech", "price": 50}) == [0, 1]
    assert index.matching({"sector": "energy", "price": 50}) == [1]


def test_index_duplicate_rejected():
    index = ContentIndex()
    index.add(Filter.where(x=1), 0)
    with pytest.raises(ValueError):
        index.add(Filter.where(x=1), 1)


def test_index_remove():
    index = ContentIndex()
    f = Filter.where(x=1)
    index.add(f, 0)
    index.remove(f)
    assert index.matching({"x": 1}) == []
    assert len(index) == 0


def test_index_remove_scan_filter():
    index = ContentIndex()
    f = Filter([Constraint("p", "lt", 5)])
    index.add(f, 3)
    index.remove(f)
    assert index.matching({"p": 1}) == []


# ---------------------------------------------------------------------------
# ContentLayer over the ordered bus
# ---------------------------------------------------------------------------


@pytest.fixture()
def layer():
    bus = OrderedPubSub(n_hosts=12, seed=5, enforce_causal_sends=False)
    return ContentLayer(bus)


def test_layer_subscribe_same_filter_same_group(layer):
    g1 = layer.subscribe(0, Filter.where(sector="tech"))
    g2 = layer.subscribe(1, Filter.where(sector="tech"))
    assert g1 == g2
    assert layer.bus.membership.members(g1) == frozenset({0, 1})


def test_layer_publish_routes_to_matching_groups(layer):
    layer.subscribe(0, Filter.where(sector="tech"))
    layer.subscribe(1, Filter.where(sector="tech"))
    layer.subscribe(2, Filter([Constraint("price", "lt", 100)]))
    layer.subscribe(3, Filter([Constraint("price", "lt", 100)]))
    ids = layer.publish(0, {"sector": "tech", "price": 50})
    layer.bus.run()
    assert len(ids) == 2  # one ordered message per matching group
    assert len(layer.bus.delivered(1)) == 1  # tech only
    assert len(layer.bus.delivered(2)) == 1  # price only
    # The publisher subscribes only to tech, so it receives exactly one
    # copy (its own) despite the event matching two groups.
    assert len(layer.bus.delivered(0)) == 1


def test_layer_exact_delivery_counts(layer):
    layer.subscribe(0, Filter.where(kind="a"))
    layer.subscribe(1, Filter.where(kind="a"))
    layer.publish(0, {"kind": "a"})
    layer.publish(0, {"kind": "b"})  # matches nothing
    layer.bus.run()
    assert len(layer.bus.delivered(0)) == 1
    assert len(layer.bus.delivered(1)) == 1


def test_layer_overlapping_filters_consistent_order(layer):
    # Hosts 0 and 1 subscribe to BOTH filters -> double overlap -> their
    # common events must arrive in the same order.
    tech = Filter.where(sector="tech")
    cheap = Filter([Constraint("price", "lt", 100)])
    for host in (0, 1):
        layer.subscribe(host, tech)
        layer.subscribe(host, cheap)
    layer.subscribe(2, tech)
    layer.subscribe(3, cheap)
    for i in range(10):
        event = {"sector": "tech", "price": 150} if i % 2 else {"sector": "fin", "price": 10}
        layer.publish(0, event)
    layer.bus.run()
    for a, b in itertools.combinations(range(4), 2):
        seq_a = [r.msg_id for r in layer.bus.delivered(a)]
        seq_b = [r.msg_id for r in layer.bus.delivered(b)]
        common = set(seq_a) & set(seq_b)
        assert [m for m in seq_a if m in common] == [m for m in seq_b if m in common]


def test_layer_unsubscribe_cleans_index(layer):
    f = Filter.where(x=1)
    layer.subscribe(0, f)
    layer.unsubscribe(0, f)
    assert layer.publish(1, {"x": 1}) == []


def test_layer_subscribers_matching(layer):
    layer.subscribe(0, Filter.where(x=1))
    layer.subscribe(1, Filter([Constraint("y", "gt", 5)]))
    assert layer.subscribers_matching({"x": 1, "y": 10}) == frozenset({0, 1})
    assert layer.subscribers_matching({"x": 2, "y": 1}) == frozenset()
