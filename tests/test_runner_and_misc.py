"""Tests for the experiment runner's export paths and remaining corners."""

import pytest

from repro.baselines.common import BaselineFabric
from repro.experiments.runner import run_selected
from repro.metrics.overhead import overhead_ratio_vs_vector
from repro.pubsub.membership import GroupMembership

# ---------------------------------------------------------------------------
# Runner with CSV + ASCII for every figure
# ---------------------------------------------------------------------------


def test_runner_exports_all_figures(tmp_path):
    report = run_selected(
        [3, 4, 5, 6, 7, 8],
        runs=2,
        paper_scale=False,
        n_hosts=16,
        csv_dir=str(tmp_path),
        ascii_plots=True,
    )
    for figure in (3, 4, 5, 6, 7, 8):
        assert f"Figure {figure}" in report
    names = {p.name for p in tmp_path.iterdir()}
    assert names == {
        "fig3_cdf.csv",
        "fig4_xy.csv",
        "fig5_xy.csv",
        "fig6_xy.csv",
        "fig7_cdf.csv",
        "fig8_xy.csv",
    }
    # ASCII plots include axes and legends.
    assert report.count("+---") >= 6


def test_runner_csv_contents(tmp_path):
    run_selected([5], runs=2, paper_scale=False, n_hosts=16, csv_dir=str(tmp_path))
    lines = (tmp_path / "fig5_xy.csv").read_text().splitlines()
    assert lines[0] == "series,x,y"
    assert len(lines) > 3


# ---------------------------------------------------------------------------
# Baseline scaffolding corners
# ---------------------------------------------------------------------------


def test_baseline_fabric_requires_publish_override(env32):
    membership = GroupMembership()
    membership.create_group([0, 1])
    fabric = BaselineFabric(membership, env32.hosts, env32.routing)
    with pytest.raises(NotImplementedError):
        fabric.publish(0, 0)


def test_baseline_host_delay_self(env32):
    membership = GroupMembership()
    membership.create_group([0, 1])
    fabric = BaselineFabric(membership, env32.hosts, env32.routing)
    host = env32.hosts[0]
    assert fabric.host_delay(0, 0) == pytest.approx(2 * host.access_delay)


def test_baseline_channel_between_cached(env32):
    membership = GroupMembership()
    membership.create_group([0, 1])
    fabric = BaselineFabric(membership, env32.hosts, env32.routing)
    a = fabric.host_processes[0]
    b = fabric.host_processes[1]
    c1 = fabric.channel_between(a, b, 3.0)
    c2 = fabric.channel_between(a, b, 99.0)  # delay ignored on reuse
    assert c1 is c2


def test_baseline_make_stamp(env32):
    membership = GroupMembership()
    membership.create_group([0, 1])
    fabric = BaselineFabric(membership, env32.hosts, env32.routing)
    stamp = fabric.make_stamp(0, 7)
    assert stamp.group == 0 and stamp.group_seq == 7


def test_baseline_msg_ids_unique(env32):
    membership = GroupMembership()
    membership.create_group([0, 1])
    fabric = BaselineFabric(membership, env32.hosts, env32.routing)
    ids = [fabric.next_msg_id() for _ in range(5)]
    assert ids == list(range(5))


# ---------------------------------------------------------------------------
# Misc metric corners
# ---------------------------------------------------------------------------


def test_overhead_ratio_grows_with_fewer_nodes():
    from repro.core.sequencing_graph import SequencingGraph

    graph = SequencingGraph.build(
        {0: frozenset({0, 1, 2}), 1: frozenset({1, 2, 3})}
    )
    small = overhead_ratio_vs_vector(graph, n_nodes=8)
    large = overhead_ratio_vs_vector(graph, n_nodes=512)
    assert large < small


def test_fabric_publish_from_nonmember_allowed_at_fabric_level(env32):
    """The fabric itself is policy-free; membership enforcement is the
    facade's job (paper: non-member sends lose causality, not safety)."""
    membership = GroupMembership()
    membership.create_group([1, 2, 3], group_id=0)
    fabric = env32.build_fabric(membership)
    fabric.publish(9, 0, "outsider")  # host 9 not in the group
    fabric.run()
    assert [r.payload for r in fabric.delivered(2)] == ["outsider"]
    assert fabric.delivered(9) == []  # non-members receive nothing


def test_sim_rng_isolation(env32):
    """Two identical fabrics drained in sequence produce identical logs."""
    def run():
        membership = GroupMembership()
        membership.create_group([0, 1, 2], group_id=0)
        fabric = env32.build_fabric(membership, seed=5)
        fabric.publish(0, 0)
        fabric.publish(1, 0)
        fabric.run()
        return [(r.msg_id, round(r.time, 9)) for r in fabric.delivered(2)]

    assert run() == run()
