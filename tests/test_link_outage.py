"""Tests for link outage windows (Channel.fail)."""

import itertools
import random

import pytest

from repro.pubsub.membership import GroupMembership
from repro.sim.events import Simulator
from repro.sim.network import Channel
from repro.sim.processes import Process


class Sink(Process):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def receive(self, payload, channel):
        self.received.append(payload)


def test_fail_drops_during_window():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    channel = Channel(sim, a, b, 1.0)
    channel.fail(10.0)
    assert channel.is_down
    assert channel.send("lost") is False
    assert channel.drops == 1
    sim.run()
    assert b.received == []


def test_link_heals_after_window():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    channel = Channel(sim, a, b, 1.0)
    channel.fail(5.0)
    sim.schedule(6.0, channel.send, "after")
    sim.run()
    assert not channel.is_down
    assert b.received == ["after"]


def test_fail_duration_positive():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    channel = Channel(sim, a, b, 1.0)
    with pytest.raises(ValueError):
        channel.fail(0)


def test_overlapping_outages_extend():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    channel = Channel(sim, a, b, 1.0)
    channel.fail(5.0)
    channel.fail(3.0)  # shorter overlapping outage does not shrink window
    sim.schedule(4.0, channel.send, "still-down")
    sim.schedule(6.0, channel.send, "up")
    sim.run()
    assert b.received == ["up"]


def test_protocol_survives_link_outage(env32):
    """An outage on the publisher's ingress link is masked by
    retransmission, preserving order and liveness."""
    membership = GroupMembership()
    membership.create_group([0, 1, 2, 3], group_id=0)
    membership.create_group([2, 3, 4, 5], group_id=1)
    fabric = env32.build_fabric(membership, retransmit_timeout=4.0)
    # Send one message to create the ingress channel, then fail it.
    fabric.publish(0, 0, "pre")
    fabric.run()
    ingress = fabric.graph.ingress_atom(0)
    node = fabric.placement.node_of(ingress)
    channel = fabric.network.channel(("host", 0), ("seq", node.node_id))
    channel.fail(20.0)
    for i in range(5):
        fabric.publish(0, 0, i)
    fabric.run()
    assert fabric.pending_messages() == {}
    assert [r.payload for r in fabric.delivered(1)] == ["pre", 0, 1, 2, 3, 4]
    assert channel.drops > 0


def test_order_consistent_through_outage(env32):
    membership = GroupMembership()
    membership.create_group([0, 1, 2, 3], group_id=0)
    membership.create_group([2, 3, 4, 5], group_id=1)
    fabric = env32.build_fabric(membership, retransmit_timeout=4.0)
    fabric.publish(2, 0, "warm")
    fabric.publish(2, 1, "up")
    fabric.run()
    # Fail a random inter-sequencer channel if one exists, else ingress.
    seq_channels = [
        c
        for (src, dst), c in fabric.network.channels.items()
        if src[0] == "seq" and dst[0] == "seq"
    ]
    victim = seq_channels[0] if seq_channels else next(
        iter(fabric.network.channels.values())
    )
    victim.fail(15.0)
    rng = random.Random(3)
    for _ in range(12):
        group = rng.choice([0, 1])
        sender = rng.choice(sorted(membership.members(group)))
        fabric.publish(sender, group)
    fabric.run()
    assert fabric.pending_messages() == {}
    for a, b in itertools.combinations(range(6), 2):
        seq_a = [r.msg_id for r in fabric.delivered(a)]
        seq_b = [r.msg_id for r in fabric.delivered(b)]
        common = set(seq_a) & set(seq_b)
        assert [m for m in seq_a if m in common] == [m for m in seq_b if m in common]
