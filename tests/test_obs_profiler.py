"""Hot-path phase profiler: determinism, outcome invariance, exports."""

import json

from repro.experiments.common import ExperimentEnv
from repro.faults.campaign import ChaosConfig, execute_campaign
from repro.obs import exporters
from repro.obs.forensics import JourneyIndex
from repro.obs.hooks import profiler_to_registry
from repro.obs.profiler import (
    NULL_PROFILER,
    PROFILE_PHASES,
    PhaseProfiler,
    maybe_profiler,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.resources import (
    GcPauseSampler,
    peak_rss_bytes,
    register_process_collectors,
)

SNAPSHOT = {
    0: frozenset({0, 1, 2, 3}),
    1: frozenset({0, 1}),
    2: frozenset({2, 3, 4}),
}


def _run_fabric(profiler, seed=0, trace=False):
    env = ExperimentEnv(n_hosts=5, seed=seed)
    fabric = env.build_fabric(
        env.membership_from(SNAPSHOT), seed=seed, trace=trace, profiler=profiler
    )
    for sender, group in ((0, 0), (2, 2), (1, 1), (3, 0), (0, 1), (4, 2)):
        fabric.publish(sender, group)
    fabric.run()
    assert not fabric.pending_messages()
    return fabric


def test_counts_deterministic_across_same_seed_runs():
    first = PhaseProfiler()
    second = PhaseProfiler()
    _run_fabric(first)
    _run_fabric(second)
    assert first.counts() == second.counts()
    assert first.dispatches() > 0
    assert first.phase_counts["dispatch"] == first.dispatches()
    # counts() must be timing-free: identical dict, not just equal floats
    assert json.dumps(first.counts(), sort_keys=True) == json.dumps(
        second.counts(), sort_keys=True
    )


def test_dispatch_kinds_are_qualnames_not_reprs():
    profiler = PhaseProfiler()
    _run_fabric(profiler)
    for kind in profiler.counts()["dispatch_by_kind"]:
        assert "0x" not in kind, f"memory address leaked into kind {kind!r}"


def test_profiler_does_not_change_simulation_outcomes():
    bare = _run_fabric(None, trace=True)
    profiled = _run_fabric(PhaseProfiler(), trace=True)
    assert bare.sim.events_executed == profiled.sim.events_executed
    assert len(bare.trace) == len(profiled.trace)
    for host in range(5):
        assert [r.msg_id for r in bare.delivered(host)] == [
            r.msg_id for r in profiled.delivered(host)
        ]


def test_profiler_does_not_change_forensics_output():
    """The `repro explain` view is identical with and without profiling."""
    config = ChaosConfig(hosts=12, groups=4, events=20, seed=3, horizon=150.0)
    bare = execute_campaign(config)
    profiled = execute_campaign(config, profiler=PhaseProfiler())
    assert bare.report == profiled.report
    bare_stalls = JourneyIndex(bare.fabric.trace).stall_report(threshold=0.0)
    prof_stalls = JourneyIndex(profiled.fabric.trace).stall_report(threshold=0.0)
    assert bare_stalls == prof_stalls


def test_exclusive_times_nest_without_double_counting():
    profiler = PhaseProfiler()
    _run_fabric(profiler, trace=True)
    total = sum(profiler.phase_exclusive_s.values())
    assert total > 0
    for phase in PROFILE_PHASES:
        assert profiler.phase_exclusive_s[phase] >= 0
    # deeper phases fired inside dispatch, so they were entered at least once
    assert profiler.phase_counts["sequencing"] > 0
    assert profiler.phase_counts["delivery"] > 0
    assert profiler.phase_counts["trace"] > 0
    # every enter/exit pair was tallied toward the profiler's own cost
    assert profiler.clock_pairs == sum(profiler.phase_counts.values())
    assert profiler.estimated_overhead_s() >= 0
    assert profiler.breakdown()["overhead"]["estimated_s"] >= 0


def test_null_profiler_is_inert_and_disabled():
    assert not NULL_PROFILER.enabled
    NULL_PROFILER.enter("dispatch")
    NULL_PROFILER.exit()
    NULL_PROFILER.dispatch_begin(print)
    NULL_PROFILER.dispatch_end(0.0)
    assert NULL_PROFILER.dispatches() == 0
    assert NULL_PROFILER.counts() == {}
    assert NULL_PROFILER.breakdown() == {}
    assert maybe_profiler(False) is NULL_PROFILER
    assert isinstance(maybe_profiler(True), PhaseProfiler)


def test_disabled_profiler_adds_no_trace_records_or_events():
    bare = _run_fabric(None, trace=True)
    with_null = _run_fabric(NULL_PROFILER, trace=True)
    assert len(bare.trace) == len(with_null.trace)
    assert bare.sim.events_executed == with_null.sim.events_executed
    assert NULL_PROFILER.clock_pairs == 0


def test_sampling_emits_counter_events():
    profiler = PhaseProfiler(sample_every=8)
    fabric = _run_fabric(profiler, trace=True)
    assert len(profiler.samples) > 0
    doc = exporters.trace_to_chrome(fabric.trace, profiler=profiler)
    counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
    assert len(counters) == len(profiler.samples)
    for event in counters:
        assert event["pid"] == exporters.PROFILER_PID
        assert set(event["args"]) == set(PROFILE_PHASES)
    # sample count is part of the deterministic slice
    assert profiler.counts()["samples"] == len(profiler.samples)


def test_profiler_to_registry_exports_phases_and_dispatches():
    profiler = PhaseProfiler()
    _run_fabric(profiler, trace=True)
    registry = MetricsRegistry()
    profiler_to_registry(profiler, registry)
    registry.collect()
    text = exporters.registry_to_prometheus(registry)
    assert "repro_profile_phase_seconds" in text
    assert 'phase="sequencing"' in text
    assert "repro_profile_dispatches" in text
    assert "repro_profile_overhead_seconds" in text


def test_process_collectors_export_rss_and_gc():
    rss = peak_rss_bytes()
    assert rss is None or rss > 0
    registry = MetricsRegistry()
    sampler = GcPauseSampler()
    register_process_collectors(registry, sampler=sampler)
    with sampler:
        import gc

        gc.collect()
    if sampler.supported:
        assert sampler.pauses >= 1
        assert sampler.pause_seconds >= 0
    text = exporters.registry_to_prometheus(registry)
    assert "repro_gc_collections" in text
    assert "repro_gc_pauses" in text
    if rss is not None:
        assert "repro_process_peak_rss_bytes" in text


def test_render_is_humane():
    profiler = PhaseProfiler()
    _run_fabric(profiler)
    rendered = profiler.render()
    for phase in PROFILE_PHASES:
        assert phase in rendered
    assert "overhead" in rendered
    assert NULL_PROFILER.render() == "(profiling disabled)"
