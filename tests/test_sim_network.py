"""Unit tests for channels and the network registry."""

import random

import pytest

from repro.sim.events import Simulator
from repro.sim.network import Channel, Network
from repro.sim.processes import Process


class Sink(Process):
    """Records (payload, time) of everything it receives."""

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def receive(self, payload, channel):
        self.received.append((payload, self.sim.now))


def make_pair(delay=2.0, loss_rate=0.0, rng=None):
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    channel = Channel(sim, a, b, delay, loss_rate=loss_rate, rng=rng)
    return sim, a, b, channel


def test_send_delivers_after_delay():
    sim, _a, b, channel = make_pair(delay=3.0)
    channel.send("hello")
    sim.run()
    assert b.received == [("hello", 3.0)]


def test_fifo_order_preserved():
    sim, _a, b, channel = make_pair(delay=1.0)
    for i in range(10):
        channel.send(i)
    sim.run()
    assert [p for p, _ in b.received] == list(range(10))


def test_fifo_across_time():
    sim, _a, b, channel = make_pair(delay=5.0)
    channel.send("first")
    sim.schedule(1.0, channel.send, "second")
    sim.run()
    assert [p for p, _ in b.received] == ["first", "second"]


def test_negative_delay_rejected():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    with pytest.raises(ValueError):
        Channel(sim, a, b, -1.0)


def test_loss_rate_requires_rng():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    with pytest.raises(ValueError):
        Channel(sim, a, b, 1.0, loss_rate=0.5)


def test_loss_rate_out_of_range():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    with pytest.raises(ValueError):
        Channel(sim, a, b, 1.0, loss_rate=1.0, rng=random.Random(0))


def test_loss_drops_packets():
    sim, _a, b, channel = make_pair(delay=1.0, loss_rate=0.5, rng=random.Random(42))
    for i in range(200):
        channel.send(i)
    sim.run()
    assert channel.drops > 0
    assert len(b.received) == 200 - channel.drops
    assert 40 < channel.drops < 160  # roughly half


def test_send_returns_false_on_drop():
    sim, _a, _b, channel = make_pair(delay=1.0, loss_rate=0.999999, rng=random.Random(1))
    results = [channel.send(i) for i in range(20)]
    assert not any(results)


def test_counters():
    sim, a, b, channel = make_pair(delay=1.0)
    channel.send("x", size_bytes=100)
    channel.send("y", size_bytes=50)
    sim.run()
    assert channel.sends == 2
    assert channel.bytes_sent == 150
    assert a.messages_sent == 2
    assert b.messages_received == 2


def test_network_registers_processes():
    sim = Simulator()
    net = Network(sim)
    a = net.add_process(Sink(sim, "a"))
    assert net.process("a") is a
    assert "a" in net
    assert "b" not in net


def test_network_duplicate_name_rejected():
    sim = Simulator()
    net = Network(sim)
    net.add_process(Sink(sim, "a"))
    with pytest.raises(ValueError):
        net.add_process(Sink(sim, "a"))


def test_network_connect_creates_channel_once():
    sim = Simulator()
    net = Network(sim)
    net.add_process(Sink(sim, "a"))
    net.add_process(Sink(sim, "b"))
    c1 = net.connect("a", "b", 2.0)
    c2 = net.connect("a", "b", 2.0)
    assert c1 is c2


def test_network_connect_conflicting_delay_rejected():
    sim = Simulator()
    net = Network(sim)
    net.add_process(Sink(sim, "a"))
    net.add_process(Sink(sim, "b"))
    net.connect("a", "b", 2.0)
    with pytest.raises(ValueError):
        net.connect("a", "b", 3.0)


def test_network_channels_are_directional():
    sim = Simulator()
    net = Network(sim)
    net.add_process(Sink(sim, "a"))
    net.add_process(Sink(sim, "b"))
    ab = net.connect("a", "b", 2.0)
    ba = net.connect("b", "a", 4.0)
    assert ab is not ba
    assert ab.delay == 2.0 and ba.delay == 4.0


def test_network_channel_lookup_missing():
    sim = Simulator()
    net = Network(sim)
    net.add_process(Sink(sim, "a"))
    net.add_process(Sink(sim, "b"))
    with pytest.raises(KeyError):
        net.channel("a", "b")


def test_network_aggregate_counters():
    sim = Simulator()
    net = Network(sim)
    net.add_process(Sink(sim, "a"))
    net.add_process(Sink(sim, "b"))
    net.connect("a", "b", 1.0).send("x", size_bytes=10)
    net.connect("b", "a", 1.0).send("y", size_bytes=5)
    sim.run()
    assert net.total_sends() == 2
    assert net.total_bytes_sent() == 15


def test_channel_repr():
    _sim, _a, _b, channel = make_pair()
    assert "->" in repr(channel)


def test_process_receive_not_implemented():
    sim = Simulator()
    p = Process(sim, "p")
    with pytest.raises(NotImplementedError):
        p.receive(None, None)
