"""Shared experiment machinery: environments, workload runs, tables.

An :class:`ExperimentEnv` owns the expensive, reusable substrate — the
router topology, its routing table, and the attached hosts — so parameter
sweeps (e.g. Figure 5's 100 runs x many group counts) rebuild only the
cheap parts (membership, sequencing graph, placement) per run.
"""

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence

from repro.core.placement import Placement, co_locate_and_order, place
from repro.obs.profiler import PhaseProfiler
from repro.obs.registry import MetricsRegistry
from repro.core.protocol import OrderingFabric
from repro.core.sequencing_graph import SequencingGraph
from repro.pubsub.membership import GroupMembership
from repro.topology.clusters import Host, attach_hosts
from repro.topology.gtitm import Topology, TransitStubParams, generate_transit_stub
from repro.topology.routing import RoutingTable

#: Inter-publish quiescence gap: each measured message runs in isolation,
#: matching the paper's "each node sends a message to each of the groups it
#: is part of" latency methodology (no cross-message buffering delays).
ISOLATION_GAP_MS = 1.0


@dataclass
class ExperimentEnv:
    """Reusable substrate: topology + routing + hosts.

    Parameters mirror the paper's setup (Section 4.1): a GT-ITM-style
    transit–stub topology (10,000 routers at paper scale), hosts attached
    in similar-size clusters distributed uniformly at random.
    """

    n_hosts: int = 128
    seed: int = 0
    paper_scale: bool = False
    cluster_size: int = 8
    #: optional metrics registry shared by every fabric built from this
    #: environment (see repro.obs); None = no instrumentation overhead
    registry: Optional[MetricsRegistry] = None
    #: optional hot-path phase profiler shared the same way (see
    #: repro.obs.profiler); None = no profiling overhead
    profiler: Optional[PhaseProfiler] = None
    topology: Topology = field(init=False)
    routing: RoutingTable = field(init=False)
    hosts: List[Host] = field(init=False)

    def __post_init__(self) -> None:
        params = (
            TransitStubParams.paper_scale()
            if self.paper_scale
            else TransitStubParams.small()
        )
        self.topology = generate_transit_stub(params, seed=self.seed)
        self.routing = RoutingTable(self.topology)
        self.hosts = attach_hosts(
            self.topology,
            self.n_hosts,
            cluster_size=self.cluster_size,
            rng=random.Random(self.seed),
        )

    @property
    def host_router(self) -> Dict[int, int]:
        return {h.host_id: h.router for h in self.hosts}

    # ------------------------------------------------------------------

    def membership_from(self, snapshot: Dict[int, FrozenSet[int]]) -> GroupMembership:
        """Materialize a snapshot into a membership matrix."""
        membership = GroupMembership()
        for group_id, members in sorted(snapshot.items()):
            membership.create_group(members, group_id=group_id)
        return membership

    def build_graph(
        self, snapshot: Dict[int, FrozenSet[int]], seed: int = 0
    ) -> SequencingGraph:
        """Sequencing graph for a snapshot (deterministic per seed)."""
        return SequencingGraph.build(snapshot, rng=random.Random(seed))

    def build_placement(
        self, graph: SequencingGraph, seed: int = 0, machines: bool = True
    ) -> Placement:
        """Placement for a graph.

        ``machines=False`` runs only the co-location step — enough for the
        node-count and stress metrics, and much faster in big sweeps.
        """
        rng = random.Random(seed)
        if machines:
            return place(graph, self.host_router, self.topology, self.routing, rng=rng)
        return Placement(co_locate_and_order(graph, rng=rng))

    def build_fabric(
        self, membership: GroupMembership, seed: int = 0, **kwargs
    ) -> OrderingFabric:
        """An ordering fabric over this environment's substrate.

        The environment's ``registry`` and ``profiler`` (when set) are
        passed along unless the caller overrides them, so sweeps can
        aggregate metrics and phase profiles across every fabric they
        build.
        """
        kwargs.setdefault("registry", self.registry)
        kwargs.setdefault("profiler", self.profiler)
        return OrderingFabric(
            membership, self.hosts, self.topology, self.routing, seed=seed, **kwargs
        )

    # ------------------------------------------------------------------

    def run_one_message_per_membership(
        self, fabric: OrderingFabric, isolate: bool = True
    ) -> int:
        """The paper's latency workload: each node sends to each its groups.

        With ``isolate=True`` every message runs to quiescence before the
        next is published, so measured latencies are pure path-traversal
        times (no receiver-side ordering waits).  Returns messages sent.
        """
        sent = 0
        for group in fabric.membership.groups():
            for member in sorted(fabric.membership.members(group)):
                fabric.publish(member, group, payload=None)
                sent += 1
                if isolate:
                    fabric.run()
        fabric.run()
        return sent


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned text table (the benches' printable output)."""
    materialized = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
