"""Figure 4 — relative delay penalty vs unicast delay (128 hosts, 64 groups).

"We compute the Relative Delay Penalty (RDP) — the ratio between the
sequencing and unicast delay for each sender-destination pair — and plot
it against the corresponding unicast delay between the sender and the
destination. [...] The highest values for RDP correspond to the pairs in
which the sender and the destination are very close to each other."

The reproduction bins pairs by unicast delay and reports per-bin mean and
max RDP — the shape to match is max RDP decreasing as unicast delay grows.
"""

import random
from typing import List, Tuple

from repro.experiments.common import ExperimentEnv, format_table
from repro.metrics.stretch import rdp_by_pair
from repro.workloads.zipf import zipf_membership


def run_fig4(
    env: ExperimentEnv, n_groups: int = 64, seed: int = 0
) -> List[Tuple[float, float]]:
    """``(unicast_delay, rdp)`` scatter points per sender–destination pair."""
    snapshot = zipf_membership(env.n_hosts, n_groups, rng=random.Random(seed + n_groups))
    membership = env.membership_from(snapshot)
    fabric = env.build_fabric(membership, seed=seed, trace=False)
    env.run_one_message_per_membership(fabric)
    undelivered = fabric.pending_messages()
    if undelivered:
        raise RuntimeError(f"fig4: messages stuck at {undelivered}")
    return rdp_by_pair(fabric)


def bin_points(
    points: List[Tuple[float, float]], n_bins: int = 8
) -> List[Tuple[float, float, int, float, float]]:
    """Bin scatter points by unicast delay.

    Returns ``(bin_low, bin_high, pairs, mean_rdp, max_rdp)`` rows.
    """
    if not points:
        return []
    delays = [d for d, _ in points]
    low, high = min(delays), max(delays)
    width = (high - low) / n_bins or 1.0
    rows = []
    for b in range(n_bins):
        lo = low + b * width
        hi = low + (b + 1) * width
        members = [
            rdp
            for delay, rdp in points
            if lo <= delay < hi or (b == n_bins - 1 and delay == hi)
        ]
        if members:
            rows.append((lo, hi, len(members), sum(members) / len(members), max(members)))
    return rows


def render(points: List[Tuple[float, float]]) -> str:
    headers = ["unicast_ms_low", "unicast_ms_high", "pairs", "mean_rdp", "max_rdp"]
    return format_table(
        headers,
        bin_points(points),
        title="Figure 4: RDP vs unicast delay (binned scatter)",
    )


def main(paper_scale: bool = False) -> str:
    env = ExperimentEnv(n_hosts=128, paper_scale=paper_scale)
    output = render(run_fig4(env))
    print(output)
    return output


if __name__ == "__main__":
    main()
