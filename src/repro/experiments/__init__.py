"""Experiment harness regenerating every figure of the paper's evaluation.

The paper's evaluation (Section 4) has no numbered tables; its results are
Figures 3–8 (Figures 1–2 are protocol diagrams).  One module per figure:

======  =======================================================  =========
module  reproduces                                               kind
======  =======================================================  =========
fig3    CDF of latency stretch (128 nodes, 8–64 groups)          simulated
fig4    RDP vs unicast delay per sender–destination pair         simulated
fig5    # sequencing nodes vs # groups (100 runs, 10/90th pct)   static
fig6    sequencing-node stress vs # groups (avg/90th/max)        static
fig7    CDF of atoms-on-path / total nodes                       static
fig8    # sequencing nodes & double overlaps vs occupancy        static
======  =======================================================  =========

Run them all: ``python -m repro.experiments.runner`` (add ``--paper-scale``
for the full 10,000-router topology).  Each module exposes a ``run_*``
function returning structured data and a ``render`` helper producing the
text table the benchmarks snapshot.
"""

from repro.experiments.common import ExperimentEnv, format_table

__all__ = ["ExperimentEnv", "format_table"]
