"""Figure 7 — sequencing atoms on a message's path vs population size.

"We compute the ratio between the number of sequencing atoms on a path and
the total number of nodes, for different group sizes, and present it as a
cumulative distribution.  In the worst case, the number of sequencing
atoms in the path of a message is less than half of the total number of
nodes that participate."

Each group contributes one ratio: the sequence numbers its messages
collect (its own atoms) over the host population.  Shape to match: the
CDF shifts right as groups are added but the worst case stays below 0.5 —
the regime where per-atom stamps beat system-wide vector timestamps.
"""

import random
from typing import Dict, List, Sequence

from repro.experiments.common import ExperimentEnv, format_table
from repro.metrics.stats import percentile
from repro.metrics.stress import atoms_on_path_ratios
from repro.workloads.zipf import zipf_membership

DEFAULT_GROUP_COUNTS = (8, 16, 32, 64)


def run_fig7(
    env: ExperimentEnv,
    group_counts: Sequence[int] = DEFAULT_GROUP_COUNTS,
    runs: int = 20,
    seed: int = 0,
) -> Dict[int, List[float]]:
    """``{n_groups: pooled atoms-on-path ratios over runs}`` (static)."""
    results: Dict[int, List[float]] = {}
    for n_groups in group_counts:
        pooled: List[float] = []
        for run in range(runs):
            run_seed = seed + 1000 * n_groups + run
            snapshot = zipf_membership(
                env.n_hosts, n_groups, rng=random.Random(run_seed)
            )
            graph = env.build_graph(snapshot, seed=run_seed)
            pooled.extend(atoms_on_path_ratios(graph, env.n_hosts))
        results[n_groups] = pooled
    return results


def render(results: Dict[int, List[float]]) -> str:
    headers = ["groups", "samples", "p50_ratio", "p90_ratio", "max_ratio", "max<0.5"]
    rows = []
    for n_groups in sorted(results):
        values = results[n_groups]
        worst = max(values)
        rows.append(
            [
                n_groups,
                len(values),
                percentile(values, 50),
                percentile(values, 90),
                worst,
                "yes" if worst < 0.5 else "NO",
            ]
        )
    return format_table(
        headers,
        rows,
        title="Figure 7: atoms-on-path / total nodes (CDF summary)",
    )


def main(runs: int = 20) -> str:
    env = ExperimentEnv(n_hosts=128)
    output = render(run_fig7(env, runs=runs))
    print(output)
    return output


if __name__ == "__main__":
    main()
