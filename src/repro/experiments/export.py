"""Exporting experiment results: CSV series and ASCII plots.

The figure modules return plain Python structures; this module turns them
into (a) CSV files consumable by any plotting tool and (b) quick ASCII
plots for terminal inspection — a CDF plot for Figures 3/7 style results
and an x-y line plot for Figures 5/6/8 style results.  No plotting
library is required.
"""

import csv
import pathlib
from typing import Dict, Iterable, List, Sequence, Tuple, Union

PathLike = Union[str, pathlib.Path]


def write_csv(
    path: PathLike, headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> pathlib.Path:
    """Write rows to ``path`` as CSV; returns the resolved path."""
    resolved = pathlib.Path(path)
    resolved.parent.mkdir(parents=True, exist_ok=True)
    with open(resolved, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(row)
    return resolved


def cdf_rows(samples: Dict[object, List[float]]) -> List[Tuple[object, float, float]]:
    """Flatten per-series samples into ``(series, value, fraction)`` rows."""
    rows: List[Tuple[object, float, float]] = []
    for label in sorted(samples, key=str):
        ordered = sorted(samples[label])
        n = len(ordered)
        for index, value in enumerate(ordered):
            rows.append((label, value, (index + 1) / n))
    return rows


def _scale(value: float, low: float, high: float, steps: int) -> int:
    if high <= low:
        return 0
    position = round((value - low) / (high - low) * (steps - 1))
    return min(max(position, 0), steps - 1)


_MARKERS = "*o+x#@%&"


def ascii_cdf(
    samples: Dict[object, List[float]],
    width: int = 64,
    height: int = 16,
    title: str = "",
) -> str:
    """Render per-series CDFs on one ASCII canvas.

    Each series gets a marker; the x axis spans the pooled value range and
    the y axis is the cumulative fraction 0..1.
    """
    pooled = [v for values in samples.values() for v in values]
    if not pooled:
        return title or "(no data)"
    low, high = min(pooled), max(pooled)
    canvas = [[" "] * width for _ in range(height)]
    labels = sorted(samples, key=str)
    for series_index, label in enumerate(labels):
        marker = _MARKERS[series_index % len(_MARKERS)]
        ordered = sorted(samples[label])
        n = len(ordered)
        for index, value in enumerate(ordered):
            x = _scale(value, low, high, width)
            y = _scale((index + 1) / n, 0.0, 1.0, height)
            canvas[height - 1 - y][x] = marker
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("1.0 +" + "-" * width)
    for row in canvas:
        lines.append("    |" + "".join(row))
    lines.append("0.0 +" + "-" * width)
    lines.append(f"     {low:<12.3f}{'':{max(0, width - 24)}}{high:>12.3f}")
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={label}" for i, label in enumerate(labels)
    )
    lines.append("     " + legend)
    return "\n".join(lines)


def ascii_xy(
    series: Dict[object, List[Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    title: str = "",
) -> str:
    """Render ``(x, y)`` series (line-plot style) on one ASCII canvas."""
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return title or "(no data)"
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    canvas = [[" "] * width for _ in range(height)]
    labels = sorted(series, key=str)
    for series_index, label in enumerate(labels):
        marker = _MARKERS[series_index % len(_MARKERS)]
        for x, y in series[label]:
            col = _scale(x, x_low, x_high, width)
            row = _scale(y, y_low, y_high, height)
            canvas[height - 1 - row][col] = marker
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_high:>8.2f} +" + "-" * width)
    for row in canvas:
        lines.append("         |" + "".join(row))
    lines.append(f"{y_low:>8.2f} +" + "-" * width)
    lines.append(f"          {x_low:<12.3f}{'':{max(0, width - 24)}}{x_high:>12.3f}")
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={label}" for i, label in enumerate(labels)
    )
    lines.append("          " + legend)
    return "\n".join(lines)


def export_figure(
    name: str,
    out_dir: PathLike,
    samples: Dict[object, List[float]] = None,
    xy: Dict[object, List[Tuple[float, float]]] = None,
) -> List[pathlib.Path]:
    """Write a figure's data as CSV (and return the written paths).

    Exactly one of ``samples`` (CDF-style) or ``xy`` (line-style) must be
    given.
    """
    if (samples is None) == (xy is None):
        raise ValueError("provide exactly one of samples/xy")
    out = pathlib.Path(out_dir)
    if samples is not None:
        return [
            write_csv(
                out / f"{name}_cdf.csv",
                ["series", "value", "cum_fraction"],
                cdf_rows(samples),
            )
        ]
    rows = [
        (label, x, y)
        for label in sorted(xy, key=str)
        for x, y in xy[label]
    ]
    return [write_csv(out / f"{name}_xy.csv", ["series", "x", "y"], rows)]
