"""Figure 5 — number of sequencing nodes vs number of groups.

"Figure 5 shows the average number of sequencing nodes created as we vary
the number of groups.  We vary the number of groups formed by 128
subscriber nodes from 1 to 64, and run the experiment 100 times.  The
error bars range from 10th to 90th percentile."

Only nodes hosting non-ingress-only sequencers are counted.  Shape to
match: growth with the number of groups that turns more gradual after ~30
groups (new overlaps share members with existing ones and map to existing
sequencing nodes).
"""

import random
from typing import Dict, List, Sequence

from repro.experiments.common import ExperimentEnv, format_table
from repro.metrics.stats import summarize
from repro.metrics.stress import sequencing_node_count
from repro.workloads.zipf import zipf_membership

DEFAULT_GROUP_COUNTS = (1, 2, 4, 8, 12, 16, 20, 24, 28, 32, 40, 48, 56, 64)


def run_fig5(
    env: ExperimentEnv,
    group_counts: Sequence[int] = DEFAULT_GROUP_COUNTS,
    runs: int = 100,
    seed: int = 0,
) -> Dict[int, List[int]]:
    """``{n_groups: [node count per run]}`` — static analysis, no simulation."""
    results: Dict[int, List[int]] = {}
    for n_groups in group_counts:
        counts: List[int] = []
        for run in range(runs):
            run_seed = seed + 1000 * n_groups + run
            snapshot = zipf_membership(
                env.n_hosts, n_groups, rng=random.Random(run_seed)
            )
            graph = env.build_graph(snapshot, seed=run_seed)
            placement = env.build_placement(graph, seed=run_seed, machines=False)
            counts.append(sequencing_node_count(placement))
        results[n_groups] = counts
    return results


def render(results: Dict[int, List[int]]) -> str:
    headers = ["groups", "runs", "mean_nodes", "p10", "p90", "max"]
    rows = []
    for n_groups in sorted(results):
        stats = summarize(results[n_groups])
        rows.append(
            [
                n_groups,
                len(results[n_groups]),
                stats["mean"],
                stats["p10"],
                stats["p90"],
                stats["max"],
            ]
        )
    return format_table(
        headers, rows, title="Figure 5: sequencing nodes vs number of groups"
    )


def main(runs: int = 100) -> str:
    env = ExperimentEnv(n_hosts=128)
    output = render(run_fig5(env, runs=runs))
    print(output)
    return output


if __name__ == "__main__":
    main()
