"""Figure 3 — CDF of latency stretch, 128 subscribers, 8–64 groups.

"We evaluate the extra delay messages encounter when traversing the
sequencing network compared to taking the shortest unicast path. [...]
Figure 3 presents the cumulative distribution of the latency stretch
computed for 128 nodes subscribing to 8, 16, 32, and 64 groups."

Paper shape to match: stretch grows with the number of groups but
sub-linearly — max ~2.5 at 8 groups, under ~8 at 64 groups.
"""

import random
from typing import Dict, List, Sequence

from repro.experiments.common import ExperimentEnv, format_table
from repro.metrics.stats import percentile
from repro.metrics.stretch import latency_stretch_by_destination
from repro.workloads.zipf import zipf_membership

DEFAULT_GROUP_COUNTS = (8, 16, 32, 64)


def run_fig3(
    env: ExperimentEnv,
    group_counts: Sequence[int] = DEFAULT_GROUP_COUNTS,
    seed: int = 0,
) -> Dict[int, List[float]]:
    """Per-destination average latency stretch for each group count.

    Returns ``{n_groups: [stretch per destination node]}`` — the samples
    whose CDF is Figure 3.
    """
    results: Dict[int, List[float]] = {}
    for n_groups in group_counts:
        snapshot = zipf_membership(
            env.n_hosts, n_groups, rng=random.Random(seed + n_groups)
        )
        membership = env.membership_from(snapshot)
        fabric = env.build_fabric(membership, seed=seed, trace=False)
        env.run_one_message_per_membership(fabric)
        undelivered = fabric.pending_messages()
        if undelivered:
            raise RuntimeError(f"fig3: messages stuck at {undelivered}")
        stretch = latency_stretch_by_destination(fabric)
        results[n_groups] = sorted(stretch.values())
    return results


def render(results: Dict[int, List[float]]) -> str:
    """CDF summary table: stretch percentiles per group count."""
    headers = ["groups", "destinations", "p10", "p50", "p90", "max"]
    rows = []
    for n_groups in sorted(results):
        values = results[n_groups]
        rows.append(
            [
                n_groups,
                len(values),
                percentile(values, 10),
                percentile(values, 50),
                percentile(values, 90),
                max(values),
            ]
        )
    return format_table(
        headers, rows, title="Figure 3: latency stretch CDF by number of groups"
    )


def main(paper_scale: bool = False) -> str:
    env = ExperimentEnv(n_hosts=128, paper_scale=paper_scale)
    output = render(run_fig3(env))
    print(output)
    return output


if __name__ == "__main__":
    main()
