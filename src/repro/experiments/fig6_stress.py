"""Figure 6 — sequencing-node stress vs number of groups.

"We define the stress of a sequencing node as the ratio between the number
of groups for which it has to forward messages and the total number of
groups. [...] we present the average, 90th percentile and maximum values
of stress as the number of groups increases."

Shape to match: stress decreases as groups (and nodes) are added,
stabilizing around ~0.2 on average, then rises slightly past ~30 groups
when node growth slows while the group count keeps increasing.
"""

import random
from typing import Dict, List, Sequence

from repro.experiments.common import ExperimentEnv, format_table
from repro.metrics.stats import percentile
from repro.metrics.stress import node_stress
from repro.workloads.zipf import zipf_membership

DEFAULT_GROUP_COUNTS = (2, 4, 8, 12, 16, 20, 24, 28, 32, 40, 48, 56, 64)


def run_fig6(
    env: ExperimentEnv,
    group_counts: Sequence[int] = DEFAULT_GROUP_COUNTS,
    runs: int = 100,
    seed: int = 0,
) -> Dict[int, List[float]]:
    """``{n_groups: pooled per-node stress values over all runs}``."""
    results: Dict[int, List[float]] = {}
    for n_groups in group_counts:
        pooled: List[float] = []
        for run in range(runs):
            run_seed = seed + 1000 * n_groups + run
            snapshot = zipf_membership(
                env.n_hosts, n_groups, rng=random.Random(run_seed)
            )
            graph = env.build_graph(snapshot, seed=run_seed)
            placement = env.build_placement(graph, seed=run_seed, machines=False)
            pooled.extend(node_stress(graph, placement))
        results[n_groups] = pooled
    return results


def render(results: Dict[int, List[float]]) -> str:
    headers = ["groups", "nodes_sampled", "avg_stress", "p90_stress", "max_stress"]
    rows = []
    for n_groups in sorted(results):
        values = results[n_groups]
        if not values:
            rows.append([n_groups, 0, 0.0, 0.0, 0.0])
            continue
        rows.append(
            [
                n_groups,
                len(values),
                sum(values) / len(values),
                percentile(values, 90),
                max(values),
            ]
        )
    return format_table(
        headers, rows, title="Figure 6: sequencing-node stress vs number of groups"
    )


def main(runs: int = 100) -> str:
    env = ExperimentEnv(n_hosts=128)
    output = render(run_fig6(env, runs=runs))
    print(output)
    return output


if __name__ == "__main__":
    main()
