"""Figure 8 — sequencing nodes and double overlaps vs expected occupancy.

"Using 128 nodes and 32 groups, we vary the expected occupancy between 0
and 1 [...] As the expected occupancy increases, the number of double
overlaps and necessary sequencing nodes increase until approximately 0.2
occupancy.  Beyond this, increasing group densities creates double
overlaps that have common members with existing overlaps, and the number
of sequencing nodes gradually decreases.  When the group densities are
very high (above 0.9), the overlaps include the entire population and the
number of sequencing nodes drops to one."

Shape to match: overlaps rise monotonically toward the full pair count;
sequencing nodes peak near 0.2 occupancy and fall to 1 above ~0.9.
"""

import random
from typing import Dict, List, Sequence, Tuple

from repro.experiments.common import ExperimentEnv, format_table
from repro.metrics.stress import double_overlap_count, sequencing_node_count
from repro.workloads.occupancy import occupancy_membership

DEFAULT_OCCUPANCIES = tuple(x / 20 for x in range(1, 21))  # 0.05 .. 1.00


def run_fig8(
    env: ExperimentEnv,
    n_groups: int = 32,
    occupancies: Sequence[float] = DEFAULT_OCCUPANCIES,
    runs: int = 10,
    seed: int = 0,
) -> Dict[float, Tuple[float, float]]:
    """``{occupancy: (mean double overlaps, mean sequencing nodes)}``."""
    results: Dict[float, Tuple[float, float]] = {}
    for occupancy in occupancies:
        overlaps: List[int] = []
        nodes: List[int] = []
        for run in range(runs):
            run_seed = seed + 10_000 * run + round(occupancy * 100)
            snapshot = occupancy_membership(
                env.n_hosts, n_groups, occupancy, rng=random.Random(run_seed)
            )
            graph = env.build_graph(snapshot, seed=run_seed)
            placement = env.build_placement(graph, seed=run_seed, machines=False)
            overlaps.append(double_overlap_count(graph))
            nodes.append(sequencing_node_count(placement))
        results[occupancy] = (
            sum(overlaps) / len(overlaps),
            sum(nodes) / len(nodes),
        )
    return results


def render(results: Dict[float, Tuple[float, float]]) -> str:
    headers = ["occupancy", "mean_double_overlaps", "mean_sequencing_nodes"]
    rows = [
        [occupancy, results[occupancy][0], results[occupancy][1]]
        for occupancy in sorted(results)
    ]
    return format_table(
        headers,
        rows,
        title="Figure 8: double overlaps & sequencing nodes vs occupancy "
        "(128 hosts, 32 groups)",
    )


def main(runs: int = 10) -> str:
    env = ExperimentEnv(n_hosts=128)
    output = render(run_fig8(env, runs=runs))
    print(output)
    return output


if __name__ == "__main__":
    main()
