"""Host-population sweep (paper Section 4.1: "We vary the number of
end-hosts between 32 to 128").

For each population size, build the Zipf workload at a fixed group count
and measure the quantities the paper tracks: sequencing-node count, mean
node stress, worst atoms-on-path ratio, and (optionally, when simulation
is enabled) median latency stretch.  The interesting claim is the §4.4
regime statement: the approach is attractive "whenever the number of
nodes exceeds the number of groups" — the atoms-on-path ratio falls as
hosts grow past the group count.
"""

import random
from typing import Dict, List, Sequence

from repro.experiments.common import ExperimentEnv, format_table
from repro.metrics.stats import percentile
from repro.metrics.stress import (
    atoms_on_path_ratios,
    node_stress,
    sequencing_node_count,
)
from repro.metrics.stretch import latency_stretch_by_destination
from repro.workloads.zipf import zipf_membership

DEFAULT_HOST_COUNTS = (32, 48, 64, 96, 128)


def run_hosts_sweep(
    host_counts: Sequence[int] = DEFAULT_HOST_COUNTS,
    n_groups: int = 16,
    runs: int = 10,
    seed: int = 0,
    simulate: bool = True,
    paper_scale: bool = False,
) -> Dict[int, Dict[str, float]]:
    """``{n_hosts: {metric: value}}`` across the host sweep.

    Note: each population size needs its own environment (hosts are
    attached per size), so this sweep builds one topology per size with
    the same seed.
    """
    results: Dict[int, Dict[str, float]] = {}
    for n_hosts in host_counts:
        env = ExperimentEnv(n_hosts=n_hosts, seed=seed, paper_scale=paper_scale)
        nodes: List[int] = []
        stress: List[float] = []
        ratios: List[float] = []
        for run in range(runs):
            run_seed = seed + 1000 * n_hosts + run
            snapshot = zipf_membership(n_hosts, n_groups, rng=random.Random(run_seed))
            graph = env.build_graph(snapshot, seed=run_seed)
            placement = env.build_placement(graph, seed=run_seed, machines=False)
            nodes.append(sequencing_node_count(placement))
            stress.extend(node_stress(graph, placement))
            ratios.extend(atoms_on_path_ratios(graph, n_hosts))
        row = {
            "mean_nodes": sum(nodes) / len(nodes),
            "mean_stress": sum(stress) / len(stress) if stress else 0.0,
            "worst_atoms_ratio": max(ratios) if ratios else 0.0,
        }
        if simulate:
            snapshot = zipf_membership(n_hosts, n_groups, rng=random.Random(seed))
            fabric = env.build_fabric(env.membership_from(snapshot), seed=seed, trace=False)
            env.run_one_message_per_membership(fabric)
            stretch = sorted(latency_stretch_by_destination(fabric).values())
            row["p50_stretch"] = percentile(stretch, 50)
        results[n_hosts] = row
    return results


def render(results: Dict[int, Dict[str, float]]) -> str:
    headers = ["hosts", "mean_nodes", "mean_stress", "worst_atoms_ratio"]
    has_stretch = any("p50_stretch" in row for row in results.values())
    if has_stretch:
        headers.append("p50_stretch")
    rows = []
    for n_hosts in sorted(results):
        row = [n_hosts] + [results[n_hosts].get(h, float("nan")) for h in headers[1:]]
        rows.append(row)
    return format_table(
        headers, rows, title="Host sweep (fixed 16 Zipf groups, paper §4.1 range)"
    )


def main(runs: int = 10) -> str:
    output = render(run_hosts_sweep(runs=runs))
    print(output)
    return output


if __name__ == "__main__":
    main()
