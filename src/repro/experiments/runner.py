"""Run all (or selected) figure reproductions from the command line.

Usage::

    python -m repro.experiments.runner                 # all figures, quick
    python -m repro.experiments.runner --figures 3 5   # a subset
    python -m repro.experiments.runner --runs 100      # paper repetitions
    python -m repro.experiments.runner --paper-scale   # 10,000-router topology
    python -m repro.experiments.runner --csv-dir out/  # export raw series
    python -m repro.experiments.runner --ascii         # terminal plots

Quick mode (default) uses a few-hundred-router topology and fewer
repetitions; ``--paper-scale``/``--runs`` restore the paper's parameters.
"""

import argparse
from typing import List, Optional

from repro.experiments import fig3_latency_stretch as fig3
from repro.experiments import fig4_rdp as fig4
from repro.experiments import fig5_sequencing_nodes as fig5
from repro.experiments import fig6_stress as fig6
from repro.experiments import fig7_atoms_on_path as fig7
from repro.experiments import fig8_occupancy as fig8
from repro.experiments import export
from repro.experiments.common import ExperimentEnv


def run_selected(
    figures: List[int],
    runs: int,
    paper_scale: bool,
    n_hosts: int = 128,
    csv_dir: Optional[str] = None,
    ascii_plots: bool = False,
    metrics_out: Optional[str] = None,
) -> str:
    """Run the requested figures, returning the combined report text.

    ``metrics_out`` attaches a metrics registry to every fabric the figure
    modules build and writes a Prometheus-style text dump there afterwards
    (counters accumulate across fabrics; same-label gauges reflect the last
    fabric collected).
    """
    env = ExperimentEnv(n_hosts=n_hosts, paper_scale=paper_scale)
    if metrics_out:
        from repro.obs.registry import MetricsRegistry

        env.registry = MetricsRegistry()
    sections: List[str] = []

    def emit(table: str, plot: Optional[str]) -> None:
        sections.append(table)
        if ascii_plots and plot:
            sections.append(plot)

    if 3 in figures:
        results = fig3.run_fig3(env)
        plot = export.ascii_cdf(
            {f"{g} groups": v for g, v in results.items()},
            title="Figure 3: latency stretch CDF",
        )
        emit(fig3.render(results), plot)
        if csv_dir:
            export.export_figure("fig3", csv_dir, samples=results)
    if 4 in figures:
        points = fig4.run_fig4(env)
        plot = export.ascii_xy(
            {"rdp": points}, title="Figure 4: RDP vs unicast delay"
        )
        emit(fig4.render(points), plot)
        if csv_dir:
            export.export_figure("fig4", csv_dir, xy={"rdp": points})
    if 5 in figures:
        results = fig5.run_fig5(env, runs=runs)
        series = {
            "nodes": [
                (g, sum(v) / len(v)) for g, v in sorted(results.items())
            ]
        }
        emit(
            fig5.render(results),
            export.ascii_xy(series, title="Figure 5: sequencing nodes vs groups"),
        )
        if csv_dir:
            export.export_figure("fig5", csv_dir, xy=series)
    if 6 in figures:
        results = fig6.run_fig6(env, runs=runs)
        series = {
            "avg_stress": [
                (g, sum(v) / len(v)) for g, v in sorted(results.items()) if v
            ]
        }
        emit(
            fig6.render(results),
            export.ascii_xy(series, title="Figure 6: stress vs groups"),
        )
        if csv_dir:
            export.export_figure("fig6", csv_dir, xy=series)
    if 7 in figures:
        results = fig7.run_fig7(env, runs=max(1, runs // 5))
        plot = export.ascii_cdf(
            {f"{g} groups": v for g, v in results.items()},
            title="Figure 7: atoms-on-path ratio CDF",
        )
        emit(fig7.render(results), plot)
        if csv_dir:
            export.export_figure("fig7", csv_dir, samples=results)
    if 8 in figures:
        results = fig8.run_fig8(env, runs=max(1, runs // 10))
        series = {
            "double_overlaps": [(occ, results[occ][0]) for occ in sorted(results)],
            "sequencing_nodes": [(occ, results[occ][1]) for occ in sorted(results)],
        }
        emit(
            fig8.render(results),
            export.ascii_xy(series, title="Figure 8: overlaps & nodes vs occupancy"),
        )
        if csv_dir:
            export.export_figure("fig8", csv_dir, xy=series)
    if metrics_out:
        from repro.obs.exporters import write_prometheus

        write_prometheus(env.registry, metrics_out)
        sections.append(f"metrics written to {metrics_out}")
    return "\n\n".join(sections)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--figures",
        type=int,
        nargs="+",
        default=[3, 4, 5, 6, 7, 8],
        help="figure numbers to reproduce (default: all)",
    )
    parser.add_argument(
        "--runs", type=int, default=20, help="repetitions for figs 5/6 (paper: 100)"
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the full 10,000-router topology (slower)",
    )
    parser.add_argument("--hosts", type=int, default=128, help="subscriber hosts")
    parser.add_argument(
        "--csv-dir", default=None, help="directory for raw CSV series exports"
    )
    parser.add_argument(
        "--ascii", action="store_true", help="render ASCII plots after each table"
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        help="write a Prometheus-style metrics dump of all runs here",
    )
    args = parser.parse_args(argv)
    print(
        run_selected(
            args.figures,
            args.runs,
            args.paper_scale,
            n_hosts=args.hosts,
            csv_dir=args.csv_dir,
            ascii_plots=args.ascii,
            metrics_out=args.metrics_out,
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
