"""Zipf-distributed group memberships (paper Section 4.1).

"We rank the groups based on their size and we generate the size of each
group using a Zipf distribution with exponent 1.  The sizes are
proportional to the function r^-1 / H_{n,1}, where r is the rank of the
group, n is the number of hosts and H_{n,1} is the generalized harmonic
number of order n of 1."

The paper fixes the constant only up to proportionality.  Two readings
bracket it: the probability-mass reading (``size(r) = n/(r·H_n)``, rank-1
group ≈ n/H_n ≈ 0.18n) produces almost no double overlaps — none of the
evaluation's figures are reproducible there — while ``size(r) = n/r``
makes the rank-1 group universal, which degenerates the Section 3.4
subset rule (every overlap with the universal group is a superset of
every other overlap of that partner, collapsing all atoms onto one
sequencing node).  We default to ``size(r) = 0.75·n/r``, the calibration
that reproduces the paper's shapes: sequencing-node growth that turns
gradual past ~30 groups (Fig. 5), stress near 0.2 (Fig. 6), and a
worst-case atoms-on-path ratio approaching but below one half (Fig. 7).
Pass ``largest`` to choose a different constant.

Members of each group are drawn uniformly at random from the host
population.  Sizes below ``min_size`` are clamped: a group with fewer than
two members can neither overlap doubly nor need ordering, so the paper's
experiments are only meaningful for sizes >= 2 (the clamp is documented in
EXPERIMENTS.md).
"""

import random
from typing import Dict, FrozenSet, List, Optional


def harmonic_number(n: int, exponent: float = 1.0) -> float:
    """Generalized harmonic number ``H_{n,exponent}``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return sum(1.0 / (k**exponent) for k in range(1, n + 1))


def zipf_group_sizes(
    n_hosts: int,
    n_groups: int,
    exponent: float = 1.0,
    min_size: int = 2,
    largest: Optional[int] = None,
) -> List[int]:
    """Group sizes by rank: ``size(r) = largest * r^-exponent``.

    ``largest`` defaults to ``0.75 * n_hosts`` (see the module docstring
    for the calibration).  Sizes are rounded and clamped to
    ``[min_size, n_hosts]``.
    """
    if n_groups < 1:
        raise ValueError(f"n_groups must be >= 1, got {n_groups}")
    if largest is None:
        largest = max(min_size, round(0.75 * n_hosts))
    sizes = []
    for rank in range(1, n_groups + 1):
        size = round(largest * (rank**-exponent))
        sizes.append(max(min_size, min(n_hosts, size)))
    return sizes


def zipf_membership(
    n_hosts: int,
    n_groups: int,
    rng: Optional[random.Random] = None,
    exponent: float = 1.0,
    min_size: int = 2,
    largest: Optional[int] = None,
) -> Dict[int, FrozenSet[int]]:
    """A full membership snapshot with Zipf-distributed group sizes.

    Group ids are ``0 .. n_groups-1`` in rank order (group 0 is largest);
    members are sampled uniformly without replacement per group.
    """
    rng = rng or random.Random(0)
    hosts = list(range(n_hosts))
    snapshot: Dict[int, FrozenSet[int]] = {}
    for group_id, size in enumerate(
        zipf_group_sizes(n_hosts, n_groups, exponent, min_size, largest)
    ):
        snapshot[group_id] = frozenset(rng.sample(hosts, size))
    return snapshot
