"""Workload generation for experiments and examples.

* :mod:`repro.workloads.zipf` — the paper's primary membership model
  (Section 4.1): group sizes follow a Zipf distribution with exponent 1,
  matching the popularity of online communities.
* :mod:`repro.workloads.occupancy` — the worst-case model of Section 4.5:
  each (node, group) membership is an independent coin flip with the given
  expected occupancy.
* :mod:`repro.workloads.scenarios` — the application workloads motivating
  the paper (Section 1.1): a region-partitioned multiplayer game, a
  filtered stock ticker, and a chat/presence messaging system.
"""

from repro.workloads.occupancy import occupancy_membership
from repro.workloads.replay import WorkloadTrace
from repro.workloads.scenarios import (
    GameWorld,
    MessagingScenario,
    PublishEvent,
    StockTickerScenario,
)
from repro.workloads.zipf import zipf_group_sizes, zipf_membership

__all__ = [
    "GameWorld",
    "MessagingScenario",
    "PublishEvent",
    "StockTickerScenario",
    "WorkloadTrace",
    "occupancy_membership",
    "zipf_group_sizes",
    "zipf_membership",
]
