"""Application scenario generators (the paper's Section 1.1 motivations).

Each scenario produces a group membership layout over a host population
plus a publish schedule, so examples and integration tests can exercise
the ordering layer on workloads shaped like the paper's motivating
applications:

* :class:`GameWorld` — a multiplayer game whose virtual world is divided
  into regions; players subscribe to the regions within their area of
  interest, so nearby players share multiple region groups and must see
  common events in the same order.
* :class:`StockTickerScenario` — trades flow to filter-defined consumer
  groups (by sector, by region, by market-cap bucket); consumers applying
  the same updates must apply them in the same order.
* :class:`MessagingScenario` — chat rooms and presence feeds; responses
  should follow the messages they respond to (causal order).
"""

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple


@dataclass
class PublishEvent:
    """One scheduled publish: who sends what to which group."""

    sender: int
    group: int
    payload: object


class GameWorld:
    """A grid of regions with players whose interest areas overlap.

    Parameters
    ----------
    width, height:
        Grid dimensions; each cell is a region (one group per region with
        at least two interested players).
    n_players:
        Player population.
    interest_radius:
        Players subscribe to all regions within Chebyshev distance
        ``interest_radius`` of their own cell — adjacent players therefore
        share several region groups (double overlaps).
    rng:
        Random source for player placement.
    """

    def __init__(
        self,
        width: int = 4,
        height: int = 4,
        n_players: int = 24,
        interest_radius: int = 1,
        rng: Optional[random.Random] = None,
    ):
        self.width = width
        self.height = height
        self.n_players = n_players
        self.interest_radius = interest_radius
        self._rng = rng or random.Random(0)
        self.player_cell: Dict[int, Tuple[int, int]] = {
            player: (self._rng.randrange(width), self._rng.randrange(height))
            for player in range(n_players)
        }

    def region_id(self, x: int, y: int) -> int:
        """Dense region (group) id for a grid cell."""
        return y * self.width + x

    def regions_of(self, player: int) -> List[int]:
        """Regions within the player's area of interest."""
        px, py = self.player_cell[player]
        regions = []
        for y in range(
            max(0, py - self.interest_radius),
            min(self.height, py + self.interest_radius + 1),
        ):
            for x in range(
                max(0, px - self.interest_radius),
                min(self.width, px + self.interest_radius + 1),
            ):
                regions.append(self.region_id(x, y))
        return regions

    def membership(self) -> Dict[int, FrozenSet[int]]:
        """Region groups with at least two interested players."""
        members: Dict[int, set] = {}
        for player in range(self.n_players):
            for region in self.regions_of(player):
                members.setdefault(region, set()).add(player)
        return {
            region: frozenset(players)
            for region, players in sorted(members.items())
            if len(players) >= 2
        }

    def publish_schedule(self, n_events: int) -> List[PublishEvent]:
        """Random in-game events: each player publishes to its own region.

        Publishing to one's own region keeps senders inside their
        destination groups, so the resulting order is causal.
        """
        membership = self.membership()
        events: List[PublishEvent] = []
        players = [
            p
            for p in range(self.n_players)
            if self.region_id(*self.player_cell[p]) in membership
        ]
        if not players:
            return events
        actions = ("move", "shoot", "pickup", "emote")
        for index in range(n_events):
            player = self._rng.choice(players)
            region = self.region_id(*self.player_cell[player])
            events.append(
                PublishEvent(
                    sender=player,
                    group=region,
                    payload={"action": self._rng.choice(actions), "tick": index},
                )
            )
        return events


@dataclass
class StockTickerScenario:
    """Consumers subscribe to filter groups over a universe of stocks.

    Filters follow the paper's examples: company size, geography, and
    industry.  A trade for a stock goes to every group whose filter
    matches, and consumers subscribing to several filters see consistent
    update order.
    """

    n_consumers: int = 32
    n_stocks: int = 12
    sectors: Tuple[str, ...] = ("tech", "energy", "finance")
    regions: Tuple[str, ...] = ("us", "eu", "asia")
    rng: random.Random = field(default_factory=lambda: random.Random(0))

    def __post_init__(self) -> None:
        self.stock_attrs: Dict[int, Dict[str, str]] = {
            stock: {
                "sector": self.rng.choice(self.sectors),
                "region": self.rng.choice(self.regions),
                "cap": self.rng.choice(("large", "small")),
            }
            for stock in range(self.n_stocks)
        }
        # Each filter value is one group; consumers pick 1-3 filters.
        self.filters: List[Tuple[str, str]] = (
            [("sector", s) for s in self.sectors]
            + [("region", r) for r in self.regions]
            + [("cap", c) for c in ("large", "small")]
        )
        self.consumer_filters: Dict[int, List[int]] = {
            consumer: sorted(
                self.rng.sample(range(len(self.filters)), self.rng.randint(1, 3))
            )
            for consumer in range(self.n_consumers)
        }

    def membership(self) -> Dict[int, FrozenSet[int]]:
        """One group per filter with at least two subscribed consumers."""
        members: Dict[int, set] = {}
        for consumer, filter_ids in self.consumer_filters.items():
            for filter_id in filter_ids:
                members.setdefault(filter_id, set()).add(consumer)
        return {
            filter_id: frozenset(consumers)
            for filter_id, consumers in sorted(members.items())
            if len(consumers) >= 2
        }

    def groups_for_stock(self, stock: int) -> List[int]:
        """Filter groups matching one stock's attributes."""
        attrs = self.stock_attrs[stock]
        return [
            filter_id
            for filter_id, (key, value) in enumerate(self.filters)
            if attrs.get(key) == value and filter_id in self.membership()
        ]

    def trade_schedule(self, n_trades: int) -> List[PublishEvent]:
        """Random trades; the publisher is a member of the target group.

        Real tickers have an external publisher; modelling the publisher
        as a group member keeps the causal-send requirement satisfied
        without changing the ordering behaviour consumers observe.
        """
        membership = self.membership()
        events: List[PublishEvent] = []
        for index in range(n_trades):
            stock = self.rng.randrange(self.n_stocks)
            matching = [g for g in self.groups_for_stock(stock) if g in membership]
            if not matching:
                continue
            group = self.rng.choice(matching)
            sender = self.rng.choice(sorted(membership[group]))
            events.append(
                PublishEvent(
                    sender=sender,
                    group=group,
                    payload={"stock": stock, "trade_id": index},
                )
            )
        return events


@dataclass
class MessagingScenario:
    """Chat rooms plus per-user presence feeds.

    Users join a handful of rooms; every user's buddies subscribe to the
    user's presence group.  Room chatter and presence flips interleave,
    and the ordering layer makes replies follow the messages they answer.
    """

    n_users: int = 20
    n_rooms: int = 5
    rooms_per_user: int = 2
    buddies_per_user: int = 3
    rng: random.Random = field(default_factory=lambda: random.Random(0))

    def __post_init__(self) -> None:
        self.user_rooms: Dict[int, List[int]] = {
            user: sorted(
                self.rng.sample(range(self.n_rooms), min(self.rooms_per_user, self.n_rooms))
            )
            for user in range(self.n_users)
        }
        self.buddies: Dict[int, List[int]] = {}
        for user in range(self.n_users):
            others = [u for u in range(self.n_users) if u != user]
            self.buddies[user] = sorted(
                self.rng.sample(others, min(self.buddies_per_user, len(others)))
            )

    def presence_group_id(self, user: int) -> int:
        """Group id of a user's presence feed (rooms occupy 0..n_rooms-1)."""
        return self.n_rooms + user

    def membership(self) -> Dict[int, FrozenSet[int]]:
        """Room groups and presence groups with >= 2 members.

        The presence publisher subscribes to its own feed (causal sends);
        buddies are the other members.
        """
        members: Dict[int, set] = {}
        for user, rooms in self.user_rooms.items():
            for room in rooms:
                members.setdefault(room, set()).add(user)
        for user, buddy_list in self.buddies.items():
            feed = {user} | set(buddy_list)
            members[self.presence_group_id(user)] = feed
        return {
            group: frozenset(people)
            for group, people in sorted(members.items())
            if len(people) >= 2
        }

    def chat_schedule(self, n_events: int) -> List[PublishEvent]:
        """Interleaved room messages and presence flips."""
        membership = self.membership()
        events: List[PublishEvent] = []
        for index in range(n_events):
            user = self.rng.randrange(self.n_users)
            if self.rng.random() < 0.3:
                group = self.presence_group_id(user)
                payload = {"presence": self.rng.choice(("online", "offline"))}
            else:
                rooms = [r for r in self.user_rooms[user] if r in membership]
                if not rooms:
                    continue
                group = self.rng.choice(rooms)
                payload = {"text": f"msg-{index}"}
            if group not in membership or user not in membership[group]:
                continue
            events.append(PublishEvent(sender=user, group=group, payload=payload))
        return events
