"""Recordable, replayable workloads.

A :class:`WorkloadTrace` bundles a membership snapshot with a publish
schedule.  Traces serialize to a small JSON format, so an experiment's
exact workload can be archived, diffed, and replayed against any fabric —
the paper's protocol or any baseline — for apples-to-apples comparisons.

Build traces from the scenario generators::

    from repro.workloads import GameWorld
    from repro.workloads.replay import WorkloadTrace

    world = GameWorld(n_players=24)
    trace = WorkloadTrace.from_schedule(
        world.membership(), world.publish_schedule(100)
    )
    trace.save("game.workload.json")

and replay them::

    trace = WorkloadTrace.load("game.workload.json")
    membership = trace.build_membership()
    fabric = OrderingFabric(membership, hosts, topology, routing)
    trace.replay(fabric)
"""

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Union

from repro.pubsub.membership import GroupMembership
from repro.workloads.scenarios import PublishEvent

PathLike = Union[str, pathlib.Path]

FORMAT_VERSION = 1


@dataclass
class WorkloadTrace:
    """A membership snapshot plus an ordered publish schedule."""

    membership: Dict[int, FrozenSet[int]]
    events: List[PublishEvent] = field(default_factory=list)
    name: str = ""

    # -- construction -----------------------------------------------------

    @classmethod
    def from_schedule(
        cls,
        membership: Dict[int, FrozenSet[int]],
        events: List[PublishEvent],
        name: str = "",
    ) -> "WorkloadTrace":
        """Bundle a generated membership and schedule into a trace."""
        return cls(
            membership={g: frozenset(m) for g, m in membership.items()},
            events=list(events),
            name=name,
        )

    def validate(self) -> None:
        """Check internal consistency (senders exist, groups exist)."""
        for index, event in enumerate(self.events):
            if event.group not in self.membership:
                raise ValueError(
                    f"event {index} targets unknown group {event.group}"
                )
            if event.sender not in self.membership[event.group]:
                raise ValueError(
                    f"event {index}: sender {event.sender} is not a member "
                    f"of group {event.group} (causal sends require it)"
                )

    def n_hosts(self) -> int:
        """Smallest host population that can run this trace."""
        members = {m for group in self.membership.values() for m in group}
        return (max(members) + 1) if members else 0

    # -- serialization ------------------------------------------------------

    def to_json(self) -> str:
        """Serialize to the versioned JSON format."""
        payload = {
            "version": FORMAT_VERSION,
            "name": self.name,
            "membership": {
                str(group): sorted(members)
                for group, members in self.membership.items()
            },
            "events": [
                {"sender": e.sender, "group": e.group, "payload": e.payload}
                for e in self.events
            ],
        }
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "WorkloadTrace":
        """Parse the JSON format; rejects unknown versions."""
        payload = json.loads(text)
        version = payload.get("version")
        if version != FORMAT_VERSION:
            raise ValueError(f"unsupported workload format version {version!r}")
        membership = {
            int(group): frozenset(members)
            for group, members in payload["membership"].items()
        }
        events = [
            PublishEvent(
                sender=e["sender"], group=e["group"], payload=e.get("payload")
            )
            for e in payload["events"]
        ]
        return cls(membership=membership, events=events, name=payload.get("name", ""))

    def save(self, path: PathLike) -> pathlib.Path:
        """Write the trace to ``path``; returns the resolved path."""
        resolved = pathlib.Path(path)
        resolved.parent.mkdir(parents=True, exist_ok=True)
        resolved.write_text(self.to_json())
        return resolved

    @classmethod
    def load(cls, path: PathLike) -> "WorkloadTrace":
        """Read a trace from disk."""
        return cls.from_json(pathlib.Path(path).read_text())

    # -- replay ----------------------------------------------------------------

    def build_membership(self) -> GroupMembership:
        """Materialize the snapshot into a fresh membership matrix."""
        membership = GroupMembership()
        for group, members in sorted(self.membership.items()):
            membership.create_group(members, group_id=group)
        return membership

    def replay(
        self,
        fabric: Any,
        run_between: bool = False,
        limit: Optional[int] = None,
    ) -> int:
        """Publish the schedule into any fabric exposing ``publish``/``run``.

        ``run_between`` quiesces after each publish (isolated-latency
        methodology); otherwise all events are injected at once and a
        single ``run()`` drains them.  Returns the number of events
        published.
        """
        count = 0
        for event in self.events[: limit if limit is not None else len(self.events)]:
            fabric.publish(event.sender, event.group, event.payload)
            count += 1
            if run_between:
                fabric.run()
        fabric.run()
        return count
