"""Expected-occupancy membership model (paper Section 4.5).

"We define the expected occupancy as a measure of the density of the group
membership.  The value of the expected occupancy can be interpreted as the
probability that a node is member of a group: an occupancy of 0 means that
all groups are empty, while an occupancy of 1 means that every node
subscribes to every group."

Each (node, group) pair is an independent Bernoulli trial with success
probability equal to the occupancy.  Groups that end up empty are dropped
(an empty group does not exist in the membership matrix).
"""

import random
from typing import Dict, FrozenSet, Optional


def occupancy_membership(
    n_hosts: int,
    n_groups: int,
    occupancy: float,
    rng: Optional[random.Random] = None,
) -> Dict[int, FrozenSet[int]]:
    """A membership snapshot where P[node in group] = ``occupancy``.

    Group ids are dense ``0 ..`` over the non-empty groups.
    """
    if not 0.0 <= occupancy <= 1.0:
        raise ValueError(f"occupancy must be in [0, 1], got {occupancy}")
    rng = rng or random.Random(0)
    snapshot: Dict[int, FrozenSet[int]] = {}
    next_id = 0
    for _ in range(n_groups):
        members = frozenset(
            host for host in range(n_hosts) if rng.random() < occupancy
        )
        if members:
            snapshot[next_id] = members
            next_id += 1
    return snapshot
