"""Structured tracing of runtime events (transport-neutral).

The metrics layer (:mod:`repro.metrics`) computes latency stretch, RDP, and
load figures from traces rather than by instrumenting protocol code, which
keeps the protocol implementation uncluttered and lets baselines share the
same analysis pipeline.  The observability layer (:mod:`repro.obs`) builds
per-message lifecycle spans from the same records and can consume them live
through subscribers; :mod:`repro.obs.forensics` goes further and rebuilds
full per-message journeys and hold-back explanations from the
flight-recorder kinds (``atom_seq``/``atom_pass``/``buffer``/``drain``/
``retransmit``), which works identically on a live trace and on a JSONL
export because every data value is a JSON primitive.

The trace is backend-agnostic: record times come from whatever clock the
runtime's node handle exposes, so the same analysis runs over a simulated
run and a live asyncio run.  (This module lived at ``repro.sim.trace``
before the transport split; that path re-exports it as a deprecated
alias.)

**Recording contract** (see :meth:`Trace.record`):

* Per-kind *counts* are maintained whether or not tracing is enabled; the
  disabled path is a single dict bump and nothing else — no record object,
  no data retention, no subscriber calls.
* *Records*, the per-kind index, and subscriber callbacks exist only while
  ``enabled`` is true.
* Very hot call sites emitting high-volume kinds (e.g. the fabric's
  per-hop ``seq_hop`` records) additionally guard on ``trace.enabled`` so
  the disabled path skips even the keyword-argument packing; counts for
  those kinds are therefore only meaningful when tracing is on.
"""

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

__all__ = ["Trace", "TraceRecord"]


@dataclass(frozen=True)
class TraceRecord:
    """A single traced occurrence.

    Attributes
    ----------
    time:
        Virtual time of the occurrence.
    kind:
        A short category string, e.g. ``"publish"``, ``"deliver"``,
        ``"sequence"``, ``"forward"``.
    data:
        Free-form payload; by convention a dict with at least ``msg`` for
        message-scoped records.
    """

    time: float
    kind: str
    data: Dict[str, Any] = field(default_factory=dict)


class Trace:
    """An append-only log of :class:`TraceRecord` with simple querying.

    Parameters
    ----------
    enabled:
        Record nothing but per-kind counts when false.
    maxlen:
        Optional bound turning the log into a ring buffer that keeps only
        the newest ``maxlen`` records — for long-running runs where only
        the recent past matters.  The per-kind index is disabled in
        ring-buffer mode (evictions would have to be mirrored into every
        index list), so ``select(kind=...)`` falls back to a scan.
    """

    def __init__(self, enabled: bool = True, maxlen: Optional[int] = None):
        if maxlen is not None and maxlen <= 0:
            raise ValueError(f"maxlen must be positive, got {maxlen}")
        self.enabled = enabled
        self.maxlen = maxlen
        self._records: Union["deque[TraceRecord]", List[TraceRecord]] = (
            deque(maxlen=maxlen) if maxlen else []
        )
        #: per-kind index kept in lock-step with _records (None in ring mode)
        self._by_kind: Optional[Dict[str, List[TraceRecord]]] = (
            None if maxlen else {}
        )
        self._counts: Dict[str, int] = {}
        self._subscribers: List[Callable[[TraceRecord], None]] = []
        #: optional phase profiler (see :mod:`repro.obs.profiler`); when
        #: attached and enabled, the record body and every subscriber are
        #: timed under the "trace" phase so observability's own cost shows
        #: up in the bench breakdown instead of inflating other phases.
        self.profiler: Optional[Any] = None

    def record(self, time: float, kind: str, **data: Any) -> None:
        """Append one record; when disabled, only bump the kind counter."""
        counts = self._counts
        counts[kind] = counts.get(kind, 0) + 1
        if not self.enabled:
            return
        profiler = self.profiler
        if profiler is not None and profiler.enabled:
            profiler.enter("trace")
        else:
            profiler = None
        rec = TraceRecord(time, kind, data)
        self._records.append(rec)
        if self._by_kind is not None:
            index = self._by_kind.get(kind)
            if index is None:
                self._by_kind[kind] = [rec]
            else:
                index.append(rec)
        for subscriber in self._subscribers:
            subscriber(rec)
        if profiler is not None:
            profiler.exit()

    def count(self, kind: str) -> int:
        """Number of records of ``kind`` (counted even when disabled)."""
        return self._counts.get(kind, 0)

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Call ``callback(record)`` for every record appended while enabled.

        Subscribers run synchronously on the recording path — keep them
        cheap (the observability hooks bump counters and histograms only).
        """
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Remove a subscriber added with :meth:`subscribe` (idempotent)."""
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    def select(self, kind: Optional[str] = None, **filters: Any) -> List[TraceRecord]:
        """Return records matching ``kind`` and all data-field filters."""
        return list(self.iter_select(kind, **filters))

    def iter_select(
        self, kind: Optional[str] = None, **filters: Any
    ) -> Iterator[TraceRecord]:
        """Lazily yield records matching ``kind`` and data-field filters.

        Kind-filtered queries use the per-kind index (no full scan) except
        in ring-buffer mode.
        """
        source: Any
        if kind is not None and self._by_kind is not None:
            source = self._by_kind.get(kind, ())
            kind = None  # already filtered by the index
        else:
            source = self._records
        for record in source:
            if kind is not None and record.kind != kind:
                continue
            if all(record.data.get(k) == v for k, v in filters.items()):
                yield record

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def clear(self) -> None:
        """Drop all records and counters (subscribers stay attached)."""
        self._records.clear()
        if self._by_kind is not None:
            self._by_kind.clear()
        self._counts.clear()
