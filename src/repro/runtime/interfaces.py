"""The narrow interface the ordering protocol needs from a runtime.

The protocol core (:mod:`repro.core`) stamps, forwards, buffers, and
delivers regardless of whether packets move over a simulated channel or a
real socket.  Everything it actually uses from an execution substrate is
captured by four small structural protocols:

* :class:`NodeHandle` — a virtual clock plus a timer service.  Processes
  hold one as ``self.node`` (historically ``self.sim``); the simulated
  backend hands out the :class:`~repro.sim.events.Simulator` itself, the
  live backend an :class:`~repro.runtime.asyncio_backend.AsyncioScheduler`.
* :class:`Link` — a unidirectional FIFO channel with a propagation delay,
  loss/outage hooks, and wire accounting.
* :class:`Transport` — the registry of processes and links: lazy channel
  creation from a delay, lookup, retirement (failover), partitions, and
  network-wide aggregates.
* :class:`RuntimeBackend` — the bundle a fabric is constructed over:
  a scheduler (clock + timers), a transport, and a way to drive the whole
  thing (``run``) plus lifecycle (``successor`` for epoch switches,
  ``close``).

All four are ``Protocol`` classes: the existing ``repro.sim`` machinery
conforms structurally with zero adaptation cost on the hot path, and the
asyncio backend implements the same duck-typed surface.
"""

from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    FrozenSet,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids obs coupling
    from repro.obs.profiler import PhaseProfiler
    from repro.runtime.trace import Trace

__all__ = [
    "CancelHandle",
    "Link",
    "NodeHandle",
    "RuntimeBackend",
    "Transport",
]


@runtime_checkable
class CancelHandle(Protocol):
    """A cancellable reference to a scheduled timer/event."""

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        ...


@runtime_checkable
class NodeHandle(Protocol):
    """Clock + timer service a process runs against.

    The unit of ``now`` (and of every delay) is milliseconds by project
    convention; the simulated backend's time is virtual, the live
    backend's is scaled monotonic wall time.
    """

    #: callbacks executed since the runtime started
    events_executed: int
    #: optional phase profiler attached by the fabric (see repro.obs)
    profiler: Optional["PhaseProfiler"]

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        ...

    @property
    def pending(self) -> int:
        """Live (not-yet-fired, not-cancelled) units of outstanding work."""
        ...

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> CancelHandle:
        """Run ``callback(*args)`` ``delay`` milliseconds from now."""
        ...

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> CancelHandle:
        """Run ``callback(*args)`` at absolute time ``time``."""
        ...


@runtime_checkable
class Link(Protocol):
    """A unidirectional FIFO channel between two processes."""

    src: Any
    dst: Any
    delay: float
    sends: int
    receives: int
    loss_drops: int
    outage_drops: int
    bytes_sent: int
    in_flight: int
    in_flight_high_water: int

    @property
    def is_down(self) -> bool:
        """Whether the link is currently in an outage window."""
        ...

    def send(self, payload: Any, size_bytes: int = 0) -> bool:
        """Transmit; returns False if dropped by loss/outage injection."""
        ...

    def fail(self, duration: float) -> None:
        """Take the link down for ``duration`` milliseconds."""
        ...


@runtime_checkable
class Transport(Protocol):
    """Process registry + channel factory (the fabric's network handle)."""

    channels_retired: int

    def add_process(self, process: Any) -> Any:
        """Register a process; names must be unique."""
        ...

    def process(self, name: Any) -> Any:
        """Look up a registered process by name."""
        ...

    def __contains__(self, name: Any) -> bool:
        ...

    def connect(self, src_name: Any, dst_name: Any, delay: float) -> Any:
        """Create (or fetch) the unidirectional channel ``src -> dst``."""
        ...

    def channel(self, src_name: Any, dst_name: Any) -> Any:
        """Fetch an existing channel; raises ``KeyError`` if absent."""
        ...

    @property
    def channels(self) -> Dict[Tuple[Any, Any], Any]:
        """Read-only view of all live channels (for metrics)."""
        ...

    def retire_channels(self, name: Any) -> int:
        """Remove every channel touching ``name`` (failover re-route)."""
        ...

    def partition(
        self,
        side: FrozenSet[Any],
        duration: float,
        side_b: Optional[FrozenSet[Any]] = None,
    ) -> int:
        """Cut ``side`` off from ``side_b`` (default: everything else)."""
        ...

    def total_bytes_sent(self) -> int: ...
    def total_sends(self) -> int: ...
    def total_drops(self) -> int: ...
    def total_loss_drops(self) -> int: ...
    def total_outage_drops(self) -> int: ...
    def total_in_flight(self) -> int: ...


@runtime_checkable
class RuntimeBackend(Protocol):
    """Everything a fabric is constructed over: scheduler + transport.

    ``scheduler`` doubles as the node handle every process receives; the
    simulated backend exposes the :class:`~repro.sim.events.Simulator`
    itself so the hot path is byte-identical to the pre-split code.
    """

    #: short backend identifier ("sim" | "asyncio")
    backend_name: str
    #: per-packet Bernoulli loss probability the transport was built with
    loss_rate: float

    @property
    def scheduler(self) -> NodeHandle:
        """The node handle handed to every process (clock + timers)."""
        ...

    @property
    def transport(self) -> Transport:
        """The process registry and channel factory."""
        ...

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> int:
        """Drive the runtime until quiescent (or the horizon).

        Returns the number of callbacks executed by this call.  Live
        backends hosted on an external event loop raise
        :class:`~repro.runtime.errors.RuntimeUnavailable` — use their
        ``wait_quiescent`` coroutine instead.
        """
        ...

    def successor(self, seed: int, loss_rate: float) -> "RuntimeBackend":
        """A fresh backend of the same kind for the next fabric epoch."""
        ...

    def close(self) -> None:
        """Release backend resources (owned event loops etc.).  Idempotent."""
        ...

    def attach_trace(self, trace: "Trace") -> None:
        """Give the backend the fabric's trace (live backends may record)."""
        ...
