"""Transport-neutral runtime errors.

:class:`SimulationError` predates the transport split and kept its name
for compatibility: it is raised on *runtime misuse* — scheduling in the
past, re-entrant event-loop runs, protocol invariant breaches — whether
the runtime is the discrete-event simulator or the live asyncio backend.
``repro.sim.events`` re-exports it as a deprecated alias so existing
``from repro.sim.events import SimulationError`` imports keep working.
"""

__all__ = ["RuntimeUnavailable", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised when a runtime backend is used incorrectly.

    Examples include scheduling an event in the past, re-entrantly
    calling a backend's ``run``, or exercising crash/failover machinery
    without the reliable link layer.
    """


class RuntimeUnavailable(SimulationError):
    """Raised when an operation needs a backend capability that is absent.

    E.g. calling a blocking ``run()`` on an :class:`~repro.runtime.
    asyncio_backend.AsyncioTransport` that is hosted on an already-running
    event loop (use ``await backend.wait_quiescent()`` there instead).
    """
