"""The sanctioned wall-clock shim — the only module allowed to read host time.

Simulation code must take time from its runtime's virtual clock; simlint's
SL101 rule enforces that across every sim-scoped package, including this
one (``repro.runtime`` is in the enforcement scope).  The two call sites
below carry the only sanctioned suppressions:

* :func:`read_wall_clock` — the sampling shim used by the profiler, the
  bench harness, and resource accounting.  Wall time is the *measured
  quantity* there, never an input to protocol decisions.
* :class:`LiveClock` — the live runtime's time source.  A real deployment
  has no virtual clock; the asyncio backend derives its millisecond
  timeline from one monotonic read per ``now`` access, confined here so
  the backend itself stays free of host-clock calls.
"""

from time import monotonic, perf_counter

__all__ = ["LiveClock", "read_wall_clock"]


def read_wall_clock() -> float:
    """The single sanctioned wall-clock read (sampling shim).

    Every wall-time measurement in the repository flows through here;
    simulation code must never read the host clock directly (simlint
    SL101 enforces this, and this module is inside its enforcement
    scope).
    """
    # simlint: disable=SL101 -- the sampling shim: wall time is the measured quantity
    return perf_counter()


class LiveClock:
    """Monotonic milliseconds since construction — the live runtime's clock.

    ``now`` is expressed in the project's virtual-time unit (milliseconds)
    so protocol code reading ``node.now`` is unit-compatible across the
    simulated and live backends.  ``time_scale`` compresses the timeline:
    with ``time_scale=0.001`` (the default) one virtual millisecond takes
    one real millisecond; smaller values run live scenarios faster than
    real time (used by the conformance suite and examples).
    """

    __slots__ = ("time_scale", "_t0")

    def __init__(self, time_scale: float = 0.001):
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive, got {time_scale}")
        self.time_scale = time_scale
        # simlint: disable=SL101 -- the live clock's sanctioned epoch read
        self._t0 = monotonic()

    @property
    def now(self) -> float:
        """Virtual milliseconds elapsed since the clock was created."""
        # simlint: disable=SL101 -- the live clock's sanctioned time read
        return (monotonic() - self._t0) / self.time_scale

    def to_real_seconds(self, virtual_ms: float) -> float:
        """Convert a virtual-millisecond duration to real seconds."""
        return virtual_ms * self.time_scale
