"""Controller-driven runtime backend for schedule-space exploration.

The third backend next to :mod:`repro.runtime.sim_backend` (virtual-time
heap) and :mod:`repro.runtime.asyncio_backend` (live tasks): here nothing
fires by itself.  Sends append packets to per-channel FIFO *wire queues*
and timers accumulate in a table; an external controller — the DFS model
checker in :mod:`repro.check.explore` — picks which queue head or timer
fires next.  That turns "what order do events happen in" from a property
of a time heap into a *choice point*, which is exactly what systematic
interleaving exploration needs.

Design constraints, all in service of the model checker:

* **Stable identity** — a transition is addressed by the channel it pops
  (``(src, dst)`` names) or the timer class it fires, never by object
  identity, so a recorded schedule replays against a fresh fabric.
* **Per-channel loss RNG** — unlike the sim transport's single shared
  loss stream, every channel draws from its own ``random.Random`` seeded
  by ``(seed, src, dst)``.  Two deliveries to *different* processes then
  commute exactly (neither perturbs the other's future loss draws), which
  is what makes the checker's partial-order reduction sound.
* **Monotonic virtual clock** — executing a transition advances ``now``
  to at least the packet's earliest arrival (or the timer's fire time),
  so outage windows, crash windows, and backoff timers keep their
  semantics under adversarial reorderings.
* **Plan vs. derived timers** — timers scheduled before
  :meth:`ExploreScheduler.seal_plan` (fault-plan actions) are first-class
  transitions the controller interleaves; timers created during execution
  (retransmissions, service completions) fire only at delivery
  quiescence.  See ``docs/STATIC_ANALYSIS.md`` for why this reduction
  preserves the checked invariants.

The backend also satisfies the :class:`~repro.runtime.interfaces.
RuntimeBackend` protocol standalone: :meth:`ExploreTransport.run` applies
a deterministic earliest-first default policy, so a fabric built over it
behaves like a (slightly coarser) discrete-event simulation when no
controller is attached.
"""

import random
from collections import deque
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    FrozenSet,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.runtime.errors import SimulationError

__all__ = [
    "ExploreChannel",
    "ExploreNetwork",
    "ExploreScheduler",
    "ExploreTransport",
]


class _ExploreTimer:
    """A cancellable timer record; fired explicitly by the controller."""

    __slots__ = ("time", "seq", "callback", "args", "plan", "cancelled",
                 "scheduler")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...],
        plan: bool,
        scheduler: "ExploreScheduler",
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.plan = plan
        self.cancelled = False
        self.scheduler = scheduler

    def cancel(self) -> None:
        """Prevent the timer from firing.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            self.scheduler._timers.pop(self.seq, None)

    def __repr__(self) -> str:
        kind = "plan" if self.plan else "derived"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<_ExploreTimer t={self.time:.6f} seq={self.seq} {kind} {name}>"


class ExploreScheduler:
    """Clock + timer table whose firing order is chosen externally.

    Satisfies the :class:`~repro.runtime.interfaces.NodeHandle` protocol.
    ``now`` only moves forward, as the maximum of every executed event's
    nominal time — the model-checking reading of "some schedule in which
    these events happened in this order".
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self.events_executed = 0
        self.profiler = None
        self._timers: Dict[int, _ExploreTimer] = {}
        #: timers scheduled while True are "plan" timers (fault actions)
        self._recording_plan = True
        #: extra pending-work counters (the network's wire queues)
        self.pending_sources: List[Callable[[], int]] = []

    @property
    def now(self) -> float:
        return self._now

    @property
    def pending(self) -> int:
        extra = sum(source() for source in self.pending_sources)
        return len(self._timers) + extra

    def next_seq(self) -> int:
        """Globally ordered creation sequence (timers and wire entries)."""
        seq = self._seq
        self._seq += 1
        return seq

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> _ExploreTimer:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay!r})")
        timer = _ExploreTimer(
            self._now + delay, self.next_seq(), callback, args,
            self._recording_plan, self,
        )
        self._timers[timer.seq] = timer
        return timer

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> _ExploreTimer:
        return self.schedule(max(0.0, time - self._now), callback, *args)

    def seal_plan(self) -> None:
        """End the plan-recording window: later timers are "derived"."""
        self._recording_plan = False

    def timers(self, plan: Optional[bool] = None) -> List[_ExploreTimer]:
        """Live timers, optionally filtered by class, in (time, seq) order."""
        live = [
            t for t in self._timers.values()
            if plan is None or t.plan == plan
        ]
        live.sort(key=lambda t: (t.time, t.seq))
        return live

    def advance_to(self, time: float) -> None:
        """Move the clock forward (never backward) to ``time``."""
        if time > self._now:
            self._now = time

    def fire(self, timer: _ExploreTimer) -> None:
        """Execute one live timer, advancing the clock to its fire time."""
        if timer.cancelled or self._timers.pop(timer.seq, None) is None:
            raise SimulationError(f"firing dead timer {timer!r}")
        timer.cancelled = True  # a late cancel() must be a no-op
        self.advance_to(timer.time)
        self.events_executed += 1
        timer.callback(*timer.args)

    def __repr__(self) -> str:
        return f"<ExploreScheduler now={self._now:.6f} pending={self.pending}>"


class ExploreChannel:
    """A FIFO wire queue standing in for a scheduled-delivery channel.

    Loss and outage decisions happen at *send* time exactly like the sim
    transport's; what differs is that surviving packets wait on the wire
    queue for the controller instead of on a time heap.  Each queued entry
    remembers its FIFO-monotonic earliest arrival so delivering it can
    advance the virtual clock consistently.
    """

    def __init__(
        self,
        scheduler: ExploreScheduler,
        src: Any,
        dst: Any,
        delay: float,
        loss_rate: float = 0.0,
        rng: Optional[random.Random] = None,
    ):
        if delay < 0:
            raise ValueError(f"channel delay must be non-negative, got {delay}")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        if loss_rate > 0 and rng is None:
            raise ValueError("loss_rate > 0 requires an rng")
        self.scheduler = scheduler
        self.src = src
        self.dst = dst
        self.delay = delay
        self.loss_rate = loss_rate
        self._rng = rng
        self._last_delivery_time = 0.0
        self._down_until = 0.0
        self.sends = 0
        self.loss_drops = 0
        self.outage_drops = 0
        self.bytes_sent = 0
        self.receives = 0
        self.in_flight = 0
        self.in_flight_high_water = 0
        #: queued (payload, earliest arrival, creation seq) entries
        self.wire: Deque[Tuple[Any, float, int]] = deque()

    @property
    def drops(self) -> int:
        return self.loss_drops + self.outage_drops

    @property
    def is_down(self) -> bool:
        return self.scheduler.now < self._down_until

    def fail(self, duration: float) -> None:
        if duration <= 0:
            raise ValueError(f"outage duration must be positive, got {duration}")
        self._down_until = max(self._down_until, self.scheduler.now + duration)

    def send(self, payload: Any, size_bytes: int = 0) -> bool:
        self.sends += 1
        self.src.messages_sent += 1
        self.bytes_sent += size_bytes
        if self.is_down:
            self.outage_drops += 1
            return False
        if self.loss_rate > 0:
            assert self._rng is not None  # enforced by the constructor
            if self._rng.random() < self.loss_rate:
                self.loss_drops += 1
                return False
        arrival = max(self.scheduler.now + self.delay, self._last_delivery_time)
        self._last_delivery_time = arrival
        self.wire.append((payload, arrival, self.scheduler.next_seq()))
        self.in_flight += 1
        if self.in_flight > self.in_flight_high_water:
            self.in_flight_high_water = self.in_flight
        return True

    def head(self) -> Optional[Tuple[Any, float, int]]:
        """The next deliverable entry, or ``None`` for an empty wire."""
        return self.wire[0] if self.wire else None

    def deliver_head(self) -> None:
        """Pop and deliver the head entry (controller-chosen transition)."""
        if not self.wire:
            raise SimulationError(f"deliver on empty wire {self!r}")
        payload, arrival, _seq = self.wire.popleft()
        self.scheduler.advance_to(arrival)
        self.scheduler.events_executed += 1
        self.in_flight -= 1
        self.receives += 1
        self.dst.messages_received += 1
        self.dst.receive(payload, self)

    def __repr__(self) -> str:
        return (
            f"<ExploreChannel {self.src.name!r}->{self.dst.name!r} "
            f"delay={self.delay:.3f} queued={len(self.wire)}>"
        )


class ExploreNetwork:
    """Process registry + wire-queue channels for the explorer.

    Mirrors :class:`repro.sim.network.Network`'s full surface (partition
    cuts with inheritance, channel retirement folding stats into retired
    totals, ``total_*`` aggregates) so the protocol core cannot tell the
    difference.  Retired channels whose wire still holds packets remain
    deliverable — packets on the wire were sent before the failover.
    """

    _CARRIED_STATS = (
        "sends",
        "loss_drops",
        "outage_drops",
        "bytes_sent",
        "receives",
    )

    def __init__(
        self,
        scheduler: ExploreScheduler,
        loss_rate: float = 0.0,
        seed: int = 0,
    ):
        self.scheduler = scheduler
        self.loss_rate = loss_rate
        self.seed = seed
        self._processes: Dict[Any, Any] = {}
        self._channels: Dict[Tuple[Any, Any], ExploreChannel] = {}
        self._cuts: List[Tuple[float, FrozenSet[Any], Optional[FrozenSet[Any]]]] = []
        self._retired_totals: Dict[str, int] = {k: 0 for k in self._CARRIED_STATS}
        self.channels_retired = 0
        #: retired channels with packets still on the wire, in retirement order
        self._retired_inflight: List[Tuple[Tuple[Any, Any], ExploreChannel]] = []
        #: channel keys retired and not since re-created (certificate audit)
        self._retired_keys: Set[Tuple[Any, Any]] = set()
        scheduler.pending_sources.append(self.queued_payloads)

    def _channel_rng(self, key: Tuple[Any, Any]) -> Optional[random.Random]:
        if self.loss_rate <= 0:
            return None
        # One independent stream per channel: deliveries to different
        # processes must not perturb each other's loss draws (POR
        # soundness), so the shared-stream sim idiom is out.
        return random.Random(f"{self.seed}|{key[0]!r}->{key[1]!r}")

    def add_process(self, process: Any) -> Any:
        if process.name in self._processes:
            raise ValueError(f"duplicate process name {process.name!r}")
        self._processes[process.name] = process
        return process

    def process(self, name: Any) -> Any:
        return self._processes[name]

    def __contains__(self, name: Any) -> bool:
        return name in self._processes

    def connect(self, src_name: Any, dst_name: Any, delay: float) -> ExploreChannel:
        key = (src_name, dst_name)
        existing = self._channels.get(key)
        if existing is not None:
            if existing.delay != delay:
                raise ValueError(
                    f"channel {key} already exists with delay "
                    f"{existing.delay}, refusing {delay}"
                )
            return existing
        channel = ExploreChannel(
            self.scheduler,
            self._processes[src_name],
            self._processes[dst_name],
            delay,
            loss_rate=self.loss_rate,
            rng=self._channel_rng(key),
        )
        self._channels[key] = channel
        self._retired_keys.discard(key)
        for heal_time, side_a, side_b in self._active_cuts():
            if _crosses_cut(src_name, dst_name, side_a, side_b):
                remaining = heal_time - self.scheduler.now
                if remaining > 0:
                    channel.fail(remaining)
        return channel

    def channel(self, src_name: Any, dst_name: Any) -> ExploreChannel:
        return self._channels[(src_name, dst_name)]

    @property
    def channels(self) -> Dict[Tuple[Any, Any], ExploreChannel]:
        return dict(self._channels)

    @property
    def retired_edges(self) -> Set[Tuple[Any, Any]]:
        """Channel keys retired by failover and not re-created since."""
        return set(self._retired_keys)

    # -- fault injection ---------------------------------------------------

    def _active_cuts(
        self,
    ) -> List[Tuple[float, FrozenSet[Any], Optional[FrozenSet[Any]]]]:
        self._cuts = [cut for cut in self._cuts if cut[0] > self.scheduler.now]
        return self._cuts

    def partition(
        self,
        side: FrozenSet[Any],
        duration: float,
        side_b: Optional[FrozenSet[Any]] = None,
    ) -> int:
        if duration <= 0:
            raise ValueError(f"partition duration must be positive, got {duration}")
        side = frozenset(side)
        other = frozenset(side_b) if side_b is not None else None
        self._cuts.append((self.scheduler.now + duration, side, other))
        failed = 0
        for (src_name, dst_name), channel in self._channels.items():
            if _crosses_cut(src_name, dst_name, side, other):
                channel.fail(duration)
                failed += 1
        return failed

    def retire_channels(self, name: Any) -> int:
        retired = [
            key for key in self._channels if key[0] == name or key[1] == name
        ]
        for key in retired:
            channel = self._channels.pop(key)
            for stat in self._CARRIED_STATS:
                self._retired_totals[stat] += getattr(channel, stat)
            self._retired_keys.add(key)
            if channel.wire:
                # In-flight packets were on the wire before the failover;
                # they still deliver, like the sim transport's scheduled
                # deliveries on a retired channel.
                self._retired_inflight.append((key, channel))
        self.channels_retired += len(retired)
        return len(retired)

    # -- controller surface ------------------------------------------------

    def delivery_sources(self) -> List[Tuple[Tuple[Any, ...], ExploreChannel]]:
        """Non-empty wire queues with stable labels, in canonical order.

        Live channels are labelled ``(repr(src), repr(dst))``; retired
        in-flight channels get a positional ``"retired:N"`` suffix so a
        replayed schedule finds the same queue even after the same key was
        re-created live.
        """
        sources: List[Tuple[Tuple[Any, ...], ExploreChannel]] = []
        for key in sorted(self._channels, key=repr):
            channel = self._channels[key]
            if channel.wire:
                sources.append(((repr(key[0]), repr(key[1])), channel))
        self._retired_inflight = [
            (key, ch) for key, ch in self._retired_inflight if ch.wire
        ]
        for index, (key, channel) in enumerate(self._retired_inflight):
            sources.append(
                ((repr(key[0]), repr(key[1]), f"retired:{index}"), channel)
            )
        return sources

    def queued_payloads(self) -> int:
        """Packets waiting on any wire (live or retired in-flight)."""
        live = sum(len(c.wire) for c in self._channels.values())
        return live + sum(len(c.wire) for _key, c in self._retired_inflight)

    # -- aggregates --------------------------------------------------------

    def _all_channels(self) -> List[ExploreChannel]:
        return list(self._channels.values()) + [
            c for _key, c in self._retired_inflight
        ]

    def total_bytes_sent(self) -> int:
        return (
            sum(c.bytes_sent for c in self._channels.values())
            + self._retired_totals["bytes_sent"]
        )

    def total_sends(self) -> int:
        return (
            sum(c.sends for c in self._channels.values())
            + self._retired_totals["sends"]
        )

    def total_drops(self) -> int:
        return self.total_loss_drops() + self.total_outage_drops()

    def total_loss_drops(self) -> int:
        return (
            sum(c.loss_drops for c in self._channels.values())
            + self._retired_totals["loss_drops"]
        )

    def total_outage_drops(self) -> int:
        return (
            sum(c.outage_drops for c in self._channels.values())
            + self._retired_totals["outage_drops"]
        )

    def total_in_flight(self) -> int:
        return sum(c.in_flight for c in self._all_channels())


class ExploreTransport:
    """The explorer's :class:`~repro.runtime.interfaces.RuntimeBackend`.

    Construct a fabric over it, then either drive it through the DFS
    controller (:mod:`repro.check.explore`) or call :meth:`run` for the
    deterministic earliest-first default policy.
    """

    backend_name = "explore"

    def __init__(self, seed: int = 0, loss_rate: float = 0.0):
        self.seed = seed
        self.loss_rate = loss_rate
        self._scheduler = ExploreScheduler()
        self._transport = ExploreNetwork(
            self._scheduler, loss_rate=loss_rate, seed=seed + 1
        )

    @property
    def scheduler(self) -> ExploreScheduler:
        return self._scheduler

    @property
    def transport(self) -> ExploreNetwork:
        return self._transport

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> int:
        """Earliest-first default policy (no controller attached).

        Among all wire heads and live timers, repeatedly executes the one
        with the smallest ``(ready time, creation seq)`` — a coarse but
        deterministic approximation of the sim backend's heap order.
        """
        executed = 0
        while max_events is None or executed < max_events:
            best: Optional[Tuple[float, int, Callable[[], None]]] = None
            for _label, channel in self._transport.delivery_sources():
                head = channel.head()
                assert head is not None  # delivery_sources filters empties
                _payload, arrival, seq = head
                candidate = (arrival, seq, channel.deliver_head)
                if best is None or candidate[:2] < best[:2]:
                    best = candidate
            for timer in self._scheduler.timers():
                candidate = (
                    timer.time, timer.seq,
                    lambda t=timer: self._scheduler.fire(t),
                )
                if best is None or candidate[:2] < best[:2]:
                    best = candidate
            if best is None:
                break
            if until is not None and best[0] > until:
                self._scheduler.advance_to(until)
                break
            best[2]()
            executed += 1
        return executed

    def successor(self, seed: int, loss_rate: float) -> "ExploreTransport":
        return ExploreTransport(seed=seed, loss_rate=loss_rate)

    def close(self) -> None:
        """Nothing to release; present for backend-protocol parity."""

    def attach_trace(self, trace: Any) -> None:
        """The explorer records schedules itself; the trace is unused here."""


def _crosses_cut(
    src_name: Any,
    dst_name: Any,
    side: FrozenSet[Any],
    side_b: Optional[FrozenSet[Any]],
) -> bool:
    """Whether the directed channel ``src -> dst`` crosses the cut."""
    if side_b is None:
        return (src_name in side) != (dst_name in side)
    return (src_name in side and dst_name in side_b) or (
        src_name in side_b and dst_name in side
    )
