"""Base class for protocol participants, independent of the backend.

A :class:`Process` is anything that can be the endpoint of a transport
link: an end host, a sequencing node, a centralized coordinator, a
failure detector.  Subclasses implement :meth:`Process.receive`.

The process holds a :class:`~repro.runtime.interfaces.NodeHandle` — the
clock + timer service of whichever backend it runs on.  Under the
simulated backend that handle *is* the
:class:`~repro.sim.events.Simulator`; under the live backend it is the
asyncio scheduler.  The handle is exposed both as ``self.node`` (the
transport-neutral name) and ``self.sim`` (the historical name the
protocol hot path uses); they are the same object.
"""

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.runtime.interfaces import Link, NodeHandle


class Process:
    """A named participant running on a runtime backend.

    Parameters
    ----------
    node:
        The runtime node handle (clock + timers) driving this process.
        Historically this parameter was the concrete ``Simulator``; any
        :class:`~repro.runtime.interfaces.NodeHandle` now works.
    name:
        A unique, hashable identifier (host id, sequencing-node id, ...).
    """

    def __init__(self, node: "NodeHandle", name: Any):
        self.node = node
        #: alias of :attr:`node` kept for the protocol hot path and for
        #: pre-split callers; always the same object.
        self.sim = node
        self.name = name
        self.messages_received = 0
        self.messages_sent = 0

    def receive(self, payload: Any, channel: "Link") -> None:
        """Handle a payload arriving on ``channel``.

        Subclasses must override.  ``channel.src`` identifies the sender
        process.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
