"""A minimal TCP service façade over the live asyncio runtime.

:class:`OrderingService` hosts an :class:`~repro.core.api.OrderedPubSub`
on the ``"asyncio"`` backend and exposes it over newline-delimited JSON on
a TCP socket — the smallest façade that makes the live runtime a *system*
rather than a library: publish/subscribe/join/leave, a drain barrier, a
delivery log, a health endpoint, and a live C1/C2 graph verification
(:func:`repro.check.verify_graph` over the running fabric's sequencing
graph).

Wire protocol: one JSON object per line in each direction.

    -> {"op": "subscribe", "host": 0, "topic": "room/blue"}
    <- {"ok": true, "group": 0}
    -> {"op": "publish", "sender": 0, "topic": "room/blue", "payload": "hi"}
    <- {"ok": true, "msg_id": 0}
    -> {"op": "drain"}
    <- {"ok": true, "executed": 42, "now": 103.2}
    -> {"op": "delivered", "host": 1}
    <- {"ok": true, "records": [{"msg_id": 0, "payload": "hi", ...}]}
    -> {"op": "health"}
    <- {"ok": true, "status": "up", "backend": "asyncio", ...}
    -> {"op": "metrics"}
    <- {"ok": true, "snapshot": {"format": "repro-telemetry/1", ...}}
    -> {"op": "metrics", "format": "prometheus"}
    <- {"ok": true, "text": "# HELP repro_phase_latency_ms ..."}
    -> {"op": "monitors"}
    <- {"ok": true, "alerts": [...], "violations": 0, "warnings": 0}

The ``metrics`` and ``monitors`` verbs are served by a
:class:`repro.obs.live.LiveMonitor` subscribed to the live fabric's trace
(re-attached across epoch switches via the bus's fabric-observer hook):
streaming RT300-class invariant monitors plus per-phase latency
percentiles.  ``repro top`` renders these snapshots as a refreshing
operator view; see ``docs/OBSERVABILITY.md``.

Errors come back as ``{"ok": false, "error": "..."}`` and never kill the
connection.  ``repro serve`` is the CLI entry point; ``repro serve
--self-test`` boots the service on an ephemeral port, runs a scripted
client against it (publish → ordered delivery round trip, health check,
graph verification, clean shutdown), and exits non-zero on any failure —
the CI asyncio smoke job runs exactly that under a timeout.

This module deliberately lives outside ``repro.runtime``'s eager exports:
it imports :mod:`repro.core.api`, which imports the runtime package, so
re-exporting it from ``repro.runtime.__init__`` would create a cycle.
"""

import asyncio
import json
from typing import Any, Dict, List, Optional, Tuple

from repro.core.api import OrderedPubSub, OrderingViolation
from repro.obs.live import LiveMonitor, TelemetrySnapshot
from repro.obs.registry import MetricsRegistry

__all__ = ["OrderingService", "request", "run_self_test", "serve"]

#: safety ceiling (real seconds) on one drain barrier
DRAIN_WALL_LIMIT = 30.0


class OrderingService:
    """The live pub/sub system behind a newline-delimited-JSON TCP API.

    Parameters
    ----------
    n_hosts:
        End hosts available to clients (addressed as ``0 .. n_hosts-1``).
    seed, loss_rate:
        Forwarded to :class:`~repro.core.api.OrderedPubSub`; a positive
        loss rate makes the live transport genuinely drop packets and the
        reliable link layer recover them.
    time_scale:
        Real seconds per virtual millisecond (default runs link delays
        ~100x faster than real time; see
        :class:`~repro.runtime.wallclock.LiveClock`).
    host, port:
        Bind address; port 0 picks an ephemeral port (see
        :attr:`bound_port` after :meth:`start`).
    """

    def __init__(
        self,
        n_hosts: int = 8,
        seed: int = 0,
        loss_rate: float = 0.0,
        time_scale: float = 1e-5,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.bus = OrderedPubSub(
            n_hosts=n_hosts,
            seed=seed,
            loss_rate=loss_rate,
            backend="asyncio",
            time_scale=time_scale,
            enforce_causal_sends=False,
        )
        self._host = host
        self._port = port
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown = asyncio.Event()
        self.requests_served = 0
        # Live telemetry plane: streaming invariant monitors + per-phase
        # latency percentiles, following the bus across epoch switches.
        # retain_audit=False keeps memory bounded for a long-lived service
        # (the windowed monitors and histograms are all that accumulate).
        self.registry = MetricsRegistry()
        self.monitor = LiveMonitor(
            node=f"service:{host}", registry=self.registry, retain_audit=False
        )
        self.bus.add_fabric_observer(self.monitor.attach)

    # -- lifecycle ---------------------------------------------------------

    @property
    def bound_port(self) -> int:
        """The actually-bound TCP port (after :meth:`start`)."""
        assert self._server is not None, "service not started"
        sockets = self._server.sockets
        assert sockets, "server has no listening socket"
        return int(sockets[0].getsockname()[1])

    async def start(self) -> None:
        """Bind the listening socket (the event loop must be running)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )

    async def serve_until_shutdown(self) -> None:
        """Serve requests until a ``shutdown`` op arrives, then close."""
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._shutdown.wait()
        self.bus.close()

    # -- connection handling -----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not self._shutdown.is_set():
                line = await reader.readline()
                if not line:
                    break
                try:
                    req = json.loads(line)
                    resp = await self.handle(req)
                except Exception as exc:  # noqa: BLE001 - reported to client
                    resp = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
                writer.write(json.dumps(resp).encode() + b"\n")
                await writer.drain()
        finally:
            writer.close()

    # -- operations --------------------------------------------------------

    async def handle(self, req: Dict[str, Any]) -> Dict[str, Any]:
        """Dispatch one request object; returns the response object."""
        self.requests_served += 1
        op = req.get("op")
        if op in ("subscribe", "join"):
            group = self.bus.subscribe(int(req["host"]), str(req["topic"]))
            return {"ok": True, "group": group}
        if op in ("unsubscribe", "leave"):
            self.bus.unsubscribe(int(req["host"]), str(req["topic"]))
            return {"ok": True}
        if op == "publish":
            return await self._publish(req)
        if op == "drain":
            return await self._drain(req)
        if op == "delivered":
            return self._delivered(req)
        if op == "health":
            return self._health()
        if op == "check":
            return self._check()
        if op == "metrics":
            return self._metrics(req)
        if op == "monitors":
            return self._monitors()
        if op == "shutdown":
            self._shutdown.set()
            return {"ok": True}
        return {"ok": False, "error": f"unknown op {op!r}"}

    async def _publish(self, req: Dict[str, Any]) -> Dict[str, Any]:
        # A membership change since the last publish forces an epoch
        # switch, which requires quiescence — drain the live runtime
        # first so reconfigure() sees no in-flight work.
        if self.bus._dirty and self.bus._fabric is not None:
            await self.bus._fabric.runtime.wait_quiescent(timeout=DRAIN_WALL_LIMIT)
        destination: Any = req.get("topic", req.get("group"))
        if destination is None:
            return {"ok": False, "error": "publish needs 'topic' or 'group'"}
        try:
            msg_id = self.bus.publish(
                int(req["sender"]), destination, req.get("payload")
            )
        except OrderingViolation as exc:
            return {"ok": False, "error": str(exc)}
        return {"ok": True, "msg_id": msg_id}

    async def _drain(self, req: Dict[str, Any]) -> Dict[str, Any]:
        """Barrier: wait for the live runtime to go quiescent."""
        if self.bus._fabric is None:
            return {"ok": True, "executed": 0, "now": 0.0}
        runtime = self.bus._fabric.runtime
        executed = await runtime.wait_quiescent(
            until=req.get("until"),
            timeout=float(req.get("timeout", DRAIN_WALL_LIMIT)),
        )
        return {"ok": True, "executed": executed, "now": self.bus.now}

    def _delivered(self, req: Dict[str, Any]) -> Dict[str, Any]:
        records = [
            {
                "msg_id": r.msg_id,
                "payload": r.payload,
                "group": r.stamp.group,
                "sender": r.sender,
                "time": r.time,
            }
            for r in self.bus.delivered(int(req["host"]))
        ]
        return {"ok": True, "records": records}

    def _health(self) -> Dict[str, Any]:
        fabric = self.bus._fabric
        body: Dict[str, Any] = {
            "ok": True,
            "status": "up",
            "backend": self.bus.backend,
            "hosts": len(self.bus.hosts),
            "groups": len(self.bus.membership.snapshot()),
            "requests_served": self.requests_served,
        }
        if fabric is not None:
            body.update(
                now=fabric.sim.now,
                pending=fabric.sim.pending,
                events_executed=fabric.sim.events_executed,
                delivered_total=sum(
                    len(p.delivered) for p in fabric.host_processes.values()
                ),
                sequencing_nodes=len(fabric.node_processes),
            )
        return body

    def _metrics(self, req: Dict[str, Any]) -> Dict[str, Any]:
        """Telemetry snapshot — JSON by default, Prometheus text on request."""
        if req.get("format") == "prometheus":
            from repro.obs.exporters import registry_to_prometheus

            return {"ok": True, "text": registry_to_prometheus(self.registry)}
        snapshot = TelemetrySnapshot.from_monitor(self.monitor)
        return {"ok": True, "snapshot": snapshot.to_dict()}

    def _monitors(self) -> Dict[str, Any]:
        """The streaming-monitor alert feed and verdict counters."""
        return {
            "ok": True,
            "alerts": [alert.to_dict() for alert in self.monitor.alerts],
            "alerts_dropped": self.monitor.alerts_dropped,
            "violations": self.monitor.violations,
            "warnings": sum(
                1 for a in self.monitor.alerts if a.severity == "warning"
            ),
        }

    def _check(self) -> Dict[str, Any]:
        """Re-prove C1/C2 (and channel consistency) over the live fabric.

        Goes through the fabric-level certificate export rather than the
        bare graph so the audit covers exactly what an exported
        certificate would: graph, placement, and the transport's
        live/retired channel state (GV206).
        """
        from repro.check import verify_certificate

        fabric = self.bus.fabric  # builds the fabric if nothing ran yet
        findings = verify_certificate(fabric.export_certificate())
        return {
            "ok": not findings,
            "findings": [
                {"code": f.code, "message": f.message} for f in findings
            ],
        }


# ---------------------------------------------------------------------------
# Client + CLI plumbing
# ---------------------------------------------------------------------------


async def request(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    req: Dict[str, Any],
) -> Dict[str, Any]:
    """Send one request object over an open connection; await the response."""
    writer.write(json.dumps(req).encode() + b"\n")
    await writer.drain()
    line = await reader.readline()
    if not line:
        raise ConnectionError("service closed the connection")
    resp = json.loads(line)
    assert isinstance(resp, dict)
    return resp


async def _self_test_client(port: int) -> List[str]:
    """Scripted round trip against a running service; returns failures."""
    failures: List[str] = []

    def expect(cond: bool, what: str) -> None:
        if not cond:
            failures.append(what)

    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        # Two topics with an overlapping subscriber set: host 1 sees both
        # groups, so cross-group ordering is actually exercised.
        for host, topic in [
            (0, "room/blue"),
            (1, "room/blue"),
            (1, "room/red"),
            (2, "room/red"),
        ]:
            resp = await request(
                reader, writer, {"op": "join", "host": host, "topic": topic}
            )
            expect(resp.get("ok") is True, f"join {host}/{topic}: {resp}")

        published = []
        for i in range(6):
            topic = "room/blue" if i % 2 == 0 else "room/red"
            sender = 0 if i % 2 == 0 else 2
            resp = await request(
                reader,
                writer,
                {
                    "op": "publish",
                    "sender": sender,
                    "topic": topic,
                    "payload": f"m{i}",
                },
            )
            expect(resp.get("ok") is True, f"publish {i}: {resp}")
            published.append(resp.get("msg_id"))

        resp = await request(reader, writer, {"op": "drain"})
        expect(resp.get("ok") is True, f"drain: {resp}")

        # Every subscriber got every message of its groups, in a total
        # order consistent across overlapping subscribers.
        logs = {}
        for host in (0, 1, 2):
            resp = await request(
                reader, writer, {"op": "delivered", "host": host}
            )
            expect(resp.get("ok") is True, f"delivered {host}: {resp}")
            logs[host] = [r["msg_id"] for r in resp.get("records", [])]
        expect(len(logs[1]) == 6, f"host 1 should see all 6, got {logs[1]}")
        expect(len(logs[0]) == 3, f"host 0 should see 3, got {logs[0]}")
        expect(len(logs[2]) == 3, f"host 2 should see 3, got {logs[2]}")
        for other in (0, 2):
            common = [m for m in logs[1] if m in set(logs[other])]
            expect(
                common == logs[other],
                f"order disagreement host 1 vs {other}: {logs[1]} vs {logs[other]}",
            )

        resp = await request(reader, writer, {"op": "health"})
        expect(
            resp.get("ok") is True and resp.get("status") == "up",
            f"health: {resp}",
        )
        expect(
            resp.get("pending") == 0,
            f"health should show quiescence after drain: {resp}",
        )

        # Live C1/C2 verification of the running sequencing graph.
        resp = await request(reader, writer, {"op": "check"})
        expect(
            resp.get("ok") is True and resp.get("findings") == [],
            f"graph check: {resp}",
        )

        # Live telemetry: deliveries counted, percentiles populated, and a
        # clean run must raise zero streaming-monitor violations.
        resp = await request(reader, writer, {"op": "metrics"})
        expect(resp.get("ok") is True, f"metrics: {resp}")
        snap = resp.get("snapshot", {})
        expect(
            snap.get("delivered") == 12,
            f"metrics should count 12 deliveries: {snap.get('delivered')}",
        )
        expect(
            snap.get("violations") == 0,
            f"clean run raised monitor violations: {snap.get('alerts')}",
        )
        delivery = snap.get("phases", {}).get("delivery", {})
        expect(
            delivery.get("count") == 12,
            f"delivery latency histogram should have 12 samples: {delivery}",
        )
        resp = await request(
            reader, writer, {"op": "metrics", "format": "prometheus"}
        )
        expect(
            "repro_phase_latency_ms_bucket" in resp.get("text", ""),
            "prometheus scrape is missing the phase-latency histogram",
        )
        resp = await request(reader, writer, {"op": "monitors"})
        expect(
            resp.get("ok") is True and resp.get("violations") == 0,
            f"monitors: {resp}",
        )

        resp = await request(reader, writer, {"op": "shutdown"})
        expect(resp.get("ok") is True, f"shutdown: {resp}")
    finally:
        writer.close()
    return failures


async def run_self_test(
    n_hosts: int = 8, seed: int = 0, loss_rate: float = 0.0
) -> List[str]:
    """Boot a service on an ephemeral port and run the scripted client.

    Returns a list of failure descriptions (empty = pass).
    """
    service = OrderingService(n_hosts=n_hosts, seed=seed, loss_rate=loss_rate)
    await service.start()
    server_task = asyncio.ensure_future(service.serve_until_shutdown())
    try:
        failures = await asyncio.wait_for(
            _self_test_client(service.bound_port), timeout=60.0
        )
    finally:
        service._shutdown.set()
        await asyncio.wait_for(server_task, timeout=10.0)
    return failures


async def serve(
    n_hosts: int,
    seed: int,
    loss_rate: float,
    time_scale: float,
    host: str,
    port: int,
) -> Tuple[str, int]:
    """Run the service until a client sends ``shutdown``."""
    service = OrderingService(
        n_hosts=n_hosts,
        seed=seed,
        loss_rate=loss_rate,
        time_scale=time_scale,
        host=host,
        port=port,
    )
    await service.start()
    bound = (host, service.bound_port)
    print(f"repro serve: listening on {bound[0]}:{bound[1]} "
          f"({n_hosts} hosts, loss_rate={loss_rate})", flush=True)
    await service.serve_until_shutdown()
    return bound
