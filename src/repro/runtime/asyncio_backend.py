"""The live asyncio runtime backend.

:class:`AsyncioTransport` runs the *same* protocol core as the simulator,
but for real: every registered process (host, sequencing node, failure
detector) becomes an asyncio task draining an in-process inbox queue,
timers run on an event loop instead of a virtual-time heap, and the clock
is scaled monotonic wall time (see
:class:`~repro.runtime.wallclock.LiveClock`).  A TCP service façade on
top of this backend lives in :mod:`repro.runtime.service`.

Design notes
------------

* **Same observable surface as the simulator.**
  :class:`AsyncioScheduler` exposes ``now`` / ``schedule`` /
  ``schedule_at`` / ``pending`` / ``events_executed`` /
  ``heap_high_water`` / ``profiler`` exactly like
  :class:`~repro.sim.events.Simulator`, and :class:`AsyncioChannel` /
  :class:`AsyncioNetwork` mirror :class:`~repro.sim.network.Channel` /
  :class:`~repro.sim.network.Network` counter-for-counter, so the
  protocol core, the metrics hooks, and the failover machinery run
  unmodified.

* **FIFO is structural, not timer-ordered.**  Event-loop timers near a
  tie can fire out of order (deadlines are computed from clock reads at
  different instants).  Each channel therefore keeps its own payload
  deque: ``send`` appends and schedules an arrival timer, the arrival
  handler pops the *head* — whichever timer fired, the payloads come out
  in send order, preserving the FIFO channel assumption the sequencing
  proof depends on (paper §3.1).

* **Documented divergences from the simulator.**  ``schedule_at`` clamps
  a just-passed deadline to "now" instead of raising (the live clock
  advances between computing an arrival time and scheduling it);
  ``run(until=...)`` returns with later timers still pending, but wall
  time keeps advancing between calls; ``max_events`` is a soft bound
  checked between poll intervals.
"""

import asyncio
import random
from collections import deque
from typing import (
    TYPE_CHECKING, Any, Callable, Dict, FrozenSet, List, Optional, Set, Tuple,
)

from repro.runtime.errors import RuntimeUnavailable, SimulationError
from repro.runtime.wallclock import LiveClock, read_wall_clock

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.obs.profiler import PhaseProfiler
    from repro.runtime.node import Process
    from repro.runtime.trace import Trace

__all__ = [
    "AsyncioChannel",
    "AsyncioNetwork",
    "AsyncioScheduler",
    "AsyncioTransport",
]

#: default ceiling on real seconds one ``run()`` call may consume before
#: raising — a safety net so a live-runtime bug cannot hang CI forever
DEFAULT_RUN_WALL_LIMIT = 60.0


class _TimerHandle:
    """A cancellable reference to a scheduled live timer."""

    __slots__ = ("_scheduler", "_timer", "_done")

    def __init__(self, scheduler: "AsyncioScheduler") -> None:
        self._scheduler = scheduler
        self._timer: Optional[asyncio.TimerHandle] = None
        self._done = False

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        if not self._done:
            self._done = True
            if self._timer is not None:
                self._timer.cancel()
            self._scheduler._live -= 1


class AsyncioScheduler:
    """Timer service over an asyncio event loop with a scaled live clock.

    The unit of ``now`` and of every delay is the project's virtual
    millisecond; ``clock.time_scale`` maps it to real seconds (see
    :class:`~repro.runtime.wallclock.LiveClock`).
    """

    def __init__(self, loop: asyncio.AbstractEventLoop, clock: LiveClock):
        self._loop = loop
        self.clock = clock
        self.events_executed = 0
        #: live (not-yet-fired, not-cancelled) timers
        self._live = 0
        #: peak concurrent live timers (the live analogue of heap depth)
        self.heap_high_water = 0
        #: sampling-profiler fields kept for simulator parity (the live
        #: backend does not sample callback wall time — wall time *is*
        #: the clock here)
        self.callbacks_sampled = 0
        self.callback_wall_time = 0.0
        #: optional phase profiler (see :mod:`repro.obs.profiler`)
        self.profiler: Optional["PhaseProfiler"] = None
        #: extra pending-work sources (e.g. the network's undrained
        #: inboxes) folded into :attr:`pending` for quiescence checks
        self._pending_sources: List[Callable[[], int]] = []
        #: first exception raised inside a timer callback (re-raised by
        #: the owning transport's drain)
        self._errors: List[BaseException] = []

    @property
    def now(self) -> float:
        """Virtual milliseconds since the backend was created."""
        return self.clock.now

    @property
    def pending(self) -> int:
        """Live timers plus queued-but-unprocessed transport work."""
        return self._live + sum(source() for source in self._pending_sources)

    def add_pending_source(self, source: Callable[[], int]) -> None:
        """Register an extra pending-work counter (transport inboxes)."""
        self._pending_sources.append(source)

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> _TimerHandle:
        """Run ``callback(*args)`` ``delay`` virtual milliseconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay!r})")
        handle = _TimerHandle(self)
        self._live += 1
        if self._live > self.heap_high_water:
            self.heap_high_water = self._live
        handle._timer = self._loop.call_later(
            self.clock.to_real_seconds(delay), self._fire, handle, callback, args
        )
        return handle

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> _TimerHandle:
        """Run ``callback(*args)`` at absolute virtual time ``time``.

        Unlike the simulator, a deadline the clock has *just* passed is
        clamped to "now" rather than raising: the live clock advances
        between computing an arrival time and scheduling it, so a
        microscopically stale deadline is normal, not a protocol bug.
        """
        return self.schedule(max(0.0, time - self.clock.now), callback, *args)

    def _fire(
        self, handle: _TimerHandle, callback: Callable[..., None], args: Tuple[Any, ...]
    ) -> None:
        if handle._done:  # cancelled in the same loop iteration it fired
            return
        handle._done = True
        self._live -= 1
        self.events_executed += 1
        try:
            profiler = self.profiler
            if profiler is not None and profiler.enabled:
                profiler.dispatch_begin(callback)
                callback(*args)
                profiler.dispatch_end(self.now)
            else:
                callback(*args)
        except BaseException as exc:  # noqa: BLE001 - surfaced at drain
            self._errors.append(exc)

    def __repr__(self) -> str:
        return f"<AsyncioScheduler now={self.now:.3f} pending={self.pending}>"


class AsyncioChannel:
    """A unidirectional FIFO link delivering through a live inbox queue.

    Mirrors :class:`~repro.sim.network.Channel`: constant propagation
    delay, Bernoulli loss injection, outage windows, and the same counter
    set.  Delivery enqueues into the destination process's inbox; the
    process's pump task invokes ``receive`` — hosts and sequencing nodes
    really do run as asyncio tasks.
    """

    def __init__(
        self,
        network: "AsyncioNetwork",
        src: "Process",
        dst: "Process",
        delay: float,
        loss_rate: float = 0.0,
        rng: Optional[random.Random] = None,
    ):
        if delay < 0:
            raise ValueError(f"channel delay must be non-negative, got {delay}")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        if loss_rate > 0 and rng is None:
            raise ValueError("loss_rate > 0 requires an rng")
        self._network = network
        self._scheduler = network.scheduler
        self.src = src
        self.dst = dst
        self.delay = delay
        self.loss_rate = loss_rate
        self._rng = rng
        self._last_delivery_time = 0.0
        self._down_until = 0.0
        #: payloads on the wire, delivered head-first whatever order the
        #: arrival timers fire in — this is what makes the channel FIFO
        self._wire: "deque[Any]" = deque()
        self.sends = 0
        self.loss_drops = 0
        self.outage_drops = 0
        self.bytes_sent = 0
        self.receives = 0
        self.in_flight = 0
        self.in_flight_high_water = 0

    @property
    def drops(self) -> int:
        """Total packets dropped, whatever the cause."""
        return self.loss_drops + self.outage_drops

    def fail(self, duration: float) -> None:
        """Take the link down for ``duration`` virtual milliseconds."""
        if duration <= 0:
            raise ValueError(f"outage duration must be positive, got {duration}")
        self._down_until = max(self._down_until, self._scheduler.now + duration)

    @property
    def is_down(self) -> bool:
        """Whether the link is currently in an outage window."""
        return self._scheduler.now < self._down_until

    def send(self, payload: Any, size_bytes: int = 0) -> bool:
        """Transmit ``payload``; returns ``False`` if dropped."""
        self.sends += 1
        self.src.messages_sent += 1
        self.bytes_sent += size_bytes
        if self.is_down:
            self.outage_drops += 1
            return False
        if self.loss_rate > 0:
            assert self._rng is not None  # enforced by the constructor
            if self._rng.random() < self.loss_rate:
                self.loss_drops += 1
                return False
        # FIFO: never deliver before a previously sent packet, and pop the
        # wire deque head-first so near-tie timer jitter cannot reorder.
        arrival = max(self._scheduler.now + self.delay, self._last_delivery_time)
        self._last_delivery_time = arrival
        self._wire.append(payload)
        self._scheduler.schedule_at(arrival, self._arrive)
        self.in_flight += 1
        if self.in_flight > self.in_flight_high_water:
            self.in_flight_high_water = self.in_flight
        return True

    def _arrive(self) -> None:
        payload = self._wire.popleft()
        self.in_flight -= 1
        self.receives += 1
        self.dst.messages_received += 1
        self._network._enqueue(self.dst, payload, self)

    def __repr__(self) -> str:
        return (
            f"<AsyncioChannel {self.src.name!r}->{self.dst.name!r} "
            f"delay={self.delay:.3f} sends={self.sends}>"
        )


class AsyncioNetwork:
    """Process registry + live channels; one pump task per process.

    API-compatible with :class:`~repro.sim.network.Network` (lazy connect,
    partition cuts with inheritance, channel retirement with carried
    counters, ``total_*`` aggregates) so the fabric and the observability
    hooks work unchanged.
    """

    _CARRIED_STATS = (
        "sends",
        "loss_drops",
        "outage_drops",
        "bytes_sent",
        "receives",
    )

    def __init__(
        self,
        scheduler: AsyncioScheduler,
        loss_rate: float = 0.0,
        rng: Optional[random.Random] = None,
    ):
        self.scheduler = scheduler
        self.loss_rate = loss_rate
        self.rng = rng
        self._processes: Dict[Any, "Process"] = {}
        self._inboxes: Dict[Any, "asyncio.Queue[Tuple[Any, AsyncioChannel]]"] = {}
        self._pumps: Dict[Any, "asyncio.Task[None]"] = {}
        self._channels: Dict[Tuple[Any, Any], AsyncioChannel] = {}
        self._cuts: List[Tuple[float, FrozenSet[Any], Optional[FrozenSet[Any]]]] = []
        self._retired_totals: Dict[str, int] = {k: 0 for k in self._CARRIED_STATS}
        self.channels_retired = 0
        #: edges retired by failover and not since re-created (GV206)
        self._retired_keys: Set[Tuple[Any, Any]] = set()
        #: packets enqueued to an inbox but not yet fully processed by the
        #: destination pump — part of the backend's pending-work count
        self._unprocessed = 0
        scheduler.add_pending_source(lambda: self._unprocessed)

    # -- registry ----------------------------------------------------------

    def add_process(self, process: "Process") -> "Process":
        """Register a process; names must be unique."""
        if process.name in self._processes:
            raise ValueError(f"duplicate process name {process.name!r}")
        self._processes[process.name] = process
        self._inboxes[process.name] = asyncio.Queue()
        return process

    def process(self, name: Any) -> "Process":
        """Look up a registered process by name."""
        return self._processes[name]

    def __contains__(self, name: Any) -> bool:
        return name in self._processes

    # -- pumps (the per-process asyncio tasks) -----------------------------

    def ensure_pumps(self) -> None:
        """Start an inbox-draining task for every process lacking one.

        Must be called with the backend's event loop running; the drain
        loops call it each poll so processes registered mid-run (e.g. by
        a failover) get their task too.
        """
        for name in self._processes:
            task = self._pumps.get(name)
            if task is None or task.done():
                self._pumps[name] = asyncio.ensure_future(self._pump(name))

    async def _pump(self, name: Any) -> None:
        process = self._processes[name]
        inbox = self._inboxes[name]
        while True:
            payload, channel = await inbox.get()
            try:
                process.receive(payload, channel)
            except BaseException as exc:  # noqa: BLE001 - surfaced at drain
                self.scheduler._errors.append(exc)
            finally:
                self._unprocessed -= 1
                inbox.task_done()

    def _enqueue(self, dst: "Process", payload: Any, channel: AsyncioChannel) -> None:
        self._unprocessed += 1
        self._inboxes[dst.name].put_nowait((payload, channel))

    def stop_pumps(self) -> None:
        """Cancel every pump task (backend shutdown)."""
        for task in self._pumps.values():
            task.cancel()
        self._pumps.clear()

    # -- channels ----------------------------------------------------------

    def connect(self, src_name: Any, dst_name: Any, delay: float) -> AsyncioChannel:
        """Create (or fetch) the unidirectional channel ``src -> dst``."""
        key = (src_name, dst_name)
        existing = self._channels.get(key)
        if existing is not None:
            if existing.delay != delay:
                raise ValueError(
                    f"channel {key} already exists with delay "
                    f"{existing.delay}, refusing {delay}"
                )
            return existing
        channel = AsyncioChannel(
            self,
            self._processes[src_name],
            self._processes[dst_name],
            delay,
            loss_rate=self.loss_rate,
            rng=self.rng,
        )
        self._channels[key] = channel
        # A re-created edge (post-failover reconnect) is live again.
        self._retired_keys.discard(key)
        # A channel created while a partition cut is active inherits the
        # remaining outage window (matches the simulated network).
        for heal_time, side_a, side_b in self._active_cuts():
            if _crosses_cut(src_name, dst_name, side_a, side_b):
                remaining = heal_time - self.scheduler.now
                if remaining > 0:
                    channel.fail(remaining)
        return channel

    def channel(self, src_name: Any, dst_name: Any) -> AsyncioChannel:
        """Fetch an existing channel; raises ``KeyError`` if absent."""
        return self._channels[(src_name, dst_name)]

    @property
    def channels(self) -> Dict[Tuple[Any, Any], AsyncioChannel]:
        """Read-only view of all live channels (for metrics)."""
        return dict(self._channels)

    # -- fault injection ---------------------------------------------------

    def _active_cuts(
        self,
    ) -> List[Tuple[float, FrozenSet[Any], Optional[FrozenSet[Any]]]]:
        self._cuts = [cut for cut in self._cuts if cut[0] > self.scheduler.now]
        return self._cuts

    def partition(
        self,
        side: FrozenSet[Any],
        duration: float,
        side_b: Optional[FrozenSet[Any]] = None,
    ) -> int:
        """Cut ``side`` off from ``side_b`` (default: everything else)."""
        if duration <= 0:
            raise ValueError(f"partition duration must be positive, got {duration}")
        side = frozenset(side)
        other = frozenset(side_b) if side_b is not None else None
        self._cuts.append((self.scheduler.now + duration, side, other))
        failed = 0
        for (src_name, dst_name), channel in self._channels.items():
            if _crosses_cut(src_name, dst_name, side, other):
                channel.fail(duration)
                failed += 1
        return failed

    def retire_channels(self, name: Any) -> int:
        """Remove every channel touching process ``name`` (failover).

        Counters fold into the retired totals (aggregates stay
        monotonic); packets already on a retired channel's wire still
        deliver, exactly like the simulated network.
        """
        retired = [
            key for key in self._channels if key[0] == name or key[1] == name
        ]
        for key in retired:
            channel = self._channels.pop(key)
            for stat in self._CARRIED_STATS:
                self._retired_totals[stat] += getattr(channel, stat)
        self.channels_retired += len(retired)
        self._retired_keys.update(retired)
        return len(retired)

    @property
    def retired_edges(self) -> Set[Tuple[Any, Any]]:
        """Edges retired by failover and not re-created since."""
        return set(self._retired_keys)

    # -- aggregates --------------------------------------------------------

    def total_bytes_sent(self) -> int:
        """Aggregate wire bytes across all channels (including retired)."""
        return (
            sum(c.bytes_sent for c in self._channels.values())
            + self._retired_totals["bytes_sent"]
        )

    def total_sends(self) -> int:
        """Aggregate packet transmissions across all channels."""
        return (
            sum(c.sends for c in self._channels.values())
            + self._retired_totals["sends"]
        )

    def total_drops(self) -> int:
        """Aggregate packets lost to loss injection or outages."""
        return self.total_loss_drops() + self.total_outage_drops()

    def total_loss_drops(self) -> int:
        """Aggregate packets lost to Bernoulli loss injection."""
        return (
            sum(c.loss_drops for c in self._channels.values())
            + self._retired_totals["loss_drops"]
        )

    def total_outage_drops(self) -> int:
        """Aggregate packets lost to link outages / partitions."""
        return (
            sum(c.outage_drops for c in self._channels.values())
            + self._retired_totals["outage_drops"]
        )

    def total_in_flight(self) -> int:
        """Packets currently propagating across all channels."""
        return sum(c.in_flight for c in self._channels.values())


class AsyncioTransport:
    """Live runtime backend: asyncio tasks, event-loop timers, real clock.

    Parameters
    ----------
    seed:
        Seed for the transport-level RNG (channel loss draws); derived as
        ``seed + 1``, matching the simulated backend.
    loss_rate:
        Per-packet Bernoulli loss probability applied by every channel.
    time_scale:
        Real seconds per virtual millisecond (see
        :class:`~repro.runtime.wallclock.LiveClock`).  The default runs
        virtual milliseconds as real milliseconds; tests and examples use
        much smaller values to run live scenarios quickly.
    loop:
        Event loop to schedule on.  ``None`` adopts the currently running
        loop when there is one (*hosted* mode — drive with
        :meth:`wait_quiescent`), otherwise creates and owns a private
        loop that :meth:`run` drives and :meth:`close` closes.
    max_run_wall_seconds:
        Safety ceiling on real seconds a single :meth:`run` /
        :meth:`wait_quiescent` may consume before raising
        :class:`~repro.runtime.errors.SimulationError`.
    """

    backend_name = "asyncio"

    def __init__(
        self,
        seed: int = 0,
        loss_rate: float = 0.0,
        time_scale: float = 0.001,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        max_run_wall_seconds: float = DEFAULT_RUN_WALL_LIMIT,
    ):
        self.seed = seed
        self.loss_rate = loss_rate
        self.time_scale = time_scale
        self.max_run_wall_seconds = max_run_wall_seconds
        if loop is None:
            try:
                loop = asyncio.get_running_loop()
                self._owned = False
            except RuntimeError:
                loop = asyncio.new_event_loop()
                self._owned = True
        else:
            self._owned = False
        self._loop = loop
        self._closed = False
        self.clock = LiveClock(time_scale=time_scale)
        self.scheduler = AsyncioScheduler(loop, self.clock)
        self.transport = AsyncioNetwork(
            self.scheduler, loss_rate=loss_rate, rng=random.Random(seed + 1)
        )
        self._trace: Optional["Trace"] = None

    # -- driving -----------------------------------------------------------

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> int:
        """Drive the owned event loop until quiescent (or the horizon).

        Blocking entry point for synchronous callers (the fabric's
        ``run``, the conformance tests).  Hosted backends must use
        ``await wait_quiescent(...)`` instead — the loop is already
        running and cannot be re-entered.
        """
        if self._loop.is_running():
            raise RuntimeUnavailable(
                "this AsyncioTransport is hosted on a running event loop; "
                "use 'await backend.wait_quiescent()' instead of run()"
            )
        before = self.scheduler.events_executed
        self._loop.run_until_complete(
            self.wait_quiescent(until=until, max_events=max_events)
        )
        return self.scheduler.events_executed - before

    async def wait_quiescent(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> int:
        """Await quiescence (no timers, no queued packets) or the horizon.

        ``until`` is a virtual-time horizon like the simulator's;
        ``max_events`` is a *soft* bound checked between polls;
        ``timeout`` overrides the backend's wall-clock safety ceiling
        (real seconds).  Returns callbacks executed during the wait.
        """
        before = self.scheduler.events_executed
        limit = timeout if timeout is not None else self.max_run_wall_seconds
        started = read_wall_clock()
        # Poll finely enough to notice quiescence quickly at any scale.
        poll = min(max(self.clock.time_scale, 0.0005), 0.02)
        while True:
            self.transport.ensure_pumps()
            self._raise_pending_errors()
            if until is not None and self.clock.now >= until:
                break
            if max_events is not None and (
                self.scheduler.events_executed - before >= max_events
            ):
                break
            if until is None and self.scheduler.pending == 0:
                # Let queue wakeups scheduled via call_soon settle, then
                # confirm quiescence held.
                await asyncio.sleep(0)
                await asyncio.sleep(0)
                if self.scheduler.pending == 0:
                    break
                continue
            if read_wall_clock() - started > limit:
                raise SimulationError(
                    f"live runtime did not reach "
                    f"{'quiescence' if until is None else f'until={until}'} "
                    f"within {limit:.1f}s wall "
                    f"(pending={self.scheduler.pending}, now={self.clock.now:.1f})"
                )
            await asyncio.sleep(poll)
        self._raise_pending_errors()
        return self.scheduler.events_executed - before

    def _raise_pending_errors(self) -> None:
        if self.scheduler._errors:
            exc = self.scheduler._errors[0]
            if self._trace is not None:
                self._trace.record(
                    self.clock.now, "runtime_error", error=repr(exc)
                )
            self.scheduler._errors = []
            raise exc

    # -- lifecycle ---------------------------------------------------------

    def successor(self, seed: int, loss_rate: float) -> "AsyncioTransport":
        """Fresh backend for the next fabric epoch.

        A hosted backend's successor shares the running loop; an owned
        backend's successor owns a fresh loop (the old one is released by
        ``close()``).
        """
        return AsyncioTransport(
            seed=seed,
            loss_rate=loss_rate,
            time_scale=self.time_scale,
            loop=None if self._owned else self._loop,
            max_run_wall_seconds=self.max_run_wall_seconds,
        )

    def close(self) -> None:
        """Cancel pump tasks and close the owned event loop.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._owned and not self._loop.is_closed():
            if not self._loop.is_running():
                self.transport.stop_pumps()
                self._loop.run_until_complete(asyncio.sleep(0))
                self._loop.close()
        else:
            self.transport.stop_pumps()

    def attach_trace(self, trace: "Trace") -> None:
        """Record backend-level events (pump errors) into the fabric trace."""
        self._trace = trace

    def __repr__(self) -> str:
        mode = "owned" if self._owned else "hosted"
        return (
            f"<AsyncioTransport {mode} now={self.clock.now:.1f} "
            f"pending={self.scheduler.pending}>"
        )


def _crosses_cut(
    src_name: Any,
    dst_name: Any,
    side: FrozenSet[Any],
    side_b: Optional[FrozenSet[Any]],
) -> bool:
    """Whether the directed channel ``src -> dst`` crosses the cut."""
    if side_b is None:
        return (src_name in side) != (dst_name in side)
    return (src_name in side and dst_name in side_b) or (
        src_name in side_b and dst_name in side
    )
