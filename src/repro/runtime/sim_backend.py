"""The discrete-event simulation backend.

:class:`SimTransport` packages the pre-split ``repro.sim`` machinery —
one :class:`~repro.sim.events.Simulator` and one
:class:`~repro.sim.network.Network` — behind the
:class:`~repro.runtime.interfaces.RuntimeBackend` surface.  Both objects
are exposed *directly* (the simulator is the node handle every process
receives, the network is the transport), so fabric construction over
this backend is byte-identical to the pre-split code on fixed seeds:
same objects, same RNG derivation (``Random(seed + 1)`` for channel
loss), same heap, same tie-breaking.  The bench baseline
(``benchmarks/results/BENCH_quick.json``) and the explain-determinism
smoke gate this equivalence in CI.
"""

import random
from typing import TYPE_CHECKING, Optional

from repro.sim.events import Simulator
from repro.sim.network import Network

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.runtime.trace import Trace

__all__ = ["SimTransport"]


class SimTransport:
    """Simulated runtime backend: virtual clock, heap scheduler, model links.

    Parameters
    ----------
    seed:
        Seed for the transport-level RNG (channel loss draws); derived as
        ``seed + 1`` to match the historical in-fabric derivation exactly.
    loss_rate:
        Per-packet Bernoulli loss probability applied by every channel.
    """

    backend_name = "sim"

    def __init__(self, seed: int = 0, loss_rate: float = 0.0):
        self.seed = seed
        self.loss_rate = loss_rate
        #: the node handle handed to every process — the simulator itself
        self.scheduler = Simulator()
        #: channel loss uses its own stream, decoupled from protocol
        #: tie-breaking draws, with the pre-split derivation (seed + 1)
        self.transport = Network(
            self.scheduler, loss_rate=loss_rate, rng=random.Random(seed + 1)
        )

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> int:
        """Drain the event heap (optionally bounded); see ``Simulator.run``."""
        return self.scheduler.run(until=until, max_events=max_events)

    def successor(self, seed: int, loss_rate: float) -> "SimTransport":
        """Fresh simulator + network for the next fabric epoch."""
        return SimTransport(seed=seed, loss_rate=loss_rate)

    def close(self) -> None:
        """Nothing to release: the simulator owns no OS resources."""

    def attach_trace(self, trace: "Trace") -> None:
        """No-op: the fabric records trace events itself in simulation."""

    def __repr__(self) -> str:
        return (
            f"<SimTransport seed={self.seed} loss_rate={self.loss_rate} "
            f"pending={self.scheduler.pending}>"
        )
