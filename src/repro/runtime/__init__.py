"""repro.runtime — the execution substrate the protocol core runs on.

This package defines the narrow interface the ordering protocol needs
from a runtime (:mod:`~repro.runtime.interfaces`: node handle, link,
transport, backend) plus the transport-neutral building blocks that used
to live inside the simulator — the process base class
(:mod:`~repro.runtime.node`), the trace flight recorder
(:mod:`~repro.runtime.trace`), runtime errors
(:mod:`~repro.runtime.errors`), and the sanctioned wall-clock shim
(:mod:`~repro.runtime.wallclock`).

Two backends implement the interface:

* :class:`~repro.runtime.sim_backend.SimTransport` — the discrete-event
  simulator (default; deterministic, byte-identical on fixed seeds);
* :class:`~repro.runtime.asyncio_backend.AsyncioTransport` — a live
  runtime where hosts and sequencing nodes are asyncio tasks over
  in-process queues, fronted by the TCP service façade in
  :mod:`repro.runtime.service`.

Backend classes are re-exported lazily: ``repro.runtime.sim_backend``
imports the simulator, which itself imports this package's neutral
modules, so an eager re-export here would create an import cycle.  The
service façade is *not* re-exported at all (it imports ``repro.core``);
import :mod:`repro.runtime.service` directly.
"""

from typing import Any

from repro.runtime.errors import RuntimeUnavailable, SimulationError
from repro.runtime.interfaces import (
    CancelHandle,
    Link,
    NodeHandle,
    RuntimeBackend,
    Transport,
)
from repro.runtime.node import Process
from repro.runtime.trace import Trace, TraceRecord
from repro.runtime.wallclock import LiveClock, read_wall_clock

__all__ = [
    "AsyncioTransport",
    "CancelHandle",
    "Link",
    "LiveClock",
    "NodeHandle",
    "Process",
    "RuntimeBackend",
    "RuntimeUnavailable",
    "SimTransport",
    "SimulationError",
    "Trace",
    "TraceRecord",
    "Transport",
    "read_wall_clock",
]

_LAZY = {
    "SimTransport": ("repro.runtime.sim_backend", "SimTransport"),
    "AsyncioTransport": ("repro.runtime.asyncio_backend", "AsyncioTransport"),
}


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
