"""repro — reproduction of "Decentralized Message Ordering for
Publish/Subscribe Systems" (Lumezanu, Spring, Bhattacharjee; Middleware 2006).

The package provides:

* the ordering protocol itself (:mod:`repro.core`) — sequencing atoms for
  double-overlapped groups, arranged into a loop-free sequencing graph,
  giving consistent (and, when senders subscribe, causal) cross-group
  message order without centralized control or vector timestamps;
* every substrate the paper's evaluation depends on — a packet-level
  discrete-event simulator (:mod:`repro.sim`), a GT-ITM-style transit–stub
  topology generator with shortest-path routing (:mod:`repro.topology`),
  and a pub/sub layer (:mod:`repro.pubsub`);
* the baselines the paper positions against (:mod:`repro.baselines`);
* workload generators, metrics, and the experiment harness regenerating
  every figure of the paper's evaluation (:mod:`repro.workloads`,
  :mod:`repro.metrics`, :mod:`repro.experiments`).

Quickstart::

    from repro import OrderedPubSub

    bus = OrderedPubSub(n_hosts=8, seed=1)
    for host in (0, 1, 2):
        bus.subscribe(host, "match/arena-1")
    bus.publish(0, "match/arena-1", {"event": "fire"})
    bus.run()
    print(bus.delivered_payloads(1))
"""

from repro.core import (
    AtomId,
    DeliveryRecord,
    Message,
    OrderedPubSub,
    OrderingFabric,
    OrderingViolation,
    SequencingGraph,
    Stamp,
)

__version__ = "1.0.0"

__all__ = [
    "AtomId",
    "DeliveryRecord",
    "Message",
    "OrderedPubSub",
    "OrderingFabric",
    "OrderingViolation",
    "SequencingGraph",
    "Stamp",
    "__version__",
]
