"""``repro`` command-line interface.

Subcommands::

    repro demo [--backend asyncio]   # tiny end-to-end ordering demo
    repro serve [--port 7400]        # live asyncio TCP service façade
    repro serve --self-test          # scripted live round trip + C1/C2
    repro figures --figures 3 5      # reproduce paper figures (see runner)
    repro analyze --hosts 64 --groups 16 [--dot out.dot]
                                     # build a Zipf workload and report the
                                     # sequencing graph / placement
    repro workload record out.json --hosts 32 --groups 8 --events 50
    repro workload replay out.json   # replay a saved workload, verify order
    repro trace run --hosts 32 --groups 8 --out run.jsonl \
                    --chrome run.trace.json --metrics metrics.prom
                                     # instrumented run: lifecycle spans,
                                     # Perfetto trace, Prometheus metrics
    repro check --format json        # static analysis: simlint determinism
                                     # rules + C1/C2 graph verification
    repro check --certificate g.json # audit an exported graph certificate
    repro chaos --runs 3 --seed 0    # seeded fault-injection campaigns with
                                     # failover; nonzero exit on violation
    repro chaos --churn 50 --switches 5
                                     # sustained join/leave churn with
                                     # online epoch-fenced reconfiguration,
                                     # audited by the RT32x cross-epoch
                                     # invariants (faults compose in)
    repro explain --stalls           # ordering forensics on a fixed-seed
                                     # chaos run (or --trace run.jsonl):
                                     # per-message journeys, blocking
                                     # (atom, seq) pairs, stall causes
    repro explain --message 12 --dot waits.dot
                                     # one message's journey + the
                                     # who-waited-on-whom graph
    repro bench --suite quick --out BENCH_quick.json
                                     # fixed-seed performance suite with
                                     # phase breakdowns (see docs)
    repro bench --compare BENCH_old.json BENCH_new.json --threshold 0.25
                                     # diff two reports; nonzero exit on
                                     # a wall-time regression
    repro bench --history benchmarks/results/BENCH_history.jsonl
                                     # render the append-only baseline
                                     # history table (one line per commit)
    repro chaos --live-monitor       # attach the streaming invariant
                                     # monitors; the report gains a
                                     # live_monitor block whose findings
                                     # must agree with the post-hoc audit
    repro top --replay run.jsonl     # operator view: replay a JSONL trace
                                     # through the streaming monitors
    repro top --connect PORT         # ... or poll a running `repro serve`
                                     # instance's metrics verb live

Also runnable as ``python -m repro.cli``.
"""

import argparse
import itertools
import json
import random
import sys
from typing import List, Optional

from repro.analysis import analyze, placement_to_dot, sequencing_graph_to_dot
from repro.core.api import OrderedPubSub
from repro.experiments import runner as figure_runner
from repro.experiments.common import ExperimentEnv
from repro.workloads.replay import WorkloadTrace
from repro.workloads.scenarios import PublishEvent
from repro.workloads.zipf import zipf_membership


def _cmd_demo(args: argparse.Namespace) -> int:
    backend = getattr(args, "backend", "sim")
    kwargs = {}
    if backend == "asyncio":
        # Virtual milliseconds shrink to microseconds of wall time so the
        # demo finishes promptly while still exercising live timers.
        kwargs = {"backend": "asyncio", "time_scale": 1e-6}
    bus = OrderedPubSub(n_hosts=8, seed=args.seed, **kwargs)
    for user in (0, 1, 3):
        bus.subscribe(user, "blue")
    for user in (1, 2, 3):
        bus.subscribe(user, "red")
    bus.publish(0, "blue", "m0: hello blue")
    bus.publish(2, "red", "m1: hello red")
    bus.publish(1, "blue", "m2: hi from the overlap")
    bus.run()
    for user in range(4):
        payloads = bus.delivered_payloads(user)
        print(f"host {user}: {payloads}")
    a = [r.msg_id for r in bus.delivered(1)]
    b = [r.msg_id for r in bus.delivered(3)]
    common = set(a) & set(b)
    agreed = [m for m in a if m in common] == [m for m in b if m in common]
    print(f"backend: {backend}")
    print(f"overlap members agree on order: {agreed}")
    bus.close()
    return 0 if agreed else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.runtime import service

    if args.self_test:
        failures = asyncio.run(
            service.run_self_test(
                n_hosts=args.hosts, seed=args.seed, loss_rate=args.loss_rate
            )
        )
        for failure in failures:
            print(f"FAIL: {failure}")
        print("serve self-test:", "FAIL" if failures else "PASS")
        return 1 if failures else 0
    try:
        asyncio.run(
            service.serve(
                n_hosts=args.hosts,
                seed=args.seed,
                loss_rate=args.loss_rate,
                time_scale=args.time_scale,
                host=args.host,
                port=args.port,
            )
        )
    except KeyboardInterrupt:
        print("repro serve: interrupted, shutting down")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    return figure_runner.main(args.rest)


def _cmd_analyze(args: argparse.Namespace) -> int:
    env = ExperimentEnv(n_hosts=args.hosts, seed=args.seed)
    snapshot = zipf_membership(args.hosts, args.groups, rng=random.Random(args.seed))
    membership = env.membership_from(snapshot)
    graph = env.build_graph(snapshot, seed=args.seed)
    placement = env.build_placement(graph, seed=args.seed)
    report = analyze(graph, placement, membership)
    print(report)
    print()
    print("per-group paths (group: members own/path/pass-through hops):")
    for profile in report.group_profiles:
        print(
            f"  g{profile.group}: {profile.members} members, "
            f"{profile.own_atoms}/{profile.path_atoms}/"
            f"{profile.pass_through_atoms}, hops={profile.machine_hops}"
        )
    if args.dot:
        with open(args.dot, "w") as handle:
            handle.write(placement_to_dot(graph, placement))
        print(f"\nDOT written to {args.dot}")
    if args.graph_dot:
        with open(args.graph_dot, "w") as handle:
            handle.write(sequencing_graph_to_dot(graph))
        print(f"graph DOT written to {args.graph_dot}")
    if args.export_certificate:
        with open(args.export_certificate, "w") as handle:
            json.dump(graph.export_certificate(placement=placement), handle, indent=2)
        print(f"graph certificate written to {args.export_certificate}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.check.runner import run_check

    return run_check(
        paths=args.paths or None,
        certificates=args.certificate,
        lint=not args.no_lint,
        graphs=not args.no_graph,
        select=args.select or None,
        fmt=args.format,
        explore=args.explore,
        async_lint=args.async_lint,
    )


def _parse_crash_spec(spec: str) -> tuple:
    """Parse a ``NODE@AT`` or ``NODE@AT:DURATION`` crash spec."""
    try:
        node_part, _, when = spec.partition("@")
        at_part, _, duration_part = when.partition(":")
        node_id = int(node_part)
        at = float(at_part)
        duration = float(duration_part) if duration_part else None
    except ValueError:
        raise SystemExit(
            f"malformed --crash spec {spec!r}; expected NODE@AT[:DURATION]"
        )
    return (node_id, at, duration)


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro.check.explore import (
        ExploreConfig,
        ScheduleDivergence,
        counterexample_document,
        explore,
        explore_report,
        minimize_counterexample,
        render_counterexample_trace,
        replay_schedule,
    )

    if args.replay:
        with open(args.replay, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        # Accept either a bare counterexample document or a full explore
        # report (--out) with the counterexample nested inside it.
        if "schedule" not in document:
            nested = document.get("counterexample")
            if not nested:
                print(
                    f"{args.replay}: no counterexample schedule to replay",
                    file=sys.stderr,
                )
                return 2
            document = nested
        config = ExploreConfig.from_dict(document["config"])
        try:
            fabric, findings = replay_schedule(config, document["schedule"])
        except ScheduleDivergence as exc:
            print(f"replay diverged: {exc}", file=sys.stderr)
            return 2
        for finding in findings:
            print(f"{finding.anchor}: {finding.code} {finding.message}")
        trace_text = render_counterexample_trace(fabric, findings)
        if trace_text:
            print(trace_text)
        print(
            f"replay: {len(document['schedule'])} step(s), "
            f"{len(findings)} violation(s)"
        )
        return 1 if findings else 0

    config = ExploreConfig(
        groups=args.groups,
        hosts=args.hosts,
        messages=args.messages,
        seed=args.seed,
        loss_rate=args.loss,
        crashes=tuple(_parse_crash_spec(spec) for spec in args.crash),
        mutate=args.mutate,
        max_schedules=args.max_schedules,
        max_depth=args.max_depth,
    )
    result = explore(config)
    counterexample = None
    if result.counterexample_schedule is not None:
        minimal_config, minimal = minimize_counterexample(config, result)
        assert minimal.counterexample_schedule is not None
        counterexample = counterexample_document(
            minimal_config,
            minimal.counterexample_schedule,
            minimal.violations,
        )
        fabric, findings = replay_schedule(
            minimal_config, minimal.counterexample_schedule
        )
        counterexample["journeys"] = render_counterexample_trace(
            fabric, findings
        ).splitlines()
    if args.format == "json":
        rendered = explore_report(result, counterexample)
    else:
        stats = result.stats()
        lines = [
            f"explore: {config.label()}",
            f"  schedules {stats['schedules']} "
            f"(terminal {stats['terminal_states']}, "
            f"sleep-blocked {stats['sleep_blocked']}, "
            f"depth-truncated {stats['depth_truncated']})",
            f"  transitions {stats['transitions']}, "
            f"exhausted {stats['exhausted']}",
        ]
        for finding in result.violations:
            lines.append(
                f"  {finding.anchor}: {finding.code} {finding.message}"
            )
        if counterexample is not None:
            lines.append(
                f"  minimal counterexample: "
                f"{len(counterexample['schedule'])} step(s)"
            )
            lines.extend(
                "    " + line for line in counterexample["journeys"]
            )
        rendered = "\n".join(lines)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"explore report written to {args.out}")
    else:
        print(rendered)
    return 1 if result.violations else 0


def _cmd_chaos_churn(args: argparse.Namespace) -> int:
    from repro.faults.churn import ChurnConfig, run_churn_campaign

    reports = []
    failed = 0
    for run_index in range(args.runs):
        config = ChurnConfig(
            hosts=args.hosts,
            groups=args.groups,
            events=args.events,
            churn_events=args.churn,
            switches=args.switches,
            seed=args.seed + run_index,
            horizon=args.horizon,
            loss_rate=args.loss,
            heartbeat_interval=args.interval,
            suspect_after=args.suspect_after,
            transfer_delay=args.transfer_delay,
            mid_switch_crash=not args.no_mid_switch_crash,
            backend=args.backend,
        )
        report = run_churn_campaign(config, live_monitor=args.live_monitor)
        reports.append(report)
        bad = not report["ok"]
        if args.live_monitor and not report["live_monitor"]["agrees_with_audit"]:
            bad = True
        if bad:
            failed += 1
    payload = {
        "runs": len(reports),
        "failed": failed,
        "ok": failed == 0,
        "reports": reports,
    }
    if args.format == "json":
        rendered = json.dumps(payload, indent=2)
    else:
        lines = []
        for report in reports:
            seed = report["config"]["seed"]
            status = "ok" if report["ok"] else "FAIL"
            switches = [e["switch"] for e in report["epochs"] if e["switch"]]
            drains = ", ".join(
                str(s["drain_events"]) for s in switches
            )
            lines.append(
                f"seed {seed}: {status} — {len(report['epochs'])} epoch(s), "
                f"churn {report['churn_applied']}, "
                f"published {report['published']}, "
                f"delivered {report['delivered']}, "
                f"failovers {report['failovers']}, "
                f"drain events [{drains}], "
                f"digest {report['delivery_digest'][:12]}"
            )
            if report["mid_switch_crash"]:
                crash = report["mid_switch_crash"]
                lines.append(
                    f"  mid-switch crash: node {crash['node_id']} "
                    f"at {crash['at']:.1f}ms (permanent)"
                )
            for finding in report["findings"]:
                lines.append(f"  {finding['code']}: {finding['message']}")
            live = report.get("live_monitor")
            if live is not None:
                agree = "agrees" if live["agrees_with_audit"] else "DISAGREES"
                lines.append(
                    f"  live monitor: {live['violations']} violation(s), "
                    f"{live['warnings']} warning(s) over "
                    f"{len(live['epoch_agreement'])} epoch(s) — "
                    f"{agree} with the post-hoc audit"
                )
        lines.append(
            f"{len(reports)} churn run(s), {failed} failed"
            + ("" if failed == 0 else " — invariant violations above")
        )
        rendered = "\n".join(lines)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered + "\n")
        print(f"churn report written to {args.out}")
    else:
        print(rendered)
    return 0 if failed == 0 else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    if args.churn > 0:
        return _cmd_chaos_churn(args)
    from repro.faults.campaign import ChaosConfig, run_campaign

    reports = []
    failed = 0
    for run_index in range(args.runs):
        config = ChaosConfig(
            hosts=args.hosts,
            groups=args.groups,
            events=args.events,
            seed=args.seed + run_index,
            horizon=args.horizon,
            loss_rate=args.loss,
            heartbeat_interval=args.interval,
            suspect_after=args.suspect_after,
            transfer_delay=args.transfer_delay,
            max_retransmits=args.max_retransmits,
        )
        report = run_campaign(
            config,
            live_monitor=args.live_monitor,
            mutate=args.monitor_mutate,
        )
        reports.append(report)
        bad = not report["ok"]
        if args.live_monitor and not report["live_monitor"]["agrees_with_audit"]:
            bad = True
        if bad:
            failed += 1
    payload = {
        "runs": len(reports),
        "failed": failed,
        "ok": failed == 0,
        "reports": reports,
    }
    if args.format == "json":
        rendered = json.dumps(payload, indent=2)
    else:
        lines = []
        for report in reports:
            seed = report["config"]["seed"]
            latencies = [
                f"{f['detection_latency_ms']:.1f}ms"
                for f in report["failovers"]
                if f["detection_latency_ms"] is not None
            ]
            by_cause = ", ".join(
                f"{cause}={count}"
                for cause, count in report["retransmissions"]["by_cause"].items()
            )
            status = "ok" if report["ok"] else "FAIL"
            lines.append(
                f"seed {seed}: {status} — published {report['published']}, "
                f"delivered {report['delivered']}, "
                f"failovers {len(report['failovers'])} "
                f"(detection {', '.join(latencies) or 'n/a'}), "
                f"retransmissions {report['retransmissions']['total']} "
                f"({by_cause}), drops loss={report['drops']['loss']} "
                f"outage={report['drops']['outage']}, "
                f"link failures {report['link_failures']}"
            )
            for finding in report["findings"]:
                lines.append(f"  {finding['code']}: {finding['message']}")
            live = report.get("live_monitor")
            if live is not None:
                agree = "agrees" if live["agrees_with_audit"] else "DISAGREES"
                lines.append(
                    f"  live monitor: {len(live['alerts'])} alert(s) "
                    f"({live['violations']} violation(s), "
                    f"{live['warnings']} warning(s)) — "
                    f"{agree} with the post-hoc audit"
                )
        lines.append(
            f"{len(reports)} run(s), {failed} failed"
            + ("" if failed == 0 else " — invariant violations above")
        )
        rendered = "\n".join(lines)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered + "\n")
        print(f"chaos report written to {args.out}")
    else:
        print(rendered)
    return 0 if failed == 0 else 1


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.obs.forensics import (
        JourneyIndex,
        render_journey,
        render_stalls,
        waits_to_dot,
    )

    if args.trace:
        from repro.obs.exporters import read_trace_jsonl

        index = JourneyIndex(read_trace_jsonl(args.trace))
        source = f"trace {args.trace}"
    else:
        from repro.faults.campaign import ChaosConfig, execute_campaign

        config = ChaosConfig(
            hosts=args.hosts,
            groups=args.groups,
            events=args.events,
            seed=args.seed,
            horizon=args.horizon,
        )
        run = execute_campaign(config)
        index = JourneyIndex(run.fabric.trace)
        source = f"chaos run (seed {args.seed})"

    sections: List[str] = []
    payload: dict = {"source": source}
    status = 0
    if args.message is not None:
        journey = index.journey(args.message)
        if journey is None:
            print(f"message {args.message} not in {source}", file=sys.stderr)
            return 1
        sections.append(render_journey(journey))
        payload["journey"] = journey.to_dict()
    if args.receiver is not None:
        history = index.holdback_history(args.receiver)
        events = [
            e for e in index.buffer_events if e.host == args.receiver
        ]
        lines = [
            f"host {args.receiver}: {len(events)} buffer event(s), "
            f"peak hold-back depth "
            f"{max((d for _, d in history), default=0)}"
        ]
        for event in events:
            drained = (
                f"drained t={event.drain_time:.3f} after {event.waited:.3f} ms"
                if event.resolved
                else "NEVER drained"
            )
            lines.append(
                f"  t={event.time:.3f} message {event.msg_id} blocked on "
                f"{event.blocked_on} seq {event.expected_seq}; {drained} "
                f"[{event.cause}]"
            )
        for time, depth in history:
            lines.append(f"  t={time:.3f} depth={depth}")
        sections.append("\n".join(lines))
        payload["receiver"] = {
            "host": args.receiver,
            "buffer_events": [e.to_dict() for e in events],
            "holdback_history": [
                {"time": time, "depth": depth} for time, depth in history
            ],
        }
    if args.stalls or (args.message is None and args.receiver is None):
        report = index.stall_report(threshold=args.threshold)
        sections.append(render_stalls(report))
        payload["stalls"] = report
    payload["waits"] = index.waits_to_json()

    if args.format == "json":
        rendered = json.dumps(payload, indent=2, sort_keys=True)
    else:
        rendered = "\n\n".join(sections)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered + "\n")
        print(f"forensics written to {args.out}")
    else:
        print(rendered)
    if args.dot:
        with open(args.dot, "w") as handle:
            handle.write(waits_to_dot(index))
        print(f"wait-graph DOT written to {args.dot}")
    return status


def _cmd_workload(args: argparse.Namespace) -> int:
    if args.action == "record":
        rng = random.Random(args.seed)
        snapshot = zipf_membership(args.hosts, args.groups, rng=rng)
        events: List[PublishEvent] = []
        groups = sorted(snapshot)
        for index in range(args.events):
            group = rng.choice(groups)
            sender = rng.choice(sorted(snapshot[group]))
            events.append(PublishEvent(sender, group, {"i": index}))
        trace = WorkloadTrace.from_schedule(snapshot, events, name=args.path)
        trace.validate()
        trace.save(args.path)
        print(
            f"recorded {len(events)} events over {len(snapshot)} groups "
            f"({args.hosts} hosts) -> {args.path}"
        )
        return 0
    # replay
    trace = WorkloadTrace.load(args.path)
    trace.validate()
    n_hosts = max(trace.n_hosts(), 2)
    env = ExperimentEnv(n_hosts=n_hosts, seed=args.seed)
    fabric = env.build_fabric(env.membership_from(trace.membership), seed=args.seed)
    published = trace.replay(fabric)
    stuck = fabric.pending_messages()
    print(f"replayed {published} events; undelivered: {stuck or 'none'}")
    violations = 0
    for a, b in itertools.combinations(range(n_hosts), 2):
        seq_a = [r.msg_id for r in fabric.delivered(a)]
        seq_b = [r.msg_id for r in fabric.delivered(b)]
        common = set(seq_a) & set(seq_b)
        if [m for m in seq_a if m in common] != [m for m in seq_b if m in common]:
            violations += 1
    print(f"pairwise order violations: {violations}")
    return 0 if not stuck and violations == 0 else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import exporters
    from repro.obs import spans as spans_mod
    from repro.obs.hooks import profiler_to_registry
    from repro.obs.live import PHASES, PhaseLatencyTracker
    from repro.obs.profiler import PhaseProfiler
    from repro.obs.registry import MetricsRegistry
    from repro.obs.resources import GcPauseSampler, register_process_collectors

    env = ExperimentEnv(n_hosts=args.hosts, seed=args.seed)
    rng = random.Random(args.seed)
    snapshot = zipf_membership(args.hosts, args.groups, rng=rng)
    membership = env.membership_from(snapshot)
    registry = MetricsRegistry()
    profiler = PhaseProfiler() if args.profile else None
    gc_sampler = GcPauseSampler()
    register_process_collectors(registry, sampler=gc_sampler)
    fabric = env.build_fabric(
        membership, seed=args.seed, trace=True, registry=registry,
        profiler=profiler,
    )
    latency = PhaseLatencyTracker(registry=registry)
    fabric.trace.subscribe(latency.observe)
    groups = sorted(snapshot)
    with gc_sampler:
        for _ in range(args.events):
            group = rng.choice(groups)
            sender = rng.choice(sorted(snapshot[group]))
            fabric.publish(sender, group)
            if args.gap > 0:
                fabric.run(until=fabric.sim.now + args.gap)
        fabric.run()
    stuck = fabric.pending_messages()

    span_map = spans_mod.build_spans(fabric.trace)
    breakdown = spans_mod.phase_breakdown_by_group(span_map)
    print(
        f"published {args.events} messages over {len(groups)} groups "
        f"({args.hosts} hosts); {fabric.sim.events_executed} events, "
        f"{len(fabric.trace)} trace records"
    )
    print()
    print("per-group mean phase latency breakdown:")
    print(spans_mod.render_phase_table(breakdown))
    print()
    print("per-phase latency percentiles (virtual ms):")
    summary = latency.summary()
    print(f"{'phase':<12}{'count':>8}{'p50':>10}{'p99':>10}{'p999':>10}{'max':>10}")
    for phase in PHASES:
        stats = summary[phase]
        print(
            f"{phase:<12}{int(stats['count']):>8}"
            f"{stats['p50']:>10.3f}{stats['p99']:>10.3f}"
            f"{stats['p999']:>10.3f}{stats['max']:>10.3f}"
        )
    if profiler is not None:
        profiler.take_sample(fabric.sim.now)
        profiler_to_registry(profiler, registry)
        print()
        print("hot-path wall-time breakdown (exclusive, profiled):")
        print(profiler.render())
    if args.out:
        path = exporters.write_trace_jsonl(fabric.trace, args.out)
        print(f"trace JSONL written to {path}")
    if args.chrome:
        path = exporters.write_chrome_trace(
            fabric.trace, args.chrome, profiler=profiler
        )
        print(f"Chrome trace (Perfetto-loadable) written to {path}")
    if args.metrics:
        path = exporters.write_prometheus(registry, args.metrics)
        print(f"Prometheus metrics written to {path}")
    if stuck:
        print(f"WARNING: undelivered messages at {stuck}")
    return 0 if not stuck else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.obs import bench

    if args.list:
        print(bench.list_suites())
        return 0
    if args.history:
        records = bench.read_history(args.history)
        if args.format == "json":
            print(json.dumps(records, indent=2, sort_keys=True))
        else:
            print(bench.render_history(records))
        return 0
    if args.compare:
        old = bench.read_report(args.compare[0])
        new = bench.read_report(args.compare[1])
        result = bench.compare(
            old, new, threshold=args.threshold, normalize=not args.absolute
        )
        if args.format == "json":
            print(json.dumps(result, indent=2, sort_keys=True))
        else:
            print(bench.render_compare(result))
        return 0 if result["ok"] else 1
    report = bench.run_suite(
        args.suite,
        runs=args.runs,
        warmup=args.warmup,
        seed=args.seed,
        profile=not args.no_profile,
        sample_every=args.sample_every,
    )
    if args.out:
        path = bench.write_report(report, args.out)
        print(f"bench report written to {path}")
    if args.append_history:
        path = bench.append_history(
            report, args.append_history, commit=args.commit
        )
        print(f"baseline history appended to {path}")
    if args.format == "json" and not args.out:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(bench.render_report(report))
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.obs.live import top

    if (args.replay is None) == (args.connect is None):
        print(
            "repro top: exactly one of --replay FILE or --connect PORT "
            "is required",
            file=sys.stderr,
        )
        return 2
    clear = not args.no_clear and sys.stdout.isatty()
    try:
        if args.replay is not None:
            frames = top.iter_replay(
                args.replay,
                window_ms=args.window,
                stall_threshold_ms=args.stall_threshold,
            )
        else:
            frames = top.iter_live(
                args.host, args.connect,
                interval=args.interval, frames=args.frames,
            )
        last = top.run_top(frames, clear=clear)
    except KeyboardInterrupt:
        print()
        return 0
    return 1 if last.violations else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="tiny end-to-end ordering demo")
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument(
        "--backend", choices=("sim", "asyncio"), default="sim",
        help="runtime backend: deterministic simulator (default) or the "
        "live asyncio event loop",
    )
    demo.set_defaults(func=_cmd_demo)

    serve = sub.add_parser(
        "serve",
        help="run the ordering fabric as a live asyncio TCP service",
    )
    serve.add_argument("--hosts", type=int, default=8)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--loss-rate", type=float, default=0.0)
    serve.add_argument(
        "--time-scale", type=float, default=1e-5,
        help="real seconds per virtual millisecond (default: 1e-5)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0 = ephemeral, printed on startup)",
    )
    serve.add_argument(
        "--self-test", action="store_true",
        help="boot on an ephemeral port, run a scripted publish/subscribe "
        "round trip with live C1/C2 verification, then shut down",
    )
    serve.set_defaults(func=_cmd_serve)

    figures = sub.add_parser(
        "figures", help="reproduce paper figures (args passed through)"
    )
    figures.add_argument("rest", nargs=argparse.REMAINDER)
    figures.set_defaults(func=_cmd_figures)

    an = sub.add_parser("analyze", help="report on a Zipf workload's graph")
    an.add_argument("--hosts", type=int, default=64)
    an.add_argument("--groups", type=int, default=16)
    an.add_argument("--seed", type=int, default=0)
    an.add_argument("--dot", default=None, help="write placement DOT here")
    an.add_argument("--graph-dot", default=None, help="write graph DOT here")
    an.add_argument(
        "--export-certificate",
        default=None,
        help="write a JSON graph certificate (verifiable by `repro check`)",
    )
    an.set_defaults(func=_cmd_analyze)

    check = sub.add_parser(
        "check",
        help="static analysis: simlint + sequencing-graph invariant verifier",
    )
    check.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: the installed repro package)",
    )
    check.add_argument(
        "--certificate",
        action="append",
        default=[],
        metavar="FILE",
        help="also verify this exported graph certificate (repeatable)",
    )
    check.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="CODE",
        help="run only these simlint rule codes (repeatable)",
    )
    check.add_argument("--no-lint", action="store_true", help="skip simlint")
    check.add_argument(
        "--no-graph", action="store_true", help="skip graph self-verification"
    )
    check.add_argument(
        "--explore", action="store_true",
        help="also run the budgeted model-check smoke scenarios (MC4xx)",
    )
    check.add_argument(
        "--async-lint", dest="async_lint", action="store_true",
        help="also run the asyncio concurrency rules (SL110-SL114) over "
        "repro.runtime (or the given paths)",
    )
    check.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    check.set_defaults(func=_cmd_check)

    explore = sub.add_parser(
        "explore",
        help="model-check a small configuration: enumerate every reduced "
        "message/timer interleaving and audit the MC4xx invariants",
    )
    explore.add_argument("--groups", type=int, default=2)
    explore.add_argument("--hosts", type=int, default=3)
    explore.add_argument(
        "--messages", type=int, default=1,
        help="publish rounds (one message per group each; default 1)",
    )
    explore.add_argument("--seed", type=int, default=0)
    explore.add_argument(
        "--loss", type=float, default=0.0, help="per-channel loss rate"
    )
    explore.add_argument(
        "--crash", action="append", default=[], metavar="NODE@AT[:DURATION]",
        help="crash sequencing node NODE at virtual time AT (repeatable); "
        "omit :DURATION for a permanent crash",
    )
    explore.add_argument(
        "--mutate", choices=("skip-stamp", "drop-delivery", "dup-delivery"),
        default=None,
        help="inject a seeded protocol mutation (checker validation)",
    )
    explore.add_argument("--max-schedules", type=int, default=5000)
    explore.add_argument("--max-depth", type=int, default=200)
    explore.add_argument(
        "--replay", default=None, metavar="PATH",
        help="replay a counterexample document instead of exploring",
    )
    explore.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    explore.add_argument(
        "--out", default=None, help="write the report here instead of stdout"
    )
    explore.set_defaults(func=_cmd_explore)

    chaos = sub.add_parser(
        "chaos",
        help="seeded fault-injection campaigns with detection and failover",
    )
    chaos.add_argument("--hosts", type=int, default=24)
    chaos.add_argument("--groups", type=int, default=8)
    chaos.add_argument("--events", type=int, default=60)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--runs", type=int, default=1,
        help="campaigns to run (seeds seed, seed+1, ...)",
    )
    chaos.add_argument(
        "--horizon", type=float, default=400.0,
        help="traffic/fault window in virtual ms",
    )
    chaos.add_argument(
        "--loss", type=float, default=0.01,
        help="baseline per-packet loss probability",
    )
    chaos.add_argument(
        "--interval", type=float, default=5.0,
        help="heartbeat ping interval in virtual ms",
    )
    chaos.add_argument(
        "--suspect-after", type=int, default=3,
        help="missed heartbeat intervals tolerated before suspicion",
    )
    chaos.add_argument(
        "--transfer-delay", type=float, default=1.0,
        help="failover state-transfer downtime in virtual ms",
    )
    chaos.add_argument(
        "--max-retransmits", type=int, default=None,
        help="per-packet retransmission budget (default: fabric default)",
    )
    chaos.add_argument(
        "--churn", type=int, default=0, metavar="N",
        help="run a churn campaign instead: N join/leave events composed "
        "with online epoch-fenced reconfiguration (RT32x audited)",
    )
    chaos.add_argument(
        "--switches", type=int, default=5,
        help="online epoch switches per churn campaign (with --churn)",
    )
    chaos.add_argument(
        "--backend", choices=("sim", "asyncio"), default="sim",
        help="runtime backend for churn campaigns (with --churn)",
    )
    chaos.add_argument(
        "--no-mid-switch-crash", action="store_true",
        help="skip the permanent crash injected mid-epoch-switch "
        "(with --churn)",
    )
    chaos.add_argument(
        "--live-monitor", action="store_true",
        help="attach the streaming invariant monitors (LM3xx) to the run; "
        "the report gains a live_monitor block and the exit status also "
        "fails if the live findings disagree with the post-hoc audit",
    )
    chaos.add_argument(
        "--monitor-mutate",
        choices=("skip-stamp", "drop-delivery", "dup-delivery"),
        default=None,
        help="inject a seeded protocol mutation before the campaign "
        "(monitor validation: the streaming monitors must fire)",
    )
    chaos.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    chaos.add_argument("--out", default=None, help="write the report here")
    chaos.set_defaults(func=_cmd_chaos)

    explain = sub.add_parser(
        "explain",
        help="ordering forensics: message journeys, blocking pairs, stall causes",
    )
    explain.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="analyze this trace JSONL instead of running a chaos campaign",
    )
    explain.add_argument("--hosts", type=int, default=16)
    explain.add_argument("--groups", type=int, default=6)
    explain.add_argument("--events", type=int, default=40)
    explain.add_argument("--seed", type=int, default=0)
    explain.add_argument(
        "--horizon", type=float, default=250.0,
        help="traffic/fault window in virtual ms (inline chaos run)",
    )
    explain.add_argument(
        "--message", type=int, default=None,
        help="reconstruct this message's end-to-end journey",
    )
    explain.add_argument(
        "--receiver", type=int, default=None,
        help="this host's hold-back history and buffer events",
    )
    explain.add_argument(
        "--stalls", action="store_true",
        help="stall report (the default when no other query is given)",
    )
    explain.add_argument(
        "--threshold", type=float, default=0.0,
        help="minimum hold-back wait (ms) for the stall report",
    )
    explain.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    explain.add_argument("--out", default=None, help="write the report here")
    explain.add_argument(
        "--dot", default=None, help="write the who-waited-on-whom DOT graph here"
    )
    explain.set_defaults(func=_cmd_explain)

    workload = sub.add_parser("workload", help="record/replay workload traces")
    workload.add_argument("action", choices=("record", "replay"))
    workload.add_argument("path")
    workload.add_argument("--hosts", type=int, default=32)
    workload.add_argument("--groups", type=int, default=8)
    workload.add_argument("--events", type=int, default=50)
    workload.add_argument("--seed", type=int, default=0)
    workload.set_defaults(func=_cmd_workload)

    trace = sub.add_parser(
        "trace", help="run an instrumented workload and export observability data"
    )
    trace.add_argument("action", choices=("run",))
    trace.add_argument("--hosts", type=int, default=32)
    trace.add_argument("--groups", type=int, default=8)
    trace.add_argument("--events", type=int, default=100)
    trace.add_argument(
        "--gap",
        type=float,
        default=0.5,
        help="virtual ms to advance between publishes (0 = burst)",
    )
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--out", default=None, help="write trace JSONL here")
    trace.add_argument(
        "--chrome", default=None, help="write Chrome trace-event JSON here"
    )
    trace.add_argument(
        "--metrics", default=None, help="write Prometheus-style metrics here"
    )
    trace.add_argument(
        "--profile", action="store_true",
        help="attach the hot-path phase profiler (dispatch/sequencing/"
        "delivery/trace wall-time breakdown; exported to --chrome/--metrics)",
    )
    trace.set_defaults(func=_cmd_trace)

    bench = sub.add_parser(
        "bench",
        help="fixed-seed performance suites emitting comparable BENCH_*.json",
    )
    bench.add_argument(
        "--suite", default="quick",
        help="suite to run: smoke, quick, or full (default: quick)",
    )
    bench.add_argument(
        "--runs", type=int, default=3,
        help="timed repetitions per workload (default: 3)",
    )
    bench.add_argument(
        "--warmup", type=int, default=1,
        help="untimed warmup repetitions per workload (default: 1)",
    )
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--no-profile", action="store_true",
        help="skip the phase profiler (no breakdown sections)",
    )
    bench.add_argument(
        "--sample-every", type=int, default=4096,
        help="profiler counter-sample period in dispatched events",
    )
    bench.add_argument("--out", default=None, help="write the JSON report here")
    bench.add_argument(
        "--compare", nargs=2, metavar=("OLD", "NEW"), default=None,
        help="diff two reports instead of running; nonzero exit on regression",
    )
    bench.add_argument(
        "--threshold", type=float, default=0.25,
        help="fractional slowdown treated as a regression (default: 0.25)",
    )
    bench.add_argument(
        "--absolute", action="store_true",
        help="compare raw wall-time ratios (skip median normalization; "
        "use for same-machine A/B runs)",
    )
    bench.add_argument(
        "--list", action="store_true", help="list suites and workloads"
    )
    bench.add_argument(
        "--history", default=None, metavar="FILE",
        help="render the append-only baseline history table and exit",
    )
    bench.add_argument(
        "--append-history", default=None, metavar="FILE",
        help="after the run, append a compact baseline record here "
        "(benchmarks/results/BENCH_history.jsonl)",
    )
    bench.add_argument(
        "--commit", default="",
        help="commit hash recorded with --append-history",
    )
    bench.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    bench.set_defaults(func=_cmd_bench)

    top = sub.add_parser(
        "top",
        help="refreshing operator view: throughput, phase latency "
        "percentiles, hold-back occupancy, monitor alerts",
    )
    top.add_argument(
        "--replay", default=None, metavar="FILE",
        help="replay this trace JSONL through the streaming monitors",
    )
    top.add_argument(
        "--connect", type=int, default=None, metavar="PORT",
        help="poll a running `repro serve` instance's metrics verb",
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument(
        "--interval", type=float, default=1.0,
        help="poll interval in wall seconds (with --connect)",
    )
    top.add_argument(
        "--frames", type=int, default=None,
        help="stop after N frames (with --connect; default: until q/Ctrl-C)",
    )
    top.add_argument(
        "--window", type=float, default=100.0,
        help="virtual ms of trace per frame (with --replay)",
    )
    top.add_argument(
        "--stall-threshold", type=float, default=None,
        help="hold-back stall alert threshold in virtual ms (with --replay)",
    )
    top.add_argument(
        "--no-clear", action="store_true",
        help="append frames instead of clearing the screen (CI/log friendly)",
    )
    top.set_defaults(func=_cmd_top)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # "figures" forwards its arguments verbatim to the experiment runner
    # (argparse.REMAINDER cannot start with an optional at the top level).
    if argv and argv[0] == "figures":
        return figure_runner.main(argv[1:])
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
