"""Structured analysis of a sequencing graph (and optional placement).

``analyze(graph, placement, membership)`` computes everything a person
debugging a deployment would want to know: how big the sequencing network
is, how long each group's path is and how much of it is pass-through
overhead, how well co-location worked, and whether the paper's
theoretical claims hold on this instance.
"""

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.placement import Placement
from repro.core.sequencing_graph import SequencingGraph
from repro.metrics.stress import node_stress
from repro.pubsub.membership import GroupMembership


@dataclass
class GroupProfile:
    """Per-group sequencing-path statistics."""

    group: int
    members: int
    own_atoms: int
    path_atoms: int
    pass_through_atoms: int
    machine_hops: Optional[int] = None

    @property
    def overhead_fraction(self) -> float:
        """Share of the path that is pass-through (pure overhead)."""
        if self.path_atoms == 0:
            return 0.0
        return self.pass_through_atoms / self.path_atoms


@dataclass
class GraphReport:
    """Everything :func:`analyze` computes."""

    groups: int
    overlap_atoms: int
    retired_atoms: int
    ingress_only_atoms: int
    chains: int
    longest_chain: int
    group_profiles: List[GroupProfile] = field(default_factory=list)
    sequencing_nodes: Optional[int] = None
    mean_stress: Optional[float] = None
    max_stamp_entries: int = 0
    #: paper bound: per-group stamp entries <= groups - 1
    stamp_bound_holds: bool = True

    def summary_lines(self) -> List[str]:
        """Human-readable multi-line summary."""
        lines = [
            f"groups:            {self.groups}",
            f"overlap atoms:     {self.overlap_atoms} "
            f"(+{self.retired_atoms} retired, "
            f"{self.ingress_only_atoms} ingress-only)",
            f"chains:            {self.chains} (longest {self.longest_chain})",
            f"max stamp entries: {self.max_stamp_entries} "
            f"(bound holds: {self.stamp_bound_holds})",
        ]
        if self.sequencing_nodes is not None:
            lines.append(f"sequencing nodes:  {self.sequencing_nodes}")
        if self.mean_stress is not None:
            lines.append(f"mean node stress:  {self.mean_stress:.3f}")
        if self.group_profiles:
            worst = max(self.group_profiles, key=lambda p: p.path_atoms)
            lines.append(
                f"longest group path: group {worst.group} "
                f"({worst.path_atoms} atoms, "
                f"{worst.pass_through_atoms} pass-through)"
            )
        return lines

    def __str__(self) -> str:
        return "\n".join(self.summary_lines())


def analyze(
    graph: SequencingGraph,
    placement: Optional[Placement] = None,
    membership: Optional[GroupMembership] = None,
) -> GraphReport:
    """Compute a :class:`GraphReport` for a graph (+ optional placement)."""
    overlap_atoms = graph.overlap_atoms()
    ingress_only = [a for a in graph.atoms if a.is_ingress_only]
    profiles: List[GroupProfile] = []
    max_entries = 0
    for group in graph.groups():
        path = graph.group_path(group)
        own = graph.atoms_of_group(group)
        max_entries = max(max_entries, len(own))
        machine_hops = None
        if placement is not None:
            machines: List[int] = []
            for atom in path:
                node = placement.node_of(atom)
                if not machines or machines[-1] != node.node_id:
                    machines.append(node.node_id)
            machine_hops = len(machines)
        members = (
            len(membership.members(group))
            if membership is not None and membership.has_group(group)
            else len(graph.members(group))
        )
        profiles.append(
            GroupProfile(
                group=group,
                members=members,
                own_atoms=len(own),
                path_atoms=len(path),
                pass_through_atoms=len(graph.pass_through_atoms(group)),
                machine_hops=machine_hops,
            )
        )

    report = GraphReport(
        groups=len(graph.groups()),
        overlap_atoms=len(overlap_atoms),
        retired_atoms=len(graph.retired),
        ingress_only_atoms=len(ingress_only),
        chains=len(graph.chains),
        longest_chain=max((len(c) for c in graph.chains), default=0),
        group_profiles=profiles,
        max_stamp_entries=max_entries,
        stamp_bound_holds=max_entries <= max(0, len(graph.groups()) - 1),
    )
    if placement is not None:
        report.sequencing_nodes = len(
            placement.sequencing_nodes(include_ingress_only=False)
        )
        stresses = node_stress(graph, placement)
        if stresses:
            report.mean_stress = sum(stresses) / len(stresses)
    return report
