"""Offline analysis of sequencing graphs and placements.

* :mod:`repro.analysis.report` — structured statistics about a sequencing
  graph + placement: atom/chain/cluster counts, per-group path profiles,
  pass-through overheads, co-location quality, and the paper's
  theoretical-bound checks.
* :mod:`repro.analysis.graphviz` — Graphviz DOT export of the sequencing
  graph (atoms, chains, group paths) and the placement, for visual
  inspection of small configurations.
"""

from repro.analysis.graphviz import placement_to_dot, sequencing_graph_to_dot
from repro.analysis.report import GraphReport, analyze

__all__ = [
    "GraphReport",
    "analyze",
    "placement_to_dot",
    "sequencing_graph_to_dot",
]
