"""Graphviz DOT export of sequencing graphs and placements.

Small configurations (like the paper's Figure 1/2 examples) become much
easier to reason about visually.  The exporters emit plain DOT text — no
graphviz dependency; render with ``dot -Tpng`` if available.
"""

from typing import Optional

from repro.core.placement import Placement
from repro.core.sequencing_graph import SequencingGraph


def _atom_node_id(atom) -> str:
    return "atom_" + repr(atom).replace("(", "_").replace(")", "").replace(",", "_")


def sequencing_graph_to_dot(
    graph: SequencingGraph,
    highlight_group: Optional[int] = None,
) -> str:
    """DOT for the sequencing graph: atoms as nodes, chain links as edges.

    Retired atoms render dashed; ``highlight_group`` colors that group's
    path (its own atoms filled, pass-through atoms outlined).
    """
    lines = [
        "graph sequencing {",
        "  rankdir=LR;",
        '  node [shape=ellipse, fontname="monospace"];',
    ]
    highlighted_path = (
        set(graph.group_path(highlight_group)) if highlight_group is not None else set()
    )
    highlighted_own = (
        set(graph.atoms_of_group(highlight_group))
        if highlight_group is not None
        else set()
    )
    for atom_id in sorted(graph.atoms):
        attrs = [f'label="{atom_id!r}"']
        if atom_id in graph.retired:
            attrs.append("style=dashed")
        elif atom_id in highlighted_own:
            attrs.append('style=filled fillcolor="lightblue"')
        elif atom_id in highlighted_path:
            attrs.append('color="blue"')
        if atom_id.is_ingress_only:
            attrs.append("shape=box")
        lines.append(f"  {_atom_node_id(atom_id)} [{' '.join(attrs)}];")
    for a, b in graph.edges():
        lines.append(f"  {_atom_node_id(a)} -- {_atom_node_id(b)};")
    lines.append("}")
    return "\n".join(lines)


def placement_to_dot(graph: SequencingGraph, placement: Placement) -> str:
    """DOT with atoms clustered by their sequencing node (machine)."""
    lines = [
        "graph placement {",
        "  rankdir=LR;",
        '  node [shape=ellipse, fontname="monospace"];',
    ]
    for node in placement.nodes:
        label = f"node {node.node_id}"
        if node.machine is not None:
            label += f" @ router {node.machine}"
        if node.ingress_only:
            label += " (ingress)"
        lines.append(f"  subgraph cluster_{node.node_id} {{")
        lines.append(f'    label="{label}";')
        for atom_id in sorted(node.atom_ids):
            style = " [style=dashed]" if atom_id in graph.retired else ""
            lines.append(f"    {_atom_node_id(atom_id)}{style};")
        lines.append("  }")
    for a, b in graph.edges():
        lines.append(f"  {_atom_node_id(a)} -- {_atom_node_id(b)};")
    lines.append("}")
    return "\n".join(lines)
