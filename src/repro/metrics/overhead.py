"""Per-message ordering-metadata overhead (paper Sections 2 and 4.4).

"Unlike vector timestamp approaches, the additional information we append
to each message does not depend on the size of the destination group and
is proportional, in the worst case, to the number of groups."

These helpers quantify that comparison: the stamp of a message to group G
carries one entry per sequencing atom of G (bounded by the number of
groups), while a vector timestamp carries one entry per node in the
system.  "Our sequencer-based approach is attractive whenever the number
of nodes exceeds the number of groups."
"""

from typing import Dict

from repro.core.messages import (
    ATOM_ENTRY_BYTES,
    HEADER_BYTES,
    vector_timestamp_bytes,
)
from repro.core.sequencing_graph import SequencingGraph


def stamp_overhead_bytes(graph: SequencingGraph) -> Dict[int, int]:
    """Delivered-stamp size in bytes for each group's messages."""
    return {
        group: HEADER_BYTES + ATOM_ENTRY_BYTES * len(graph.atoms_of_group(group))
        for group in graph.groups()
    }


def worst_case_stamp_entries(graph: SequencingGraph) -> int:
    """Most sequence numbers any group's messages must carry."""
    groups = graph.groups()
    if not groups:
        return 0
    return max(len(graph.atoms_of_group(group)) for group in groups)


def overhead_ratio_vs_vector(graph: SequencingGraph, n_nodes: int) -> float:
    """Worst-case stamp bytes / vector-timestamp bytes (< 1 means we win)."""
    worst = HEADER_BYTES + ATOM_ENTRY_BYTES * worst_case_stamp_entries(graph)
    return worst / vector_timestamp_bytes(n_nodes)
