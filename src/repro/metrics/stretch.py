"""Latency stretch and relative delay penalty (paper Sections 4.2).

*Latency stretch* is "the ratio between the time taken for a message to
traverse the network using the sequencers and the time taken using the
direct unicast path".  Per the paper's methodology, each node sends one
message to each of its groups; per-(sender, destination) ratios are
averaged and indexed by destination node (Figure 3 plots their CDF).

The *relative delay penalty* (RDP, after Chu et al.) is the same ratio
kept per sender–destination pair and plotted against the pair's unicast
delay (Figure 4) — showing that nearby pairs pay the largest relative
penalty.
"""

from typing import Dict, List, Tuple

from repro.core.protocol import OrderingFabric


def _pair_ratios(fabric: OrderingFabric) -> List[Tuple[int, int, float, float]]:
    """``(sender, dest, unicast_delay, ratio)`` per delivered message."""
    rows: List[Tuple[int, int, float, float]] = []
    for host_id, process in fabric.host_processes.items():
        for record in process.delivered:
            sequenced = record.time - record.publish_time
            unicast = fabric.unicast_delay(record.sender, host_id)
            if unicast <= 0:
                continue
            rows.append((record.sender, host_id, unicast, sequenced / unicast))
    return rows


def latency_stretch_by_destination(fabric: OrderingFabric) -> Dict[int, float]:
    """Average sequencing/unicast delay ratio per destination node.

    Run the fabric to quiescence first; every delivered message
    contributes one ratio to its destination's average.
    """
    sums: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    for _sender, dest, _unicast, ratio in _pair_ratios(fabric):
        sums[dest] = sums.get(dest, 0.0) + ratio
        counts[dest] = counts.get(dest, 0) + 1
    return {dest: sums[dest] / counts[dest] for dest in sums}


def delivery_latencies(fabric: OrderingFabric) -> List[float]:
    """Raw publish-to-deliver latencies of every delivered message copy.

    Used by the throughput and failure benchmarks for percentile
    reporting.
    """
    return [
        record.time - record.publish_time
        for process in fabric.host_processes.values()
        for record in process.delivered
    ]


def rdp_by_pair(fabric: OrderingFabric) -> List[Tuple[float, float]]:
    """``(unicast_delay, rdp)`` scatter points per sender–destination pair.

    When a pair exchanged several messages, their ratios are averaged so
    each pair contributes one point, as in Figure 4.
    """
    sums: Dict[Tuple[int, int], Tuple[float, float, int]] = {}
    for sender, dest, unicast, ratio in _pair_ratios(fabric):
        total_unicast, total_ratio, count = sums.get((sender, dest), (0.0, 0.0, 0))
        sums[(sender, dest)] = (total_unicast + unicast, total_ratio + ratio, count + 1)
    return sorted(
        (total_unicast / count, total_ratio / count)
        for total_unicast, total_ratio, count in sums.values()
    )
