"""Small statistics helpers shared by metrics and experiments."""

from typing import Dict, List, Sequence, Tuple

import numpy as np


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) with linear interpolation."""
    if not len(values):
        raise ValueError("percentile of empty sequence")
    return float(np.percentile(np.asarray(values, dtype=float), q))


def cdf(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as sorted ``(value, fraction <= value)`` points."""
    if not len(values):
        return []
    ordered = np.sort(np.asarray(values, dtype=float))
    n = len(ordered)
    return [(float(v), (i + 1) / n) for i, v in enumerate(ordered)]


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Mean / percentiles / extrema summary of a sample."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ValueError("summary of empty sequence")
    return {
        "mean": float(array.mean()),
        "min": float(array.min()),
        "p10": float(np.percentile(array, 10)),
        "p50": float(np.percentile(array, 50)),
        "p90": float(np.percentile(array, 90)),
        "max": float(array.max()),
    }


def cdf_at(values: Sequence[float], thresholds: Sequence[float]) -> List[float]:
    """Fraction of samples <= each threshold (CDF sampled at points)."""
    array = np.sort(np.asarray(values, dtype=float))
    return [float(np.searchsorted(array, t, side="right")) / len(array) for t in thresholds]


def mean_confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float, float]:
    """``(mean, low, high)`` with a Student-t confidence interval.

    For a single sample the interval degenerates to the point itself.
    """
    from scipy import stats as scipy_stats

    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ValueError("confidence interval of empty sequence")
    mean = float(array.mean())
    if array.size == 1:
        return (mean, mean, mean)
    sem = float(scipy_stats.sem(array))
    if sem == 0:
        return (mean, mean, mean)
    half = sem * float(scipy_stats.t.ppf((1 + confidence) / 2, array.size - 1))
    return (mean, mean - half, mean + half)
