"""Metrics used by the paper's evaluation (Section 4).

* :mod:`repro.metrics.stats` — CDFs, percentiles, summaries.
* :mod:`repro.metrics.stretch` — latency stretch (Fig. 3) and relative
  delay penalty per sender–destination pair (Fig. 4).
* :mod:`repro.metrics.stress` — sequencing-node counts (Fig. 5), node
  stress (Fig. 6), atoms-on-path ratios (Fig. 7), and double-overlap
  counts (Fig. 8).
* :mod:`repro.metrics.overhead` — per-message ordering-metadata size
  versus vector timestamps (the Section 4.4 comparison).
"""

from repro.metrics.overhead import stamp_overhead_bytes, worst_case_stamp_entries
from repro.metrics.stats import cdf, percentile, summarize
from repro.metrics.stress import (
    atoms_on_path_ratios,
    double_overlap_count,
    node_stress,
    sequencing_node_count,
)
from repro.metrics.stretch import latency_stretch_by_destination, rdp_by_pair

__all__ = [
    "atoms_on_path_ratios",
    "cdf",
    "double_overlap_count",
    "latency_stretch_by_destination",
    "node_stress",
    "percentile",
    "rdp_by_pair",
    "sequencing_node_count",
    "stamp_overhead_bytes",
    "summarize",
    "worst_case_stamp_entries",
]
