"""Static sequencing-network metrics (paper Sections 4.3–4.5).

These metrics are properties of the sequencing graph and its placement,
independent of any simulated message flow:

* **sequencing-node count** (Fig. 5): number of sequencing nodes hosting
  non-ingress-only sequencers.
* **node stress** (Fig. 6): per node, the fraction of all groups whose
  messages the node forwards (stamped or passed through).
* **atoms on path** (Fig. 7): per group, the number of sequence numbers a
  message collects relative to the host population — the overhead that
  must stay below vector-timestamp size for the approach to win.
* **double-overlap count** (Fig. 8): raw number of group pairs needing a
  sequencing atom.
"""

from typing import Dict, List

from repro.core.placement import Placement
from repro.core.sequencing_graph import SequencingGraph
from repro.pubsub.membership import GroupMembership


def sequencing_node_count(placement: Placement) -> int:
    """Number of non-ingress-only sequencing nodes (Figure 5)."""
    return len(placement.sequencing_nodes(include_ingress_only=False))


def node_stress(graph: SequencingGraph, placement: Placement) -> List[float]:
    """Stress of each non-ingress-only sequencing node (Figure 6).

    "We define the stress of a sequencing node as the ratio between the
    number of groups for which it has to forward messages and the total
    number of groups."  A node forwards for a group when any atom it hosts
    lies on the group's path (including pass-through atoms).
    """
    total_groups = len(graph.groups())
    if total_groups == 0:
        return []
    groups_forwarded: Dict[int, set] = {}
    for group in graph.groups():
        for atom_id in graph.group_path(group):
            node = placement.node_of(atom_id)
            if node.ingress_only:
                continue
            groups_forwarded.setdefault(node.node_id, set()).add(group)
    return [
        len(groups_forwarded.get(node.node_id, ())) / total_groups
        for node in placement.sequencing_nodes(include_ingress_only=False)
    ]


def atoms_on_path_ratios(graph: SequencingGraph, n_hosts: int) -> List[float]:
    """Per group: sequence numbers collected / total nodes (Figure 7).

    Counts the atoms that *stamp* a group's messages (its own atoms — the
    sequence numbers a message must carry), which is the figure's message-
    overhead interpretation; pass-through atoms add hops but no overhead.
    """
    if n_hosts <= 0:
        raise ValueError(f"n_hosts must be positive, got {n_hosts}")
    return [
        len(graph.atoms_of_group(group)) / n_hosts for group in graph.groups()
    ]


def path_lengths(graph: SequencingGraph) -> Dict[int, int]:
    """Full path length (atoms traversed, incl. pass-through) per group."""
    return {group: len(graph.group_path(group)) for group in graph.groups()}


def double_overlap_count(graph: SequencingGraph) -> int:
    """Number of active overlap atoms (= double overlaps; Figure 8)."""
    return len(graph.overlap_atoms(include_retired=False))


def max_receiver_group_load(membership: GroupMembership) -> int:
    """Most groups any single subscriber belongs to.

    The paper's scalability bound: every group a sequencing node forwards
    shares a member, so that member's subscription count upper-bounds the
    node's group load (Section 4.3).
    """
    nodes = membership.nodes()
    if not nodes:
        return 0
    return max(len(membership.groups_of(node)) for node in nodes)


def node_group_loads(graph: SequencingGraph, placement: Placement) -> List[int]:
    """Groups forwarded per non-ingress-only node (absolute counts)."""
    total_groups = len(graph.groups())
    stresses = node_stress(graph, placement)
    return [round(stress * total_groups) for stress in stresses]
