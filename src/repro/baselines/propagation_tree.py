"""Propagation-tree total-order baseline (Garcia-Molina & Spauster [14]).

The closest related work to the paper: messages are ordered *by the
destination nodes themselves* while being distributed down a fixed tree.
All subscriber hosts are arranged in a single tree with the most-
subscribed hosts nearest the root (the original work sequences messages
at "the destination nodes that subscribe to the most groups").  A message
to group G is injected at the lowest common ancestor of G's members and
forwarded down the subtree toward the members, each node forwarding in
arrival order over FIFO channels.

Why this is consistent: for two groups sharing members, both groups' LCAs
are ancestors of every shared member, hence comparable (on one root
path); the deeper LCA lies on both propagation paths, and FIFO forwarding
propagates its arrival order down to the shared members, so they deliver
in the same order.

What the paper improves on: here sequencing is fused with distribution,
so destination nodes forward and order messages for groups they do not
subscribe to, and interior nodes see load proportional to their whole
subtree's traffic.  The comparison benchmark measures that forwarding
load against sequencing-atom load.
"""

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.baselines.common import BaselineFabric, BaselineHostProcess
from repro.core.messages import HEADER_BYTES, Stamp
from repro.pubsub.membership import GroupMembership


@dataclass
class _TreeMessage:
    stamp: Stamp
    payload: Any
    msg_id: int
    sender: int
    publish_time: float
    group: int

    def size_bytes(self) -> int:
        return HEADER_BYTES


class _TreeHostProcess(BaselineHostProcess):
    """A destination node that forwards down the tree, then delivers."""

    def __init__(self, sim, host, fabric):
        super().__init__(sim, host, fabric)
        self.forwarded = 0

    def handle(self, payload: Any) -> None:
        fabric: PropagationTreeFabric = self.fabric
        members = fabric.membership.members(payload.group)
        for child in fabric.children_toward(self.host.host_id, payload.group):
            self.forwarded += 1
            dst = fabric.host_processes[child]
            channel = fabric.channel_between(
                self, dst, fabric.host_delay(self.host.host_id, child)
            )
            channel.send(payload, payload.size_bytes())
        if self.host.host_id in members:
            self.deliver(payload)


class PropagationTreeFabric(BaselineFabric):
    """Total order via a fixed propagation tree over subscriber hosts."""

    host_process_cls = _TreeHostProcess

    def __init__(
        self,
        membership: GroupMembership,
        hosts,
        routing,
        trace: bool = True,
    ):
        super().__init__(membership, hosts, routing, trace=trace)
        # Heap-shaped tree over hosts ordered by subscription count (desc):
        # position i's children are 2i+1 and 2i+2; busiest hosts at the top.
        ordered = sorted(
            (h.host_id for h in hosts),
            key=lambda hid: (-len(membership.groups_of(hid)), hid),
        )
        self._order: List[int] = ordered
        self._pos: Dict[int, int] = {hid: i for i, hid in enumerate(ordered)}
        self._entry_cache: Dict[int, int] = {}
        self._subtree_cache: Dict[int, Dict[int, List[int]]] = {}
        self._seq = 0

    # -- tree helpers ---------------------------------------------------

    def parent(self, host_id: int) -> Optional[int]:
        """Tree parent of a host, ``None`` at the root."""
        pos = self._pos[host_id]
        if pos == 0:
            return None
        return self._order[(pos - 1) // 2]

    def _ancestors(self, host_id: int) -> List[int]:
        """Root path of a host, inclusive, root first."""
        path = [host_id]
        while True:
            parent = self.parent(path[-1])
            if parent is None:
                break
            path.append(parent)
        path.reverse()
        return path

    def entry_node(self, group: int) -> int:
        """Lowest common ancestor of the group's members in the tree."""
        cached = self._entry_cache.get(group)
        if cached is not None:
            return cached
        members = sorted(self.membership.members(group))
        paths = [self._ancestors(m) for m in members]
        lca = paths[0][0]
        for depth in range(min(len(p) for p in paths)):
            step = paths[0][depth]
            if all(p[depth] == step for p in paths):
                lca = step
            else:
                break
        self._entry_cache[group] = lca
        return lca

    def children_toward(self, host_id: int, group: int) -> List[int]:
        """Tree children of ``host_id`` on paths toward group members."""
        per_group = self._subtree_cache.setdefault(group, {})
        if host_id in per_group:
            return per_group[host_id]
        children: List[int] = []
        entry = self.entry_node(group)
        for member in self.membership.members(group):
            path = self._ancestors(member)
            if host_id not in path or entry not in path:
                continue
            index = path.index(host_id)
            if index < path.index(entry):
                continue  # above the entry node: not on the propagation path
            if index + 1 < len(path):
                child = path[index + 1]
                if child not in children:
                    children.append(child)
        children.sort()
        per_group[host_id] = children
        return children

    # -- protocol ----------------------------------------------------------

    def publish(self, sender: int, group: int, payload: Any = None) -> int:
        """Send to the group's entry node; the tree does the rest."""
        if not self.membership.has_group(group):
            raise KeyError(f"no such group {group}")
        self._seq += 1
        msg = _TreeMessage(
            stamp=Stamp(group=group, group_seq=self._seq),
            payload=payload,
            msg_id=self.next_msg_id(),
            sender=sender,
            publish_time=self.sim.now,
            group=group,
        )
        self.trace.record(self.sim.now, "publish", msg=msg.msg_id, group=group, sender=sender)
        entry = self.entry_node(group)
        src = self.host_processes[sender]
        dst = self.host_processes[entry]
        if sender == entry:
            self.sim.schedule(0.01, dst.receive, msg, None)
        else:
            channel = self.channel_between(src, dst, self.host_delay(sender, entry))
            channel.send(msg, msg.size_bytes())
        return msg.msg_id

    def forwarding_load(self) -> Dict[int, int]:
        """Messages forwarded per host (interior-node burden)."""
        return {
            host_id: process.forwarded
            for host_id, process in self.host_processes.items()
        }
