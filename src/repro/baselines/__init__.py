"""Baseline ordering protocols the paper positions against (Section 2).

* :mod:`repro.baselines.central_sequencer` — the classic asymmetric
  solution: one coordinator sequences every message.  Simple, but the
  sequencer's load grows with total system traffic and it is a single
  point of failure — the paper's motivating foil.
* :mod:`repro.baselines.vector_clock` — the symmetric solution: causal
  delivery from vector timestamps (Birman–Schiper–Stephenson style).
  Decentralized, but every message carries a vector whose size grows with
  the node population — the overhead foil of Section 4.4.
* :mod:`repro.baselines.propagation_tree` — Garcia-Molina & Spauster's
  propagation trees [14], the closest related work: total order built by
  forwarding messages down a fixed tree of destination nodes, sequencing
  overlapped with distribution.

All baselines expose the same surface as
:class:`~repro.core.protocol.OrderingFabric` — ``publish`` / ``run`` /
``delivered`` / ``unicast_delay`` — so the comparison benchmarks drive
them interchangeably.
"""

from repro.baselines.central_sequencer import CentralSequencerFabric
from repro.baselines.propagation_tree import PropagationTreeFabric
from repro.baselines.vector_clock import VectorClockFabric

__all__ = [
    "CentralSequencerFabric",
    "PropagationTreeFabric",
    "VectorClockFabric",
]
