"""Shared scaffolding for baseline ordering fabrics.

Each baseline wires host processes over the same simulator/topology
substrate as the main protocol, so latency and load comparisons are
apples-to-apples.  The :class:`BaselineFabric` base class owns the
simulator, the network, host registration, delay computation, and the
delivery bookkeeping; subclasses implement their protocol's ``publish``.
"""

from typing import Any, Dict, List, Optional

from repro.core.protocol import DeliveryRecord
from repro.core.messages import Stamp
from repro.pubsub.membership import GroupMembership
from repro.sim.events import Simulator
from repro.sim.network import Channel, Network
from repro.sim.processes import Process
from repro.sim.trace import Trace
from repro.topology.clusters import Host
from repro.topology.routing import RoutingTable


class BaselineHostProcess(Process):
    """A host that records deliveries in arrival order.

    Baselines whose channels guarantee consistent arrival order (central
    sequencer, propagation tree) deliver on arrival; protocol-specific
    hosts override :meth:`handle` for more elaborate delivery rules.
    """

    def __init__(self, sim: Simulator, host: Host, fabric: "BaselineFabric"):
        super().__init__(sim, ("host", host.host_id))
        self.host = host
        self.fabric = fabric
        self.delivered: List[DeliveryRecord] = []

    def receive(self, payload: Any, channel: Channel) -> None:
        self.handle(payload)

    def handle(self, payload: Any) -> None:
        self.deliver(payload)

    def deliver(self, payload: Any) -> None:
        """Record a delivery; payload must quack like a delivery event."""
        record = DeliveryRecord(
            time=self.sim.now,
            stamp=payload.stamp,
            payload=payload.payload,
            msg_id=payload.msg_id,
            sender=payload.sender,
            publish_time=payload.publish_time,
        )
        self.delivered.append(record)
        self.fabric.trace.record(
            self.sim.now,
            "deliver",
            host=self.host.host_id,
            msg=record.msg_id,
            group=record.stamp.group,
            sender=record.sender,
            publish_time=record.publish_time,
        )


class BaselineFabric:
    """Base class: simulator + network + hosts + delivery records."""

    host_process_cls = BaselineHostProcess

    def __init__(
        self,
        membership: GroupMembership,
        hosts: List[Host],
        routing: RoutingTable,
        trace: bool = True,
    ):
        self.membership = membership
        self.hosts = hosts
        self.routing = routing
        self.sim = Simulator()
        self.network = Network(self.sim)
        self.trace = Trace(enabled=trace)
        self._host_by_id = {h.host_id: h for h in hosts}
        self.host_processes: Dict[int, BaselineHostProcess] = {}
        for host in hosts:
            process = self.host_process_cls(self.sim, host, self)
            self.network.add_process(process)
            self.host_processes[host.host_id] = process
        self._next_msg_id = 0

    # -- plumbing shared by subclasses ------------------------------------

    def next_msg_id(self) -> int:
        """Allocate a fabric-unique message id."""
        msg_id = self._next_msg_id
        self._next_msg_id += 1
        return msg_id

    def host_delay(self, a: int, b: int) -> float:
        """Host-to-host delay: access links plus shortest router path."""
        ha, hb = self._host_by_id[a], self._host_by_id[b]
        if a == b:
            return 2 * ha.access_delay
        return ha.access_delay + self.routing.delay(ha.router, hb.router) + hb.access_delay

    def channel_between(self, src: Process, dst: Process, delay: float) -> Channel:
        """Create-or-fetch a channel with an explicit delay."""
        try:
            return self.network.channel(src.name, dst.name)
        except KeyError:
            return self.network.connect(src.name, dst.name, max(delay, 0.01))

    def make_stamp(self, group: int, seq: int) -> Stamp:
        """A minimal stamp carrying the baseline's sequence number."""
        return Stamp(group=group, group_seq=seq)

    # -- common public surface ---------------------------------------------

    def publish(self, sender: int, group: int, payload: Any = None) -> int:
        raise NotImplementedError

    def run(self, until: Optional[float] = None) -> int:
        """Drive the simulation to quiescence (or ``until``)."""
        return self.sim.run(until=until)

    def delivered(self, host_id: int) -> List[DeliveryRecord]:
        """Messages delivered to a host, in delivery order."""
        return list(self.host_processes[host_id].delivered)

    def unicast_delay(self, sender: int, dest: int) -> float:
        """Baseline shortest-path delay between two hosts."""
        return self.host_delay(sender, dest)
