"""Vector-timestamp causal multicast baseline (symmetric approach).

ISIS-style CBCAST with **per-group vector clocks**: every group ``g``
carries a vector over its members; each member keeps one clock per
subscribed group.  A message from sender ``s`` to group ``g`` carries
``VT(m)`` (g's vector at the sender after incrementing its own entry), and
a receiver delivers when

* ``VT(m)[s] == VC_g[s] + 1``  (next message from that sender in g), and
* ``VT(m)[k] <= VC_g[k]`` for all other members ``k``.

Messages travel directly from publisher to subscribers on shortest paths —
fully decentralized, no sequencers — but each message carries a vector
whose size is **proportional to the group size**, and a system-wide causal
order would need a vector over all nodes.  This is exactly the overhead
the paper contrasts with its per-group stamps (Sections 2 and 4.4: "the
additional information we append to each message does not depend on the
size of the destination group", and the approach beats "system-wide vector
timestamps" whenever nodes outnumber groups).

Semantics versus the paper's protocol: delivery here is *causal within
each group* but gives no cross-group consistency — two receivers sharing
two groups may deliver concurrent messages to those groups in different
orders.  The ordering-consistency benchmark quantifies how often that
happens; it is the anomaly sequencing atoms exist to prevent.
"""

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.baselines.common import BaselineFabric, BaselineHostProcess
from repro.core.messages import HEADER_BYTES, VECTOR_ENTRY_BYTES, Stamp
from repro.pubsub.membership import GroupMembership


@dataclass
class _VcMessage:
    stamp: Stamp
    payload: Any
    msg_id: int
    sender: int
    publish_time: float
    #: the destination group's vector clock at send time: member -> count
    vector: Tuple[Tuple[int, int], ...]

    def size_bytes(self) -> int:
        return HEADER_BYTES + VECTOR_ENTRY_BYTES * len(self.vector)


class _VcHostProcess(BaselineHostProcess):
    """Host with per-group vector clocks and a causal hold-back queue."""

    def __init__(self, sim, host, fabric):
        super().__init__(sim, host, fabric)
        #: group -> {member -> delivered-count}
        self.clocks: Dict[int, Dict[int, int]] = {}
        self._holdback: List[_VcMessage] = []

    def init_group(self, group: int, members) -> None:
        self.clocks[group] = {member: 0 for member in sorted(members)}

    def _deliverable(self, msg: _VcMessage) -> bool:
        clock = self.clocks[msg.stamp.group]
        for member, count in msg.vector:
            if member == msg.sender:
                if count != clock[member] + 1:
                    return False
            elif count > clock[member]:
                return False
        return True

    def handle(self, payload: Any) -> None:
        self._holdback.append(payload)
        progress = True
        while progress:
            progress = False
            for index, msg in enumerate(self._holdback):
                if self._deliverable(msg):
                    del self._holdback[index]
                    clock = self.clocks[msg.stamp.group]
                    for member, count in msg.vector:
                        clock[member] = max(clock[member], count)
                    self.deliver(msg)
                    progress = True
                    break

    @property
    def pending(self) -> int:
        return len(self._holdback)


class VectorClockFabric(BaselineFabric):
    """Causal multicast with per-group vector timestamps."""

    host_process_cls = _VcHostProcess

    def __init__(
        self,
        membership: GroupMembership,
        hosts,
        routing,
        trace: bool = True,
    ):
        super().__init__(membership, hosts, routing, trace=trace)
        for group in membership.groups():
            for member in membership.members(group):
                self.host_processes[member].init_group(
                    group, membership.members(group)
                )
        #: per-sender send counters per group (the sender-side clock entry)
        self._sent: Dict[Tuple[int, int], int] = {}

    def publish(self, sender: int, group: int, payload: Any = None) -> int:
        """Multicast to the group with its incremented vector timestamp."""
        if sender not in self.membership.members(group):
            raise ValueError(
                "causal multicast requires the sender to be a group member "
                f"(host {sender}, group {group})"
            )
        src = self.host_processes[sender]
        clock = dict(src.clocks[group])
        clock[sender] = self._sent.get((sender, group), 0) + 1
        self._sent[(sender, group)] = clock[sender]
        msg = _VcMessage(
            stamp=Stamp(group=group, group_seq=clock[sender]),
            payload=payload,
            msg_id=self.next_msg_id(),
            sender=sender,
            publish_time=self.sim.now,
            vector=tuple(sorted(clock.items())),
        )
        self.trace.record(self.sim.now, "publish", msg=msg.msg_id, group=group, sender=sender)
        for member in sorted(self.membership.members(group)):
            if member == sender:
                # The local copy goes through the same causal machinery.
                self.sim.schedule(0.01, src.receive, msg, None)
                continue
            dst = self.host_processes[member]
            channel = self.channel_between(src, dst, self.host_delay(sender, member))
            channel.send(msg, msg.size_bytes())
        return msg.msg_id

    def pending_messages(self) -> Dict[int, int]:
        """Hosts with messages stuck in causal hold-back (diagnostics)."""
        return {
            host_id: process.pending
            for host_id, process in self.host_processes.items()
            if process.pending
        }

    def bytes_for_group(self, group: int) -> int:
        """Wire size of the ordering metadata on a message to ``group``."""
        return HEADER_BYTES + VECTOR_ENTRY_BYTES * len(self.membership.members(group))
