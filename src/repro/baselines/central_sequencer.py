"""Centralized sequencer baseline.

The classic asymmetric ordering protocol: every publisher sends its
message to one coordinator, which assigns a global sequence number and
forwards the message to the destination group's members.  Delivery order
is the coordinator's processing order; since all coordinator→member
channels are FIFO, members of common groups trivially agree.

This is the design the paper argues against for scale: the coordinator
handles *every* message in the system (its load grows with total traffic,
not with any receiver's traffic) and is a single point of failure.  The
comparison benchmark quantifies the load gap against sequencing atoms.
"""

from dataclasses import dataclass
from typing import Any, Optional

from repro.baselines.common import BaselineFabric
from repro.core.messages import HEADER_BYTES, Stamp
from repro.pubsub.membership import GroupMembership
from repro.sim.network import Channel
from repro.sim.processes import Process
from repro.topology.clusters import Host
from repro.topology.routing import RoutingTable


@dataclass
class _SequencedMessage:
    stamp: Stamp
    payload: Any
    msg_id: int
    sender: int
    publish_time: float

    def size_bytes(self) -> int:
        return HEADER_BYTES


class _CoordinatorProcess(Process):
    """The single sequencer: stamp with a global number, fan out.

    With a positive ``service_time`` the coordinator is a single FIFO
    server — the bottleneck model used by the throughput benchmark.
    """

    def __init__(
        self,
        sim,
        router: int,
        fabric: "CentralSequencerFabric",
        service_time: float = 0.0,
    ):
        super().__init__(sim, ("coordinator", 0))
        self.router = router
        self.fabric = fabric
        self.service_time = service_time
        self.global_seq = 0
        self.messages_sequenced = 0
        self._busy_until = 0.0
        self.queue_high_water = 0
        self._queued = 0

    def receive(self, payload: Any, channel: Channel) -> None:
        if self.service_time <= 0:
            self._sequence(payload)
            return
        start = max(self.sim.now, self._busy_until)
        self._busy_until = start + self.service_time
        self._queued += 1
        self.queue_high_water = max(self.queue_high_water, self._queued)
        self.sim.schedule_at(self._busy_until, self._complete, payload)

    def _complete(self, payload: Any) -> None:
        self._queued -= 1
        self._sequence(payload)

    def _sequence(self, payload: Any) -> None:
        self.global_seq += 1
        self.messages_sequenced += 1
        payload.stamp = Stamp(group=payload.stamp.group, group_seq=self.global_seq)
        self.fabric._fan_out(payload)


class CentralSequencerFabric(BaselineFabric):
    """Coordinator-ordered pub/sub over the shared simulation substrate.

    Parameters
    ----------
    membership, hosts, routing:
        Shared substrate, as for the main protocol's fabric.
    coordinator_router:
        Router hosting the coordinator.  By default the host router with
        the smallest mean delay to all other host routers (the kindest
        possible coordinator placement, making the baseline comparison
        conservative).
    service_time:
        Per-message processing time at the coordinator, in milliseconds
        (0 = infinitely fast coordinator).
    """

    def __init__(
        self,
        membership: GroupMembership,
        hosts,
        routing: RoutingTable,
        coordinator_router: Optional[int] = None,
        trace: bool = True,
        service_time: float = 0.0,
    ):
        super().__init__(membership, hosts, routing, trace=trace)
        if coordinator_router is None:
            coordinator_router = self._best_router()
        self.coordinator = _CoordinatorProcess(
            self.sim, coordinator_router, self, service_time=service_time
        )
        self.network.add_process(self.coordinator)

    def _best_router(self) -> int:
        """Host router minimizing mean delay to every other host router."""
        routers = sorted({h.router for h in self.hosts})
        best_router = routers[0]
        best_mean = None
        for candidate in routers:
            delays = self.routing.delays_from(candidate)
            mean = sum(float(delays[r]) for r in routers) / len(routers)
            if best_mean is None or mean < best_mean:
                best_mean = mean
                best_router = candidate
        return best_router

    def _host_coord_delay(self, host: Host) -> float:
        return host.access_delay + self.routing.delay(host.router, self.coordinator.router)

    def publish(self, sender: int, group: int, payload: Any = None) -> int:
        """Send a message to the coordinator for global sequencing."""
        if not self.membership.has_group(group):
            raise KeyError(f"no such group {group}")
        msg = _SequencedMessage(
            stamp=Stamp(group=group, group_seq=0),
            payload=payload,
            msg_id=self.next_msg_id(),
            sender=sender,
            publish_time=self.sim.now,
        )
        self.trace.record(self.sim.now, "publish", msg=msg.msg_id, group=group, sender=sender)
        src = self.host_processes[sender]
        channel = self.channel_between(src, self.coordinator, self._host_coord_delay(src.host))
        channel.send(msg, msg.size_bytes())
        return msg.msg_id

    def _fan_out(self, msg: _SequencedMessage) -> None:
        for member in sorted(self.membership.members(msg.stamp.group)):
            dst = self.host_processes[member]
            channel = self.channel_between(
                self.coordinator, dst, self._host_coord_delay(dst.host)
            )
            channel.send(msg, msg.size_bytes())

    def coordinator_load(self) -> int:
        """Messages the coordinator sequenced (its bottleneck figure)."""
        return self.coordinator.messages_sequenced
