"""Receiver-side deliver-or-buffer decision (paper Sections 3.1, 3.3).

"Any destination node can make an instant and deterministic decision of
whether to deliver an arriving message to the application or to buffer it."

A receiver tracks one expected counter per subscribed group (group-local
sequence space — gap-free, since every member receives every group message)
and one per *relevant* atom, i.e. every atom whose overlap contains the
receiver (it subscribes to both overlapped groups, so it observes the
atom's entire sequence space gap-free).  A message is deliverable exactly
when its group-local number and every relevant atom number on its stamp
match the expected counters.  Theorem 1 guarantees this never deadlocks
and that all members of a group deliver in the same order.

Deliverability doubles as the paper's commit signal: a deliverable message
is known to have no delayed predecessors.

Beyond the yes/no decision, the state can *explain* it:
:meth:`DeliveryState.blocking_of` names the exact sequence-space gap —
``(atom_id, expected_seq)`` or the group-local counter — that forces a
buffer, and the ``on_buffer``/``on_drain`` observers surface every
buffering and every buffer release (with the arrival that triggered it)
to the forensics layer (:mod:`repro.obs.forensics`).
"""

from typing import Callable, Dict, Iterable, List, NamedTuple, Optional, Tuple

from repro.core.messages import AtomId, Stamp


class Blocking(NamedTuple):
    """The first unmet constraint forcing a message into the buffer.

    Attributes
    ----------
    kind:
        ``"group"`` when the group-local sequence number is ahead of the
        receiver's counter, ``"atom"`` when a relevant atom's number is.
    key:
        Stable string key of the blocked sequence space: ``"group:<g>"``
        or the atom's ``repr`` (e.g. ``"Q(0,1)"``).
    have:
        The sequence number the buffered message carries in that space.
    expected:
        The number the receiver is still waiting for — the missing
        predecessor's number, i.e. the gap itself.
    """

    kind: str
    key: str
    have: int
    expected: int


class DeliveryState:
    """Per-receiver ordering state.

    Parameters
    ----------
    host_id:
        The receiver (for diagnostics).
    groups:
        Groups the receiver subscribes to.
    relevant_atoms:
        Atoms whose overlap contains the receiver; their sequence numbers
        gate delivery.  Stamp entries from other atoms are ignored ("the
        rest need only use the group-local sequence number").
    """

    def __init__(
        self,
        host_id: int,
        groups: Iterable[int],
        relevant_atoms: Iterable[AtomId],
    ):
        self.host_id = host_id
        self._expected_group: Dict[int, int] = {g: 1 for g in groups}
        self._expected_atom: Dict[AtomId, int] = {a: 1 for a in relevant_atoms}
        self._buffer: List[Tuple[Stamp, object]] = []
        self.delivered_count = 0
        self.buffered_high_water = 0
        #: optional observer called with the new buffer depth after every
        #: size change — lets :mod:`repro.obs` keep live occupancy gauges
        #: without polling (None = no overhead beyond one attribute check)
        self.on_occupancy: Optional[Callable[[int], None]] = None
        #: optional observer called when an arrival is buffered, with the
        #: arrival's stamp, its payload, and the :class:`Blocking` gap
        self.on_buffer: Optional[Callable[[Stamp, object, Blocking], None]] = None
        #: optional observer called for every message *released from the
        #: buffer* (not the immediately-delivered arrival), with the
        #: released stamp/payload and the stamp/payload of the arrival
        #: whose processing triggered the drain cascade
        self.on_drain: Optional[
            Callable[[Stamp, object, Stamp, object], None]
        ] = None

    def resume_from(
        self,
        group_next: Dict[int, int],
        atom_next: Dict[AtomId, int],
    ) -> None:
        """Align expected counters with continuing sequence spaces.

        Used by :mod:`repro.core.reconfigure` when a fabric is rebuilt
        after a membership change: surviving groups and atoms keep their
        sequence spaces, so receivers — including ones that just joined —
        must expect the *next* number in each space rather than 1.
        Unknown keys are ignored (the receiver is not subscribed/relevant).
        """
        if self._buffer:
            raise ValueError(
                f"host {self.host_id} has buffered messages; resume only "
                "from a quiescent state"
            )
        for group, expected in group_next.items():
            if group in self._expected_group:
                self._expected_group[group] = expected
        for atom_id, expected in atom_next.items():
            if atom_id in self._expected_atom:
                self._expected_atom[atom_id] = expected

    # ------------------------------------------------------------------

    def subscribes_to(self, group: int) -> bool:
        """Whether this receiver tracks the given group."""
        return group in self._expected_group

    def _relevant_entries(self, stamp: Stamp) -> List[Tuple[AtomId, int]]:
        return [
            (atom_id, seq)
            for atom_id, seq in stamp.atom_seqs
            if atom_id in self._expected_atom
        ]

    def deliverable(self, stamp: Stamp) -> bool:
        """The instant deliver-or-buffer decision for one stamp."""
        if stamp.group not in self._expected_group:
            raise KeyError(
                f"host {self.host_id} received message for unsubscribed "
                f"group {stamp.group}"
            )
        if stamp.group_seq != self._expected_group[stamp.group]:
            return False
        return all(
            seq == self._expected_atom[atom_id]
            for atom_id, seq in self._relevant_entries(stamp)
        )

    def blocking_of(self, stamp: Stamp) -> Optional[Blocking]:
        """Name the first gap blocking ``stamp``; ``None`` if deliverable.

        Constraints are checked in the same order as :meth:`deliverable`
        (group-local counter first, then relevant atoms in stamp/path
        order), so the returned gap is the one the decision tripped on.
        Several constraints may be unmet at once; re-query after each
        arrival to watch the blocking front move.
        """
        if stamp.group not in self._expected_group:
            raise KeyError(
                f"host {self.host_id} received message for unsubscribed "
                f"group {stamp.group}"
            )
        expected = self._expected_group[stamp.group]
        if stamp.group_seq != expected:
            return Blocking(
                "group", f"group:{stamp.group}", stamp.group_seq, expected
            )
        for atom_id, seq in self._relevant_entries(stamp):
            expected = self._expected_atom[atom_id]
            if seq != expected:
                return Blocking("atom", repr(atom_id), seq, expected)
        return None

    def _consume(self, stamp: Stamp) -> None:
        self._expected_group[stamp.group] += 1
        for atom_id, _ in self._relevant_entries(stamp):
            self._expected_atom[atom_id] += 1
        self.delivered_count += 1

    def on_receive(self, stamp: Stamp, payload: object = None) -> List[Tuple[Stamp, object]]:
        """Accept an arriving message; return everything now deliverable.

        The returned list is in delivery order and may include previously
        buffered messages unblocked by this arrival.  An arrival that is
        not yet deliverable is buffered and the list is empty.
        """
        delivered: List[Tuple[Stamp, object]] = []
        depth_before = len(self._buffer)
        if self.deliverable(stamp):
            self._consume(stamp)
            delivered.append((stamp, payload))
            delivered.extend(self._drain_buffer(stamp, payload))
        else:
            if self.on_buffer is not None:
                blocking = self.blocking_of(stamp)
                assert blocking is not None  # not deliverable, so a gap exists
                self.on_buffer(stamp, payload, blocking)
            self._buffer.append((stamp, payload))
            self.buffered_high_water = max(self.buffered_high_water, len(self._buffer))
        if self.on_occupancy is not None and len(self._buffer) != depth_before:
            self.on_occupancy(len(self._buffer))
        return delivered

    def _drain_buffer(
        self, by_stamp: Stamp, by_payload: object
    ) -> List[Tuple[Stamp, object]]:
        delivered: List[Tuple[Stamp, object]] = []
        progress = True
        while progress:
            progress = False
            for index, (stamp, payload) in enumerate(self._buffer):
                if self.deliverable(stamp):
                    self._consume(stamp)
                    if self.on_drain is not None:
                        self.on_drain(stamp, payload, by_stamp, by_payload)
                    delivered.append((stamp, payload))
                    del self._buffer[index]
                    progress = True
                    break
        return delivered

    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Messages currently buffered awaiting predecessors."""
        return len(self._buffer)

    def pending_stamps(self) -> List[Stamp]:
        """Stamps of buffered messages (diagnostics)."""
        return [stamp for stamp, _ in self._buffer]

    def pending_blocking(self) -> List[Tuple[Stamp, Blocking]]:
        """Each buffered stamp with the gap *currently* blocking it.

        Unlike the gap reported to ``on_buffer`` at buffering time, this
        reflects counters as of now — earlier arrivals may have satisfied
        the original constraint while a later one still blocks.  Used by
        end-of-run forensics to explain messages that never drained.
        """
        out: List[Tuple[Stamp, Blocking]] = []
        for stamp, _ in self._buffer:
            blocking = self.blocking_of(stamp)
            assert blocking is not None  # buffered, so a gap exists
            out.append((stamp, blocking))
        return out

    def expected_group_seq(self, group: int) -> int:
        """Next group-local number this receiver will accept for ``group``."""
        return self._expected_group[group]

    def __repr__(self) -> str:
        return (
            f"<DeliveryState host={self.host_id} delivered={self.delivered_count} "
            f"pending={self.pending}>"
        )
