"""Placing sequencing atoms onto machines (paper Section 3.4).

Two-step co-location of atoms onto *sequencing nodes*:

1. **Subset rule** — atoms whose overlap member-sets are in a subset
   relationship are co-located (e.g. overlap {A,B} ⊆ {A,B,C} ⇒ same node).
2. **Shared-member rule** — for each overlap not yet co-located, choose one
   of its members at random and co-locate every not-yet-co-located overlap
   containing that member.  Each atom is co-located only once.

The co-location preserves the paper's scalability goal: all groups handled
by one sequencing node share at least a member, so that member's receive
load upper-bounds the node's load.

Machine assignment then maps sequencing nodes onto physical routers, run on
behalf of each group (Section 3.4):

* if no sequencing node of the group is assigned yet, assign one at random
  (we pick the access router of a random group member — "at random" in the
  paper, anchored to the group so sequencers start near subscribers);
* otherwise, pick the closest unassigned sequencing node on the group's
  sequencing path and assign it to a machine neighboring the already
  assigned one.

Ingress-only atoms each form their own (ingress-only) sequencing node on a
random member's router; they are excluded from the Figure 5 node counts,
which the paper restricts to non-ingress-only sequencers.
"""

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set

from repro.core.messages import AtomId
from repro.core.sequencing_graph import SequencingGraph
from repro.topology.gtitm import Topology
from repro.topology.routing import RoutingTable


@dataclass
class SequencingNode:
    """A set of co-located sequencing atoms hosted by one machine.

    Attributes
    ----------
    node_id:
        Dense index of this sequencing node.
    atom_ids:
        The atoms hosted here.
    machine:
        Router id hosting this node (set by machine assignment).
    ingress_only:
        True when the node hosts only ingress-only atoms.
    """

    node_id: int
    atom_ids: List[AtomId] = field(default_factory=list)
    machine: Optional[int] = None
    ingress_only: bool = False


class Placement:
    """The complete atom -> sequencing node -> machine mapping."""

    def __init__(self, nodes: List[SequencingNode]):
        self.nodes = nodes
        self._node_of_atom: Dict[AtomId, int] = {}
        for node in nodes:
            for atom_id in node.atom_ids:
                if atom_id in self._node_of_atom:
                    raise ValueError(f"atom {atom_id} co-located twice")
                self._node_of_atom[atom_id] = node.node_id

    def node_of(self, atom_id: AtomId) -> SequencingNode:
        """Sequencing node hosting ``atom_id``."""
        return self.nodes[self._node_of_atom[atom_id]]

    def machine_of(self, atom_id: AtomId) -> int:
        """Router hosting ``atom_id``; raises if machines are unassigned."""
        machine = self.node_of(atom_id).machine
        if machine is None:
            raise ValueError(f"atom {atom_id} has no machine assigned yet")
        return machine

    def sequencing_nodes(self, include_ingress_only: bool = False) -> List[SequencingNode]:
        """Sequencing nodes, by default only non-ingress-only ones.

        Figure 5 counts "only the sequencing nodes that host non-ingress-
        only sequencers".
        """
        if include_ingress_only:
            return list(self.nodes)
        return [node for node in self.nodes if not node.ingress_only]

    def export(self) -> Dict[str, List[Dict[str, object]]]:
        """Serialize for a sequencing-graph certificate.

        Atom references use the same ``[kind, [groups]]`` encoding as
        :meth:`SequencingGraph.export_certificate`, so the placement
        section of a certificate is self-contained JSON.
        """
        return {
            "nodes": [
                {
                    "node_id": node.node_id,
                    "machine": node.machine,
                    "ingress_only": node.ingress_only,
                    "atom_ids": [
                        [a.kind, list(a.groups)] for a in sorted(node.atom_ids)
                    ],
                }
                for node in self.nodes
            ]
        }

    def __len__(self) -> int:
        return len(self.nodes)


# ---------------------------------------------------------------------------
# Step 1 + 2: co-location
# ---------------------------------------------------------------------------


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[AtomId, AtomId] = {}

    def add(self, x: AtomId) -> None:
        self._parent.setdefault(x, x)

    def find(self, x: AtomId) -> AtomId:
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a: AtomId, b: AtomId) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[max(ra, rb)] = min(ra, rb)

    def components(self) -> List[List[AtomId]]:
        groups: Dict[AtomId, List[AtomId]] = {}
        for x in self._parent:
            groups.setdefault(self.find(x), []).append(x)
        return [sorted(members) for _, members in sorted(groups.items())]


def co_locate_atoms(
    graph: SequencingGraph,
    rng: Optional[random.Random] = None,
) -> List[SequencingNode]:
    """Group atoms into sequencing nodes per the Section 3.4 heuristic."""
    rng = rng or random.Random(0)
    overlap_atoms = graph.overlap_atoms(include_retired=True)
    members_of: Dict[AtomId, FrozenSet[int]] = {
        atom_id: graph.atoms[atom_id].overlap_members for atom_id in overlap_atoms
    }

    # Step 1: subset rule via union-find over overlap member-sets.
    # Member sets are encoded as integer bitmasks so the O(atoms^2)
    # subset test stays cheap even with hundreds of atoms (Figure 8's
    # high-occupancy sweeps).
    mask_of: Dict[AtomId, int] = {}
    for atom_id, members in members_of.items():
        mask = 0
        for member in members:
            mask |= 1 << member
        mask_of[atom_id] = mask
    uf = _UnionFind()
    for atom_id in overlap_atoms:
        uf.add(atom_id)
    by_size = sorted(overlap_atoms, key=lambda a: len(members_of[a]))
    for i, a in enumerate(by_size):
        mask_a = mask_of[a]
        for b in by_size[i + 1 :]:
            # |a| <= |b| by construction, so only a ⊆ b is possible.
            if mask_a & mask_of[b] == mask_a:
                uf.union(a, b)
    families = uf.components()

    # Step 2: shared-member rule over whole families ("each sequencing atom
    # be co-located only once" — a family is co-located as a unit).
    family_members: List[FrozenSet[int]] = [
        frozenset().union(*(members_of[a] for a in family)) for family in families
    ]
    assigned: Set[int] = set()
    nodes: List[SequencingNode] = []
    for index, family in enumerate(families):
        if index in assigned:
            continue
        node = SequencingNode(node_id=len(nodes))
        node.atom_ids.extend(family)
        assigned.add(index)
        # Choose a random member of this family's overlap and pull in every
        # unassigned family containing that member.
        anchor = rng.choice(sorted(family_members[index]))
        for other in range(len(families)):
            if other in assigned:
                continue
            if anchor in family_members[other]:
                node.atom_ids.extend(families[other])
                assigned.add(other)
        nodes.append(node)

    # Ingress-only atoms: one node each.
    for atom_id in sorted(graph.atoms):
        if atom_id.is_ingress_only:
            nodes.append(
                SequencingNode(
                    node_id=len(nodes), atom_ids=[atom_id], ingress_only=True
                )
            )
    return nodes


# ---------------------------------------------------------------------------
# Machine assignment
# ---------------------------------------------------------------------------


def assign_machines(
    nodes: List[SequencingNode],
    graph: SequencingGraph,
    host_router: Dict[int, int],
    topology: Topology,
    routing: RoutingTable,
    rng: Optional[random.Random] = None,
) -> Placement:
    """Map sequencing nodes to routers, run on behalf of each group.

    Parameters
    ----------
    nodes:
        Output of :func:`co_locate_atoms`.
    graph:
        The sequencing graph (for group paths).
    host_router:
        Access router of each host id.
    topology, routing:
        The underlay, for neighbor lookups.
    rng:
        Random source; fresh ``Random(0)`` when omitted.
    """
    rng = rng or random.Random(0)
    placement = Placement(nodes)
    adjacency = topology.adjacency()

    def neighbor_machine(machine: int) -> int:
        neighbors = [v for v, _ in adjacency[machine]]
        if not neighbors:
            return machine
        return rng.choice(sorted(neighbors))

    def random_member_router(group: int) -> int:
        members = sorted(graph.members(group))
        candidates = [host_router[m] for m in members if m in host_router]
        if not candidates:
            return rng.randrange(topology.n_nodes)
        return rng.choice(candidates)

    for group in graph.groups():
        path = graph.group_path(group)
        # Sequencing nodes on this group's path, deduped, in path order.
        node_ids: List[int] = []
        for atom_id in path:
            node = placement.node_of(atom_id)
            if node.node_id not in node_ids:
                node_ids.append(node.node_id)
        unassigned = [i for i in node_ids if placement.nodes[i].machine is None]
        if not unassigned:
            continue
        if all(placement.nodes[i].machine is None for i in node_ids):
            seed_id = rng.choice(node_ids)
            placement.nodes[seed_id].machine = random_member_router(group)
            unassigned = [i for i in node_ids if placement.nodes[i].machine is None]
        # Repeatedly assign the unassigned node closest (in path hops) to an
        # assigned one, placing it on a machine neighboring its anchor.
        while unassigned:
            positions = {node_id: pos for pos, node_id in enumerate(node_ids)}
            best: Optional[int] = None
            best_dist = None
            best_anchor = None
            for node_id in unassigned:
                for other_id in node_ids:
                    if placement.nodes[other_id].machine is None:
                        continue
                    dist = abs(positions[node_id] - positions[other_id])
                    if best_dist is None or dist < best_dist:
                        best_dist = dist
                        best = node_id
                        best_anchor = other_id
            assert best is not None and best_anchor is not None
            anchor_machine = placement.nodes[best_anchor].machine
            assert anchor_machine is not None
            placement.nodes[best].machine = neighbor_machine(anchor_machine)
            unassigned.remove(best)

    # Any node on no group's path (possible for fully retired nodes) gets a
    # fallback machine so the placement is total.
    for node in placement.nodes:
        if node.machine is None:
            node.machine = rng.randrange(topology.n_nodes)
    return placement


def co_locate_and_order(
    graph: SequencingGraph,
    rng: Optional[random.Random] = None,
) -> List[SequencingNode]:
    """Co-locate atoms, then reorder chains around the co-location.

    Reordering makes each sequencing node's atoms contiguous on their
    chain, so consecutive sequencing steps happen on one machine and
    per-group machine-hop counts drop (see
    :meth:`SequencingGraph.reorder_for_colocation`).  This is the step
    that recovers the performance the paper attributes to placing related
    atoms on the same node.
    """
    rng = rng or random.Random(0)
    nodes = co_locate_atoms(graph, rng=rng)
    graph.reorder_for_colocation(
        {atom_id: node.node_id for node in nodes for atom_id in node.atom_ids}
    )
    return nodes


def place(
    graph: SequencingGraph,
    host_router: Dict[int, int],
    topology: Topology,
    routing: RoutingTable,
    rng: Optional[random.Random] = None,
) -> Placement:
    """Convenience: co-locate atoms, reorder chains, assign machines."""
    rng = rng or random.Random(0)
    nodes = co_locate_and_order(graph, rng=rng)
    return assign_machines(nodes, graph, host_router, topology, routing, rng=rng)


def random_placement(
    graph: SequencingGraph,
    topology: Topology,
    rng: Optional[random.Random] = None,
) -> Placement:
    """Ablation baseline: every atom on its own node, random machines.

    This is the strawman the paper dismisses ("randomly scattering
    sequencing atoms throughout the network would lead to poor
    performance"); the placement ablation benchmark quantifies the gap.
    """
    rng = rng or random.Random(0)
    nodes: List[SequencingNode] = []
    for atom_id in sorted(graph.atoms):
        nodes.append(
            SequencingNode(
                node_id=len(nodes),
                atom_ids=[atom_id],
                machine=rng.randrange(topology.n_nodes),
                ingress_only=atom_id.is_ingress_only,
            )
        )
    return Placement(nodes)
