"""Runtime state of a sequencing atom (paper Section 3.1).

Each sequencing atom maintains:

* a sequence number for its overlapped groups (one counter per atom — the
  overlap's shared sequence space),
* group-local sequence numbers for the groups it acts as ingress for,
* a forwarding table directing messages to the next sequencer per
  destination group,
* a reverse-path table listing the previous sequencer per group,
* output retransmission buffers and a receive buffer (owned by the hosting
  sequencing-node process in :mod:`repro.core.protocol`, since
  retransmission operates per machine channel).
"""

from typing import Dict, Optional

from repro.core.messages import AtomId, Message
from repro.core.sequencing_graph import SequencingGraph


class AtomRuntime:
    """Mutable per-atom protocol state.

    Parameters
    ----------
    atom_id:
        Which atom this state belongs to.
    """

    def __init__(self, atom_id: AtomId, retired: bool = False):
        self.atom_id = atom_id
        #: retired atoms (lazily removed, Section 3.2) stay on chains as
        #: pass-through placeholders and never stamp
        self.retired = retired
        #: shared sequence counter for the atom's overlapped groups
        self.seq_counter = 0
        #: group-local counters for groups this atom ingresses
        self.group_local_counters: Dict[int, int] = {}
        #: forwarding table: destination group -> next atom on its path
        self.next_atom: Dict[int, Optional[AtomId]] = {}
        #: reverse-path table: destination group -> previous atom
        self.prev_atom: Dict[int, Optional[AtomId]] = {}
        #: messages stamped (for load accounting)
        self.messages_sequenced = 0
        #: messages forwarded without stamping (pass-through)
        self.messages_passed_through = 0
        #: total messages processed (stamped + passed through)
        self.visits = 0

    def next_overlap_seq(self) -> int:
        """Allocate the next number in the overlap sequence space."""
        self.seq_counter += 1
        return self.seq_counter

    def next_group_local_seq(self, group: int) -> int:
        """Allocate the next group-local number for an ingressed group."""
        seq = self.group_local_counters.get(group, 0) + 1
        self.group_local_counters[group] = seq
        return seq

    def process(self, message: Message) -> Optional[AtomId]:
        """Sequence or pass through ``message``; return the next atom.

        The ingress atom (no previous atom for the group) also assigns the
        group-local sequence number.  Atoms associated with the message's
        destination group stamp it from the overlap sequence space; other
        atoms on the path forward it untouched, preserving arrival order.
        """
        group = message.group
        if group not in self.prev_atom:
            raise KeyError(
                f"atom {self.atom_id} has no forwarding state for group {group}"
            )
        self.visits += 1
        is_ingress = self.prev_atom[group] is None
        if is_ingress and message.group_seq is None:
            message.assign_group_seq(self.next_group_local_seq(group))
        if self.retired:
            # Lazily removed (Section 3.2): forward in arrival order only.
            self.messages_passed_through += 1
        elif self.atom_id.sequences_group(group) and not self.atom_id.is_ingress_only:
            message.add_atom_seq(self.atom_id, self.next_overlap_seq())
            self.messages_sequenced += 1
        elif self.atom_id.is_ingress_only:
            self.messages_sequenced += 1
        else:
            self.messages_passed_through += 1
        return self.next_atom.get(group)

    def __repr__(self) -> str:
        return (
            f"<AtomRuntime {self.atom_id} seq={self.seq_counter} "
            f"groups={sorted(self.next_atom)}>"
        )


def build_atom_runtimes(graph: SequencingGraph) -> Dict[AtomId, AtomRuntime]:
    """Instantiate runtime state for every atom, wiring forwarding tables.

    For each group, its path atoms (including pass-through ones) get
    ``next_atom``/``prev_atom`` entries chaining the path together; the
    first path atom (``prev_atom is None``) is the group's ingress and owns
    its group-local counter.
    """
    runtimes: Dict[AtomId, AtomRuntime] = {
        atom_id: AtomRuntime(atom_id, retired=atom_id in graph.retired)
        for atom_id in graph.atoms
    }
    for group in graph.groups():
        path = graph.group_path(group)
        for index, atom_id in enumerate(path):
            runtime = runtimes[atom_id]
            runtime.prev_atom[group] = path[index - 1] if index > 0 else None
            runtime.next_atom[group] = (
                path[index + 1] if index + 1 < len(path) else None
            )
    return runtimes
