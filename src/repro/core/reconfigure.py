"""State-continuous reconfiguration across membership changes.

The paper evaluates static memberships and leaves dynamic behaviour to
future work (Section 5), but specifies the building blocks: incremental
group add/remove on the sequencing graph (Section 3.2) and lazy retirement
of obsolete atoms.  This module composes them into an *epoch switch*: given
a quiescent fabric and the new membership matrix, it derives the next
epoch's graph incrementally (preserving surviving atoms and their chain
order), rebuilds placement and processes, and **carries the protocol state
forward** —

* surviving overlap atoms keep their sequence counters (their sequence
  spaces continue instead of restarting at 1),
* each surviving group keeps its group-local counter, wherever its ingress
  atom moved,
* receivers — including newly joined subscribers — start expecting the
  *next* number of each continuing space (quiescence guarantees everyone
  is caught up, so no per-receiver state needs to move),
* message ids continue, so cross-epoch delivery logs remain comparable.

The fabric must be quiescent (no in-flight messages, no buffered
deliveries): reconfiguring mid-flight is exactly the open problem the
paper defers, and silently attempting it would corrupt ordering.
"""

import logging
from typing import Dict, Optional

from repro.core.messages import AtomId
from repro.core.protocol import OrderingFabric
from repro.pubsub.membership import GroupMembership
from repro.runtime.errors import SimulationError

logger = logging.getLogger(__name__)


class ReconfigurationError(RuntimeError):
    """Raised when an epoch switch is attempted in an unsafe state."""


def _require_quiescent(fabric: OrderingFabric) -> None:
    if fabric.sim.pending:
        raise ReconfigurationError(
            f"{fabric.sim.pending} events still in flight; run() the fabric "
            "to quiescence before reconfiguring"
        )
    buffered = fabric.pending_messages()
    if buffered:
        raise ReconfigurationError(
            f"hosts {sorted(buffered)} still buffer undeliverable messages"
        )


def _group_local_counters(fabric: OrderingFabric) -> Dict[int, int]:
    """Current group-local counter per group (at each group's ingress atom)."""
    counters: Dict[int, int] = {}
    for process in fabric.node_processes.values():
        for runtime in process.atom_runtimes.values():
            for group, value in runtime.group_local_counters.items():
                counters[group] = max(counters.get(group, 0), value)
    return counters


def _atom_counters(fabric: OrderingFabric) -> Dict[AtomId, int]:
    """Current overlap sequence counter per atom."""
    counters: Dict[AtomId, int] = {}
    for process in fabric.node_processes.values():
        for atom_id, runtime in process.atom_runtimes.items():
            counters[atom_id] = runtime.seq_counter
    return counters


def reconfigure(
    fabric: OrderingFabric,
    membership: GroupMembership,
    seed: Optional[int] = None,
    lazy: bool = True,
    compact: bool = False,
) -> OrderingFabric:
    """Build the next-epoch fabric for ``membership``, carrying state over.

    Parameters
    ----------
    fabric:
        The quiescent previous-epoch fabric (discard it afterwards).
    membership:
        The new authoritative membership matrix.  Groups keeping their id
        and member set are *surviving*; a changed member set is treated as
        remove-then-add under the same id (the paper's model), which
        restarts that group's sequence spaces.
    seed:
        Seed for the new placement; defaults to a derived seed.
    lazy:
        Retire obsolete atoms lazily (paper default) or splice eagerly.
    compact:
        Additionally drop all retired atoms after the diff (catch-up of
        lazy removals).

    Returns
    -------
    A fresh :class:`OrderingFabric` at virtual time 0 with continued
    counters.  Delivery history stays with the old fabric.
    """
    _require_quiescent(fabric)
    seed = seed if seed is not None else fabric._rng.randrange(2**31)

    old_snapshot = {g: fabric.graph.members(g) for g in fabric.graph.groups()}
    new_snapshot = membership.snapshot()

    graph = fabric.graph.clone()
    removed = [g for g in old_snapshot if g not in new_snapshot]
    added = [g for g in new_snapshot if g not in old_snapshot]
    changed = [
        g
        for g in new_snapshot
        if g in old_snapshot and old_snapshot[g] != new_snapshot[g]
    ]
    for group in sorted(removed):
        graph.remove_group(group, lazy=lazy)
    for group in sorted(changed):
        graph.remove_group(group, lazy=lazy)
        graph.add_group(group, new_snapshot[group])
    for group in sorted(added):
        graph.add_group(group, new_snapshot[group])
    if compact:
        graph.compact()
    graph.validate()
    logger.info(
        "epoch switch: %d removed, %d changed, %d added groups; "
        "%d atoms (%d retired)",
        len(removed),
        len(changed),
        len(added),
        len(graph.atoms),
        len(graph.retired),
    )

    next_fabric = OrderingFabric(
        membership,
        fabric.hosts,
        fabric.topology,
        fabric.routing,
        seed=seed,
        loss_rate=fabric.loss_rate,
        graph=graph,
        trace=fabric.trace.enabled,
        retransmit_timeout=fabric.retransmit_timeout,
        # The next epoch runs on a fresh backend of the same kind (for the
        # simulated backend this is exactly what the fabric would have
        # built itself, so fixed-seed runs are unchanged).
        runtime=fabric.runtime.successor(seed=seed, loss_rate=fabric.loss_rate),
    )
    if next_fabric.sim.events_executed:
        raise SimulationError("fresh fabric unexpectedly executed events")

    # --- carry sequence spaces forward ---------------------------------
    surviving_groups = {
        g for g in new_snapshot if g in old_snapshot and g not in changed
    }
    old_group_counters = {
        g: v for g, v in _group_local_counters(fabric).items() if g in surviving_groups
    }
    old_atom_counters = _atom_counters(fabric)

    for process in next_fabric.node_processes.values():
        for atom_id, runtime in process.atom_runtimes.items():
            if atom_id in old_atom_counters:
                runtime.seq_counter = old_atom_counters[atom_id]
    for group, value in old_group_counters.items():
        ingress = graph.ingress_atom(group)
        node = next_fabric.placement.node_of(ingress)
        runtime = next_fabric.node_processes[node.node_id].atom_runtimes[ingress]
        runtime.group_local_counters[group] = value

    # --- align receiver expectations ------------------------------------
    group_next = {g: v + 1 for g, v in old_group_counters.items()}
    atom_next = {
        atom_id: value + 1
        for atom_id, value in old_atom_counters.items()
        if next_fabric.graph.is_active(atom_id)
    }
    for process in next_fabric.host_processes.values():
        process.delivery.resume_from(group_next, atom_next)

    # --- continuity of identifiers ---------------------------------------
    next_fabric._next_msg_id = fabric._next_msg_id
    # The old epoch's backend is done executing (quiescence was required
    # above); release its resources — a no-op for the simulated backend,
    # pump-task teardown for the live one.
    fabric.runtime.close()
    return next_fabric
