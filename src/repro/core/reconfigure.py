"""State-continuous reconfiguration across membership changes.

The paper evaluates static memberships and leaves dynamic behaviour to
future work (Section 5), but specifies the building blocks: incremental
group add/remove on the sequencing graph (Section 3.2) and lazy retirement
of obsolete atoms.  This module composes them into an *epoch switch*: given
a fabric and the new membership matrix, it derives the next epoch's graph
incrementally (preserving surviving atoms and their chain order), rebuilds
placement and processes, and **carries the protocol state forward** —

* surviving overlap atoms keep their sequence counters (their sequence
  spaces continue instead of restarting at 1),
* each surviving group keeps its group-local counter, wherever its ingress
  atom moved,
* receivers — including newly joined subscribers — start expecting the
  *next* number of each continuing space,
* message ids continue, so cross-epoch delivery logs remain comparable.

Quiescent fabrics cut over immediately.  A fabric with in-flight traffic
is **fenced** instead of rejected (``online=True``, the default): one
:class:`~repro.core.messages.EpochFence` marker is published through every
group's sequencing path.  Each group's traffic follows a single static
path of FIFO reliable links (C1) and receivers deliver in sequence order,
so a receiver that has delivered a group's fence has delivered everything
the old epoch sequenced before it.  Once every member has consumed its
fence, the hold-back buffers are provably empty and the cutover proceeds
exactly like the quiescent case — the fences simply consumed the last
sequence number of each space.

When a fault races the switch (e.g. a sequencing-node crash landing
mid-epoch-switch stalls a fence until failover re-routes the path), the
drain retries under a bounded exponential backoff in virtual time, giving
the failure detector and live failover room to repair the path.  The
derived graph is re-proved by the independent GV200–GV206 verifier before
the new epoch goes live.  :class:`ReconfigurationError` is reserved for
genuinely unsafe states: a fence (or one of its predecessors) abandoned by
the reliable layer, a drain that does not converge within its budget, or a
derived graph/certificate that fails its proof.
"""

import logging
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.core.messages import AtomId
from repro.core.protocol import OrderingFabric
from repro.pubsub.membership import GroupMembership
from repro.runtime.errors import SimulationError

if TYPE_CHECKING:
    from repro.core.sequencing_graph import SequencingGraph

logger = logging.getLogger(__name__)

#: Events executed per drain poll while waiting for fences to land.
#: Deliberately small: with failure detectors ticking, the runtime is
#: never quiescent, so a coarse chunk would burn virtual time (and defer
#: the cutover) long after the last fence has actually drained.
DRAIN_CHUNK_EVENTS = 500

#: Default per-attempt event budget for one online fence drain.
DEFAULT_DRAIN_MAX_EVENTS = 2_000_000

#: Default bounded-retry attempts when a fault races the switch.
DEFAULT_REPAIR_ATTEMPTS = 3

#: Base virtual-time backoff (ms) between drain attempts, doubled per retry.
DEFAULT_REPAIR_BACKOFF = 25.0


class ReconfigurationError(RuntimeError):
    """Raised when an epoch switch is attempted in an unsafe state."""


def _require_quiescent(fabric: OrderingFabric) -> None:
    if fabric.sim.pending:
        raise ReconfigurationError(
            f"{fabric.sim.pending} events still in flight; run() the fabric "
            "to quiescence before reconfiguring, or reconfigure(online=True)"
        )
    buffered = fabric.pending_messages()
    if buffered:
        raise ReconfigurationError(
            f"hosts {sorted(buffered)} still buffer undeliverable messages"
        )


def group_local_counters(fabric: OrderingFabric) -> Dict[int, int]:
    """Current group-local counter per group, read at the ingress atom only.

    Group-local numbers are assigned exclusively by each group's ingress
    atom (:meth:`repro.core.atoms.AtomRuntime.process` creates the counter
    entry only where ``prev_atom`` is ``None``), so the single ingress
    runtime holds the authoritative value — no need to scan every atom
    runtime on every process per epoch switch.
    """
    counters: Dict[int, int] = {}
    for group in fabric.graph.groups():
        ingress = fabric.graph.ingress_atom(group)
        node = fabric.placement.node_of(ingress)
        runtime = fabric.node_processes[node.node_id].atom_runtimes[ingress]
        value = runtime.group_local_counters.get(group, 0)
        if value > 0:
            counters[group] = value
    return counters


def atom_counters(fabric: OrderingFabric) -> Dict[AtomId, int]:
    """Current overlap sequence counter per atom."""
    counters: Dict[AtomId, int] = {}
    for process in fabric.node_processes.values():
        for atom_id, runtime in process.atom_runtimes.items():
            counters[atom_id] = runtime.seq_counter
    return counters


# Backwards-compatible aliases (pre-online API).
_group_local_counters = group_local_counters
_atom_counters = atom_counters


def _undelivered(fabric: OrderingFabric) -> Dict[int, int]:
    """Published messages not yet delivered at every group member.

    The fence is *not* guaranteed to be the last number of its space — a
    message still en route to the ingress atom when the switch begins is
    sequenced after the fence, and receivers (which deliver in sequence
    order, fence included) accept it normally.  The drain therefore waits
    for these stragglers too; this counts, per message id, how many
    member deliveries are still missing.
    """
    counts: Dict[int, int] = {}
    for process in fabric.host_processes.values():
        for record in process.delivered:
            counts[record.msg_id] = counts.get(record.msg_id, 0) + 1
    missing: Dict[int, int] = {}
    for msg_id, message in fabric.published.items():
        expected = len(fabric.graph.members(message.group))
        got = counts.get(msg_id, 0)
        if got < expected:
            missing[msg_id] = expected - got
    return missing


def _drain_fences(
    fabric: OrderingFabric,
    stats: Dict[str, Any],
    drain_max_events: int,
    repair_attempts: int,
    repair_backoff: float,
) -> None:
    """Run the old epoch until its traffic is fully settled.

    Settled means: every group's fence has been consumed by every
    member, every published message has been delivered everywhere it
    should be (including stragglers sequenced *after* a fence — see
    :func:`_undelivered`), and no hold-back buffer retains anything.

    Retries under exponential virtual-time backoff when the drain budget
    runs out with work still outstanding — the signature of a fault
    racing the switch (a crashed node stalls the fence until the failure
    detector triggers failover and the pending buffers replay).
    """
    attempts = max(1, repair_attempts)
    for attempt in range(attempts):
        stats["drain_attempts"] = attempt + 1
        budget = drain_max_events
        while True:
            outstanding = fabric.fences_outstanding()
            straggling = {} if outstanding else _undelivered(fabric)
            if not outstanding and not straggling:
                buffered = fabric.pending_messages()
                if buffered:
                    # Every message delivered everywhere yet something is
                    # buffered: state corruption, never silently drop it.
                    raise ReconfigurationError(
                        f"hosts {sorted(buffered)} still buffer messages "
                        "although every fence and message was delivered"
                    )
                return
            if budget <= 0:
                break
            executed = fabric.run(max_events=min(DRAIN_CHUNK_EVENTS, budget))
            stats["drain_events"] += executed
            budget -= executed
            if executed == 0:
                # The runtime ran dry with work still outstanding: a
                # fence or message was abandoned by the reliable layer —
                # those members can never catch up.
                raise ReconfigurationError(
                    "epoch drain stuck: outstanding fences "
                    f"{outstanding}, undelivered {sorted(straggling)} with "
                    "a quiescent runtime; a packet was abandoned by the "
                    "reliable layer (link failure)"
                )
        if attempt + 1 < attempts:
            # Self-healing window: let detectors suspect, failover rewire,
            # and replayed buffers land, then retry with a fresh budget.
            pause = repair_backoff * (2.0**attempt)
            stats["drain_events"] += fabric.run(until=fabric.sim.now + pause)
    raise ReconfigurationError(
        f"fence drain did not converge after {attempts} attempt(s) of "
        f"{drain_max_events} events: outstanding {fabric.fences_outstanding()}"
    )


def _derive_graph(
    fabric: OrderingFabric,
    new_snapshot: Dict[int, "frozenset[int]"],
    lazy: bool,
    compact: bool,
    stats: Dict[str, Any],
    repair_attempts: int,
    repair_backoff: float,
) -> "SequencingGraph":
    """Incrementally derive and re-prove the next epoch's graph.

    The old graph is cloned and diffed against the new snapshot (Section
    3.2: a changed member set is remove-then-add under the same id), then
    re-proved by the independent GV200–GV205 verifier instead of being
    trusted.  A failed proof retries after a bounded virtual-time backoff
    — the repair path for a second fault racing the derivation — and
    raises :class:`ReconfigurationError` once attempts are exhausted.
    """
    from repro.check.graph_verify import verify_graph

    attempts = max(1, repair_attempts)
    last: List[Any] = []
    for attempt in range(attempts):
        old_snapshot = {
            g: fabric.graph.members(g) for g in fabric.graph.groups()
        }
        graph = fabric.graph.clone()
        removed = [g for g in old_snapshot if g not in new_snapshot]
        added = [g for g in new_snapshot if g not in old_snapshot]
        changed = [
            g
            for g in new_snapshot
            if g in old_snapshot and old_snapshot[g] != new_snapshot[g]
        ]
        for group in sorted(removed):
            graph.remove_group(group, lazy=lazy)
        for group in sorted(changed):
            graph.remove_group(group, lazy=lazy)
            graph.add_group(group, new_snapshot[group])
        for group in sorted(added):
            graph.add_group(group, new_snapshot[group])
        if compact:
            graph.compact()
        findings = verify_graph(graph)
        if not findings:
            stats["graph_repairs"] = attempt
            logger.info(
                "epoch switch: %d removed, %d changed, %d added groups; "
                "%d atoms (%d retired)",
                len(removed),
                len(changed),
                len(added),
                len(graph.atoms),
                len(graph.retired),
            )
            return graph
        last = findings
        if attempt + 1 < attempts:
            pause = repair_backoff * (2.0**attempt)
            stats["drain_events"] += fabric.run(until=fabric.sim.now + pause)
    raise ReconfigurationError(
        "sequencing-graph repair failed after "
        f"{attempts} attempt(s): "
        + "; ".join(f"{f.code}: {f.message}" for f in last)
    )


def reconfigure(
    fabric: OrderingFabric,
    membership: GroupMembership,
    seed: Optional[int] = None,
    lazy: bool = True,
    compact: bool = False,
    online: bool = True,
    drain_max_events: int = DEFAULT_DRAIN_MAX_EVENTS,
    repair_attempts: int = DEFAULT_REPAIR_ATTEMPTS,
    repair_backoff: float = DEFAULT_REPAIR_BACKOFF,
    verify: bool = True,
) -> OrderingFabric:
    """Build the next-epoch fabric for ``membership``, carrying state over.

    Parameters
    ----------
    fabric:
        The previous-epoch fabric (discard it afterwards).  In-flight
        traffic is fenced and drained when ``online`` is true; otherwise
        the fabric must already be quiescent.
    membership:
        The new authoritative membership matrix.  Groups keeping their id
        and member set are *surviving*; a changed member set is treated as
        remove-then-add under the same id (the paper's model), which
        restarts that group's sequence spaces.
    seed:
        Seed for the new placement; defaults to a derived seed.
    lazy:
        Retire obsolete atoms lazily (paper default) or splice eagerly.
    compact:
        Additionally drop all retired atoms after the diff (catch-up of
        lazy removals).
    online:
        Fence and drain in-flight traffic instead of refusing it (see the
        module docstring).  With ``online=False`` any in-flight event
        raises :class:`ReconfigurationError` (the legacy strict mode).
    drain_max_events:
        Per-attempt event budget for the online fence drain.
    repair_attempts:
        Bounded retries when a fault races the drain or the graph proof.
    repair_backoff:
        Base virtual-time backoff (ms) between attempts, doubled each try.
    verify:
        Re-prove the new epoch's full certificate (GV200–GV206) before
        returning it.

    Returns
    -------
    A fresh :class:`OrderingFabric` at virtual time 0 with continued
    counters and ``epoch = fabric.epoch + 1``.  Delivery history stays
    with the old fabric; the switch's statistics land on
    ``fabric.epoch_switch_stats``.
    """
    stats: Dict[str, Any] = {
        "epoch": fabric.epoch + 1,
        "online": False,
        "fences": 0,
        "drain_events": 0,
        "drain_attempts": 0,
        "graph_repairs": 0,
        "started_at": fabric.sim.now,
        "cutover_at": None,
    }
    in_flight = bool(fabric.sim.pending) or bool(fabric.pending_messages())
    if in_flight:
        if not online:
            _require_quiescent(fabric)
        stats["online"] = True
        fabric.trace.record(
            fabric.sim.now,
            "epoch_switch",
            phase="begin",
            epoch=fabric.epoch + 1,
            groups=len(fabric.graph.groups()),
        )
        fence_ids = fabric.inject_epoch_fences(fabric.epoch + 1)
        stats["fences"] = len(fence_ids)
        _drain_fences(
            fabric, stats, drain_max_events, repair_attempts, repair_backoff
        )
    seed = seed if seed is not None else fabric._rng.randrange(2**31)

    new_snapshot = membership.snapshot()
    old_snapshot = {g: fabric.graph.members(g) for g in fabric.graph.groups()}
    graph = _derive_graph(
        fabric,
        new_snapshot,
        lazy,
        compact,
        stats,
        repair_attempts,
        repair_backoff,
    )
    changed = {
        g
        for g in new_snapshot
        if g in old_snapshot and old_snapshot[g] != new_snapshot[g]
    }

    next_fabric = OrderingFabric(
        membership,
        fabric.hosts,
        fabric.topology,
        fabric.routing,
        seed=seed,
        loss_rate=fabric.loss_rate,
        graph=graph,
        trace=fabric.trace.enabled,
        retransmit_timeout=fabric.retransmit_timeout,
        # The next epoch runs on a fresh backend of the same kind (for the
        # simulated backend this is exactly what the fabric would have
        # built itself, so fixed-seed runs are unchanged).
        runtime=fabric.runtime.successor(seed=seed, loss_rate=fabric.loss_rate),
    )
    if next_fabric.sim.events_executed:
        raise SimulationError("fresh fabric unexpectedly executed events")

    # --- carry sequence spaces forward ---------------------------------
    surviving_groups = {
        g for g in new_snapshot if g in old_snapshot and g not in changed
    }
    old_group_counters = {
        g: v
        for g, v in group_local_counters(fabric).items()
        if g in surviving_groups
    }
    old_atom_counters = atom_counters(fabric)

    for process in next_fabric.node_processes.values():
        for atom_id, runtime in process.atom_runtimes.items():
            if atom_id in old_atom_counters:
                runtime.seq_counter = old_atom_counters[atom_id]
    for group, value in old_group_counters.items():
        ingress = graph.ingress_atom(group)
        node = next_fabric.placement.node_of(ingress)
        runtime = next_fabric.node_processes[node.node_id].atom_runtimes[ingress]
        runtime.group_local_counters[group] = value

    # --- align receiver expectations ------------------------------------
    # After an online switch the carried counters include the fences (each
    # fence consumed the last number of its space), so "next" is correct
    # in both modes.
    group_next = {g: v + 1 for g, v in old_group_counters.items()}
    atom_next = {
        atom_id: value + 1
        for atom_id, value in old_atom_counters.items()
        if next_fabric.graph.is_active(atom_id)
    }
    for process in next_fabric.host_processes.values():
        process.delivery.resume_from(group_next, atom_next)

    # --- re-prove the new epoch before it goes live ----------------------
    if verify:
        from repro.check.graph_verify import verify_certificate

        cert_findings = verify_certificate(next_fabric.export_certificate())
        if cert_findings:
            raise ReconfigurationError(
                "next epoch failed its certificate proof: "
                + "; ".join(f"{f.code}: {f.message}" for f in cert_findings)
            )

    # --- continuity of identifiers ---------------------------------------
    next_fabric._next_msg_id = fabric._next_msg_id
    next_fabric.epoch = fabric.epoch + 1
    stats["cutover_at"] = fabric.sim.now
    if stats["online"]:
        fabric.trace.record(
            fabric.sim.now,
            "epoch_switch",
            phase="end",
            epoch=next_fabric.epoch,
            drain_events=stats["drain_events"],
        )
    fabric.epoch_switch_stats = stats
    # The old epoch's backend is done executing (quiescent, or drained to
    # its fences); release its resources — a no-op for the simulated
    # backend, pump-task teardown for the live one.
    fabric.runtime.close()
    return next_fabric
