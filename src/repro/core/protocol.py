"""The ordering protocol core, runnable on any runtime backend.

This module wires the static artifacts — membership matrix, sequencing
graph, placement — into running processes implementing the paper's three
phases.  The processes depend only on the narrow runtime interface
(:mod:`repro.runtime.interfaces`): a node handle for clock + timers and a
transport for FIFO channels.  By default a fabric runs on the
discrete-event simulator (:class:`~repro.runtime.sim_backend.SimTransport`,
byte-identical to the pre-split behavior on fixed seeds); pass
``runtime=AsyncioTransport(...)`` to run the identical protocol live on
asyncio tasks (see :mod:`repro.runtime.asyncio_backend`).

The three phases:

* **ingress** — a publisher host sends its message to the sequencing node
  hosting the destination group's ingress atom;
* **sequencing** — the message walks the group's atom path; atoms
  associated with the group stamp it (group-local number at the ingress
  atom, overlap numbers at every atom of the group), pass-through atoms
  forward it in arrival order; consecutive co-located atoms are processed
  without a network hop;
* **distribution** — the last sequencing node sends the stamped message to
  every group member over shortest paths.

Channels between any two processes are FIFO (Section 3.1's assumption).
When loss injection is enabled, a reliable link layer recovers losses the
way a TCP connection between sequencers would: every packet on a hop
carries a per-hop sequence number, the sender keeps it in an output
retransmission buffer until acknowledged (Section 3.1's output buffer),
and the receiver holds back out-of-order arrivals so the upper protocol
still observes a FIFO channel.  Plain retransmission without hold-back
would reorder packets on a hop and break the FIFO assumption the
sequencing proof depends on.
"""

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterable, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids obs coupling
    from repro.obs.profiler import PhaseProfiler
    from repro.obs.registry import MetricsRegistry

from repro.core.atoms import AtomRuntime, build_atom_runtimes
from repro.core.delivery import Blocking, DeliveryState
from repro.core.messages import (
    ATOM_ENTRY_BYTES,
    HEADER_BYTES,
    AtomId,
    EpochFence,
    Message,
    Stamp,
)
from repro.core.placement import Placement, place
from repro.core.sequencing_graph import SequencingGraph
from repro.pubsub.membership import GroupMembership
from repro.runtime.errors import SimulationError
from repro.runtime.interfaces import Link, NodeHandle, RuntimeBackend
from repro.runtime.node import Process
from repro.runtime.sim_backend import SimTransport
from repro.runtime.trace import Trace
from repro.topology.clusters import Host
from repro.topology.gtitm import Topology
from repro.topology.routing import RoutingTable

#: Delay between two sequencing nodes co-resident on one router (local IPC).
LOCAL_HOP_DELAY = 0.01
#: Serialized size of an acknowledgment packet.
ACK_BYTES = 12
#: Give up after this many retransmissions of one packet (fabric default;
#: override per fabric with ``max_retransmits=``).
MAX_RETRANSMITS = 60
#: Exponential backoff stops doubling after this many attempts (the
#: timeout is capped at ``base * 2**RETRANSMIT_BACKOFF_CAP``).
RETRANSMIT_BACKOFF_CAP = 6
#: Maximum multiplicative jitter applied to a retransmit timeout (10%).
RETRANSMIT_JITTER = 0.1
#: Serialized size of a heartbeat ping/pong packet.
HEARTBEAT_BYTES = 8


def retransmit_jitter_fraction(seq: int, attempts: int) -> float:
    """Deterministic pseudo-jitter in ``[0, 1)`` for one (packet, attempt).

    Retransmission timers need jitter so synchronized losses do not
    re-collide, but drawing from an RNG would make timer ordering depend
    on unrelated draws.  A Knuth-style integer hash of the hop sequence
    number and attempt count is platform-stable and fully reproducible.
    """
    mixed = (seq * 2654435761 + attempts * 40503 + 12345) & 0xFFFFFFFF
    return (mixed % 10007) / 10007.0


# ---------------------------------------------------------------------------
# Packets
# ---------------------------------------------------------------------------


@dataclass
class DataPacket:
    """A message in the sequencing phase, addressed to a specific atom."""

    message: Message
    target_atom: AtomId

    def size_bytes(self) -> int:
        return HEADER_BYTES + ATOM_ENTRY_BYTES * len(self.message.atom_seqs)


@dataclass
class DeliverPacket:
    """A fully sequenced message in the distribution phase."""

    stamp: Stamp
    payload: Any
    msg_id: int
    sender: int
    publish_time: float
    dest: int
    #: sequencing node that distributed the message (stability ack target)
    egress_node: int = -1

    def size_bytes(self) -> int:
        return self.stamp.size_bytes()


@dataclass
class StabilityAck:
    """Host -> egress node: "I delivered message ``msg_id`` to the app"."""

    msg_id: int
    host: int

    def size_bytes(self) -> int:
        return 8


@dataclass
class StableNotice:
    """Egress node -> members: every member has delivered ``msg_id``.

    The receiver-local deliverability decision already tells a host that
    *it* will never reorder the message (the paper's commit signal); a
    stable notice adds the uniform guarantee that every other member has
    delivered it too — what a replicated application needs before acting
    irrevocably on the message.
    """

    msg_id: int

    def size_bytes(self) -> int:
        return 8


@dataclass
class HopPacket:
    """Reliable-link envelope: a per-hop sequence number plus the payload.

    Hop sequence numbers let the receiver reconstruct the FIFO order of a
    lossy hop (hold-back of out-of-order arrivals) and deduplicate
    retransmissions.
    """

    seq: int
    inner: Any

    def size_bytes(self) -> int:
        return 4 + self.inner.size_bytes()


@dataclass
class AckPacket:
    """Per-hop acknowledgment releasing a retransmission buffer entry."""

    seq: int

    def size_bytes(self) -> int:
        return ACK_BYTES


@dataclass
class HeartbeatPing:
    """Failure-detector probe sent to a sequencing node.

    Heartbeats deliberately bypass the reliable link layer: a
    retransmitted heartbeat would mask exactly the silence the detector
    exists to observe.  A node that is up answers with a
    :class:`HeartbeatPong`; a crashed node drops the ping on the floor.
    """

    seq: int

    def size_bytes(self) -> int:
        return HEARTBEAT_BYTES


@dataclass
class HeartbeatPong:
    """A sequencing node's liveness reply to a :class:`HeartbeatPing`."""

    seq: int
    node_id: int

    def size_bytes(self) -> int:
        return HEARTBEAT_BYTES


@dataclass(frozen=True)
class LinkFailure:
    """A packet abandoned after exhausting its retransmission budget.

    Surfaced as data (and via :attr:`OrderingFabric.on_link_failure`)
    instead of aborting the whole simulation: a chaos run wants to keep
    going and let the invariant checker attribute the consequences.
    """

    time: float
    src: Any
    dst: Any
    packet: Any
    attempts: int


@dataclass(frozen=True)
class FailoverRecord:
    """One live relocation of a sequencing node to a standby machine."""

    time: float
    node_id: int
    old_machine: int
    new_machine: int
    #: pending retransmission-buffer entries replayed at relocation time
    replayed: int


class _LinkState:
    """Sender- and receiver-side reliable-link state for one directed hop."""

    __slots__ = ("next_send_seq", "pending", "next_expected", "holdback")

    def __init__(self) -> None:
        self.next_send_seq = 0
        self.pending: Dict[int, Tuple[Any, int, Any]] = {}
        self.next_expected = 0
        self.holdback: Dict[int, Any] = {}


@dataclass(frozen=True)
class DeliveryRecord:
    """One delivered message as observed by a receiver host."""

    time: float
    stamp: Stamp
    payload: Any
    msg_id: int
    sender: int
    publish_time: float


# ---------------------------------------------------------------------------
# Processes
# ---------------------------------------------------------------------------


class HostProcess(Process):
    """A subscriber/publisher end host."""

    def __init__(
        self,
        node: NodeHandle,
        host: Host,
        fabric: "OrderingFabric",
        delivery: DeliveryState,
    ):
        super().__init__(node, ("host", host.host_id))
        self.host = host
        self.fabric = fabric
        self.delivery = delivery
        # Forensic observers: every deliver-or-buffer decision that ends
        # in a buffer, and every buffer release, becomes a trace record
        # carrying the exact blocking (atom, expected_seq) gap.  The
        # callbacks fire only on out-of-order arrivals (low volume) and
        # skip all work while tracing is disabled, like ``seq_hop``.
        delivery.on_buffer = self._record_buffer
        delivery.on_drain = self._record_drain
        #: msg_id -> virtual time it entered the hold-back buffer
        self._buffered_at: Dict[int, float] = {}
        self.delivered: List[DeliveryRecord] = []
        #: messages known stable (delivered by every group member)
        self.stable_ids: Set[int] = set()
        self._egress_of: Dict[int, int] = {}
        self._crashed_until = 0.0
        self.crashes = 0

    def crash(self, duration: float) -> None:
        """Take the host offline for ``duration`` ms (fail-stop receiver).

        Like sequencing-node crashes, requires the reliable link layer:
        distribution packets dropped during downtime sit in the last
        sequencing node's retransmission buffer and redeliver afterwards.
        """
        if not self.fabric.reliable:
            raise SimulationError(
                "host crash/recovery needs the reliable link layer; "
                "construct the fabric with loss_rate > 0 or an explicit "
                "retransmit_timeout"
            )
        if duration <= 0:
            raise ValueError(f"crash duration must be positive, got {duration}")
        self.crashes += 1
        self._crashed_until = max(self._crashed_until, self.sim.now + duration)

    @property
    def is_down(self) -> bool:
        """Whether the host is currently refusing traffic."""
        return self.sim.now < self._crashed_until

    def receive(self, payload: Any, channel: Link) -> None:
        if self.is_down:
            return
        for packet in self.fabric._link_receive(self, payload, channel):
            self.handle(packet)

    def handle(self, payload: Any) -> None:
        profiler = self.fabric.profiler
        if profiler is not None and profiler.enabled:
            # "delivery" phase: the deliver-or-buffer decision, hold-back
            # drain, and stability bookkeeping (nested trace time is
            # subtracted by the profiler's exclusive accounting).
            profiler.enter("delivery")
            try:
                self._handle(payload)
            finally:
                profiler.exit()
            return
        self._handle(payload)

    def _handle(self, payload: Any) -> None:
        if isinstance(payload, StableNotice):
            self.stable_ids.add(payload.msg_id)
            return
        if not isinstance(payload, DeliverPacket):
            raise TypeError(f"host got unexpected packet {payload!r}")
        if self.fabric.track_stability:
            self._egress_of[payload.msg_id] = payload.egress_node
        for stamp, record in self.delivery.on_receive(
            payload.stamp,
            DeliveryRecord(
                time=self.sim.now,
                stamp=payload.stamp,
                payload=payload.payload,
                msg_id=payload.msg_id,
                sender=payload.sender,
                publish_time=payload.publish_time,
            ),
        ):
            # on_receive returns records in delivery order; re-stamp the
            # delivery time for messages released from the buffer now.
            final = DeliveryRecord(
                time=self.sim.now,
                stamp=stamp,
                payload=record.payload,
                msg_id=record.msg_id,
                sender=record.sender,
                publish_time=record.publish_time,
            )
            if isinstance(final.payload, EpochFence):
                # Epoch fences advance the hold-back expectations like any
                # sequenced message but are consumed by the fabric: they
                # never reach the application log or stability tracking.
                self._egress_of.pop(final.msg_id, None)
                self.fabric._fence_delivered(self.host.host_id, final)
                continue
            self.delivered.append(final)
            self.fabric.trace.record(
                self.sim.now,
                "deliver",
                host=self.host.host_id,
                msg=final.msg_id,
                group=stamp.group,
                sender=final.sender,
                publish_time=final.publish_time,
            )
            if self.fabric.on_deliver is not None:
                self.fabric.on_deliver(self.host.host_id, final)
            if self.fabric.track_stability:
                egress = self._egress_of.pop(final.msg_id, -1)
                if egress >= 0:
                    self.fabric._transmit(
                        self,
                        self.fabric.node_processes[egress],
                        StabilityAck(final.msg_id, self.host.host_id),
                    )

    def _record_buffer(
        self, stamp: Stamp, payload: object, blocking: Blocking
    ) -> None:
        """Trace a deliver-or-buffer decision that buffered the arrival."""
        if not self.fabric.trace.enabled:
            return
        assert isinstance(payload, DeliveryRecord)
        self._buffered_at[payload.msg_id] = self.sim.now
        self.fabric.trace.record(
            self.sim.now,
            "buffer",
            host=self.host.host_id,
            msg=payload.msg_id,
            group=stamp.group,
            blocked_kind=blocking.kind,
            blocked_on=blocking.key,
            have_seq=blocking.have,
            expected_seq=blocking.expected,
        )

    def _record_drain(
        self, stamp: Stamp, payload: object, by_stamp: Stamp, by_payload: object
    ) -> None:
        """Trace a buffer release and the arrival that unblocked it."""
        if not self.fabric.trace.enabled:
            return
        assert isinstance(payload, DeliveryRecord)
        assert isinstance(by_payload, DeliveryRecord)
        buffered_at = self._buffered_at.pop(payload.msg_id, None)
        self.fabric.trace.record(
            self.sim.now,
            "drain",
            host=self.host.host_id,
            msg=payload.msg_id,
            group=stamp.group,
            unblocked_by=by_payload.msg_id,
            waited=(
                self.sim.now - buffered_at if buffered_at is not None else None
            ),
        )


class SequencingNodeProcess(Process):
    """A machine hosting one sequencing node's co-located atoms.

    With a positive fabric ``service_time`` the node behaves as a single
    FIFO server: each message visit occupies the machine for
    ``service_time`` milliseconds and excess arrivals queue.  This models
    sequencer processing capacity for throughput experiments; the default
    (0) reproduces the paper's propagation-delay-only model.
    """

    def __init__(
        self,
        node: NodeHandle,
        node_id: int,
        machine: int,
        atom_runtimes: Dict[AtomId, AtomRuntime],
        fabric: "OrderingFabric",
    ):
        super().__init__(node, ("seq", node_id))
        self.node_id = node_id
        self.machine = machine
        self.atom_runtimes = atom_runtimes
        self.fabric = fabric
        #: distinct messages this node handled (one per visit, however many
        #: co-located atoms the message is processed by during the visit)
        self.messages_handled = 0
        #: single-server FIFO queue state (service-time model)
        self._busy_until = 0.0
        self.queue_high_water = 0
        self._queued = 0
        #: fail-stop downtime: packets arriving before this instant are
        #: dropped on the floor (the reliable link layer recovers them)
        self._crashed_until = 0.0
        self.crashes = 0
        self.packets_dropped_while_down = 0
        #: stability tracking: msg_id -> members whose ack is outstanding
        self._stability_waiting: Dict[int, Set[int]] = {}
        self._stability_members: Dict[int, List[int]] = {}

    def crash(self, duration: float) -> None:
        """Take the node down for ``duration`` milliseconds (fail-stop).

        While down, the node ignores every arriving packet — neither
        processing nor acknowledging — so senders' retransmission buffers
        (Section 3.1) hold the traffic and redeliver after recovery.  Atom
        counters and link-layer state survive (they model durable
        sequencer state); only in-flight packets are lost.  Requires a
        reliable fabric (positive ``loss_rate`` or
        ``retransmit_timeout``): without retransmission, downtime would
        silently lose messages.
        """
        if not self.fabric.reliable:
            raise SimulationError(
                "crash/recovery needs the reliable link layer; construct "
                "the fabric with loss_rate > 0 (any tiny value) so "
                "retransmission can mask the downtime"
            )
        if duration <= 0:
            raise ValueError(f"crash duration must be positive, got {duration}")
        self.crashes += 1
        self._crashed_until = max(self._crashed_until, self.sim.now + duration)

    @property
    def is_down(self) -> bool:
        """Whether the node is currently refusing traffic."""
        return self.sim.now < self._crashed_until

    def receive(self, payload: Any, channel: Link) -> None:
        if self.is_down:
            self.packets_dropped_while_down += 1
            return
        if isinstance(payload, HeartbeatPing):
            # Heartbeats bypass the reliable link layer in both directions
            # (see HeartbeatPing): answer immediately on the reverse path.
            reverse = self.fabric._channel(self, channel.src)
            reverse.send(
                HeartbeatPong(payload.seq, self.node_id), HEARTBEAT_BYTES
            )
            return
        for packet in self.fabric._link_receive(self, payload, channel):
            self.handle(packet)

    def handle(self, payload: Any) -> None:
        if isinstance(payload, StabilityAck):
            self._collect_stability_ack(payload)
            return
        if not isinstance(payload, DataPacket):
            raise TypeError(f"sequencing node got unexpected packet {payload!r}")
        service = self.fabric.service_time
        if service <= 0:
            self.messages_handled += 1
            self.process_at(payload.target_atom, payload.message)
            return
        # Single FIFO server: completion at max(now, busy_until) + service.
        start = max(self.sim.now, self._busy_until)
        self._busy_until = start + service
        self._queued += 1
        self.queue_high_water = max(self.queue_high_water, self._queued)
        self.sim.schedule_at(self._busy_until, self._complete_service, payload)

    def _collect_stability_ack(self, ack: StabilityAck) -> None:
        """Count member delivery acks; broadcast stability when complete."""
        waiting = self._stability_waiting.get(ack.msg_id)
        if waiting is None:
            return  # duplicate ack after stability was already declared
        waiting.discard(ack.host)
        if waiting:
            return
        del self._stability_waiting[ack.msg_id]
        for member in self._stability_members.pop(ack.msg_id):
            self.fabric._transmit(
                self, self.fabric.host_processes[member], StableNotice(ack.msg_id)
            )

    def expect_stability_acks(self, msg_id: int, members: Iterable[int]) -> None:
        """Arm stability tracking for one distributed message."""
        member_set = set(members)
        self._stability_waiting[msg_id] = set(member_set)
        self._stability_members[msg_id] = sorted(member_set)

    def _complete_service(self, payload: DataPacket) -> None:
        if self.is_down:
            # Accepted work pauses during downtime and resumes afterwards
            # (counters are durable; only the processor is unavailable).
            self.sim.schedule_at(self._crashed_until, self._complete_service, payload)
            return
        self._queued -= 1
        self.messages_handled += 1
        self.process_at(payload.target_atom, payload.message)

    def process_at(self, atom_id: AtomId, message: Message) -> None:
        """Run the message through co-located atoms until it leaves."""
        profiler = self.fabric.profiler
        if profiler is not None and profiler.enabled:
            # "sequencing" phase: atom visits plus the forwarding or
            # distribution send the visit ends in.
            profiler.enter("sequencing")
            try:
                self._process_at(atom_id, message)
            finally:
                profiler.exit()
            return
        self._process_at(atom_id, message)

    def _process_at(self, atom_id: AtomId, message: Message) -> None:
        trace = self.fabric.trace
        if trace.enabled:
            # Guarded: hop records are high-volume, so the disabled path
            # must not even pack the kwargs (see the Trace contract).
            trace.record(
                self.sim.now,
                "seq_hop",
                msg=message.msg_id,
                node=self.node_id,
                atom=repr(atom_id),
            )
        current = atom_id
        while True:
            runtime = self.atom_runtimes.get(current)
            if runtime is None:
                raise SimulationError(
                    f"atom {current} routed to node {self.node_id} but not hosted"
                )
            if trace.enabled:
                next_atom = self._process_traced(runtime, message, current)
            else:
                next_atom = runtime.process(message)
            if next_atom is None:
                self.fabric._distribute(self, message)
                return
            if next_atom in self.atom_runtimes:
                current = next_atom
                continue
            self.fabric._send_data(self, next_atom, message)
            return

    def _process_traced(
        self, runtime: AtomRuntime, message: Message, current: AtomId
    ) -> Optional[AtomId]:
        """One atom visit plus its forensic record (tracing-enabled path).

        Emits ``atom_seq`` when the visit assigned any sequence number —
        an overlap number (``seq``), the group-local number at ingress
        (``group_seq``), or both — and ``atom_pass`` for a pure
        pass-through in arrival order.
        """
        group_seq_before = message.group_seq
        stamped_before = len(message.atom_seqs)
        next_atom = runtime.process(message)
        entries = message.atom_seqs
        seq = entries[-1][1] if len(entries) > stamped_before else None
        group_seq = message.group_seq if group_seq_before is None else None
        if seq is None and group_seq is None:
            self.fabric.trace.record(
                self.sim.now,
                "atom_pass",
                msg=message.msg_id,
                node=self.node_id,
                atom=repr(current),
            )
        else:
            self.fabric.trace.record(
                self.sim.now,
                "atom_seq",
                msg=message.msg_id,
                node=self.node_id,
                atom=repr(current),
                seq=seq,
                group_seq=group_seq,
            )
        return next_atom


# ---------------------------------------------------------------------------
# The fabric
# ---------------------------------------------------------------------------


class OrderingFabric:
    """Everything needed to run the ordering protocol in simulation.

    Parameters
    ----------
    membership:
        The group membership matrix (static for the lifetime of a fabric;
        rebuild the fabric after membership changes, or use
        :class:`repro.core.api.OrderedPubSub` which does so lazily).
    hosts:
        End hosts attached to the topology.
    topology, routing:
        The router underlay and its shortest-path oracle.
    seed:
        Seed for graph ordering and placement tie-breaking.
    loss_rate:
        Per-packet Bernoulli loss probability (0 disables loss; the paper's
        evaluation model).  Any positive value enables per-hop acks and
        retransmission.
    optimize:
        Chain-ordering mode for the sequencing graph.
    placement:
        Optional pre-computed placement (for ablations); computed with the
        Section 3.4 heuristic when omitted.
    graph:
        Optional pre-built sequencing graph (for ablations).
    trace:
        Record publish/deliver events (on by default; disable for speed).
    service_time:
        Per-message processing time at sequencing nodes, in milliseconds;
        positive values turn each node into a single FIFO server so
        throughput saturation can be studied (0 = the paper's model).
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; when given,
        the fabric wires live hold-back occupancy gauges, a delivery
        latency histogram, and pull collectors for link/node/atom/event
        loop statistics (see :mod:`repro.obs.hooks`).
    max_retransmits:
        Per-packet retransmission budget before the packet is abandoned
        and a :class:`LinkFailure` surfaced (default
        :data:`MAX_RETRANSMITS`).
    profiler:
        Optional :class:`~repro.obs.profiler.PhaseProfiler`; when given
        (and enabled) the event loop, sequencing nodes, receivers, and
        the trace attribute their wall time to it.  Profiling reads the
        clock and bumps counters only — it can never change simulation
        outcomes.
    runtime:
        Optional :class:`~repro.runtime.interfaces.RuntimeBackend`.  By
        default the fabric builds a
        :class:`~repro.runtime.sim_backend.SimTransport` from ``seed`` and
        ``loss_rate`` (byte-identical to the pre-split behavior).  Pass an
        :class:`~repro.runtime.asyncio_backend.AsyncioTransport` to run the
        same protocol live.  When an explicit runtime is given and the
        fabric's ``loss_rate`` is 0, the runtime's loss rate is adopted so
        the reliable link layer arms itself consistently with what the
        transport actually drops; the transport's own channels always
        apply the loss rate *they* were built with.
    """

    def __init__(
        self,
        membership: GroupMembership,
        hosts: List[Host],
        topology: Topology,
        routing: RoutingTable,
        seed: int = 0,
        loss_rate: float = 0.0,
        optimize: str = "greedy",
        placement: Optional[Placement] = None,
        graph: Optional[SequencingGraph] = None,
        trace: bool = True,
        retransmit_timeout: Optional[float] = None,
        service_time: float = 0.0,
        track_stability: bool = False,
        registry: Optional["MetricsRegistry"] = None,
        max_retransmits: Optional[int] = None,
        profiler: Optional["PhaseProfiler"] = None,
        runtime: Optional[RuntimeBackend] = None,
    ):
        import random as _random

        if service_time < 0:
            raise ValueError(f"service_time must be >= 0, got {service_time}")
        if runtime is None:
            runtime = SimTransport(seed=seed, loss_rate=loss_rate)
        elif loss_rate == 0.0:
            # An explicit runtime carries its own loss configuration; adopt
            # it so the reliable link layer arms when the wire can drop.
            loss_rate = runtime.loss_rate
        #: uniform-delivery tracking: members ack deliveries to the egress
        #: node, which broadcasts a StableNotice once everyone delivered
        self.track_stability = track_stability
        self.membership = membership
        self.hosts = hosts
        self.topology = topology
        self.routing = routing
        self.loss_rate = loss_rate
        #: the reliable link layer runs when loss is possible, or when a
        #: retransmit timeout is requested explicitly (e.g. for the
        #: crash/recovery model on otherwise loss-free links)
        self.reliable = loss_rate > 0 or retransmit_timeout is not None
        self.retransmit_timeout = retransmit_timeout
        #: per-message-visit processing time at sequencing nodes (ms);
        #: 0 = the paper's propagation-delay-only model
        self.service_time = service_time
        #: the runtime backend executing this fabric (sim by default)
        self.runtime = runtime
        #: the node handle shared by every process — under the simulated
        #: backend this is the Simulator itself, hot path unchanged
        self.sim = runtime.scheduler
        self._rng = _random.Random(seed)
        self.network = runtime.transport
        self.trace = Trace(enabled=trace)
        runtime.attach_trace(self.trace)
        #: optional hot-path phase profiler (see repro.obs.profiler);
        #: shared with the simulator and the trace so all three attribute
        #: wall time into one set of phase accumulators
        self.profiler = profiler
        if profiler is not None:
            self.sim.profiler = profiler
            self.trace.profiler = profiler
        #: optional application callback invoked on every delivery
        self.on_deliver: Optional[Callable[[int, DeliveryRecord], None]] = None

        snapshot = membership.snapshot()
        self.graph = graph if graph is not None else SequencingGraph.build(
            snapshot, rng=_random.Random(seed + 2), optimize=optimize
        )
        self.graph.validate()
        host_router = {h.host_id: h.router for h in hosts}
        self._host_by_id = {h.host_id: h for h in hosts}
        self.placement = (
            placement
            if placement is not None
            else place(
                self.graph, host_router, topology, routing, rng=_random.Random(seed + 3)
            )
        )

        # Processes: one per host, one per sequencing node.
        runtimes = build_atom_runtimes(self.graph)
        self.host_processes: Dict[int, HostProcess] = {}
        for host in hosts:
            delivery = DeliveryState(
                host.host_id,
                membership.groups_of(host.host_id),
                self.graph.relevant_atoms_of(host.host_id),
            )
            process = HostProcess(self.sim, host, self, delivery)
            self.network.add_process(process)
            self.host_processes[host.host_id] = process
        self.node_processes: Dict[int, SequencingNodeProcess] = {}
        for node in self.placement.nodes:
            node_runtimes = {a: runtimes[a] for a in node.atom_ids}
            assert node.machine is not None, "place() assigns every machine"
            process = SequencingNodeProcess(
                self.sim, node.node_id, node.machine, node_runtimes, self
            )
            self.network.add_process(process)
            self.node_processes[node.node_id] = process

        self._next_msg_id = 0
        self._links: Dict[Tuple[Any, Any], _LinkState] = {}
        self.published: Dict[int, Message] = {}
        #: epoch index of this fabric (bumped by reconfigure())
        self.epoch = 0
        #: epoch-fence markers in flight or delivered, by message id —
        #: kept out of ``published`` so RT3xx audits the application
        #: traffic only (see repro.core.reconfigure)
        self.fences: Dict[int, Message] = {}
        #: group -> members that must deliver the group's fence
        self.fence_expected: Dict[int, "frozenset[int]"] = {}
        #: group -> {host -> virtual delivery time} for the group's fence
        self.fence_delivered: Dict[int, Dict[int, float]] = {}
        #: filled by reconfigure() with the outgoing switch's statistics
        self.epoch_switch_stats: Optional[Dict[str, Any]] = None
        #: distribution-phase accounting (see _account_distribution)
        self._delivery_trees: Dict[Tuple[int, int], Any] = {}
        self.distribution_tree_links = 0
        self.distribution_unicast_links = 0
        self.distribution_tree_bytes = 0
        #: reliable-link layer accounting
        self.retransmissions = 0
        self.acks_sent = 0
        #: per-packet retransmission budget before declaring link failure
        self.max_retransmits = (
            max_retransmits if max_retransmits is not None else MAX_RETRANSMITS
        )
        #: retransmissions attributed to why the previous copy vanished
        #: ("loss" | "outage" | "peer_down" | "failover_replay")
        self.retransmissions_by_cause: Dict[str, int] = {}
        #: retransmission attempts per directed link (src name, dst name)
        self.retransmits_by_link: Dict[Tuple[Any, Any], int] = {}
        #: packets abandoned after exhausting the retransmit budget
        self.link_failures: List[LinkFailure] = []
        #: optional application callback invoked on every link failure
        self.on_link_failure: Optional[Callable[[LinkFailure], None]] = None
        #: live sequencing-node relocations (see relocate_node)
        self.failovers: List[FailoverRecord] = []
        #: optional metrics registry (see repro.obs); instrumented lazily
        #: so fabrics without one never import the observability layer
        self.registry = registry
        if registry is not None:
            from repro.obs.hooks import instrument_fabric

            instrument_fabric(self, registry)

    # -- channel management ------------------------------------------------

    def _channel(self, src: Process, dst: Process) -> Link:
        try:
            return self.network.channel(src.name, dst.name)
        except KeyError:
            return self.network.connect(src.name, dst.name, self._delay(src, dst))

    def _process_router(self, process: Process) -> int:
        if isinstance(process, HostProcess):
            return process.host.router
        return process.machine

    def _delay(self, src: Process, dst: Process) -> float:
        delay = self.routing.delay(self._process_router(src), self._process_router(dst))
        if isinstance(src, HostProcess):
            delay += src.host.access_delay
        if isinstance(dst, HostProcess):
            delay += dst.host.access_delay
        return max(delay, LOCAL_HOP_DELAY)

    # -- reliable link layer -------------------------------------------------

    def _link(self, src_name: Any, dst_name: Any) -> _LinkState:
        key = (src_name, dst_name)
        state = self._links.get(key)
        if state is None:
            state = _LinkState()
            self._links[key] = state
        return state

    def _transmit(self, src: Process, dst: Process, packet: Any) -> None:
        channel = self._channel(src, dst)
        if not self.reliable:
            channel.send(packet, packet.size_bytes())
            return
        link = self._link(src.name, dst.name)
        hop = HopPacket(link.next_send_seq, packet)
        link.next_send_seq += 1
        channel.send(hop, hop.size_bytes())
        self._arm_retransmit(src, dst, hop, attempts=0)

    def _retransmit_timeout(
        self, src: Process, dst: Process, hop: HopPacket, attempts: int
    ) -> float:
        """Backed-off, jittered timeout before retransmitting ``hop``.

        Exponential backoff (doubling per attempt, capped at
        ``2**RETRANSMIT_BACKOFF_CAP`` times the base) keeps a dead or
        partitioned peer from being hammered at a fixed rate, and the
        deterministic per-packet jitter de-synchronizes retransmissions
        that were dropped together (e.g. by one outage window).
        """
        base = self.retransmit_timeout
        if base is None:
            base = 4 * self._channel(src, dst).delay + 1.0
        backoff = 2.0 ** min(attempts, RETRANSMIT_BACKOFF_CAP)
        jitter = 1.0 + RETRANSMIT_JITTER * retransmit_jitter_fraction(
            hop.seq, attempts
        )
        return base * backoff * jitter

    def _arm_retransmit(
        self, src: Process, dst: Process, hop: HopPacket, attempts: int
    ) -> None:
        link = self._link(src.name, dst.name)
        timeout = self._retransmit_timeout(src, dst, hop, attempts)
        handle = self.sim.schedule(timeout, self._retransmit, src, dst, hop, attempts)
        link.pending[hop.seq] = (handle, attempts, hop)

    def _retransmit_cause(self, dst: Process, channel: Link) -> str:
        """Attribute a retransmission to why the previous copy vanished."""
        if channel.is_down:
            return "outage"
        if getattr(dst, "is_down", False):
            return "peer_down"
        return "loss"

    def _count_retransmission(
        self, src: Process, dst: Process, cause: str
    ) -> None:
        self.retransmissions += 1
        self.retransmissions_by_cause[cause] = (
            self.retransmissions_by_cause.get(cause, 0) + 1
        )
        key = (src.name, dst.name)
        self.retransmits_by_link[key] = self.retransmits_by_link.get(key, 0) + 1
        if self.trace.enabled:
            # Guarded like seq_hop: retransmissions can be high-volume
            # under chaos, and the forensics joins need the per-event
            # (time, link, cause) stream, not just the counters.
            self.trace.record(
                self.sim.now,
                "retransmit",
                src=repr(src.name),
                dst=repr(dst.name),
                cause=cause,
            )

    def _retransmit(
        self, src: Process, dst: Process, hop: HopPacket, attempts: int
    ) -> None:
        link = self._link(src.name, dst.name)
        if hop.seq not in link.pending:
            return
        if attempts + 1 > self.max_retransmits:
            self._give_up(src, dst, hop, attempts)
            return
        channel = self._channel(src, dst)
        self._count_retransmission(src, dst, self._retransmit_cause(dst, channel))
        channel.send(hop, hop.size_bytes())
        self._arm_retransmit(src, dst, hop, attempts + 1)

    def _give_up(
        self, src: Process, dst: Process, hop: HopPacket, attempts: int
    ) -> None:
        """Abandon a packet whose retransmit budget is exhausted.

        The packet leaves the output retransmission buffer and a
        :class:`LinkFailure` is recorded (and surfaced via
        ``on_link_failure``) instead of raising: the simulation keeps
        running so a chaos campaign can observe the consequences, and the
        runtime invariant checker attributes any resulting delivery gap.
        """
        link = self._link(src.name, dst.name)
        link.pending.pop(hop.seq, None)
        failure = LinkFailure(
            time=self.sim.now,
            src=src.name,
            dst=dst.name,
            packet=hop.inner,
            attempts=attempts,
        )
        self.link_failures.append(failure)
        if self.trace.enabled:
            self.trace.record(
                self.sim.now,
                "link_failure",
                src=repr(src.name),
                dst=repr(dst.name),
                attempts=attempts,
            )
        if self.on_link_failure is not None:
            self.on_link_failure(failure)

    def _link_receive(
        self, receiver: Process, payload: Any, channel: Link
    ) -> List[Any]:
        """Reliable-link input processing; returns in-order upper packets.

        In unreliable mode the payload passes straight through.  Otherwise
        acknowledgments release the sender's retransmission buffer, and hop
        packets are acknowledged, deduplicated, and released to the caller
        strictly in hop-sequence order (out-of-order arrivals are held
        back), so the protocol above always sees a FIFO channel.
        """
        if not self.reliable:
            return [payload]
        sender_name = channel.src.name
        if isinstance(payload, AckPacket):
            link = self._link(receiver.name, sender_name)
            entry = link.pending.pop(payload.seq, None)
            if entry is not None:
                entry[0].cancel()
            return []
        if not isinstance(payload, HopPacket):
            raise TypeError(f"expected HopPacket on reliable link, got {payload!r}")
        reverse = self._channel(receiver, channel.src)
        reverse.send(AckPacket(payload.seq), ACK_BYTES)
        self.acks_sent += 1
        link = self._link(sender_name, receiver.name)
        if payload.seq < link.next_expected or payload.seq in link.holdback:
            return []  # duplicate of an already-queued or processed packet
        link.holdback[payload.seq] = payload.inner
        released: List[Any] = []
        while link.next_expected in link.holdback:
            released.append(link.holdback.pop(link.next_expected))
            link.next_expected += 1
        return released

    # -- live failover -------------------------------------------------------

    def relocate_node(
        self,
        node_id: int,
        machine: int,
        transfer_delay: float = 0.0,
    ) -> FailoverRecord:
        """Move a sequencing node's atoms to a standby ``machine``, live.

        This is the fail-over primitive: unlike
        :func:`repro.core.reconfigure.reconfigure` it does **not** require
        a quiescent fabric.  The relocation models a standby adopting the
        node's replicated durable state (Section 3.1's counters and
        buffers):

        * every atom runtime (overlap counters, group-local counters,
          forwarding tables) moves wholesale — sequence spaces continue;
        * reliable-link state is keyed by the node's *name*, which is
          preserved, so output retransmission buffers, input hold-back
          buffers, and hop sequence numbers all survive the move —
          receivers keep deduplicating replayed packets exactly as before;
        * channels touching the node are retired and lazily re-created
          with delays for the new machine, re-routing every path through
          the node;
        * pending entries in retransmission buffers to/from the node are
          replayed immediately (with a fresh attempt budget for the new
          incarnation) instead of waiting out their backed-off timers.

        ``transfer_delay`` keeps the new incarnation unavailable for that
        many milliseconds (state-transfer cost); packets arriving during
        the hand-off are dropped and recovered by retransmission.
        """
        if not self.reliable:
            raise SimulationError(
                "failover needs the reliable link layer; construct the "
                "fabric with loss_rate > 0 or an explicit retransmit_timeout"
            )
        if transfer_delay < 0:
            raise ValueError(
                f"transfer_delay must be >= 0, got {transfer_delay}"
            )
        process = self.node_processes[node_id]
        old_machine = process.machine
        self.network.retire_channels(process.name)
        process.machine = machine
        for node in self.placement.nodes:
            if node.node_id == node_id:
                node.machine = machine
        # The new incarnation goes live after the state-transfer window —
        # this also clears any crash window (including a permanent one).
        process._crashed_until = self.sim.now + transfer_delay
        replayed = self._replay_pending(process.name)
        record = FailoverRecord(
            time=self.sim.now,
            node_id=node_id,
            old_machine=old_machine,
            new_machine=machine,
            replayed=replayed,
        )
        self.failovers.append(record)
        if self.trace.enabled:
            self.trace.record(
                self.sim.now,
                "failover",
                node=node_id,
                old_machine=old_machine,
                new_machine=machine,
                replayed=replayed,
            )
        return record

    def _replay_pending(self, name: Any) -> int:
        """Replay retransmission-buffer entries touching process ``name``.

        Called at failover time: upstream senders' pending packets toward
        the moved node, and the moved node's own unacknowledged output,
        are re-sent immediately over the re-routed channels.  Attempt
        counters restart — the budget is per incarnation.
        """
        replayed = 0
        for (src_name, dst_name), link in self._links.items():
            if name != src_name and name != dst_name:
                continue
            if not link.pending:
                continue
            src = self.network.process(src_name)
            dst = self.network.process(dst_name)
            channel = self._channel(src, dst)
            for seq in sorted(link.pending):
                handle, _attempts, hop = link.pending[seq]
                handle.cancel()
                self._count_retransmission(src, dst, "failover_replay")
                channel.send(hop, hop.size_bytes())
                self._arm_retransmit(src, dst, hop, attempts=0)
                replayed += 1
        return replayed

    # -- protocol phases ---------------------------------------------------

    def publish(self, sender: int, group: int, payload: Any = None) -> int:
        """Inject a message from ``sender`` to ``group``; returns its id.

        The ingress hop is scheduled immediately at current virtual time.
        For a *causal* order the sender must subscribe to ``group``
        (Section 3.1); this is the caller's choice and not enforced here.
        """
        if not self.membership.has_group(group):
            raise KeyError(f"no such group {group}")
        message = Message(
            msg_id=self._next_msg_id,
            group=group,
            sender=sender,
            payload=payload,
            publish_time=self.sim.now,
        )
        self._next_msg_id += 1
        self.published[message.msg_id] = message
        self.trace.record(self.sim.now, "publish", msg=message.msg_id, group=group, sender=sender)
        ingress = self.graph.ingress_atom(group)
        node = self.placement.node_of(ingress)
        src = self.host_processes[sender]
        dst = self.node_processes[node.node_id]
        self._transmit(src, dst, DataPacket(message, ingress))
        return message.msg_id

    # -- epoch fences (online reconfiguration) ------------------------------

    def inject_epoch_fences(self, epoch: int) -> Dict[int, int]:
        """Publish one :class:`EpochFence` through every group's path.

        Returns ``{group: fence msg_id}``.  Fences take ordinary sequence
        numbers and travel the normal sequencing path, but are registered
        in :attr:`fences` instead of :attr:`published` and are consumed
        at the receiver (never handed to the application).  Once every
        expected member has delivered its group's fence, every message
        the old epoch sequenced has been delivered too — the safe point
        for an online cutover (see :mod:`repro.core.reconfigure`).
        """
        return {
            group: self._publish_fence(group, epoch)
            for group in sorted(self.graph.groups())
        }

    def _publish_fence(self, group: int, epoch: int) -> int:
        members = sorted(self.graph.members(group))
        sender = members[0]
        message = Message(
            msg_id=self._next_msg_id,
            group=group,
            sender=sender,
            payload=EpochFence(epoch=epoch, group=group),
            publish_time=self.sim.now,
        )
        self._next_msg_id += 1
        self.fences[message.msg_id] = message
        self.fence_expected[group] = frozenset(members)
        self.fence_delivered.setdefault(group, {})
        self.trace.record(
            self.sim.now,
            "epoch_fence",
            phase="publish",
            msg=message.msg_id,
            group=group,
            epoch=epoch,
            sender=sender,
        )
        ingress = self.graph.ingress_atom(group)
        node = self.placement.node_of(ingress)
        self._transmit(
            self.host_processes[sender],
            self.node_processes[node.node_id],
            DataPacket(message, ingress),
        )
        return message.msg_id

    def _fence_delivered(self, host_id: int, record: "DeliveryRecord") -> None:
        """Consume an epoch fence at a receiver (not an app delivery)."""
        fence = record.payload
        assert isinstance(fence, EpochFence)
        self.fence_delivered.setdefault(fence.group, {}).setdefault(
            host_id, self.sim.now
        )
        self.trace.record(
            self.sim.now,
            "epoch_fence",
            phase="deliver",
            msg=record.msg_id,
            group=fence.group,
            epoch=fence.epoch,
            host=host_id,
        )

    def fences_outstanding(self) -> Dict[int, List[int]]:
        """Members that have not yet delivered their group's fence."""
        outstanding: Dict[int, List[int]] = {}
        for group in sorted(self.fence_expected):
            delivered = self.fence_delivered.get(group, {})
            missing = sorted(self.fence_expected[group] - delivered.keys())
            if missing:
                outstanding[group] = missing
        return outstanding

    def _send_data(
        self, src: SequencingNodeProcess, target_atom: AtomId, message: Message
    ) -> None:
        node = self.placement.node_of(target_atom)
        dst = self.node_processes[node.node_id]
        if dst is src:
            raise SimulationError(
                f"atom {target_atom} is co-located with sender; should have "
                "been processed inline"
            )
        self._transmit(src, dst, DataPacket(message, target_atom))

    def _distribute(self, src: SequencingNodeProcess, message: Message) -> None:
        stamp = message.stamp()
        # Fan out to the *epoch's* member set (the sequencing graph), not
        # the live membership matrix: during an online reconfiguration the
        # matrix may already describe the next epoch while this epoch's
        # traffic is still draining.  While the membership is unchanged the
        # two sets are identical.
        members = sorted(self.graph.members(message.group))
        if self.trace.enabled:
            self.trace.record(
                self.sim.now,
                "distribute",
                msg=message.msg_id,
                node=src.node_id,
                members=len(members),
            )
        if self.track_stability and not isinstance(message.payload, EpochFence):
            src.expect_stability_acks(message.msg_id, members)
        for member in members:
            packet = DeliverPacket(
                stamp=stamp,
                payload=message.payload,
                msg_id=message.msg_id,
                sender=message.sender,
                publish_time=message.publish_time,
                dest=member,
                egress_node=src.node_id,
            )
            self._transmit(src, self.host_processes[member], packet)
        self._account_distribution(src, message.group, stamp.size_bytes())

    def _account_distribution(
        self, src: SequencingNodeProcess, group: int, size_bytes: int
    ) -> None:
        """Record delivery-tree link usage for the distribution phase.

        The paper hands messages leaving the sequencing network "to a
        delivery tree and on to group members".  Per-member arrival times
        equal shortest-path unicast either way (the tree is the union of
        shortest paths), so the simulation sends unicast copies; this
        accounting tracks what a shared delivery tree would put on each
        link, for the multicast-efficiency metrics.
        """
        key = (src.machine, group)
        tree = self._delivery_trees.get(key)
        if tree is None:
            from repro.pubsub.multicast import DeliveryTree

            members = [
                self._host_by_id[m].router for m in self.graph.members(group)
            ]
            tree = DeliveryTree(self.routing, src.machine, members)
            self._delivery_trees[key] = tree
        self.distribution_tree_links += tree.link_count()
        self.distribution_unicast_links += tree.unicast_link_count()
        self.distribution_tree_bytes += tree.link_count() * size_bytes

    # -- running and inspecting ---------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Drive the runtime backend; returns callbacks executed.

        Blocking on every backend that owns its event source (the
        simulator, or an :class:`AsyncioTransport` with an owned loop).
        A hosted asyncio backend raises
        :class:`~repro.runtime.errors.RuntimeUnavailable` here — drive it
        with ``await fabric.runtime.wait_quiescent(...)`` instead.
        """
        return self.runtime.run(until=until, max_events=max_events)

    def delivered(self, host_id: int) -> List[DeliveryRecord]:
        """Messages delivered to a host, in delivery order."""
        return list(self.host_processes[host_id].delivered)

    def pending_messages(self) -> Dict[int, int]:
        """Hosts with messages still buffered (should be empty after run)."""
        return {
            host_id: process.delivery.pending
            for host_id, process in self.host_processes.items()
            if process.delivery.pending
        }

    def export_certificate(self) -> Dict:
        """Graph + placement certificate, extended with live channel state.

        Beyond :meth:`SequencingGraph.export_certificate`, the fabric
        adds a ``channels`` section recording the transport's live and
        retired directed edges (process names rendered with ``repr``)
        plus the retirement counter, so
        :mod:`repro.check.graph_verify`'s GV206 can prove that no edge
        retired by a failover still appears live.
        """
        certificate = self.graph.export_certificate(placement=self.placement)
        retired = getattr(self.network, "retired_edges", set())
        certificate["channels"] = {
            "retired_count": self.network.channels_retired,
            "live": sorted(
                [repr(src), repr(dst)] for src, dst in self.network.channels
            ),
            "retired": sorted([repr(src), repr(dst)] for src, dst in retired),
        }
        return certificate

    def unicast_delay(self, sender: int, dest: int) -> float:
        """Baseline shortest-path delay between two hosts."""
        a = self._host_by_id[sender]
        b = self._host_by_id[dest]
        if sender == dest:
            return 2 * a.access_delay
        return a.access_delay + self.routing.delay(a.router, b.router) + b.access_delay

    def stable_messages(self, host_id: int) -> set:
        """Messages ``host_id`` knows are delivered at every group member.

        Requires ``track_stability=True``; stability notices propagate a
        round-trip after the last member's delivery, so run the simulation
        to quiescence before checking.
        """
        return set(self.host_processes[host_id].stable_ids)

    def atom_work(self) -> Dict[str, int]:
        """Aggregate per-atom stamping work across every sequencing node.

        Deterministic per seed (pure visit counts), so the bench harness
        records it in a ``BENCH_*.json`` counts section: total atom
        visits, stamps issued, and pass-through forwards.
        """
        visits = stamps = passes = 0
        for process in self.node_processes.values():
            for runtime in process.atom_runtimes.values():
                visits += runtime.visits
                stamps += runtime.messages_sequenced
                passes += runtime.messages_passed_through
        return {"visits": visits, "stamps": stamps, "pass_through": passes}

    def sequencing_load(self) -> Dict[int, int]:
        """Distinct message visits per sequencing node.

        A message processed by several co-located atoms during one visit
        counts once — this is the machine-level load figure the paper's
        scalability argument is about.  Per-atom work counts live on the
        atom runtimes (``messages_sequenced``/``messages_passed_through``).
        """
        return {
            node_id: process.messages_handled
            for node_id, process in self.node_processes.items()
        }
