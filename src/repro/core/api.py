"""`OrderedPubSub` — the library's high-level entry point.

Wraps topology generation, host attachment, subscription management, and
the ordering fabric behind join/leave/publish/run calls::

    from repro import OrderedPubSub

    bus = OrderedPubSub(n_hosts=16, seed=7)
    alice, bob, carol = 0, 1, 2
    bus.subscribe(alice, "room/blue")
    bus.subscribe(bob, "room/blue")
    bus.subscribe(bob, "room/red")
    bus.subscribe(carol, "room/red")
    bus.publish(alice, "room/blue", "hello")
    bus.run()
    for record in bus.delivered(bob):
        print(record.payload)

Membership changes invalidate the running fabric; the next publish after a
change rebuilds the sequencing graph and placement (the system must be
quiescent — all in-flight messages delivered — at that point, mirroring
the paper's static-membership evaluation; Section 5 leaves high-churn
in-flight reconfiguration to future work).
"""

import random
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Union

from repro.core.protocol import DeliveryRecord, OrderingFabric
from repro.runtime.interfaces import RuntimeBackend
from repro.pubsub.broker import SubscriptionBroker
from repro.pubsub.membership import GroupMembership
from repro.topology.clusters import Host, attach_hosts
from repro.topology.gtitm import Topology, TransitStubParams, generate_transit_stub
from repro.topology.routing import RoutingTable


class OrderingViolation(RuntimeError):
    """Raised on API misuse that would break ordering guarantees."""


class OrderedPubSub:
    """A publish/subscribe system with cross-group total ordering.

    Runs on the discrete-event simulator by default, or live on asyncio
    tasks with ``backend="asyncio"`` — same protocol, same API.

    Parameters
    ----------
    n_hosts:
        Number of end hosts to attach.
    topology_params:
        Transit–stub shape; a small test topology when omitted.
    seed:
        Master seed; all randomness (topology, attachment, graph ordering,
        placement, loss) derives from it.
    loss_rate:
        Per-packet loss probability; positive values enable per-hop
        acks/retransmission.
    optimize:
        Sequencing-chain ordering mode (``"none"|"greedy"|"local"``).
    enforce_causal_sends:
        When True (default), publishing to a group the sender is not a
        member of raises :class:`OrderingViolation` — the paper's causal
        ordering requires senders to subscribe to the groups they send to.
        Pass False to allow decoupled (consistent but not causal) sends.
    backend:
        Runtime backend: ``"sim"`` (default; discrete-event simulation,
        byte-identical to the pre-split behavior) or ``"asyncio"`` (the
        live runtime — processes run as asyncio tasks; see
        :mod:`repro.runtime.asyncio_backend`).
    time_scale:
        Real seconds per virtual millisecond for the asyncio backend
        (ignored under ``"sim"``).  Small values run live scenarios much
        faster than real time.
    """

    def __init__(
        self,
        n_hosts: int = 32,
        topology_params: Optional[TransitStubParams] = None,
        seed: int = 0,
        loss_rate: float = 0.0,
        optimize: str = "greedy",
        enforce_causal_sends: bool = True,
        cluster_size: int = 8,
        backend: str = "sim",
        time_scale: float = 0.001,
    ):
        if backend not in ("sim", "asyncio"):
            raise ValueError(f"unknown backend {backend!r} (sim|asyncio)")
        self.seed = seed
        self.loss_rate = loss_rate
        self.optimize = optimize
        self.enforce_causal_sends = enforce_causal_sends
        self.backend = backend
        self.time_scale = time_scale
        rng = random.Random(seed)
        self.topology: Topology = generate_transit_stub(
            topology_params or TransitStubParams.small(), seed=seed
        )
        self.routing = RoutingTable(self.topology)
        self.hosts: List[Host] = attach_hosts(
            self.topology, n_hosts, cluster_size=cluster_size, rng=rng
        )
        self.broker = SubscriptionBroker(GroupMembership())
        self._fabric: Optional[OrderingFabric] = None
        self._dirty = True
        self.broker.membership.add_listener(self._on_membership_change)
        self._delivered_history: Dict[int, List[DeliveryRecord]] = {
            h.host_id: [] for h in self.hosts
        }
        #: optional application callback ``(host_id, DeliveryRecord)``,
        #: invoked on every delivery and persisted across fabric epochs
        self.on_deliver: Optional[Callable[[int, DeliveryRecord], None]] = None
        #: callbacks invoked with every (re)built fabric; lets observers
        #: (telemetry, monitors) re-attach across epoch switches without
        #: the core importing them
        self._fabric_observers: List[Callable[[OrderingFabric], None]] = []

    def add_fabric_observer(
        self, observer: Callable[[OrderingFabric], None]
    ) -> None:
        """Register a callback invoked with each (re)built fabric.

        Fires immediately when a fabric already exists, then again after
        every epoch switch — the hook observability layers (e.g.
        :class:`repro.obs.live.LiveMonitor`) use to follow the bus across
        reconfigurations.
        """
        self._fabric_observers.append(observer)
        if self._fabric is not None:
            observer(self._fabric)

    def _dispatch_deliver(self, host_id: int, record: DeliveryRecord) -> None:
        if self.on_deliver is not None:
            self.on_deliver(host_id, record)

    # -- membership ---------------------------------------------------------

    def _on_membership_change(
        self, op: str, group_id: int, members: FrozenSet[int]
    ) -> None:
        self._dirty = True

    def subscribe(self, host_id: int, topic: str) -> int:
        """Subscribe a host to a topic; returns the topic's group id."""
        self._check_host(host_id)
        return self.broker.subscribe(host_id, topic)

    def unsubscribe(self, host_id: int, topic: str) -> None:
        """Drop a host's subscription to a topic."""
        self._check_host(host_id)
        self.broker.unsubscribe(host_id, topic)

    def create_group(
        self, members: Iterable[int], group_id: Optional[int] = None
    ) -> int:
        """Create a raw group directly (experiments bypass topics)."""
        for member in members:
            self._check_host(member)
        return self.broker.membership.create_group(members, group_id=group_id)

    def _check_host(self, host_id: int) -> None:
        if not 0 <= host_id < len(self.hosts):
            raise KeyError(f"no such host {host_id} (have {len(self.hosts)})")

    @property
    def membership(self) -> GroupMembership:
        """The underlying membership matrix."""
        return self.broker.membership

    # -- fabric lifecycle -----------------------------------------------------

    @property
    def fabric(self) -> OrderingFabric:
        """The current ordering fabric, (re)building it if stale."""
        if self._dirty:
            self._rebuild()
        assert self._fabric is not None, "_rebuild always sets the fabric"
        return self._fabric

    def _rebuild(self) -> None:
        if self._fabric is not None:
            # Epoch switch with state continuity: surviving groups and
            # atoms keep their sequence spaces (see repro.core.reconfigure).
            # In-flight traffic is fenced and drained online, so a
            # membership change no longer demands quiescence first.
            from repro.core.reconfigure import reconfigure

            old_fabric = self._fabric
            self._fabric = reconfigure(
                old_fabric, self.broker.membership, seed=self.seed
            )
            # Preserve delivery history across fabric epochs — after the
            # switch, so messages delivered during the fence drain count.
            for host_id, process in old_fabric.host_processes.items():
                self._delivered_history[host_id].extend(process.delivered)
        else:
            self._fabric = OrderingFabric(
                self.broker.membership,
                self.hosts,
                self.topology,
                self.routing,
                seed=self.seed,
                loss_rate=self.loss_rate,
                optimize=self.optimize,
                runtime=self._make_runtime(),
            )
        self._fabric.on_deliver = self._dispatch_deliver
        self._dirty = False
        for observer in self._fabric_observers:
            observer(self._fabric)

    def _make_runtime(self) -> Optional[RuntimeBackend]:
        """First-epoch runtime for the selected backend.

        Returns ``None`` for ``"sim"`` so the fabric builds its own
        :class:`~repro.runtime.sim_backend.SimTransport` exactly as it
        always has (fixed-seed byte-identity).  Later epochs come from
        ``runtime.successor`` inside :func:`repro.core.reconfigure.
        reconfigure`, so the backend kind is sticky across membership
        changes.
        """
        if self.backend == "sim":
            return None
        from repro.runtime.asyncio_backend import AsyncioTransport

        return AsyncioTransport(
            seed=self.seed,
            loss_rate=self.loss_rate,
            time_scale=self.time_scale,
        )

    def close(self) -> None:
        """Release the current fabric's runtime resources (idempotent)."""
        if self._fabric is not None:
            self._fabric.runtime.close()

    # -- messaging -------------------------------------------------------------

    def publish(
        self, sender: int, destination: Union[str, int], payload: Any = None
    ) -> int:
        """Publish ``payload`` from ``sender`` to a topic or group id."""
        self._check_host(sender)
        if isinstance(destination, str):
            group = self.broker.group_for(destination)
        else:
            group = destination
        if (
            self.enforce_causal_sends
            and sender not in self.membership.members(group)
        ):
            raise OrderingViolation(
                f"host {sender} is not a member of group {group}; causal "
                "ordering requires senders to subscribe to the groups they "
                "send to (construct with enforce_causal_sends=False to allow)"
            )
        return self.fabric.publish(sender, group, payload)

    def run(self, until: Optional[float] = None) -> int:
        """Run the simulation until quiescent (or ``until``)."""
        if self._fabric is None:
            return 0
        return self._fabric.run(until=until)

    @property
    def now(self) -> float:
        """Current virtual time (milliseconds)."""
        return self._fabric.sim.now if self._fabric is not None else 0.0

    def delivered(self, host_id: int) -> List[DeliveryRecord]:
        """All messages delivered to a host, across fabric epochs."""
        self._check_host(host_id)
        records = list(self._delivered_history[host_id])
        if self._fabric is not None:
            records.extend(self._fabric.host_processes[host_id].delivered)
        return records

    def delivered_payloads(self, host_id: int) -> List[Any]:
        """Just the payloads, in delivery order (convenience)."""
        return [record.payload for record in self.delivered(host_id)]
