"""Double-overlap analysis of the group membership matrix.

The paper's central insight: only groups sharing **two or more**
subscribers ("double overlapped" groups) can be observed to arrive out of
order, because at least two common receivers are needed to compare orders.
One sequencing atom is instantiated per double overlap.

Atoms that share a group cannot be sequenced independently — their groups'
paths must intersect — so the *conflict graph* over atoms (adjacency =
shared group) partitions the problem into independent *overlap clusters*,
one sequencing chain per cluster (see
:mod:`repro.core.sequencing_graph`).
"""

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

MembershipSnapshot = Dict[int, FrozenSet[int]]
OverlapPair = Tuple[int, int]

#: Minimum shared subscribers for an overlap to need sequencing.  The paper
#: fixes this at 2; it is a parameter here so tests can explore the
#: degenerate threshold=1 behaviour.
DOUBLE_OVERLAP_THRESHOLD = 2


def double_overlaps(
    snapshot: MembershipSnapshot,
    threshold: int = DOUBLE_OVERLAP_THRESHOLD,
) -> Dict[OverlapPair, FrozenSet[int]]:
    """All group pairs sharing at least ``threshold`` members.

    Returns a map from the sorted group-id pair to the full intersection of
    the two groups' memberships.  Runs in
    ``O(sum_over_nodes subscriptions(node)^2)`` — it never enumerates group
    pairs that share no member.
    """
    if threshold < 1:
        raise ValueError(f"threshold must be >= 1, got {threshold}")
    groups_of: Dict[int, List[int]] = {}
    for group_id, members in snapshot.items():
        for node in members:
            groups_of.setdefault(node, []).append(group_id)

    shared: Dict[OverlapPair, Set[int]] = {}
    for node, node_groups in groups_of.items():
        node_groups.sort()
        for i, g in enumerate(node_groups):
            for h in node_groups[i + 1 :]:
                shared.setdefault((g, h), set()).add(node)

    return {
        pair: frozenset(members)
        for pair, members in shared.items()
        if len(members) >= threshold
    }


def overlap_clusters(pairs: Iterable[OverlapPair]) -> List[List[OverlapPair]]:
    """Partition overlap pairs into clusters connected by shared groups.

    Two pairs conflict (must live in the same sequencing chain) when they
    name a common group.  All atoms of one group pairwise conflict, so each
    group's atoms always land in a single cluster — which is what lets C1
    hold with one chain per cluster.

    Clusters and their contents are returned in deterministic sorted order.
    """
    pair_list = sorted(set(pairs))
    by_group: Dict[int, List[OverlapPair]] = {}
    for pair in pair_list:
        for group in pair:
            by_group.setdefault(group, []).append(pair)

    clusters: List[List[OverlapPair]] = []
    seen: Set[OverlapPair] = set()
    for start in pair_list:
        if start in seen:
            continue
        # BFS over the conflict graph via shared groups.
        cluster: List[OverlapPair] = []
        frontier = [start]
        seen.add(start)
        while frontier:
            pair = frontier.pop()
            cluster.append(pair)
            for group in pair:
                for other in by_group[group]:
                    if other not in seen:
                        seen.add(other)
                        frontier.append(other)
        clusters.append(sorted(cluster))
    return clusters


def groups_with_overlaps(pairs: Iterable[OverlapPair]) -> Set[int]:
    """The set of groups that appear in at least one double overlap."""
    result: Set[int] = set()
    for g, h in pairs:
        result.add(g)
        result.add(h)
    return result


def overlap_count_by_group(pairs: Iterable[OverlapPair]) -> Dict[int, int]:
    """How many double overlaps each group participates in."""
    counts: Dict[int, int] = {}
    for g, h in pairs:
        counts[g] = counts.get(g, 0) + 1
        counts[h] = counts.get(h, 0) + 1
    return counts
