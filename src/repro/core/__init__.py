"""The paper's primary contribution: decentralized cross-group ordering.

Layers, bottom-up:

* :mod:`repro.core.messages` — messages, stamps, atom identities.
* :mod:`repro.core.overlaps` — double-overlap analysis of the membership
  matrix (only groups sharing ≥2 subscribers need sequencing).
* :mod:`repro.core.sequencing_graph` — arrangement of sequencing atoms
  satisfying C1 (single path per group) and C2 (loop-free), with
  incremental group add/remove.
* :mod:`repro.core.placement` — Section 3.4 co-location and machine
  assignment heuristics.
* :mod:`repro.core.atoms` — per-atom runtime state (counters, forwarding
  and reverse-path tables).
* :mod:`repro.core.delivery` — the receiver's instant deliver-or-buffer
  decision.
* :mod:`repro.core.protocol` — the ingress/sequencing/distribution
  pipeline over the discrete-event simulator.
* :mod:`repro.core.api` — the :class:`~repro.core.api.OrderedPubSub`
  facade.
"""

from repro.core.api import OrderedPubSub, OrderingViolation
from repro.core.atoms import AtomRuntime, build_atom_runtimes
from repro.core.delivery import DeliveryState
from repro.core.messages import AtomId, Message, Stamp, vector_timestamp_bytes
from repro.core.overlaps import double_overlaps, overlap_clusters
from repro.core.placement import (
    Placement,
    SequencingNode,
    assign_machines,
    co_locate_atoms,
    place,
    random_placement,
)
from repro.core.protocol import DeliveryRecord, OrderingFabric
from repro.core.reconfigure import ReconfigurationError, reconfigure
from repro.core.sequencing_graph import (
    AtomSpec,
    GraphInvariantError,
    SequencingGraph,
    pass_through_cost,
)

__all__ = [
    "AtomId",
    "AtomRuntime",
    "AtomSpec",
    "DeliveryRecord",
    "DeliveryState",
    "GraphInvariantError",
    "Message",
    "OrderedPubSub",
    "OrderingFabric",
    "OrderingViolation",
    "Placement",
    "ReconfigurationError",
    "SequencingGraph",
    "SequencingNode",
    "Stamp",
    "assign_machines",
    "build_atom_runtimes",
    "co_locate_atoms",
    "double_overlaps",
    "overlap_clusters",
    "pass_through_cost",
    "place",
    "random_placement",
    "reconfigure",
    "vector_timestamp_bytes",
]
