"""Messages, sequence-number stamps, and atom identifiers.

A message published to a group collects, while traversing the sequencing
network, a *group-local* sequence number from its ingress atom plus one
sequence number from every sequencing atom associated with its destination
group (Section 3.1).  The collected numbers form the message's
:class:`Stamp`.  Stamp size is proportional, in the worst case, to the
number of groups — never to group size — which is the paper's overhead
advantage over vector timestamps (Section 2, Section 4.4).
"""

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

#: Serialized bytes for fixed message header fields (ids, group, group seq).
HEADER_BYTES = 16
#: Serialized bytes per (atom id, sequence number) stamp entry.
ATOM_ENTRY_BYTES = 12
#: Serialized bytes per vector-timestamp entry (node id + counter), used by
#: the vector-clock baseline for the overhead comparison.
VECTOR_ENTRY_BYTES = 8


@dataclass(frozen=True, order=True)
class AtomId:
    """Identity of a sequencing atom.

    Overlap atoms are named by the (sorted) pair of groups whose double
    overlap they sequence; ingress-only atoms — created for groups without
    any double overlap — are named by their single group.
    """

    kind: str
    groups: Tuple[int, ...]

    OVERLAP = "overlap"
    INGRESS = "ingress"

    @classmethod
    def overlap(cls, g: int, h: int) -> "AtomId":
        """Atom for the double overlap of groups ``g`` and ``h``."""
        if g == h:
            raise ValueError("an overlap atom needs two distinct groups")
        lo, hi = (g, h) if g < h else (h, g)
        return cls(cls.OVERLAP, (lo, hi))

    @classmethod
    def ingress(cls, g: int) -> "AtomId":
        """Ingress-only atom for a group without double overlaps."""
        return cls(cls.INGRESS, (g,))

    @property
    def is_ingress_only(self) -> bool:
        """True for ingress-only atoms (paper: grow linearly, excluded from
        the Figure 5 sequencing-node count)."""
        return self.kind == self.INGRESS

    def sequences_group(self, group: int) -> bool:
        """Whether this atom assigns sequence numbers to ``group``."""
        return group in self.groups

    def __repr__(self) -> str:
        if self.is_ingress_only:
            return f"I({self.groups[0]})"
        return f"Q({self.groups[0]},{self.groups[1]})"


@dataclass(frozen=True)
class Stamp:
    """The immutable ordering information a message carries at delivery.

    Attributes
    ----------
    group:
        Destination group id.
    group_seq:
        Group-local sequence number, assigned by the group's ingress atom.
    atom_seqs:
        ``(atom_id, sequence_number)`` pairs in path order, one per
        sequencing atom associated with the destination group.
    """

    group: int
    group_seq: int
    atom_seqs: Tuple[Tuple[AtomId, int], ...] = ()

    def seq_of(self, atom_id: AtomId) -> Optional[int]:
        """Sequence number this stamp carries for ``atom_id``, if any."""
        for aid, seq in self.atom_seqs:
            if aid == atom_id:
                return seq
        return None

    def size_bytes(self) -> int:
        """Serialized size of the ordering information."""
        return HEADER_BYTES + ATOM_ENTRY_BYTES * len(self.atom_seqs)


class Message:
    """A published message accumulating its stamp during sequencing.

    Instances are created by the publisher-side API and mutated only by
    sequencing atoms (via :meth:`assign_group_seq` / :meth:`add_atom_seq`)
    until distribution, after which :meth:`stamp` freezes the ordering
    information receivers use.
    """

    __slots__ = (
        "msg_id",
        "group",
        "sender",
        "payload",
        "publish_time",
        "group_seq",
        "_atom_seqs",
    )

    def __init__(
        self,
        msg_id: int,
        group: int,
        sender: int,
        payload: Any = None,
        publish_time: float = 0.0,
    ):
        self.msg_id = msg_id
        self.group = group
        self.sender = sender
        self.payload = payload
        self.publish_time = publish_time
        self.group_seq: Optional[int] = None
        self._atom_seqs: List[Tuple[AtomId, int]] = []

    def assign_group_seq(self, seq: int) -> None:
        """Record the group-local sequence number (once, at ingress)."""
        if self.group_seq is not None:
            raise ValueError(f"message {self.msg_id} already has a group seq")
        self.group_seq = seq

    def add_atom_seq(self, atom_id: AtomId, seq: int) -> None:
        """Append an atom's sequence number (each atom stamps once)."""
        if any(aid == atom_id for aid, _ in self._atom_seqs):
            raise ValueError(f"atom {atom_id} already stamped message {self.msg_id}")
        self._atom_seqs.append((atom_id, seq))

    @property
    def atom_seqs(self) -> Tuple[Tuple[AtomId, int], ...]:
        """Atom sequence numbers collected so far, in path order."""
        return tuple(self._atom_seqs)

    def stamp(self) -> Stamp:
        """Freeze the ordering information for delivery."""
        if self.group_seq is None:
            raise ValueError(f"message {self.msg_id} was never ingress-sequenced")
        return Stamp(self.group, self.group_seq, tuple(self._atom_seqs))

    def __repr__(self) -> str:
        return (
            f"<Message id={self.msg_id} group={self.group} sender={self.sender} "
            f"gseq={self.group_seq} atoms={self._atom_seqs}>"
        )


@dataclass(frozen=True)
class EpochFence:
    """Payload marking the last message of a sequencing space in an epoch.

    During an online epoch switch (:func:`repro.core.reconfigure.
    reconfigure`) one fence is published through every group's sequencing
    path.  Because each group's traffic follows a single static path of
    FIFO reliable links (C1) and receivers deliver in sequence order, a
    receiver that has delivered the fence has necessarily delivered every
    message the old epoch sequenced before it — the fence *fences* the
    in-flight traffic of that space.  Fences consume ordinary group-local
    and atom sequence numbers but are consumed by the fabric at the
    receiver instead of being handed to the application.
    """

    epoch: int
    group: int


def vector_timestamp_bytes(n_nodes: int) -> int:
    """Wire size of a dense vector timestamp over ``n_nodes`` processes.

    Used for the Section 4.4 comparison: the sequencing approach wins
    whenever the number of nodes exceeds the number of groups.
    """
    return HEADER_BYTES + VECTOR_ENTRY_BYTES * n_nodes
