"""Construction and maintenance of the sequencing graph (paper Section 3.2).

The sequencing graph must satisfy two criteria:

* **C1** — a single path must connect the sequencers associated with each
  group, and
* **C2** — the undirected sequencing graph must be loop-free.

The paper requires these properties but leaves the construction algorithm
open ("we use a global picture of the sequencing graph and subscription
matrix state to find a new sequencer arrangement").  Our construction uses
a *chain per overlap cluster*:

1. One sequencing atom per double overlap (:mod:`repro.core.overlaps`).
2. Atoms that transitively share groups form an overlap cluster; all atoms
   of any one group are in the same cluster (they pairwise share that
   group).
3. The atoms of each cluster are arranged on a **chain** — a simple path.
   A chain is trivially loop-free (C2), and any subset of a chain lies on
   a sub-path of it (C1).  A group's sequencing path is the contiguous
   chain segment from its first to its last atom; atoms inside the segment
   that do not sequence the group are *pass-through* atoms, forwarding
   messages in arrival order without stamping them — exactly the
   "m₃ transits Q₁" mechanism the paper's Theorem 1 relies on.  All groups
   traverse the chain in the same canonical direction (increasing
   position), which makes arrival order propagate consistently along
   shared segments over the FIFO inter-sequencer channels.

This matches the paper's own fix for its Figure 2 example: the atom
triangle Q0–Q1–Q2 becomes the chain Q0–Q1–Q2 with message m₁ passing
through Q1.

Chain *ordering* is a pure efficiency knob (it changes how many
pass-through atoms messages cross, never correctness).  We order greedily
by group affinity and optionally improve with adjacent-swap hill climbing.

Groups without any double overlap get an *ingress-only* atom that assigns
only group-local sequence numbers (paper Section 3.2: "Adding the first
group G0 is trivial: an ingress-only sequencer is created").

Dynamic operations follow Section 3.2: adding a group instantiates atoms
for its new overlaps and splices them into the (possibly merged) cluster
chain; removing a group retires its atoms either lazily (they stay on the
chain as pass-through placeholders — "adding ignored sequence numbers to a
message does not hurt correctness, only efficiency") or eagerly (spliced
out, chains re-split).
"""

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.messages import AtomId
from repro.core.overlaps import (
    DOUBLE_OVERLAP_THRESHOLD,
    MembershipSnapshot,
    double_overlaps,
    overlap_clusters,
)


class GraphInvariantError(AssertionError):
    """Raised by :meth:`SequencingGraph.validate` when C1/C2 are violated."""


@dataclass(frozen=True)
class AtomSpec:
    """Static description of a sequencing atom.

    ``overlap_members`` is the intersection of the two groups' memberships
    at atom creation time — the set of receivers for which this atom's
    sequence numbers are *relevant* (paper Section 3.2).  Empty for
    ingress-only atoms.
    """

    atom_id: AtomId
    overlap_members: FrozenSet[int]


# ---------------------------------------------------------------------------
# Chain ordering heuristics
# ---------------------------------------------------------------------------


def pass_through_cost(
    chain: Sequence[AtomId], atoms_by_group: Dict[int, List[AtomId]]
) -> int:
    """Total pass-through atoms across all groups for this chain order.

    For each group, its messages traverse the segment between its first and
    last atom; every atom inside that segment not sequencing the group is a
    pass-through hop.  Lower is better.
    """
    pos = {atom: i for i, atom in enumerate(chain)}
    cost = 0
    for atoms in atoms_by_group.values():
        positions = [pos[a] for a in atoms if a in pos]
        if len(positions) > 1:
            cost += (max(positions) - min(positions) + 1) - len(positions)
    return cost


def _greedy_order_items(items: Dict[object, FrozenSet[int]]) -> List[object]:
    """Order items (atoms or co-location blocks) by group affinity.

    Grows the chain one item at a time, preferring items that close
    currently-open groups (groups with placed and unplaced items), then
    items sharing groups with the current tail.  Deterministic: keys must
    be totally ordered, and ties break on the smallest key.

    The inner loop is O(items^2) in the worst case but runs on dense
    integer indices (item keys are sorted once), which keeps dense
    overlap clusters — Figure 8's high-occupancy sweeps create hundreds
    of atoms in one cluster — fast.
    """
    if len(items) <= 2:
        return sorted(items)
    keys = sorted(items)
    n = len(keys)
    # Dense group ids.
    group_ids: Dict[int, int] = {}
    item_groups: List[List[int]] = []
    for key in keys:
        dense = []
        for g in items[key]:
            gid = group_ids.setdefault(g, len(group_ids))
            dense.append(gid)
        item_groups.append(dense)
    n_groups = len(group_ids)
    total = [0] * n_groups
    for dense in item_groups:
        for gid in dense:
            total[gid] += 1
    placed = [0] * n_groups

    # Start with an item of the most-sequenced group: its segment is the
    # longest, so anchoring it early keeps it contiguous (smallest index
    # wins ties, matching the key order).
    start = max(range(n), key=lambda i: (max(total[g] for g in item_groups[i]), -i))
    order = [start]
    unplaced = [True] * n
    unplaced[start] = False
    for gid in item_groups[start]:
        placed[gid] += 1

    for _ in range(n - 1):
        tail_groups = item_groups[order[-1]]
        best = -1
        best_open = -1
        best_tail = -1
        for index in range(n):
            if not unplaced[index]:
                continue
            open_hits = 0
            tail_hits = 0
            for gid in item_groups[index]:
                if 0 < placed[gid] < total[gid]:
                    open_hits += 1
                if gid in tail_groups:
                    tail_hits += 1
            if (
                best < 0
                or open_hits > best_open
                or (open_hits == best_open and tail_hits > best_tail)
            ):
                best = index
                best_open = open_hits
                best_tail = tail_hits
        order.append(best)
        unplaced[best] = False
        for gid in item_groups[best]:
            placed[gid] += 1
    return [keys[i] for i in order]


def _greedy_order(atom_ids: List[AtomId], rng: random.Random) -> List[AtomId]:
    """Order cluster atoms by group affinity (see _greedy_order_items)."""
    return _greedy_order_items(
        {atom: frozenset(atom.groups) for atom in atom_ids}
    )


def _improve_order(
    chain: List[AtomId],
    atoms_by_group: Dict[int, List[AtomId]],
    max_passes: int = 4,
) -> List[AtomId]:
    """Adjacent-swap hill climbing on the pass-through cost."""
    chain = list(chain)
    best_cost = pass_through_cost(chain, atoms_by_group)
    for _ in range(max_passes):
        improved = False
        for i in range(len(chain) - 1):
            chain[i], chain[i + 1] = chain[i + 1], chain[i]
            cost = pass_through_cost(chain, atoms_by_group)
            if cost < best_cost:
                best_cost = cost
                improved = True
            else:
                chain[i], chain[i + 1] = chain[i + 1], chain[i]
        if not improved:
            break
    return chain


def block_extent_cost(
    order: Sequence[object], block_groups: Dict[object, FrozenSet[int]]
) -> int:
    """Total machine hops implied by a block (sequencing-node) ordering.

    Each group's messages traverse the contiguous run of blocks between
    the first and last block containing one of the group's atoms; every
    block in that run is one wide-area hop.  Lower is better.
    """
    first: Dict[int, int] = {}
    last: Dict[int, int] = {}
    for index, block in enumerate(order):
        for g in block_groups[block]:
            if g not in first:
                first[g] = index
            last[g] = index
    return sum(last[g] - first[g] + 1 for g in first)


def _improve_block_order(
    order: List[object],
    block_groups: Dict[object, FrozenSet[int]],
    max_passes: int = 6,
) -> List[object]:
    """Adjacent-swap hill climbing on the block-extent (machine-hop) cost."""
    order = list(order)
    best_cost = block_extent_cost(order, block_groups)
    for _ in range(max_passes):
        improved = False
        for i in range(len(order) - 1):
            order[i], order[i + 1] = order[i + 1], order[i]
            cost = block_extent_cost(order, block_groups)
            if cost < best_cost:
                best_cost = cost
                improved = True
            else:
                order[i], order[i + 1] = order[i + 1], order[i]
        if not improved:
            break
    return order


# ---------------------------------------------------------------------------
# The sequencing graph
# ---------------------------------------------------------------------------


class SequencingGraph:
    """The arrangement of sequencing atoms satisfying C1 and C2.

    Build one from a membership snapshot with :meth:`build`, then query
    group paths and mutate with :meth:`add_group` / :meth:`remove_group`.

    Parameters
    ----------
    rng:
        Random source for (rare) tie-breaking; a fresh ``Random(0)`` when
        omitted, so default construction is deterministic.
    optimize:
        ``"greedy"`` (default) orders chains by group affinity;
        ``"local"`` additionally hill-climbs; ``"none"`` uses sorted order
        (useful to stress correctness independence from ordering).
    threshold:
        Minimum shared members for an overlap to be sequenced (paper: 2).
    """

    def __init__(
        self,
        rng: Optional[random.Random] = None,
        optimize: str = "greedy",
        threshold: int = DOUBLE_OVERLAP_THRESHOLD,
    ):
        if optimize not in ("none", "greedy", "local"):
            raise ValueError(f"unknown optimize mode {optimize!r}")
        self._rng = rng or random.Random(0)
        self._optimize = optimize
        self._threshold = threshold
        self._group_members: Dict[int, FrozenSet[int]] = {}
        self.atoms: Dict[AtomId, AtomSpec] = {}
        self.chains: List[List[AtomId]] = []
        self.retired: Set[AtomId] = set()
        self._ingress_only: Dict[int, AtomId] = {}

    # -- construction ---------------------------------------------------

    @classmethod
    def build(
        cls,
        snapshot: MembershipSnapshot,
        rng: Optional[random.Random] = None,
        optimize: str = "greedy",
        threshold: int = DOUBLE_OVERLAP_THRESHOLD,
    ) -> "SequencingGraph":
        """Construct the graph for a full membership snapshot."""
        graph = cls(rng=rng, optimize=optimize, threshold=threshold)
        graph._group_members = {g: frozenset(m) for g, m in snapshot.items()}
        overlaps = double_overlaps(snapshot, threshold=threshold)
        for (g, h), members in overlaps.items():
            atom_id = AtomId.overlap(g, h)
            graph.atoms[atom_id] = AtomSpec(atom_id, members)
        for cluster in overlap_clusters(overlaps.keys()):
            atom_ids = [AtomId.overlap(g, h) for g, h in cluster]
            graph.chains.append(graph._order_chain(atom_ids))
        for g in snapshot:
            if not any(AtomId.overlap(g, h) in graph.atoms for h in snapshot if h != g):
                graph._add_ingress_atom(g)
        return graph

    def _order_chain(self, atom_ids: List[AtomId]) -> List[AtomId]:
        if self._optimize == "none":
            return sorted(atom_ids)
        chain = _greedy_order(list(atom_ids), self._rng)
        if self._optimize == "local" and len(chain) > 2:
            chain = _improve_order(chain, self._atoms_by_group(atom_ids))
        return chain

    def _atoms_by_group(self, atom_ids: Iterable[AtomId]) -> Dict[int, List[AtomId]]:
        result: Dict[int, List[AtomId]] = {}
        for atom in atom_ids:
            for g in atom.groups:
                result.setdefault(g, []).append(atom)
        return result

    def _add_ingress_atom(self, group: int) -> AtomId:
        atom_id = AtomId.ingress(group)
        self.atoms[atom_id] = AtomSpec(atom_id, frozenset())
        self._ingress_only[group] = atom_id
        return atom_id

    def _drop_ingress_atom(self, group: int) -> None:
        atom_id = self._ingress_only.pop(group, None)
        if atom_id is not None:
            self.atoms.pop(atom_id, None)

    # -- queries ----------------------------------------------------------

    def groups(self) -> List[int]:
        """All groups the graph currently knows, sorted."""
        return sorted(self._group_members)

    def members(self, group: int) -> FrozenSet[int]:
        """Membership of ``group`` as the graph last saw it."""
        return self._group_members[group]

    def is_active(self, atom_id: AtomId) -> bool:
        """Whether the atom still assigns sequence numbers."""
        return atom_id in self.atoms and atom_id not in self.retired

    def overlap_atoms(self, include_retired: bool = False) -> List[AtomId]:
        """All overlap (non-ingress-only) atoms, sorted."""
        atoms = (a for a in self.atoms if not a.is_ingress_only)
        if not include_retired:
            atoms = (a for a in atoms if a not in self.retired)
        return sorted(atoms)

    def atoms_of_group(self, group: int) -> List[AtomId]:
        """Active overlap atoms that sequence ``group``, in chain order."""
        result: List[AtomId] = []
        for chain in self.chains:
            for atom in chain:
                if atom.sequences_group(group) and atom not in self.retired:
                    result.append(atom)
        return result

    def chain_of_group(self, group: int) -> Optional[int]:
        """Index of the chain containing ``group``'s atoms, or ``None``."""
        for index, chain in enumerate(self.chains):
            for atom in chain:
                if atom.sequences_group(group) and atom not in self.retired:
                    return index
        return None

    def group_path(self, group: int) -> List[AtomId]:
        """Full sequence of atoms a message to ``group`` traverses.

        This is the contiguous chain segment from the group's first to its
        last atom — including pass-through and retired atoms in between —
        or the group's ingress-only atom when it has no double overlaps.
        """
        if group not in self._group_members:
            raise KeyError(f"unknown group {group}")
        chain_index = self.chain_of_group(group)
        if chain_index is None:
            return [self._ingress_only[group]]
        chain = self.chains[chain_index]
        positions = [
            i
            for i, atom in enumerate(chain)
            if atom.sequences_group(group) and atom not in self.retired
        ]
        return chain[positions[0] : positions[-1] + 1]

    def ingress_atom(self, group: int) -> AtomId:
        """The atom that assigns ``group``'s group-local sequence numbers.

        By construction this is the first atom of the group's path (an
        atom that sequences the group, or the ingress-only atom).
        """
        return self.group_path(group)[0]

    def pass_through_atoms(self, group: int) -> List[AtomId]:
        """Atoms on the group's path that do not stamp its messages."""
        return [
            atom
            for atom in self.group_path(group)
            if not (atom.sequences_group(group) and atom not in self.retired)
        ]

    def edges(self) -> List[Tuple[AtomId, AtomId]]:
        """Undirected sequencing-graph edges (consecutive chain atoms)."""
        result: List[Tuple[AtomId, AtomId]] = []
        for chain in self.chains:
            result.extend(zip(chain, chain[1:]))
        return result

    def relevant_atoms_of(self, node: int) -> List[AtomId]:
        """Active atoms whose overlap contains ``node``.

        These are the atoms whose sequence numbers the node must respect at
        delivery (paper: "This sequencer is relevant for all nodes in
        G0 ∩ G1; the rest need only use the group-local sequence number").
        """
        return sorted(
            atom_id
            for atom_id, spec in self.atoms.items()
            if node in spec.overlap_members and atom_id not in self.retired
        )

    def reorder_for_colocation(self, block_of: Dict[AtomId, int]) -> None:
        """Reorder chains so co-located atoms sit on contiguous runs.

        ``block_of`` maps each overlap atom to its sequencing node (the
        co-location "block").  Chain order is pure efficiency (any
        permutation satisfies C1/C2), but message latency is dominated by
        wide-area hops between sequencing *nodes*; making each node's
        atoms contiguous and ordering the blocks by group affinity
        minimizes the machine hops a group's messages take.  Called by
        :func:`repro.core.placement.place` after co-location.
        """
        for index, chain in enumerate(self.chains):
            if len(chain) <= 2:
                continue
            block_atoms: Dict[int, List[AtomId]] = {}
            for atom in chain:
                block_atoms.setdefault(block_of[atom], []).append(atom)
            block_groups = {
                block: frozenset(g for atom in atoms for g in atom.groups)
                for block, atoms in block_atoms.items()
            }
            order = _greedy_order_items(block_groups)
            order = _improve_block_order(order, block_groups)
            new_chain: List[AtomId] = []
            for block in order:
                atoms = block_atoms[block]
                if len(atoms) > 2:
                    atoms = _greedy_order(atoms, self._rng)
                new_chain.extend(atoms)
            self.chains[index] = new_chain

    # -- invariants ---------------------------------------------------------

    def validate(self) -> None:
        """Check C1, C2, and structural consistency; raise on violation."""
        seen: Set[AtomId] = set()
        for chain in self.chains:
            for atom in chain:
                if atom in seen:
                    raise GraphInvariantError(
                        f"C2 violated: atom {atom} appears in multiple chain "
                        "positions (graph has a loop or duplicate)"
                    )
                seen.add(atom)
                if atom not in self.atoms:
                    raise GraphInvariantError(f"chain references unknown atom {atom}")
        for atom_id, spec in self.atoms.items():
            if atom_id.is_ingress_only:
                continue
            if atom_id not in seen:
                raise GraphInvariantError(f"overlap atom {atom_id} is on no chain")
            if atom_id not in self.retired:
                g, h = atom_id.groups
                actual = self._group_members.get(g, frozenset()) & self._group_members.get(
                    h, frozenset()
                )
                if len(actual) < self._threshold:
                    raise GraphInvariantError(
                        f"atom {atom_id} is active but groups now share only "
                        f"{len(actual)} members"
                    )
        for group in self._group_members:
            chain_indices = {
                index
                for index, chain in enumerate(self.chains)
                for atom in chain
                if atom.sequences_group(group) and atom not in self.retired
            }
            if len(chain_indices) > 1:
                raise GraphInvariantError(
                    f"C1 violated: group {group} has atoms on {len(chain_indices)} "
                    "distinct chains"
                )
            if not chain_indices and group not in self._ingress_only:
                raise GraphInvariantError(f"group {group} has no ingress atom")

    def export_certificate(self, placement: Optional[object] = None) -> Dict:
        """Serialize the graph (and optionally a placement) for auditing.

        The result is a plain-JSON document in the
        ``repro-sequencing-graph-certificate`` format that
        :mod:`repro.check.graph_verify` re-proves C1/C2 and the ingress
        and placement invariants from — independently of this class's
        own :meth:`validate`.  Atom references are ``[kind, [groups]]``
        pairs so external tooling needs no knowledge of
        :class:`~repro.core.messages.AtomId`.

        ``placement`` duck-types anything with a ``nodes`` list of
        objects carrying ``node_id``/``machine``/``ingress_only``/
        ``atom_ids`` (i.e. :class:`~repro.core.placement.Placement`);
        it is serialized through its own ``export()`` when available.
        """

        def ref(atom_id: AtomId) -> List:
            return [atom_id.kind, list(atom_id.groups)]

        certificate: Dict = {
            "format": "repro-sequencing-graph-certificate",
            "version": 1,
            "threshold": self._threshold,
            "groups": {
                str(g): sorted(members)
                for g, members in sorted(self._group_members.items())
            },
            "atoms": [
                {
                    "kind": atom_id.kind,
                    "groups": list(atom_id.groups),
                    "overlap_members": sorted(spec.overlap_members),
                    "retired": atom_id in self.retired,
                }
                for atom_id, spec in sorted(self.atoms.items())
            ],
            "chains": [[ref(atom) for atom in chain] for chain in self.chains],
            "ingress_only": {
                str(g): ref(atom_id)
                for g, atom_id in sorted(self._ingress_only.items())
            },
        }
        if placement is not None:
            export = getattr(placement, "export", None)
            certificate["placement"] = (
                export() if callable(export) else placement
            )
        return certificate

    def clone(self) -> "SequencingGraph":
        """An independent copy sharing no mutable state.

        Used by live reconfiguration to derive the next epoch's graph
        incrementally while the previous fabric's graph stays intact.
        """
        copy = SequencingGraph(
            rng=random.Random(self._rng.random()),
            optimize=self._optimize,
            threshold=self._threshold,
        )
        copy._group_members = dict(self._group_members)
        copy.atoms = dict(self.atoms)
        copy.chains = [list(chain) for chain in self.chains]
        copy.retired = set(self.retired)
        copy._ingress_only = dict(self._ingress_only)
        return copy

    # -- dynamic operations --------------------------------------------------

    def add_group(self, group: int, members: Iterable[int]) -> List[AtomId]:
        """Add a group, instantiating atoms for its new double overlaps.

        Affected cluster chains are merged and the new atoms spliced in at
        cost-minimizing positions; existing atoms keep their relative order
        (low churn).  Returns the newly created atom ids.
        """
        if group in self._group_members:
            raise ValueError(f"group {group} already exists")
        member_set = frozenset(members)
        new_atoms: List[AtomId] = []
        for other, other_members in sorted(self._group_members.items()):
            intersection = member_set & other_members
            if len(intersection) >= self._threshold:
                atom_id = AtomId.overlap(group, other)
                if atom_id in self.atoms:
                    # Re-created after a lazy removal: drop the retired
                    # placeholder from its chain so the atom is inserted
                    # exactly once (a chain minus one vertex is still a
                    # path, so C1/C2 are unaffected).
                    self.retired.discard(atom_id)
                    for chain in self.chains:
                        if atom_id in chain:
                            chain.remove(atom_id)
                    self.chains = [chain for chain in self.chains if chain]
                self.atoms[atom_id] = AtomSpec(atom_id, intersection)
                new_atoms.append(atom_id)
                # The partner group no longer needs an ingress-only atom.
                self._drop_ingress_atom(other)
        self._group_members[group] = member_set

        if not new_atoms:
            self._add_ingress_atom(group)
            return []

        # Chains touched by the new atoms' partner groups must merge: the
        # new group's atoms must end up on a single chain (C1).
        partner_groups = {other for atom in new_atoms for other in atom.groups} - {
            group
        }
        touched = sorted(
            {
                index
                for index, chain in enumerate(self.chains)
                for atom in chain
                if any(atom.sequences_group(g) for g in partner_groups)
            }
        )
        merged: List[AtomId] = []
        for index in touched:
            merged.extend(self.chains[index])
        self.chains = [
            chain for index, chain in enumerate(self.chains) if index not in touched
        ]
        atoms_by_group = self._atoms_by_group(merged + new_atoms)
        for atom in sorted(new_atoms):
            merged = self._best_insertion(merged, atom, atoms_by_group)
        self.chains.append(merged)
        return new_atoms

    def _best_insertion(
        self,
        chain: List[AtomId],
        atom: AtomId,
        atoms_by_group: Dict[int, List[AtomId]],
    ) -> List[AtomId]:
        """Insert ``atom`` at the position minimizing pass-through cost."""
        if not chain:
            return [atom]
        best_chain: Optional[List[AtomId]] = None
        best_cost = None
        for position in range(len(chain) + 1):
            candidate = chain[:position] + [atom] + chain[position:]
            cost = pass_through_cost(candidate, atoms_by_group)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_chain = candidate
        assert best_chain is not None  # len(chain) + 1 >= 1 candidates
        return best_chain

    def remove_group(self, group: int, lazy: bool = True) -> List[AtomId]:
        """Remove a group; retire or splice out its atoms.

        With ``lazy=True`` (the paper's default behaviour) the group's atoms
        stay on their chains as retired pass-through placeholders — stale
        sequence spaces cost only efficiency.  With ``lazy=False`` the atoms
        are spliced out and any cluster that falls apart is re-split into
        separate chains (preserving relative atom order).  Returns the atoms
        that were retired/removed.
        """
        if group not in self._group_members:
            raise KeyError(f"unknown group {group}")
        del self._group_members[group]
        self._drop_ingress_atom(group)

        affected = [
            atom_id
            for atom_id in list(self.atoms)
            if not atom_id.is_ingress_only and atom_id.sequences_group(group)
        ]
        partner_groups: Set[int] = set()
        for atom_id in affected:
            partner_groups.update(atom_id.groups)
        partner_groups.discard(group)

        if lazy:
            self.retired.update(affected)
        else:
            for atom_id in affected:
                self.atoms.pop(atom_id, None)
                self.retired.discard(atom_id)
            self._splice_and_resplit(set(affected))
        # Partner groups left with no active atoms revert to ingress-only.
        for partner in sorted(partner_groups):
            if partner in self._group_members and not self.atoms_of_group(partner):
                if partner not in self._ingress_only:
                    self._add_ingress_atom(partner)
        return affected

    def compact(self) -> List[AtomId]:
        """Eagerly drop all retired atoms (paper: lazy removal catch-up).

        Returns the atoms removed.  Equivalent to the sequencers inspecting
        a termination (FIN) message and retiring by splicing themselves out
        of the forwarding paths.
        """
        removed = sorted(self.retired)
        for atom_id in removed:
            self.atoms.pop(atom_id, None)
        self.retired.clear()
        self._splice_and_resplit(set(removed))
        return removed

    def _splice_and_resplit(self, removed: Set[AtomId]) -> None:
        """Drop ``removed`` atoms from chains and re-split broken clusters."""
        new_chains: List[List[AtomId]] = []
        for chain in self.chains:
            remaining = [atom for atom in chain if atom not in removed]
            if not remaining:
                continue
            # The spliced chain stays one path, but its atoms may no longer
            # form one conflict cluster; split while preserving order so
            # in-flight relative orders stay meaningful per segment.
            pairs = [tuple(atom.groups) for atom in remaining]
            clusters = overlap_clusters(pairs)
            if len(clusters) <= 1:
                new_chains.append(remaining)
                continue
            cluster_index = {
                pair: index for index, cluster in enumerate(clusters) for pair in cluster
            }
            split: Dict[int, List[AtomId]] = {}
            for atom in remaining:
                split.setdefault(cluster_index[tuple(atom.groups)], []).append(atom)
            new_chains.extend(split[index] for index in sorted(split))
        self.chains = new_chains

    def __repr__(self) -> str:
        active = len(self.atoms) - len(self.retired)
        return (
            f"<SequencingGraph groups={len(self._group_members)} "
            f"atoms={active} retired={len(self.retired)} chains={len(self.chains)}>"
        )
