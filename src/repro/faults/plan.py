"""Deterministic fault plans: timed fault actions driving a fabric.

A :class:`FaultPlan` is a list of timed, typed fault actions — node and
host crashes, link outages, partitions, delay spikes, loss windows —
that :meth:`FaultPlan.apply` schedules on a fabric's simulator before
the run starts.  Because actions fire at fixed virtual times and all
randomness comes from injected seeded RNGs, a plan replays bit-for-bit:
the same plan on the same fabric seed produces the same event sequence,
which is what lets a chaos failure be re-run and debugged.

Plans compose: overlapping windows are legal (an outage inside a loss
window while a node is crashed), because each action only widens a
fault already modelled by the simulator (crash windows accumulate via
``max``, outage windows likewise, loss/delay mutations save and restore
per-channel originals).

:func:`random_plan` draws a plan from a seeded RNG — the chaos-campaign
generator.  Crash targets prefer sequencing nodes hosting many atoms so
injected faults actually intersect traffic.

Loss windows and crashes rely on the fabric's reliable link layer to
recover the dropped packets; apply plans containing them only to
fabrics built with ``loss_rate > 0`` or an explicit
``retransmit_timeout`` (the crash actions enforce this themselves).
"""

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.protocol import OrderingFabric
    from repro.runtime.interfaces import Link

__all__ = [
    "CrashHost",
    "CrashNode",
    "DelaySpike",
    "FaultAction",
    "FaultPlan",
    "LinkOutage",
    "LossWindow",
    "Partition",
    "random_plan",
]


@dataclass(frozen=True)
class FaultAction:
    """Base class: one fault firing at virtual time ``at``."""

    at: float

    #: short machine-readable action name (overridden per subclass)
    KIND = "fault"

    def validate(self) -> None:
        if self.at < 0:
            raise ValueError(f"{self.KIND}: fire time must be >= 0, got {self.at}")

    def apply(self, fabric: "OrderingFabric") -> None:
        raise NotImplementedError

    def describe(self) -> Dict[str, Any]:
        """JSON-able description for chaos reports."""
        return {"kind": self.KIND, "at": self.at}


@dataclass(frozen=True)
class CrashNode(FaultAction):
    """Fail-stop a sequencing node; ``duration=None`` crashes it for good.

    A permanent crash (the chaos campaign's main dish) leaves the node
    down until a failover relocates it — exactly the situation the
    heartbeat detector and :func:`repro.faults.failover.fail_over` exist
    to resolve.
    """

    node_id: int = 0
    duration: Optional[float] = None

    KIND = "crash_node"

    def validate(self) -> None:
        super().validate()
        if self.duration is not None and self.duration <= 0:
            raise ValueError(
                f"{self.KIND}: duration must be positive or None (permanent), "
                f"got {self.duration}"
            )

    def apply(self, fabric: "OrderingFabric") -> None:
        duration = self.duration if self.duration is not None else float("inf")
        fabric.node_processes[self.node_id].crash(duration)

    def describe(self) -> Dict[str, Any]:
        return {
            "kind": self.KIND,
            "at": self.at,
            "node_id": self.node_id,
            "duration": self.duration,
        }


@dataclass(frozen=True)
class CrashHost(FaultAction):
    """Fail-stop an end host for ``duration`` ms (receiver downtime)."""

    host_id: int = 0
    duration: float = 1.0

    KIND = "crash_host"

    def validate(self) -> None:
        super().validate()
        if self.duration <= 0:
            raise ValueError(
                f"{self.KIND}: duration must be positive, got {self.duration}"
            )

    def apply(self, fabric: "OrderingFabric") -> None:
        fabric.host_processes[self.host_id].crash(self.duration)

    def describe(self) -> Dict[str, Any]:
        return {
            "kind": self.KIND,
            "at": self.at,
            "host_id": self.host_id,
            "duration": self.duration,
        }


@dataclass(frozen=True)
class LinkOutage(FaultAction):
    """Outage on both directions of the link between two named processes.

    ``src``/``dst`` are process names (e.g. ``("seq", 3)`` or
    ``("host", 7)``).  Channels created while the outage is active
    inherit the remaining window, so a failover re-creating the channel
    cannot tunnel through the outage.
    """

    src: Any = None
    dst: Any = None
    duration: float = 1.0

    KIND = "link_outage"

    def validate(self) -> None:
        super().validate()
        if self.duration <= 0:
            raise ValueError(
                f"{self.KIND}: duration must be positive, got {self.duration}"
            )
        if self.src is None or self.dst is None or self.src == self.dst:
            raise ValueError(
                f"{self.KIND}: needs two distinct endpoint names, "
                f"got {self.src!r} and {self.dst!r}"
            )

    def apply(self, fabric: "OrderingFabric") -> None:
        fabric.network.partition(
            frozenset({self.src}), self.duration, frozenset({self.dst})
        )

    def describe(self) -> Dict[str, Any]:
        return {
            "kind": self.KIND,
            "at": self.at,
            "src": repr(self.src),
            "dst": repr(self.dst),
            "duration": self.duration,
        }


@dataclass(frozen=True)
class Partition(FaultAction):
    """Cut a set of processes off from another set (default: the rest)."""

    side: Tuple[Any, ...] = ()
    duration: float = 1.0
    side_b: Optional[Tuple[Any, ...]] = None

    KIND = "partition"

    def validate(self) -> None:
        super().validate()
        if self.duration <= 0:
            raise ValueError(
                f"{self.KIND}: duration must be positive, got {self.duration}"
            )
        if not self.side:
            raise ValueError(f"{self.KIND}: side must be non-empty")

    def apply(self, fabric: "OrderingFabric") -> None:
        other = frozenset(self.side_b) if self.side_b is not None else None
        fabric.network.partition(frozenset(self.side), self.duration, other)

    def describe(self) -> Dict[str, Any]:
        return {
            "kind": self.KIND,
            "at": self.at,
            "side": [repr(name) for name in self.side],
            "side_b": (
                [repr(name) for name in self.side_b]
                if self.side_b is not None
                else None
            ),
            "duration": self.duration,
        }


@dataclass(frozen=True)
class DelaySpike(FaultAction):
    """Multiply channel propagation delays by ``factor`` for a window.

    Targets every channel existing at fire time (or only those touching
    process ``name`` when given) and restores each channel's original
    delay — by object identity — when the window closes.  Channels
    created during the window keep their base delay; the spike models a
    transient congestion episode, not a topology change.  FIFO survives
    the mutation because channels never deliver before an earlier send.
    """

    factor: float = 2.0
    duration: float = 1.0
    name: Any = None

    KIND = "delay_spike"

    def validate(self) -> None:
        super().validate()
        if self.duration <= 0:
            raise ValueError(
                f"{self.KIND}: duration must be positive, got {self.duration}"
            )
        if self.factor <= 0:
            raise ValueError(
                f"{self.KIND}: factor must be positive, got {self.factor}"
            )

    def _targets(self, fabric: "OrderingFabric") -> List["Link"]:
        channels = fabric.network.channels
        return [
            channels[key]
            for key in sorted(channels, key=repr)
            if self.name is None or self.name in key
        ]

    def apply(self, fabric: "OrderingFabric") -> None:
        spiked = []
        for channel in self._targets(fabric):
            spiked.append((channel, channel.delay))
            channel.delay = channel.delay * self.factor
        fabric.sim.schedule(self.duration, self._restore, spiked)

    def _restore(self, spiked: List[Tuple["Link", float]]) -> None:
        for channel, original in spiked:
            channel.delay = original

    def describe(self) -> Dict[str, Any]:
        return {
            "kind": self.KIND,
            "at": self.at,
            "factor": self.factor,
            "duration": self.duration,
            "name": repr(self.name) if self.name is not None else None,
        }


@dataclass(frozen=True)
class LossWindow(FaultAction):
    """Raise channel loss to ``loss_rate`` for a window, then restore.

    Targets every channel existing at fire time (or only those touching
    process ``name``).  Channels whose fabric was built loss-free get a
    seeded RNG installed for the window's Bernoulli draws.  The fabric
    must be reliable (retransmission enabled) or the lost packets are
    lost for good.
    """

    loss_rate: float = 0.2
    duration: float = 1.0
    name: Any = None
    seed: int = 0

    KIND = "loss_window"

    def validate(self) -> None:
        super().validate()
        if self.duration <= 0:
            raise ValueError(
                f"{self.KIND}: duration must be positive, got {self.duration}"
            )
        if not 0.0 < self.loss_rate < 1.0:
            raise ValueError(
                f"{self.KIND}: loss_rate must be in (0, 1), got {self.loss_rate}"
            )

    def _targets(self, fabric: "OrderingFabric") -> List["Link"]:
        channels = fabric.network.channels
        return [
            channels[key]
            for key in sorted(channels, key=repr)
            if self.name is None or self.name in key
        ]

    def apply(self, fabric: "OrderingFabric") -> None:
        rng = random.Random(self.seed)
        window = []
        for channel in self._targets(fabric):
            window.append((channel, channel.loss_rate))
            if channel._rng is None:
                channel._rng = rng
            channel.loss_rate = self.loss_rate
        fabric.sim.schedule(self.duration, self._restore, window)

    def _restore(self, window: List[Tuple["Link", float]]) -> None:
        for channel, original in window:
            channel.loss_rate = original

    def describe(self) -> Dict[str, Any]:
        return {
            "kind": self.KIND,
            "at": self.at,
            "loss_rate": self.loss_rate,
            "duration": self.duration,
            "name": repr(self.name) if self.name is not None else None,
        }


@dataclass
class FaultPlan:
    """An ordered schedule of fault actions for one simulation run."""

    actions: List[FaultAction] = field(default_factory=list)

    def add(self, action: FaultAction) -> "FaultPlan":
        """Append an action (fluent); ordering is by fire time at apply."""
        self.actions.append(action)
        return self

    def validate(self) -> None:
        """Raise ``ValueError`` on the first ill-formed action."""
        for action in self.actions:
            action.validate()

    def sorted_actions(self) -> List[FaultAction]:
        """Actions by (fire time, insertion order) — the execution order."""
        indexed = list(enumerate(self.actions))
        indexed.sort(key=lambda pair: (pair[1].at, pair[0]))
        return [action for _index, action in indexed]

    def apply(self, fabric: "OrderingFabric") -> None:
        """Validate, then schedule every action on the fabric's simulator.

        Call before (or during) the run; actions at times already in the
        past would violate the simulator's monotonic clock.
        """
        self.validate()
        for action in self.sorted_actions():
            fabric.sim.schedule_at(action.at, action.apply, fabric)

    def to_dicts(self) -> List[Dict[str, Any]]:
        """JSON-able action descriptions, in execution order."""
        return [action.describe() for action in self.sorted_actions()]


def random_plan(
    fabric: "OrderingFabric",
    rng: random.Random,
    window: float,
    node_crashes: int = 1,
    host_crashes: int = 1,
    link_outages: int = 1,
    loss_windows: int = 1,
    delay_spikes: int = 1,
    permanent_crash: bool = True,
) -> FaultPlan:
    """Draw a seeded chaos plan targeting a fabric's busiest components.

    Faults fire inside ``[0.15, 0.85] * window`` so traffic exists both
    before the first fault and after the last heals.  Node-crash targets
    are drawn from the sequencing nodes hosting the most atoms (crashing
    an idle node proves nothing); the first node crash is permanent when
    ``permanent_crash`` is set — it stays down until a failover.
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    lo, hi = 0.15 * window, 0.85 * window

    def when() -> float:
        return lo + (hi - lo) * rng.random()

    plan = FaultPlan()

    # Crash the busiest sequencing nodes (most atoms = most traffic).
    by_load = sorted(
        fabric.node_processes,
        key=lambda node_id: (-len(fabric.node_processes[node_id].atom_runtimes), node_id),
    )
    candidates = [n for n in by_load if fabric.node_processes[n].atom_runtimes]
    pool = candidates[: max(node_crashes, min(len(candidates), 4))]
    targets = rng.sample(pool, min(node_crashes, len(pool)))
    for index, node_id in enumerate(sorted(targets)):
        permanent = permanent_crash and index == 0
        plan.add(
            CrashNode(
                at=when(),
                node_id=node_id,
                duration=None if permanent else (0.05 + 0.1 * rng.random()) * window,
            )
        )

    host_ids = sorted(fabric.host_processes)
    for host_id in rng.sample(host_ids, min(host_crashes, len(host_ids))):
        plan.add(
            CrashHost(
                at=when(),
                host_id=host_id,
                duration=(0.05 + 0.1 * rng.random()) * window,
            )
        )

    # Outages between pairs of distinct sequencing nodes.
    node_names = [fabric.node_processes[n].name for n in sorted(fabric.node_processes)]
    for _ in range(link_outages):
        if len(node_names) < 2:
            break
        src, dst = rng.sample(node_names, 2)
        plan.add(
            LinkOutage(
                at=when(), src=src, dst=dst, duration=(0.05 + 0.1 * rng.random()) * window
            )
        )

    for index in range(loss_windows):
        plan.add(
            LossWindow(
                at=when(),
                loss_rate=0.1 + 0.2 * rng.random(),
                duration=(0.05 + 0.1 * rng.random()) * window,
                seed=rng.randrange(2**31) + index,
            )
        )

    for _ in range(delay_spikes):
        plan.add(
            DelaySpike(
                at=when(),
                factor=2.0 + 3.0 * rng.random(),
                duration=(0.05 + 0.1 * rng.random()) * window,
            )
        )

    plan.validate()
    return plan
