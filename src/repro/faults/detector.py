"""Heartbeat failure detection for sequencing nodes.

A :class:`HeartbeatDetector` is a simulated process that pings every
sequencing node each ``interval`` milliseconds and suspects a node once
its silence exceeds a threshold derived from the ping interval, the
suspicion patience (``suspect_after`` missed intervals), and the
round-trip time to the node.  Heartbeats deliberately bypass the
reliable link layer in both directions (see
:class:`repro.core.protocol.HeartbeatPing`): a retransmitted heartbeat
would mask exactly the silence the detector exists to observe.  Because
heartbeat channels share the network's loss model, a single lost ping
or pong never triggers suspicion — only ``suspect_after`` consecutive
silent intervals do, which bounds the false-positive rate under loss at
``loss_rate ** suspect_after`` per node per interval.

On suspicion the detector records the event, bumps its metrics, and
invokes ``on_suspect(node_id, silence_ms)`` — which the chaos harness
wires to :func:`repro.faults.failover.fail_over`.  After a failover,
call :meth:`HeartbeatDetector.clear` so the relocated incarnation gets
a fresh grace period instead of being re-suspected immediately.
"""

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Set, Tuple

from repro.core.protocol import HEARTBEAT_BYTES, HeartbeatPing, HeartbeatPong
from repro.runtime.interfaces import Link
from repro.runtime.node import Process

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.protocol import OrderingFabric
    from repro.obs.registry import MetricsRegistry

__all__ = ["HeartbeatDetector"]

#: Fixed slack added to every suspicion threshold, absorbing scheduling
#: ties and the one-way skew between ping send and pong arrival.
THRESHOLD_MARGIN_MS = 1.0


class HeartbeatDetector(Process):
    """Pings sequencing nodes; suspects the ones that fall silent.

    Parameters
    ----------
    fabric:
        The fabric whose sequencing nodes are monitored.  The detector
        registers itself as a process on the fabric's network.
    interval:
        Milliseconds between ping rounds.
    suspect_after:
        Missed intervals tolerated before suspicion.  The full threshold
        for a node is ``suspect_after * interval + round_trip + margin``,
        so slow links do not masquerade as failures.
    machine:
        Router the detector runs on (defaults to the first host's access
        router — a monitoring box at the edge of the network).
    registry:
        Optional metrics registry; when given the detector exports
        ``repro_detector_heartbeats``, ``repro_detector_pongs`` and
        ``repro_detector_suspicions`` counters.
    """

    def __init__(
        self,
        fabric: "OrderingFabric",
        interval: float = 5.0,
        suspect_after: int = 3,
        machine: Optional[int] = None,
        registry: Optional["MetricsRegistry"] = None,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if suspect_after < 1:
            raise ValueError(f"suspect_after must be >= 1, got {suspect_after}")
        super().__init__(fabric.sim, ("detector", 0))
        self.fabric = fabric
        self.interval = interval
        self.suspect_after = suspect_after
        #: router hosting the detector (read by the fabric's delay oracle)
        self.machine = machine if machine is not None else fabric.hosts[0].router
        fabric.network.add_process(self)
        #: last instant each node proved liveness (pong arrival or clear)
        self.last_seen: Dict[int, float] = {}
        self._suspected: Set[int] = set()
        #: (time, node_id, silence_ms) per suspicion, in suspicion order
        self.suspicions: List[Tuple[float, int, float]] = []
        #: invoked once per suspicion with (node_id, silence_ms)
        self.on_suspect: Optional[Callable[[int, float], None]] = None
        self.heartbeats_sent = 0
        self.pongs_received = 0
        self._next_ping_seq = 0
        self._tick_handle: Optional[Any] = None
        self._heartbeat_counter = None
        self._pong_counter = None
        self._suspicion_counter = None
        if registry is not None:
            self._heartbeat_counter = registry.counter(
                "repro_detector_heartbeats", "heartbeat pings sent"
            )
            self._pong_counter = registry.counter(
                "repro_detector_pongs", "heartbeat pongs received"
            )
            self._suspicion_counter = registry.counter(
                "repro_detector_suspicions", "sequencing nodes suspected"
            )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Begin pinging; every node gets a full grace period from now."""
        if self._tick_handle is not None:
            raise RuntimeError("detector already started")
        for node_id in sorted(self.fabric.node_processes):
            self.last_seen[node_id] = self.sim.now
        self._tick()

    def stop(self) -> None:
        """Cancel the ping loop (e.g. before draining a finished run)."""
        if self._tick_handle is not None:
            self._tick_handle.cancel()
            self._tick_handle = None

    @property
    def running(self) -> bool:
        """Whether the ping loop is currently scheduled."""
        return self._tick_handle is not None

    def clear(self, node_id: int) -> None:
        """Forget a suspicion after failover; restart the grace period."""
        self.last_seen[node_id] = self.sim.now
        self._suspected.discard(node_id)

    # -- detection ---------------------------------------------------------

    def threshold(self, node_id: int) -> float:
        """Silence tolerated for ``node_id`` before suspicion (ms)."""
        process = self.fabric.node_processes[node_id]
        round_trip = 2.0 * self.fabric._channel(self, process).delay
        return self.suspect_after * self.interval + round_trip + THRESHOLD_MARGIN_MS

    def _tick(self) -> None:
        now = self.sim.now
        for node_id in sorted(self.fabric.node_processes):
            if node_id in self._suspected:
                continue
            silence = now - self.last_seen[node_id]
            if silence > self.threshold(node_id):
                self._suspect(node_id, silence)
        for node_id in sorted(self.fabric.node_processes):
            if node_id in self._suspected:
                continue
            process = self.fabric.node_processes[node_id]
            channel = self.fabric._channel(self, process)
            channel.send(HeartbeatPing(self._next_ping_seq), HEARTBEAT_BYTES)
            self._next_ping_seq += 1
            self.heartbeats_sent += 1
            if self._heartbeat_counter is not None:
                self._heartbeat_counter.inc()
        self._tick_handle = self.sim.schedule(self.interval, self._tick)

    def _suspect(self, node_id: int, silence: float) -> None:
        self._suspected.add(node_id)
        self.suspicions.append((self.sim.now, node_id, silence))
        if self._suspicion_counter is not None:
            self._suspicion_counter.inc()
        if self.fabric.trace.enabled:
            self.fabric.trace.record(
                self.sim.now, "suspect", node=node_id, silence=silence
            )
        if self.on_suspect is not None:
            self.on_suspect(node_id, silence)

    def receive(self, payload: Any, channel: Link) -> None:
        if not isinstance(payload, HeartbeatPong):
            raise TypeError(f"detector got unexpected packet {payload!r}")
        self.pongs_received += 1
        if self._pong_counter is not None:
            self._pong_counter.inc()
        previous = self.last_seen.get(payload.node_id, 0.0)
        if self.sim.now > previous:
            self.last_seen[payload.node_id] = self.sim.now
