"""Seeded chaos campaigns: traffic + faults + failover + verification.

One campaign run builds a fabric over a fresh substrate, wires the
heartbeat detector to automatic failover, draws a random fault plan
(always including a permanent sequencing-node crash by default — the
fault only failover can resolve), publishes a seeded workload spread
across the fault window, runs the simulation to quiescence, and audits
the outcome with :func:`repro.check.verify_run`.

Everything derives from ``ChaosConfig.seed``, so a failing campaign
replays exactly; the JSON-able report records the plan, every failover
with its detection latency, retransmissions by cause, drops by cause,
and the invariant findings — ``ok`` is true iff the run quiesced with
zero findings.  The ``repro chaos`` CLI and the CI chaos job are thin
wrappers over :func:`run_campaign`.

Publishers are always members of the group they publish to, which is
the paper's Section 3.1 precondition for the causal-order guarantee —
and what lets the campaign check RT306 rather than skip it.

A failing campaign (any finding, including non-quiescence) attaches an
ordering-forensics block to its report: the full stall attribution from
:class:`repro.obs.forensics.JourneyIndex`, so CI logs explain *which*
blocking ``(atom, seq)`` gaps starved receivers and why, without rerun.
:func:`execute_campaign` additionally hands back the live fabric so
callers (the ``repro explain`` CLI) can interrogate the trace directly.
"""

import random
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional

from repro.check.invariants import verify_run
from repro.experiments.common import ExperimentEnv
from repro.faults.detector import HeartbeatDetector
from repro.faults.failover import wire_failover
from repro.faults.plan import FaultPlan, random_plan
from repro.obs.forensics import JourneyIndex
from repro.obs.live import LiveMonitor
from repro.workloads.zipf import zipf_membership

__all__ = ["CampaignRun", "ChaosConfig", "execute_campaign", "run_campaign"]

#: Hard ceiling on drain events after the traffic horizon — a run that
#: needs more is reported as non-quiescent instead of hanging CI.
DRAIN_MAX_EVENTS = 2_000_000

#: Synthetic finding code for a run that failed to quiesce in budget.
NON_QUIESCENT_CODE = "RT310"


@dataclass(frozen=True)
class ChaosConfig:
    """Parameters of one seeded chaos campaign run."""

    #: end hosts attached to the (small) transit-stub substrate
    hosts: int = 24
    #: Zipf-sized groups over those hosts
    groups: int = 8
    #: messages published, spread uniformly over ``[0, horizon]``
    events: int = 60
    #: master seed; every RNG in the run derives from it
    seed: int = 0
    #: traffic/fault window in virtual milliseconds
    horizon: float = 400.0
    #: baseline Bernoulli loss on every channel (enables the reliable layer)
    loss_rate: float = 0.01
    #: base retransmit timeout (ms) before exponential backoff
    retransmit_timeout: float = 5.0
    #: per-packet retransmission budget (None = the fabric default);
    #: tiny budgets make abandonment — and RT302 findings — reachable
    max_retransmits: Optional[int] = None
    #: heartbeat ping interval (ms)
    heartbeat_interval: float = 5.0
    #: missed heartbeat intervals tolerated before suspicion
    suspect_after: int = 3
    #: fault plan composition (see repro.faults.plan.random_plan)
    node_crashes: int = 1
    host_crashes: int = 1
    link_outages: int = 1
    loss_windows: int = 1
    delay_spikes: int = 1
    #: the first node crash is permanent (resolved only by failover)
    permanent_crash: bool = True
    #: state-transfer downtime charged to each failover (ms)
    transfer_delay: float = 1.0
    #: audit RT306 causal order (publishers are group members, so valid)
    check_causal: bool = True

    def validate(self) -> None:
        if self.hosts < 2:
            raise ValueError(f"hosts must be >= 2, got {self.hosts}")
        if self.groups < 1:
            raise ValueError(f"groups must be >= 1, got {self.groups}")
        if self.events < 0:
            raise ValueError(f"events must be >= 0, got {self.events}")
        if self.horizon <= 0:
            raise ValueError(f"horizon must be positive, got {self.horizon}")


def _publish_schedule(
    config: ChaosConfig, groups: List[int], members_of: Dict[int, List[int]]
) -> List[Any]:
    """Seeded (time, sender, group) triples, sorted by publish time."""
    rng = random.Random(config.seed + 4)
    schedule = []
    for _ in range(config.events):
        group = groups[rng.randrange(len(groups))]
        members = members_of[group]
        sender = members[rng.randrange(len(members))]
        schedule.append((config.horizon * rng.random(), sender, group))
    schedule.sort()
    return schedule


def _detection_latencies(
    fabric: Any, detector: HeartbeatDetector, plan: FaultPlan
) -> Dict[int, float]:
    """Suspicion time minus crash time, per failed-over crashed node."""
    crash_at: Dict[int, float] = {}
    for action in plan.sorted_actions():
        described = action.describe()
        if described["kind"] == "crash_node":
            node_id = described["node_id"]
            if node_id not in crash_at:
                crash_at[node_id] = described["at"]
    latencies: Dict[int, float] = {}
    for time, node_id, _silence in detector.suspicions:
        if node_id in crash_at and node_id not in latencies:
            latencies[node_id] = time - crash_at[node_id]
    return latencies


@dataclass
class CampaignRun:
    """One executed campaign: the report plus the live machinery behind it.

    ``fabric`` still holds the full trace, delivery states, and failover
    records, so post-mortem tooling (``repro explain``) can rebuild
    forensics without re-running the campaign.
    """

    report: Dict[str, Any]
    fabric: Any
    detector: HeartbeatDetector
    plan: FaultPlan
    #: the streaming monitor, when the campaign ran with one attached
    monitor: Optional[LiveMonitor] = None


def run_campaign(
    config: ChaosConfig,
    plan: Optional[FaultPlan] = None,
    live_monitor: bool = False,
    mutate: Optional[str] = None,
) -> Dict[str, Any]:
    """Run one seeded chaos campaign; return its JSON-able report.

    ``plan`` overrides the seeded random fault plan (tests use this to
    inject hand-built compositions); everything else still derives from
    ``config.seed``.
    """
    return execute_campaign(
        config, plan, live_monitor=live_monitor, mutate=mutate
    ).report


def execute_campaign(
    config: ChaosConfig,
    plan: Optional[FaultPlan] = None,
    profiler: Optional[Any] = None,
    live_monitor: bool = False,
    mutate: Optional[str] = None,
) -> CampaignRun:
    """Run one seeded chaos campaign; return report *and* live fabric.

    ``profiler`` (a :class:`~repro.obs.profiler.PhaseProfiler`) attaches
    hot-path phase profiling to the campaign's fabric — used by ``repro
    bench`` to break a chaos workload's wall time down by phase.  It
    observes wall time only and cannot change the campaign's outcome.

    ``live_monitor`` attaches a :class:`repro.obs.live.LiveMonitor` to the
    fabric's trace before any traffic runs; the report then carries a
    ``live_monitor`` block with the streaming alert feed, per-phase
    latency percentiles, and — because the monitor retains an audit view
    built purely from the stream — an ``agrees_with_audit`` bit asserting
    its post-hoc findings are identical to the fabric audit's.

    ``mutate`` applies a protocol mutation from
    :data:`repro.check.explore.MUTATIONS` (e.g. ``"dup-delivery"``)
    before traffic — the negative control proving the monitors actually
    fire (used by the CI ``live-monitor`` job).
    """
    config.validate()
    env = ExperimentEnv(n_hosts=config.hosts, seed=config.seed)
    snapshot = zipf_membership(
        config.hosts, config.groups, rng=random.Random(config.seed + 1)
    )
    membership = env.membership_from(snapshot)
    fabric = env.build_fabric(
        membership,
        seed=config.seed,
        loss_rate=config.loss_rate,
        retransmit_timeout=config.retransmit_timeout,
        max_retransmits=config.max_retransmits,
        profiler=profiler,
    )

    detector = HeartbeatDetector(
        fabric,
        interval=config.heartbeat_interval,
        suspect_after=config.suspect_after,
    )
    wire_failover(
        fabric,
        detector,
        rng=random.Random(config.seed + 2),
        transfer_delay=config.transfer_delay,
    )
    if plan is None:
        plan = random_plan(
            fabric,
            rng=random.Random(config.seed + 3),
            window=config.horizon,
            node_crashes=config.node_crashes,
            host_crashes=config.host_crashes,
            link_outages=config.link_outages,
            loss_windows=config.loss_windows,
            delay_spikes=config.delay_spikes,
            permanent_crash=config.permanent_crash,
        )
    plan.apply(fabric)

    monitor: Optional[LiveMonitor] = None
    if live_monitor:
        monitor = LiveMonitor(node=f"chaos:{config.seed}")
        monitor.attach(fabric)
    if mutate is not None:
        from repro.check.explore import MUTATIONS

        if mutate not in MUTATIONS:
            raise ValueError(
                f"unknown mutation {mutate!r} (have {sorted(MUTATIONS)})"
            )
        MUTATIONS[mutate](fabric)

    groups = sorted(membership.groups())
    members_of = {g: sorted(membership.members(g)) for g in groups}
    for time, sender, group in _publish_schedule(config, groups, members_of):
        fabric.sim.schedule_at(time, fabric.publish, sender, group, None)

    detector.start()

    # Phase 1: traffic + faults + detection.  The window extends past the
    # horizon far enough for the slowest legal detection (full threshold
    # plus one ping round) and the failover hand-off to complete.
    detect_until = (
        config.horizon
        + (config.suspect_after + 4) * config.heartbeat_interval
        + 2 * config.transfer_delay
        + 50.0
    )
    events = fabric.run(until=detect_until)
    # Phase 2: stop the heartbeat loop (otherwise the simulation never
    # runs dry) and drain retransmissions, replays, and deliveries.
    detector.stop()
    events += fabric.run(max_events=DRAIN_MAX_EVENTS)
    quiescent = fabric.sim.pending == 0

    findings = verify_run(fabric, complete=True, causal=config.check_causal)
    audit_dicts = _finding_dicts(findings)
    finding_dicts = list(audit_dicts)
    if not quiescent:
        finding_dicts.append(
            {
                "code": NON_QUIESCENT_CODE,
                "message": (
                    f"simulation still had {fabric.sim.pending} live events "
                    f"after the {DRAIN_MAX_EVENTS}-event drain budget"
                ),
                "severity": "error",
                "anchor": "simulator",
                "tool": "runtime-verify",
            }
        )

    latencies = _detection_latencies(fabric, detector, plan)
    failovers = [
        {
            "time": record.time,
            "node_id": record.node_id,
            "old_machine": record.old_machine,
            "new_machine": record.new_machine,
            "replayed": record.replayed,
            "detection_latency_ms": latencies.get(record.node_id),
        }
        for record in fabric.failovers
    ]

    delivered = sum(
        len(process.delivered) for process in fabric.host_processes.values()
    )
    report = {
        "config": asdict(config),
        "published": len(fabric.published),
        "delivered": delivered,
        "faults": plan.to_dicts(),
        "failovers": failovers,
        "detector": {
            "heartbeats_sent": detector.heartbeats_sent,
            "pongs_received": detector.pongs_received,
            "suspicions": [
                {"time": time, "node_id": node_id, "silence_ms": silence}
                for time, node_id, silence in detector.suspicions
            ],
        },
        "retransmissions": {
            "total": fabric.retransmissions,
            "by_cause": {
                cause: fabric.retransmissions_by_cause[cause]
                for cause in sorted(fabric.retransmissions_by_cause)
            },
        },
        "link_failures": len(fabric.link_failures),
        "drops": {
            "loss": fabric.network.total_loss_drops(),
            "outage": fabric.network.total_outage_drops(),
        },
        "channels_retired": fabric.network.channels_retired,
        "events": events,
        "quiescent": quiescent,
        "findings": finding_dicts,
        "ok": not finding_dicts,
    }
    if mutate is not None:
        report["mutation"] = mutate
    if monitor is not None:
        monitor.detach()
        live_dicts = _finding_dicts(
            monitor.final_findings(complete=True, causal=config.check_causal)
        )
        report["live_monitor"] = {
            "alerts": [alert.to_dict() for alert in monitor.alerts],
            "alerts_dropped": monitor.alerts_dropped,
            "violations": monitor.violations,
            "warnings": sum(
                1 for alert in monitor.alerts if alert.severity == "warning"
            ),
            "findings": live_dicts,
            # The streamed audit view must reproduce the fabric audit's
            # verdicts exactly (RT310 non-quiescence is simulator state,
            # not a delivery-log property, so it is excluded).
            "agrees_with_audit": live_dicts == audit_dicts,
            "phases": monitor.latency.summary(),
        }
    if finding_dicts and fabric.trace.enabled:
        # Explain the failure in the report itself: full stall attribution
        # (threshold 0 = every buffer event) so CI logs name the blocking
        # (atom, seq) gaps and their causes without a reproduction run.
        report["forensics"] = JourneyIndex(fabric.trace).stall_report(
            threshold=0.0
        )
    return CampaignRun(
        report=report,
        fabric=fabric,
        detector=detector,
        plan=plan,
        monitor=monitor,
    )


def _finding_dicts(findings: List[Any]) -> List[Dict[str, Any]]:
    """Project findings to the report's JSON shape (shared by both audits)."""
    return [
        {
            "code": f.code,
            "message": f.message,
            "severity": f.severity,
            "anchor": f.anchor,
            "tool": f.tool,
        }
        for f in findings
    ]
