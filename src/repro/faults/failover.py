"""Standby selection and live failover of suspected sequencing nodes.

The fabric's :meth:`~repro.core.protocol.OrderingFabric.relocate_node`
does the actual state move (atoms, counters, link buffers — see its
docstring for the full transfer protocol); this module decides *where*
to move and glues detection to relocation:

* :func:`choose_standby` picks a standby machine near the failed node's
  subscribers — the access router of a random member of one of the
  groups the node's atoms serve, mirroring the Section 3.4 placement
  intuition that sequencers belong near their traffic.
* :func:`fail_over` resolves the target and performs the relocation.
* :func:`wire_failover` connects a :class:`HeartbeatDetector` suspicion
  to an automatic failover and clears the suspicion afterwards, giving
  the relocated incarnation a fresh grace period.
"""

import random
from typing import TYPE_CHECKING, Optional

from repro.core.protocol import FailoverRecord

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.protocol import OrderingFabric
    from repro.faults.detector import HeartbeatDetector

__all__ = ["choose_standby", "fail_over", "wire_failover"]


def choose_standby(
    fabric: "OrderingFabric", node_id: int, rng: random.Random
) -> int:
    """Pick a standby machine for ``node_id``, near its subscribers.

    Candidates are the access routers of the members of every group the
    node's atoms sequence, minus the failed machine itself — a standby
    co-located with traffic keeps post-failover paths short.  Falls back
    to a uniformly random router if no candidate remains.
    """
    process = fabric.node_processes[node_id]
    groups = set()
    for atom_id in process.atom_runtimes:
        groups.update(atom_id.groups)
    members = set()
    for group in sorted(groups):
        members.update(fabric.membership.members(group))
    candidates = sorted(
        {
            fabric._host_by_id[member].router
            for member in members
            if member in fabric._host_by_id
        }
        - {process.machine}
    )
    if candidates:
        return candidates[rng.randrange(len(candidates))]
    return rng.randrange(fabric.topology.n_nodes)


def fail_over(
    fabric: "OrderingFabric",
    node_id: int,
    target_machine: Optional[int] = None,
    rng: Optional[random.Random] = None,
    transfer_delay: float = 0.0,
) -> FailoverRecord:
    """Relocate a (suspected) sequencing node to a standby machine, live.

    ``target_machine`` overrides standby selection; otherwise
    :func:`choose_standby` picks one with ``rng`` (seeded from the node
    id when omitted, so an unparameterized call is still deterministic).
    """
    if target_machine is None:
        if rng is None:
            rng = random.Random(node_id)
        target_machine = choose_standby(fabric, node_id, rng)
    return fabric.relocate_node(node_id, target_machine, transfer_delay=transfer_delay)


def wire_failover(
    fabric: "OrderingFabric",
    detector: "HeartbeatDetector",
    rng: Optional[random.Random] = None,
    transfer_delay: float = 0.0,
) -> None:
    """Auto-fail-over every suspicion the detector raises.

    Installs a ``detector.on_suspect`` handler that relocates the
    suspected node via :func:`fail_over` and then clears the suspicion,
    so the new incarnation is monitored like any other node.  The
    resulting :class:`~repro.core.protocol.FailoverRecord` objects
    accumulate on ``fabric.failovers``.
    """
    chooser = rng if rng is not None else random.Random(0)

    def _handle(node_id: int, silence: float) -> None:
        fail_over(
            fabric,
            node_id,
            rng=chooser,
            transfer_delay=transfer_delay,
        )
        detector.clear(node_id)

    detector.on_suspect = _handle
