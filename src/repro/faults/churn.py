"""Deterministic membership churn composed with epoch-fenced switches.

The ROADMAP's churn-scale open item needs sustained join/leave traffic
*while the fabric is carrying messages* — exactly what the online
reconfiguration path in :mod:`repro.core.reconfigure` provides.  This
module supplies the missing pieces:

* :func:`random_churn` — a seeded join/leave arrival process.  Group
  popularity is Zipf (group ids are rank-ordered by
  :func:`repro.workloads.zipf.zipf_membership`, so group 0 is both the
  largest and the most churned), joins pick a deterministic non-member,
  leaves never shrink a group below ``min_size`` (so group ids are
  stable and the sequencing graph always stays buildable).
* :func:`execute_churn_campaign` — the end-to-end harness: one fabric
  per epoch, each switch performed **online** (epoch fences drain the
  in-flight traffic, surviving counters carry over), composed with the
  PR 4 fault-plan DSL so crashes, outages, and loss windows land in any
  epoch — including a permanent sequencing-node crash scheduled to land
  *mid-epoch-switch*, which the drain's bounded retry/backoff plus
  heartbeat-detector failover must heal.  Each epoch is audited with the
  RT30x runtime verifier; the cross-epoch RT32x invariants
  (:mod:`repro.check.churn`) audit the fences, counter continuity,
  joiner prefixes, and leaver drains.

The campaign runs on a single **campaign-absolute clock**: each epoch's
fabric starts at virtual time 0, and ``base`` (the absolute instant the
fabric started) converts between the two.  Fault actions and publish
ticks are scheduled in absolute time and re-scheduled onto each new
epoch's fabric; an action whose target did not survive the switch (its
node id left the placement) is skipped and recorded, and publish ticks
that fall inside a fence-drain window are deferred to the new epoch's
start (publishes pause during reconfiguration).  Crash *windows* are not
carried across a cutover: a timed crash expires with its epoch.

Everything derives from ``ChurnConfig.seed``; on the simulated backend a
fixed-seed campaign is byte-identical across runs (the report embeds a
``delivery_digest`` over every per-host delivery log for exactly that
comparison).  The live asyncio backend replays the same membership and
fault script under real timers; its delivery *orders* may differ run to
run, but the RT30x/RT32x invariants must still hold.
"""

import hashlib
import random
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.check.churn import EpochLog, collect_epoch_log, verify_churn
from repro.check.invariants import verify_run
from repro.core.reconfigure import (
    ReconfigurationError,
    atom_counters,
    group_local_counters,
    reconfigure,
)
from repro.experiments.common import ExperimentEnv
from repro.faults.detector import HeartbeatDetector
from repro.faults.failover import wire_failover
from repro.faults.plan import CrashNode, FaultAction, FaultPlan, random_plan
from repro.obs.forensics import JourneyIndex
from repro.obs.live import LiveMonitor
from repro.workloads.zipf import zipf_membership

__all__ = [
    "ChurnCampaignRun",
    "ChurnConfig",
    "ChurnEvent",
    "ChurnPlan",
    "execute_churn_campaign",
    "random_churn",
    "run_churn_campaign",
]

#: Synthetic finding codes (RT310 mirrors repro.faults.campaign).
NON_QUIESCENT_CODE = "RT310"
SWITCH_FAILED_CODE = "RT311"

#: Virtual ms after a switch begins at which the mid-switch crash lands —
#: late enough that the fences are on the wire, early enough that they
#: have not drained.
MID_SWITCH_CRASH_DELAY = 1.0


@dataclass(frozen=True)
class ChurnEvent:
    """One membership change: ``host`` joins or leaves ``group`` at ``at``."""

    at: float
    op: str  # "join" | "leave"
    group: int
    host: int

    def describe(self) -> Dict[str, Any]:
        return {"at": self.at, "op": self.op, "group": self.group, "host": self.host}


@dataclass
class ChurnPlan:
    """A seeded churn script: timed events plus the epoch-switch instants."""

    events: List[ChurnEvent] = field(default_factory=list)
    switch_times: List[float] = field(default_factory=list)

    def batches(self) -> List[Tuple[float, List[ChurnEvent]]]:
        """Events grouped by the switch that applies them, in time order.

        Every event belongs to the first switch at or after its time, so
        a batch is "the membership changes accumulated since the last
        epoch switch".
        """
        out: List[Tuple[float, List[ChurnEvent]]] = []
        remaining = sorted(self.events, key=lambda e: (e.at, e.group, e.host))
        for switch_at in self.switch_times:
            batch = [e for e in remaining if e.at <= switch_at]
            remaining = [e for e in remaining if e.at > switch_at]
            out.append((switch_at, batch))
        return out

    def to_dicts(self) -> Dict[str, Any]:
        return {
            "events": [e.describe() for e in self.events],
            "switch_times": list(self.switch_times),
        }


def _weighted_group(
    groups: List[int], rng: random.Random, exponent: float
) -> int:
    """Zipf-popular group choice: weight of group g is 1/(g+1)^exponent."""
    weights = [1.0 / float(g + 1) ** exponent for g in groups]
    total = sum(weights)
    target = rng.random() * total
    acc = 0.0
    for group, weight in zip(groups, weights):
        acc += weight
        if target < acc:
            return group
    return groups[-1]


def random_churn(
    snapshot: Dict[int, FrozenSet[int]],
    n_hosts: int,
    rng: random.Random,
    window: float,
    events: int = 50,
    switches: int = 5,
    exponent: float = 1.0,
    min_size: int = 2,
) -> ChurnPlan:
    """A seeded join/leave arrival process over ``snapshot``'s groups.

    ``switches`` epoch-switch instants are spread evenly over
    ``(0, window)``; every event lands before the last switch, so every
    change is eventually applied.  Joins pick a deterministic non-member
    host; leaves keep each group at ``min_size`` members or more.  The
    generator maintains a working copy of the membership, so the script
    is valid when applied in time order.
    """
    if switches < 1:
        return ChurnPlan(events=[], switch_times=[])
    switch_times = [
        window * (index + 1) / (switches + 1) for index in range(switches)
    ]
    groups = sorted(snapshot)
    working: Dict[int, Set[int]] = {g: set(m) for g, m in snapshot.items()}
    times = sorted(
        rng.random() * switch_times[-1] for _ in range(max(0, events))
    )
    script: List[ChurnEvent] = []
    for at in times:
        group = _weighted_group(groups, rng, exponent)
        members = working[group]
        want_join = rng.random() < 0.5
        non_members = sorted(set(range(n_hosts)) - members)
        can_join = bool(non_members)
        can_leave = len(members) > min_size
        if want_join and not can_join:
            want_join = False
        if not want_join and not can_leave:
            want_join = True
        if want_join and can_join:
            host = non_members[rng.randrange(len(non_members))]
            members.add(host)
            script.append(ChurnEvent(at=at, op="join", group=group, host=host))
        elif can_leave:
            candidates = sorted(members)
            host = candidates[rng.randrange(len(candidates))]
            members.discard(host)
            script.append(ChurnEvent(at=at, op="leave", group=group, host=host))
        # A group both full and at min_size cannot exist (n_hosts >
        # min_size), so one of the branches always applies.
    return ChurnPlan(events=script, switch_times=switch_times)


@dataclass(frozen=True)
class ChurnConfig:
    """Parameters of one seeded churn campaign (superset of chaos knobs)."""

    #: end hosts attached to the substrate
    hosts: int = 24
    #: Zipf-sized groups over those hosts
    groups: int = 8
    #: messages published, spread uniformly over ``[0, horizon]``
    events: int = 80
    #: join/leave events, Zipf-popular groups, spread before the last switch
    churn_events: int = 50
    #: online epoch switches, spread evenly over ``(0, horizon)``
    switches: int = 5
    #: master seed; every RNG in the run derives from it
    seed: int = 0
    #: traffic/fault/churn window in virtual milliseconds
    horizon: float = 400.0
    #: baseline Bernoulli loss on every channel
    loss_rate: float = 0.01
    #: base retransmit timeout (ms) before exponential backoff
    retransmit_timeout: float = 5.0
    #: heartbeat ping interval (ms)
    heartbeat_interval: float = 5.0
    #: missed heartbeat intervals tolerated before suspicion
    suspect_after: int = 3
    #: fault plan composition (see repro.faults.plan.random_plan)
    node_crashes: int = 1
    host_crashes: int = 1
    link_outages: int = 0
    loss_windows: int = 1
    delay_spikes: int = 1
    #: the first node crash is permanent (resolved only by failover)
    permanent_crash: bool = True
    #: additionally crash the busiest node 1 ms into the middle switch's
    #: fence drain — the self-healing repair path under test
    mid_switch_crash: bool = True
    #: state-transfer downtime charged to each failover (ms)
    transfer_delay: float = 1.0
    #: audit RT306 causal order per epoch
    check_causal: bool = True
    #: per-attempt event budget for each online fence drain
    drain_max_events: int = 500_000
    #: bounded retries when a fault races a drain or graph proof
    repair_attempts: int = 3
    #: base virtual-time backoff (ms) between drain attempts
    repair_backoff: float = 25.0
    #: runtime backend: "sim" (deterministic) or "asyncio" (live timers)
    backend: str = "sim"
    #: virtual-ms -> wall-seconds factor for the asyncio backend
    time_scale: float = 0.0005

    def validate(self) -> None:
        if self.hosts < 4:
            raise ValueError(f"hosts must be >= 4, got {self.hosts}")
        if self.groups < 1:
            raise ValueError(f"groups must be >= 1, got {self.groups}")
        if self.events < 0:
            raise ValueError(f"events must be >= 0, got {self.events}")
        if self.churn_events < 0:
            raise ValueError(
                f"churn_events must be >= 0, got {self.churn_events}"
            )
        if self.switches < 0:
            raise ValueError(f"switches must be >= 0, got {self.switches}")
        if self.horizon <= 0:
            raise ValueError(f"horizon must be positive, got {self.horizon}")
        if self.backend not in ("sim", "asyncio"):
            raise ValueError(f"unknown backend {self.backend!r}")


@dataclass
class ChurnCampaignRun:
    """One executed churn campaign: report plus the live per-epoch state."""

    report: Dict[str, Any]
    #: every epoch's fabric, in epoch order (traces intact for forensics)
    fabrics: List[Any]
    epoch_logs: List[EpochLog]
    plan: FaultPlan
    churn: ChurnPlan
    #: the streaming monitor, when the campaign ran with one attached
    monitor: Optional[LiveMonitor] = None


def run_churn_campaign(
    config: ChurnConfig, live_monitor: bool = False
) -> Dict[str, Any]:
    """Run one seeded churn campaign; return its JSON-able report."""
    return execute_churn_campaign(config, live_monitor=live_monitor).report


def _make_runtime(config: ChurnConfig) -> Optional[Any]:
    if config.backend == "sim":
        return None
    from repro.runtime.asyncio_backend import AsyncioTransport

    return AsyncioTransport(
        seed=config.seed,
        loss_rate=config.loss_rate,
        time_scale=config.time_scale,
    )


def _busiest_node(fabric: Any) -> int:
    """The sequencing node hosting the most atoms (smallest id on ties)."""
    best = -1
    best_count = -1
    for node_id in sorted(fabric.node_processes):
        count = len(fabric.node_processes[node_id].atom_runtimes)
        if count > best_count:
            best, best_count = node_id, count
    return best


def _guarded_apply(
    action: FaultAction, fabric: Any, skipped: List[Dict[str, Any]]
) -> None:
    """Apply a fault; skip (and record) targets lost to an epoch switch."""
    try:
        action.apply(fabric)
    except KeyError:
        skipped.append(action.describe())


def _schedule_faults(
    plan: FaultPlan,
    fabric: Any,
    base: float,
    skipped: List[Dict[str, Any]],
) -> None:
    """Schedule the plan's not-yet-fired actions on an epoch's fabric."""
    for action in plan.sorted_actions():
        local = action.at - base
        if local < 0:
            continue  # fired (or expired) in an earlier epoch
        fabric.sim.schedule_at(local, _guarded_apply, action, fabric, skipped)


def _publish_tick(fabric: Any, rng: random.Random) -> None:
    """Publish one message, drawn from the *current* epoch's membership."""
    groups = sorted(fabric.graph.groups())
    group = groups[rng.randrange(len(groups))]
    members = sorted(fabric.graph.members(group))
    sender = members[rng.randrange(len(members))]
    fabric.publish(sender, group, None)


def _schedule_publishes(
    fabric: Any,
    base: float,
    times: List[float],
    start: int,
    bound: Optional[float],
    rng: random.Random,
) -> int:
    """Schedule publish ticks with absolute time below ``bound``.

    Ticks that fell inside the previous fence drain (absolute time before
    this epoch's ``base``) fire at local 0 — deferred, not dropped.
    Returns the index of the first unscheduled tick.
    """
    index = start
    while index < len(times) and (bound is None or times[index] < bound):
        local = max(times[index] - base, 0.0)
        fabric.sim.schedule_at(local, _publish_tick, fabric, rng)
        index += 1
    return index


def _finding_dicts(findings: List[Any], epoch: int) -> List[Dict[str, Any]]:
    return [
        {
            "code": f.code,
            "message": f.message,
            "severity": f.severity,
            "anchor": f.anchor,
            "tool": f.tool,
            "epoch": epoch,
        }
        for f in findings
    ]


def _delivery_digest(logs: List[EpochLog]) -> str:
    """SHA-256 over every per-host delivery log, for determinism smokes."""
    digest = hashlib.sha256()
    for log in sorted(logs, key=lambda entry: entry.epoch):
        for host in sorted(log.deliveries):
            for record in log.deliveries[host]:
                digest.update(
                    f"{log.epoch}:{host}:{record.msg_id}:"
                    f"{record.stamp.group}:{record.stamp.group_seq};".encode()
                )
    return digest.hexdigest()


def execute_churn_campaign(
    config: ChurnConfig, live_monitor: bool = False
) -> ChurnCampaignRun:
    """Run one seeded churn campaign; return report *and* live state.

    ``live_monitor`` attaches a :class:`repro.obs.live.LiveMonitor` to
    each epoch's fabric (re-attached across every online switch, so the
    fence-drain traffic streams through it too).  The monitor's streamed
    audit view is compared with the per-epoch fabric audit inside
    :func:`close_epoch`; the report's ``live_monitor`` block records the
    per-epoch agreement and the cumulative alert feed.
    """
    config.validate()
    env = ExperimentEnv(n_hosts=config.hosts, seed=config.seed)
    snapshot = zipf_membership(
        config.hosts, config.groups, rng=random.Random(config.seed + 1)
    )
    membership = env.membership_from(snapshot)
    churn = random_churn(
        snapshot,
        config.hosts,
        rng=random.Random(config.seed + 5),
        window=config.horizon,
        events=config.churn_events,
        switches=config.switches,
    )
    fabric = env.build_fabric(
        membership,
        seed=config.seed,
        loss_rate=config.loss_rate,
        retransmit_timeout=config.retransmit_timeout,
        runtime=_make_runtime(config),
    )
    plan = random_plan(
        fabric,
        rng=random.Random(config.seed + 3),
        window=config.horizon,
        node_crashes=config.node_crashes,
        host_crashes=config.host_crashes,
        link_outages=config.link_outages,
        loss_windows=config.loss_windows,
        delay_spikes=config.delay_spikes,
        permanent_crash=config.permanent_crash,
    )
    publish_times = sorted(
        config.horizon * rng.random()
        for rng in [random.Random(config.seed + 4)]
        for _ in range(config.events)
    )
    pub_rng = random.Random(config.seed + 6)
    skipped: List[Dict[str, Any]] = []
    mid_switch_crash: Optional[Dict[str, Any]] = None
    mid_index = len(churn.switch_times) // 2 if churn.switch_times else -1

    batches = churn.batches()
    fabrics: List[Any] = [fabric]
    logs: List[EpochLog] = []
    findings: List[Dict[str, Any]] = []
    epoch_summaries: List[Dict[str, Any]] = []
    failover_total = 0
    base = 0.0
    next_bound = batches[0][0] if batches else None
    monitor: Optional[LiveMonitor] = None
    epoch_agreement: List[Dict[str, Any]] = []
    if live_monitor:
        monitor = LiveMonitor(node=f"churn:{config.seed}")
        monitor.attach(fabric)
    pub_cursor = _schedule_publishes(
        fabric, base, publish_times, 0, next_bound, pub_rng
    )
    _schedule_faults(plan, fabric, base, skipped)
    detector = HeartbeatDetector(
        fabric,
        interval=config.heartbeat_interval,
        suspect_after=config.suspect_after,
    )
    wire_failover(
        fabric,
        detector,
        rng=random.Random(config.seed + 2),
        transfer_delay=config.transfer_delay,
    )
    detector.start()
    start_counters: Tuple[Dict[int, int], Dict[Any, int]] = ({}, {})
    working: Dict[int, Set[int]] = {g: set(m) for g, m in snapshot.items()}

    def close_epoch(ending: Any, online_switch: bool) -> None:
        nonlocal failover_total
        logs.append(
            collect_epoch_log(
                ending, start_counters[0], start_counters[1], online_switch
            )
        )
        epoch_findings = verify_run(
            ending, complete=True, causal=config.check_causal
        )
        if monitor is not None:
            # Per-epoch agreement: the monitor's streamed view must yield
            # the exact findings the fabric audit just produced.
            live_dicts = _finding_dicts(
                monitor.final_findings(
                    complete=True, causal=config.check_causal
                ),
                ending.epoch,
            )
            epoch_agreement.append(
                {
                    "epoch": ending.epoch,
                    "agrees": live_dicts
                    == _finding_dicts(epoch_findings, ending.epoch),
                    "live_findings": len(live_dicts),
                }
            )
        findings.extend(_finding_dicts(epoch_findings, ending.epoch))
        failover_total += len(ending.failovers)
        stats = ending.epoch_switch_stats or {}
        epoch_summaries.append(
            {
                "epoch": ending.epoch,
                "groups": len(ending.graph.groups()),
                "published": len(ending.published),
                "delivered": sum(
                    len(p.delivered) for p in ending.host_processes.values()
                ),
                "fences": len(ending.fences),
                "failovers": len(ending.failovers),
                "retransmissions": ending.retransmissions,
                "link_failures": len(ending.link_failures),
                "switch": {
                    "online": stats.get("online"),
                    "drain_events": stats.get("drain_events"),
                    "drain_attempts": stats.get("drain_attempts"),
                    "graph_repairs": stats.get("graph_repairs"),
                }
                if stats
                else None,
            }
        )

    aborted = False
    for index, (switch_at, ops) in enumerate(batches):
        fabric.run(until=max(switch_at - base, 0.0))
        if config.mid_switch_crash and index == mid_index:
            # A permanent crash of the busiest node, composed through the
            # fault DSL, landing while the fences are on the wire: the
            # switch must self-heal via detection + failover + replay.
            node_id = _busiest_node(fabric)
            crash = CrashNode(
                at=base + fabric.sim.now + MID_SWITCH_CRASH_DELAY,
                node_id=node_id,
                duration=None,
            )
            plan.add(crash)
            mid_switch_crash = crash.describe()
            fabric.sim.schedule_at(
                fabric.sim.now + MID_SWITCH_CRASH_DELAY,
                _guarded_apply,
                crash,
                fabric,
                skipped,
            )
        for event in ops:
            if event.op == "join":
                working[event.group].add(event.host)
            else:
                working[event.group].discard(event.host)
        next_membership = env.membership_from(
            {g: frozenset(m) for g, m in working.items()}
        )
        old = fabric
        try:
            fabric = reconfigure(
                old,
                next_membership,
                seed=config.seed + 1000 + index,
                online=True,
                drain_max_events=config.drain_max_events,
                repair_attempts=config.repair_attempts,
                repair_backoff=config.repair_backoff,
            )
        except ReconfigurationError as exc:
            detector.stop()
            findings.append(
                {
                    "code": SWITCH_FAILED_CODE,
                    "message": f"epoch switch {index + 1} failed: {exc}",
                    "severity": "error",
                    "anchor": f"switch {index + 1}",
                    "tool": "runtime-verify",
                    "epoch": old.epoch,
                }
            )
            close_epoch(old, online_switch=bool(old.fence_expected))
            aborted = True
            break
        detector.stop()
        fabrics.append(fabric)
        # The old epoch ends here; audit it and roll the clock forward.
        base += old.sim.now
        close_epoch(old, online_switch=bool(old.fence_expected))
        if monitor is not None:
            # Follow the bus into the new epoch: fresh streaming window
            # and audit view, cumulative alerts and latency retained.
            monitor.attach(fabric)
        start_counters = (group_local_counters(fabric), atom_counters(fabric))
        next_bound = (
            batches[index + 1][0] if index + 1 < len(batches) else None
        )
        pub_cursor = _schedule_publishes(
            fabric, base, publish_times, pub_cursor, next_bound, pub_rng
        )
        _schedule_faults(plan, fabric, base, skipped)
        detector = HeartbeatDetector(
            fabric,
            interval=config.heartbeat_interval,
            suspect_after=config.suspect_after,
        )
        wire_failover(
            fabric,
            detector,
            rng=random.Random(config.seed + 2 + fabric.epoch),
            transfer_delay=config.transfer_delay,
        )
        detector.start()

    quiescent = True
    if not aborted:
        # Final epoch: run out the horizon, give the detector its slowest
        # legal detection plus hand-off, then drain to quiescence.
        detect_until = (
            max(config.horizon - base, 0.0)
            + (config.suspect_after + 4) * config.heartbeat_interval
            + 2 * config.transfer_delay
            + 50.0
        )
        fabric.run(until=detect_until)
        detector.stop()
        fabric.run(max_events=config.drain_max_events)
        quiescent = fabric.sim.pending == 0
        if not quiescent:
            findings.append(
                {
                    "code": NON_QUIESCENT_CODE,
                    "message": (
                        f"simulation still had {fabric.sim.pending} live "
                        f"events after the {config.drain_max_events}-event "
                        "drain budget"
                    ),
                    "severity": "error",
                    "anchor": "simulator",
                    "tool": "runtime-verify",
                    "epoch": fabric.epoch,
                }
            )
        close_epoch(fabric, online_switch=False)
    # reconfigure() closed each superseded epoch's runtime; the current
    # fabric's is still live (asyncio tasks + loop under that backend).
    fabric.runtime.close()
    findings.extend(
        {
            "code": f.code,
            "message": f.message,
            "severity": f.severity,
            "anchor": f.anchor,
            "tool": f.tool,
            "epoch": None,
        }
        for f in verify_churn(logs)
    )

    applied = sum(len(ops) for _, ops in batches)
    report: Dict[str, Any] = {
        "config": asdict(config),
        "churn": churn.to_dicts(),
        "churn_applied": applied,
        "epochs": epoch_summaries,
        "faults": plan.to_dicts(),
        "mid_switch_crash": mid_switch_crash,
        "fault_skips": skipped,
        "published": sum(len(f.published) for f in fabrics),
        "delivered": sum(
            len(p.delivered)
            for f in fabrics
            for p in f.host_processes.values()
        ),
        "failovers": failover_total,
        "events": sum(f.sim.events_executed for f in fabrics),
        "quiescent": quiescent,
        "delivery_digest": _delivery_digest(logs),
        "findings": findings,
        "ok": not findings,
    }
    if monitor is not None:
        monitor.detach()
        report["live_monitor"] = {
            "alerts": [alert.to_dict() for alert in monitor.alerts],
            "alerts_dropped": monitor.alerts_dropped,
            "violations": monitor.violations,
            "warnings": sum(
                1 for alert in monitor.alerts if alert.severity == "warning"
            ),
            "epoch_agreement": epoch_agreement,
            "agrees_with_audit": all(
                entry["agrees"] for entry in epoch_agreement
            ),
            "phases": monitor.latency.summary(),
        }
    if findings:
        # Explain the failure: stall attribution for every epoch that
        # produced findings (fence drains show up as cause=epoch_switch).
        bad_epochs = sorted(
            {f["epoch"] for f in findings if f["epoch"] is not None}
        )
        forensics: Dict[str, Any] = {}
        for f in fabrics:
            if f.epoch in bad_epochs and f.trace.enabled:
                forensics[str(f.epoch)] = JourneyIndex(f.trace).stall_report(
                    threshold=0.0
                )
        if forensics:
            report["forensics"] = forensics
    return ChurnCampaignRun(
        report=report,
        fabrics=fabrics,
        epoch_logs=logs,
        plan=plan,
        churn=churn,
        monitor=monitor,
    )
