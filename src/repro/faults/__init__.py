"""Fault injection, failure detection, and live failover.

The robustness layer of the reproduction (``docs/FAULTS.md``):

* :mod:`repro.faults.plan` — a deterministic fault-plan DSL (timed
  crashes, outages, partitions, delay spikes, loss windows) plus a
  seeded random-plan generator for chaos campaigns.
* :mod:`repro.faults.detector` — a heartbeat failure detector process
  that suspects silent sequencing nodes.
* :mod:`repro.faults.failover` — standby selection and the glue turning
  a suspicion into a live :meth:`~repro.core.protocol.OrderingFabric.
  relocate_node` call.
* :mod:`repro.faults.campaign` — seeded end-to-end chaos campaigns,
  audited by :func:`repro.check.verify_run` (``repro chaos`` CLI).
* :mod:`repro.faults.churn` — deterministic membership churn (seeded
  join/leave arrivals over Zipf-popular groups) composed with online
  epoch-fenced reconfiguration and the fault-plan DSL, audited by the
  cross-epoch ``RT32x`` invariants (``repro chaos --churn``).
"""

from repro.faults.campaign import ChaosConfig, run_campaign
from repro.faults.churn import (
    ChurnConfig,
    ChurnEvent,
    ChurnPlan,
    execute_churn_campaign,
    random_churn,
    run_churn_campaign,
)
from repro.faults.detector import HeartbeatDetector
from repro.faults.failover import choose_standby, fail_over, wire_failover
from repro.faults.plan import (
    CrashHost,
    CrashNode,
    DelaySpike,
    FaultAction,
    FaultPlan,
    LinkOutage,
    LossWindow,
    Partition,
    random_plan,
)

__all__ = [
    "ChaosConfig",
    "ChurnConfig",
    "ChurnEvent",
    "ChurnPlan",
    "CrashHost",
    "CrashNode",
    "DelaySpike",
    "FaultAction",
    "FaultPlan",
    "HeartbeatDetector",
    "LinkOutage",
    "LossWindow",
    "Partition",
    "choose_standby",
    "execute_churn_campaign",
    "fail_over",
    "random_churn",
    "random_plan",
    "run_campaign",
    "run_churn_campaign",
    "wire_failover",
]
