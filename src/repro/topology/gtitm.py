"""Transit–stub topology generation in the style of GT-ITM.

The transit–stub model [Zegura et al., INFOCOM'96] builds an internetwork in
three tiers:

1. a connected graph of *transit domains* (the wide-area backbone),
2. a connected random graph of *transit routers* inside each domain,
3. several *stub domains* hanging off each transit router, each a connected
   random graph of stub routers.

Routers carry 2-D coordinates; every link's propagation delay is the
Euclidean distance between its endpoints scaled to milliseconds.  Transit
domains are spread over a large plane while stub routers huddle near their
parent transit router, so intra-stub delays are small and cross-backbone
delays are large — the delay locality structure the paper's placement
heuristic (Section 3.4) exploits.
"""

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class TransitStubParams:
    """Shape parameters for :func:`generate_transit_stub`.

    The defaults produce roughly ``transit_domains * transit_nodes_per_domain
    * (1 + stubs_per_transit_node * stub_size)`` routers; the paper-scale
    preset (:meth:`paper_scale`) yields ~10,000.
    """

    transit_domains: int = 2
    transit_nodes_per_domain: int = 4
    stubs_per_transit_node: int = 3
    stub_size: int = 8
    #: probability of an extra (non-spanning-tree) edge between two routers
    #: of the same transit domain
    transit_edge_prob: float = 0.6
    #: probability of an extra edge between two routers of the same stub
    stub_edge_prob: float = 0.4
    #: side length of the coordinate plane, in delay units (milliseconds)
    plane_size: float = 100.0
    #: stub routers are placed within this radius of their stub's center
    stub_radius: float = 2.0
    #: transit routers are placed within this radius of their domain center
    transit_radius: float = 10.0
    #: lower bound on any link delay (milliseconds); GT-ITM-style delay
    #: files have ~millisecond floors, and the stretch/RDP ratios of the
    #: evaluation are only meaningful with a realistic minimum hop cost
    min_delay: float = 1.0

    @classmethod
    def paper_scale(cls) -> "TransitStubParams":
        """Parameters yielding ~10,000 routers as in the paper's Section 4.1.

        4 transit domains x 8 transit routers x (1 + 3 stubs x 104 routers)
        = 32 + 9984 = 10,016 routers.
        """
        return cls(
            transit_domains=4,
            transit_nodes_per_domain=8,
            stubs_per_transit_node=3,
            stub_size=104,
            plane_size=100.0,
        )

    @classmethod
    def small(cls) -> "TransitStubParams":
        """A few-hundred-router topology for tests and quick runs."""
        return cls(
            transit_domains=2,
            transit_nodes_per_domain=4,
            stubs_per_transit_node=3,
            stub_size=10,
        )

    def expected_nodes(self) -> int:
        """Total router count this parameter set produces."""
        transit = self.transit_domains * self.transit_nodes_per_domain
        return transit * (1 + self.stubs_per_transit_node * self.stub_size)


@dataclass
class Topology:
    """An undirected router graph with coordinates and per-link delays.

    Attributes
    ----------
    n_nodes:
        Number of routers; router ids are ``0 .. n_nodes-1``.
    coords:
        ``(x, y)`` plane coordinates per router.
    edges:
        Undirected links as ``(u, v, delay_ms)``; each pair appears once.
    transit_nodes:
        Ids of backbone routers.
    stub_of:
        Maps each stub router to its ``(transit_router, stub_index)`` parent,
        absent for transit routers.
    """

    n_nodes: int
    coords: List[Tuple[float, float]]
    edges: List[Tuple[int, int, float]]
    transit_nodes: List[int] = field(default_factory=list)
    stub_of: Dict[int, Tuple[int, int]] = field(default_factory=dict)

    def adjacency(self) -> Dict[int, List[Tuple[int, float]]]:
        """Adjacency lists ``node -> [(neighbor, delay), ...]``."""
        adj: Dict[int, List[Tuple[int, float]]] = {u: [] for u in range(self.n_nodes)}
        for u, v, d in self.edges:
            adj[u].append((v, d))
            adj[v].append((u, d))
        return adj

    def stub_routers(self) -> List[int]:
        """All non-transit routers."""
        return [u for u in range(self.n_nodes) if u in self.stub_of]


def _euclid(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    return math.hypot(a[0] - b[0], a[1] - b[1])


def _connect_cluster(
    nodes: Sequence[int],
    coords: List[Tuple[float, float]],
    extra_edge_prob: float,
    min_delay: float,
    rng: random.Random,
) -> List[Tuple[int, int, float]]:
    """Build a connected random graph over ``nodes``.

    A random spanning tree guarantees connectivity; extra edges are added
    independently with ``extra_edge_prob`` between random pairs, giving the
    irregular meshes GT-ITM produces.
    """
    edges: List[Tuple[int, int, float]] = []
    seen: set = set()

    def add(u: int, v: int) -> None:
        key = (min(u, v), max(u, v))
        if u == v or key in seen:
            return
        seen.add(key)
        delay = max(_euclid(coords[u], coords[v]), min_delay)
        edges.append((u, v, delay))

    # Random spanning tree: attach each node to a random earlier node.
    order = list(nodes)
    rng.shuffle(order)
    for i in range(1, len(order)):
        add(order[i], order[rng.randrange(i)])
    # Extra mesh edges.
    n = len(order)
    if n > 2 and extra_edge_prob > 0:
        extra_target = int(extra_edge_prob * n)
        for _ in range(extra_target):
            u = order[rng.randrange(n)]
            v = order[rng.randrange(n)]
            add(u, v)
    return edges


def generate_transit_stub(
    params: Optional[TransitStubParams] = None,
    seed: int = 0,
) -> Topology:
    """Generate a transit–stub topology.

    Parameters
    ----------
    params:
        Shape parameters; defaults to :class:`TransitStubParams` defaults.
    seed:
        Seed for the private RNG; identical seeds give identical topologies.
    """
    if params is None:
        params = TransitStubParams()
    rng = random.Random(seed)

    coords: List[Tuple[float, float]] = []
    edges: List[Tuple[int, int, float]] = []
    transit_nodes: List[int] = []
    stub_of: Dict[int, Tuple[int, int]] = {}
    domains: List[List[int]] = []

    def new_node(x: float, y: float) -> int:
        coords.append((x, y))
        return len(coords) - 1

    # --- Tier 1 and 2: transit domains and their routers -----------------
    size = params.plane_size
    for _ in range(params.transit_domains):
        cx = rng.uniform(0.15 * size, 0.85 * size)
        cy = rng.uniform(0.15 * size, 0.85 * size)
        domain: List[int] = []
        for _ in range(params.transit_nodes_per_domain):
            angle = rng.uniform(0, 2 * math.pi)
            radius = rng.uniform(0, params.transit_radius)
            node = new_node(cx + radius * math.cos(angle), cy + radius * math.sin(angle))
            domain.append(node)
            transit_nodes.append(node)
        edges.extend(
            _connect_cluster(
                domain, coords, params.transit_edge_prob, params.min_delay, rng
            )
        )
        domains.append(domain)

    # Inter-domain links: a ring over domains (connectivity) plus one random
    # chord per domain when there are enough domains to need shortcuts.
    def domain_link(da: List[int], db: List[int]) -> None:
        u = rng.choice(da)
        v = rng.choice(db)
        delay = max(_euclid(coords[u], coords[v]), params.min_delay)
        edges.append((u, v, delay))

    n_domains = len(domains)
    if n_domains > 1:
        for i in range(n_domains):
            domain_link(domains[i], domains[(i + 1) % n_domains])
        if n_domains > 3:
            for i in range(n_domains):
                j = rng.randrange(n_domains)
                if j != i:
                    domain_link(domains[i], domains[j])

    # --- Tier 3: stub domains --------------------------------------------
    for transit in list(transit_nodes):
        tx, ty = coords[transit]
        for stub_index in range(params.stubs_per_transit_node):
            # Stub center near the parent transit router.
            angle = rng.uniform(0, 2 * math.pi)
            dist = rng.uniform(1.0, 3.0) * params.stub_radius
            sx, sy = tx + dist * math.cos(angle), ty + dist * math.sin(angle)
            stub: List[int] = []
            for _ in range(params.stub_size):
                angle = rng.uniform(0, 2 * math.pi)
                radius = rng.uniform(0, params.stub_radius)
                node = new_node(
                    sx + radius * math.cos(angle), sy + radius * math.sin(angle)
                )
                stub_of[node] = (transit, stub_index)
                stub.append(node)
            edges.extend(
                _connect_cluster(
                    stub, coords, params.stub_edge_prob, params.min_delay, rng
                )
            )
            # Gateway link from the stub into the backbone.
            gateway = rng.choice(stub)
            delay = max(_euclid(coords[gateway], coords[transit]), params.min_delay)
            edges.append((gateway, transit, delay))

    return Topology(
        n_nodes=len(coords),
        coords=coords,
        edges=edges,
        transit_nodes=transit_nodes,
        stub_of=stub_of,
    )
