"""Clustered attachment of end hosts to the router topology.

The paper (Section 4.1) attaches hosts "by grouping them into similar size
clusters, then distributing each cluster uniformly at random through the
topology.  Nodes in the same cluster are placed close to each other",
modelling online communities gathering around low-latency servers.

We realize this by choosing, per cluster, a uniformly random *stub* router as
the cluster anchor and attaching the cluster's hosts to the geometrically
nearest routers around that anchor (one host per router).  Access links get
a small distance-derived delay.
"""

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.topology.gtitm import Topology


@dataclass(frozen=True)
class Host:
    """An end host attached to the router topology.

    Attributes
    ----------
    host_id:
        Dense id ``0 .. n_hosts-1``.
    router:
        The router this host hangs off.
    access_delay:
        One-way delay of the host's access link (milliseconds).
    cluster:
        Index of the cluster the host belongs to.
    """

    host_id: int
    router: int
    access_delay: float
    cluster: int


def _split_into_clusters(n_hosts: int, cluster_size: int) -> List[int]:
    """Sizes of similar-size clusters covering ``n_hosts`` hosts."""
    if cluster_size <= 0:
        raise ValueError(f"cluster_size must be positive, got {cluster_size}")
    n_clusters = max(1, round(n_hosts / cluster_size))
    base, remainder = divmod(n_hosts, n_clusters)
    return [base + (1 if i < remainder else 0) for i in range(n_clusters)]


def attach_hosts(
    topology: Topology,
    n_hosts: int,
    cluster_size: int = 8,
    access_delay: float = 1.0,
    rng: Optional[random.Random] = None,
) -> List[Host]:
    """Attach ``n_hosts`` hosts to ``topology`` in similar-size clusters.

    Parameters
    ----------
    topology:
        Router graph to attach to.
    n_hosts:
        Number of end hosts.
    cluster_size:
        Target hosts per cluster (clusters differ by at most one host).
    access_delay:
        One-way host access-link delay, identical for all hosts.
    rng:
        Random source; a fresh ``Random(0)`` when omitted.

    Returns
    -------
    list of :class:`Host`, ordered by ``host_id``.
    """
    if n_hosts <= 0:
        raise ValueError(f"n_hosts must be positive, got {n_hosts}")
    rng = rng or random.Random(0)
    stub_routers = topology.stub_routers() or list(range(topology.n_nodes))
    coords = topology.coords

    hosts: List[Host] = []
    used_routers: set = set()
    next_host_id = 0
    for cluster_index, size in enumerate(_split_into_clusters(n_hosts, cluster_size)):
        anchor = rng.choice(stub_routers)
        ax, ay = coords[anchor]
        # Routers sorted by geometric distance to the anchor; attach one host
        # per router so cluster members are close but not co-located.
        by_distance = sorted(
            range(topology.n_nodes),
            key=lambda r: math.hypot(coords[r][0] - ax, coords[r][1] - ay),
        )
        picked: List[int] = []
        for router in by_distance:
            if router not in used_routers:
                picked.append(router)
                used_routers.add(router)
            if len(picked) == size:
                break
        if len(picked) < size:
            raise ValueError(
                f"topology too small: {n_hosts} hosts need {n_hosts} distinct "
                f"routers, topology has {topology.n_nodes}"
            )
        for router in picked:
            hosts.append(
                Host(
                    host_id=next_host_id,
                    router=router,
                    access_delay=access_delay,
                    cluster=cluster_index,
                )
            )
            next_host_id += 1
    return hosts


def host_router_map(hosts: List[Host]) -> Dict[int, int]:
    """Convenience map ``host_id -> router``."""
    return {h.host_id: h.router for h in hosts}
