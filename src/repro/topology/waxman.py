"""Waxman random-graph topology generation.

GT-ITM's other family besides transit–stub: routers scattered uniformly on
a plane, with an edge between routers ``u`` and ``v`` created with the
Waxman probability

    P(u, v) = alpha * exp(-d(u, v) / (beta * L)),

where ``d`` is Euclidean distance and ``L`` the plane diagonal.  Unlike
transit–stub, Waxman graphs are flat (no delay hierarchy), which makes
them a useful sensitivity check: the ordering protocol's *correctness*
never depends on topology, and the experiments can be re-run on Waxman to
confirm the latency shapes are not artifacts of the transit–stub
hierarchy.

The generator guarantees connectivity by seeding a random spanning tree
before the Waxman trials, like :mod:`repro.topology.gtitm` does for its
sub-domains.
"""

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.topology.gtitm import Topology


@dataclass(frozen=True)
class WaxmanParams:
    """Shape parameters for :func:`generate_waxman`."""

    n_nodes: int = 400
    #: Waxman alpha: overall edge density.
    alpha: float = 0.15
    #: Waxman beta: how quickly edge probability decays with distance
    #: (larger beta -> more long-distance links).
    beta: float = 0.2
    #: side length of the coordinate plane, in delay units (milliseconds)
    plane_size: float = 100.0
    #: lower bound on any link delay
    min_delay: float = 1.0


def generate_waxman(
    params: Optional[WaxmanParams] = None,
    seed: int = 0,
) -> Topology:
    """Generate a connected Waxman random topology.

    Returns the same :class:`~repro.topology.gtitm.Topology` structure as
    the transit–stub generator (``transit_nodes`` and ``stub_of`` are
    empty: the graph is flat), so routing, host attachment, and all
    experiments work unchanged.
    """
    if params is None:
        params = WaxmanParams()
    if params.n_nodes < 2:
        raise ValueError(f"need at least 2 nodes, got {params.n_nodes}")
    rng = random.Random(seed)
    size = params.plane_size
    coords: List[Tuple[float, float]] = [
        (rng.uniform(0, size), rng.uniform(0, size)) for _ in range(params.n_nodes)
    ]
    diagonal = math.hypot(size, size)

    def delay(u: int, v: int) -> float:
        return max(
            math.hypot(coords[u][0] - coords[v][0], coords[u][1] - coords[v][1]),
            params.min_delay,
        )

    edges: List[Tuple[int, int, float]] = []
    seen = set()

    def add(u: int, v: int) -> None:
        key = (min(u, v), max(u, v))
        if u == v or key in seen:
            return
        seen.add(key)
        edges.append((u, v, delay(u, v)))

    # Connectivity backbone: random spanning tree.
    order = list(range(params.n_nodes))
    rng.shuffle(order)
    for i in range(1, len(order)):
        add(order[i], order[rng.randrange(i)])

    # Waxman trials over all pairs.
    for u in range(params.n_nodes):
        for v in range(u + 1, params.n_nodes):
            p = params.alpha * math.exp(-delay(u, v) / (params.beta * diagonal))
            if rng.random() < p:
                add(u, v)

    return Topology(
        n_nodes=params.n_nodes,
        coords=coords,
        edges=edges,
        transit_nodes=[],
        stub_of={},
    )
