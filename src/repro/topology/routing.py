"""Shortest-path routing over a :class:`~repro.topology.gtitm.Topology`.

Messages in the evaluation travel on shortest (minimum-delay) paths, and any
router can forward (paper Section 4.1).  All-pairs shortest paths over a
10,000-router graph would need ~800 MB, so this module computes single-source
Dijkstra on demand with scipy's sparse-graph routines and caches per-source
rows; an experiment touches at most a few hundred distinct sources (hosts and
sequencing machines).
"""

from typing import Dict, List

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from repro.topology.gtitm import Topology


class RoutingTable:
    """On-demand single-source shortest paths with caching.

    Parameters
    ----------
    topology:
        The router graph to route over.
    """

    def __init__(self, topology: Topology):
        self.topology = topology
        n = topology.n_nodes
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        for u, v, d in topology.edges:
            rows.extend((u, v))
            cols.extend((v, u))
            vals.extend((d, d))
        self._graph = csr_matrix((vals, (rows, cols)), shape=(n, n))
        self._dist_cache: Dict[int, np.ndarray] = {}
        self._pred_cache: Dict[int, np.ndarray] = {}

    @property
    def n_nodes(self) -> int:
        """Number of routers in the underlying topology."""
        return self.topology.n_nodes

    def _run_dijkstra(self, src: int) -> None:
        dist, pred = dijkstra(
            self._graph, directed=False, indices=src, return_predecessors=True
        )
        self._dist_cache[src] = dist
        self._pred_cache[src] = pred

    def delays_from(self, src: int) -> np.ndarray:
        """All-destination delay vector from router ``src`` (cached)."""
        if src not in self._dist_cache:
            self._run_dijkstra(src)
        return self._dist_cache[src]

    def delay(self, src: int, dst: int) -> float:
        """Shortest-path delay between two routers (milliseconds)."""
        if src == dst:
            return 0.0
        # Prefer an already-cached source row in either direction.
        if src in self._dist_cache:
            return float(self._dist_cache[src][dst])
        if dst in self._dist_cache:
            return float(self._dist_cache[dst][src])
        return float(self.delays_from(src)[dst])

    def path(self, src: int, dst: int) -> List[int]:
        """Router sequence of the shortest path, inclusive of endpoints."""
        if src == dst:
            return [src]
        if src not in self._pred_cache:
            self._run_dijkstra(src)
        pred = self._pred_cache[src]
        if pred[dst] < 0:
            raise ValueError(f"no path from {src} to {dst}")
        path = [dst]
        node = dst
        while node != src:
            node = int(pred[node])
            path.append(node)
        path.reverse()
        return path

    def nearest(self, src: int, candidates: List[int]) -> int:
        """The candidate router closest to ``src`` by shortest-path delay."""
        if not candidates:
            raise ValueError("candidates must be non-empty")
        dist = self.delays_from(src)
        best = min(candidates, key=lambda c: dist[c])
        return best

    def cache_size(self) -> int:
        """Number of cached single-source rows (for memory accounting)."""
        return len(self._dist_cache)
