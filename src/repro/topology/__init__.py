"""Network topology substrate.

The paper evaluates on a 10,000-router topology produced by GT-ITM [29]
(Zegura, Calvert, Bhattacharjee, "How to model an internetwork", INFOCOM'96).
GT-ITM is a C program we cannot ship or run here, so :mod:`repro.topology.gtitm`
reimplements its transit–stub model in pure Python: transit domains form the
backbone, each transit router attaches several stub domains, and link delays
derive from Euclidean distance between router coordinates.  The structural
properties the evaluation depends on — hierarchical locality and realistic
delay spread — are preserved (see DESIGN.md, substitution table).

:mod:`repro.topology.routing` provides shortest-path delays and paths over
the generated graph (sparse Dijkstra with per-source caching), and
:mod:`repro.topology.clusters` implements the paper's Section 4.1 host
attachment: hosts are grouped into similar-size clusters placed uniformly at
random, with hosts of a cluster close to each other.
"""

from repro.topology.clusters import Host, attach_hosts
from repro.topology.gtitm import Topology, TransitStubParams, generate_transit_stub
from repro.topology.routing import RoutingTable
from repro.topology.waxman import WaxmanParams, generate_waxman

__all__ = [
    "Host",
    "RoutingTable",
    "Topology",
    "TransitStubParams",
    "WaxmanParams",
    "attach_hosts",
    "generate_transit_stub",
    "generate_waxman",
]
