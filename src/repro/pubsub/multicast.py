"""Source-rooted shortest-path delivery trees for the distribution phase.

In the paper's three-phase model (ingress -> sequencing -> distribution),
"existing multicast delivery schemes can support ingress and distribution"
(Section 3), and the evaluation routes on shortest paths with every router
able to forward (Section 4.1).  A :class:`DeliveryTree` is the union of
shortest paths from a root router to the member routers: per-member delay
equals the unicast shortest-path delay, and the tree structure provides
link-stress accounting for the load benchmarks.
"""

from typing import Dict, Iterable, List, Set, Tuple

from repro.topology.routing import RoutingTable


class DeliveryTree:
    """Union of shortest paths from ``root`` to each router in ``members``.

    Parameters
    ----------
    routing:
        Shortest-path oracle over the topology.
    root:
        Router the distribution starts from (the machine hosting the last
        sequencing atom of a group's path, or the publisher for plain
        multicast).
    members:
        Destination routers (duplicates allowed and collapsed).
    """

    def __init__(self, routing: RoutingTable, root: int, members: Iterable[int]):
        self.routing = routing
        self.root = root
        self.members: List[int] = sorted(set(members))
        self._delay: Dict[int, float] = {}
        self._tree_edges: Set[Tuple[int, int]] = set()
        for member in self.members:
            path = routing.path(root, member)
            self._delay[member] = routing.delay(root, member)
            for u, v in zip(path, path[1:]):
                self._tree_edges.add((u, v))

    def delay_to(self, member: int) -> float:
        """Root-to-member delay along the tree (== unicast shortest path)."""
        return self._delay[member]

    def delays(self) -> Dict[int, float]:
        """Copy of the per-member delay map."""
        return dict(self._delay)

    @property
    def edges(self) -> Set[Tuple[int, int]]:
        """Directed tree edges (router pairs) used by at least one path."""
        return set(self._tree_edges)

    def link_count(self) -> int:
        """Number of distinct links the tree occupies."""
        return len(self._tree_edges)

    def unicast_link_count(self) -> int:
        """Total links if each member were reached by independent unicast.

        The ratio ``unicast_link_count / link_count`` is the classic
        multicast link-sharing gain.
        """
        return sum(
            len(self.routing.path(self.root, member)) - 1 for member in self.members
        )
