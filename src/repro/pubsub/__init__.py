"""Publish/subscribe substrate: groups, membership, distribution.

The ordering protocol sits on top of a conventional pub/sub layer.  Per the
paper's system model, subscribers join *groups* that represent interests; a
group is formed of all subscribers sharing a common subscription, and the
group membership matrix is globally known (Section 3: it could live in a DHT
or be provided by the pub/sub system — here it is an in-process store).

* :mod:`repro.pubsub.membership` — the group membership matrix with
  join/leave/create/delete operations and change listeners.
* :mod:`repro.pubsub.broker` — maps free-form topic subscriptions onto
  groups (all subscribers sharing a subscription form one group).
* :mod:`repro.pubsub.multicast` — source-rooted shortest-path delivery
  trees used in the distribution phase.
"""

from repro.pubsub.broker import SubscriptionBroker
from repro.pubsub.content import Constraint, ContentIndex, ContentLayer, Filter
from repro.pubsub.membership import GroupMembership, MembershipError
from repro.pubsub.multicast import DeliveryTree

__all__ = [
    "Constraint",
    "ContentIndex",
    "ContentLayer",
    "DeliveryTree",
    "Filter",
    "GroupMembership",
    "MembershipError",
    "SubscriptionBroker",
]
