"""The globally-known group membership matrix.

Section 3 of the paper assumes "the group membership matrix — which nodes
belong to which groups — is globally known; it can be kept in a distributed
data store such as a DHT or it can be provided by the underlying
publish/subscribe system".  This module is that store.

Listeners can subscribe to membership changes; the sequencing layer uses
this to update the sequencing graph incrementally when groups are added or
removed (paper Section 3.2: membership *changes* are modelled as removing
the old group and adding a group with the new membership).
"""

from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set


class MembershipError(ValueError):
    """Raised on invalid membership operations (duplicate group, etc.)."""


ChangeListener = Callable[[str, int, FrozenSet[int]], None]
"""Callback ``(op, group_id, members)`` where op is "add" or "remove"."""


class GroupMembership:
    """Mapping of groups to subscriber sets, with change notification.

    Group ids are small integers; member ids are host ids.  All query
    methods return copies or frozen views, so callers cannot corrupt the
    matrix by mutating results.
    """

    def __init__(self) -> None:
        self._members: Dict[int, Set[int]] = {}
        self._groups_of: Dict[int, Set[int]] = {}
        self._listeners: List[ChangeListener] = []
        self._next_group_id = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_listener(self, listener: ChangeListener) -> None:
        """Register a callback for group add/remove events."""
        self._listeners.append(listener)

    def _notify(self, op: str, group_id: int, members: FrozenSet[int]) -> None:
        for listener in self._listeners:
            listener(op, group_id, members)

    def create_group(
        self, members: Iterable[int], group_id: Optional[int] = None
    ) -> int:
        """Create a group with the given members; returns its id.

        An explicit ``group_id`` may be supplied (useful for reproducing
        fixed scenarios); auto-assigned ids never collide with explicit
        ones.
        """
        member_set = set(members)
        if group_id is None:
            while self._next_group_id in self._members:
                self._next_group_id += 1
            group_id = self._next_group_id
            self._next_group_id += 1
        elif group_id in self._members:
            raise MembershipError(f"group {group_id} already exists")
        self._members[group_id] = member_set
        for node in member_set:
            self._groups_of.setdefault(node, set()).add(group_id)
        self._notify("add", group_id, frozenset(member_set))
        return group_id

    def remove_group(self, group_id: int) -> None:
        """Delete a group entirely."""
        members = self._pop_group(group_id)
        self._notify("remove", group_id, frozenset(members))

    def _pop_group(self, group_id: int) -> Set[int]:
        try:
            members = self._members.pop(group_id)
        except KeyError:
            raise MembershipError(f"no such group {group_id}") from None
        for node in members:
            self._groups_of[node].discard(group_id)
            if not self._groups_of[node]:
                del self._groups_of[node]
        return members

    def replace_group(self, group_id: int, members: Iterable[int]) -> None:
        """Atomically change a group's membership.

        Implemented as remove-then-add under the same id, matching the
        paper's model of membership change (Section 3.2).
        """
        old = self._pop_group(group_id)
        self._notify("remove", group_id, frozenset(old))
        member_set = set(members)
        self._members[group_id] = member_set
        for node in member_set:
            self._groups_of.setdefault(node, set()).add(group_id)
        self._notify("add", group_id, frozenset(member_set))

    def join(self, group_id: int, node: int) -> None:
        """Add ``node`` to an existing group (membership change)."""
        if group_id not in self._members:
            raise MembershipError(f"no such group {group_id}")
        if node in self._members[group_id]:
            return
        self.replace_group(group_id, self._members[group_id] | {node})

    def leave(self, group_id: int, node: int) -> None:
        """Remove ``node`` from a group; deletes the group if emptied."""
        if group_id not in self._members:
            raise MembershipError(f"no such group {group_id}")
        if node not in self._members[group_id]:
            return
        remaining = self._members[group_id] - {node}
        if remaining:
            self.replace_group(group_id, remaining)
        else:
            self.remove_group(group_id)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def groups(self) -> List[int]:
        """All group ids, sorted for deterministic iteration."""
        return sorted(self._members)

    def members(self, group_id: int) -> FrozenSet[int]:
        """Members of a group as an immutable set."""
        try:
            return frozenset(self._members[group_id])
        except KeyError:
            raise MembershipError(f"no such group {group_id}") from None

    def groups_of(self, node: int) -> FrozenSet[int]:
        """Groups a node subscribes to (empty set if none)."""
        return frozenset(self._groups_of.get(node, ()))

    def nodes(self) -> List[int]:
        """All nodes with at least one subscription, sorted."""
        return sorted(self._groups_of)

    def has_group(self, group_id: int) -> bool:
        """Whether the group exists."""
        return group_id in self._members

    def group_count(self) -> int:
        """Number of groups."""
        return len(self._members)

    def __contains__(self, group_id: int) -> bool:
        return group_id in self._members

    def snapshot(self) -> Dict[int, FrozenSet[int]]:
        """An immutable copy of the whole matrix."""
        return {g: frozenset(m) for g, m in self._members.items()}
