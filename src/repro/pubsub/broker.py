"""Topic-based subscription management on top of the membership matrix.

The paper's system model says "a group is formed of all subscribers that
share a common subscription".  The broker realizes exactly that: each
distinct topic string maps to one group; subscribing to a topic joins the
group (creating it on first subscription), unsubscribing leaves it (deleting
it when the last subscriber leaves).  The examples use topics; the core
protocol and the experiments work directly with group ids.
"""

from typing import Dict, FrozenSet, Optional

from repro.pubsub.membership import GroupMembership, MembershipError


class SubscriptionBroker:
    """Maps topic strings to groups in a :class:`GroupMembership`."""

    def __init__(self, membership: Optional[GroupMembership] = None):
        self.membership = membership if membership is not None else GroupMembership()
        self._topic_to_group: Dict[str, int] = {}
        self._group_to_topic: Dict[int, str] = {}

    def subscribe(self, node: int, topic: str) -> int:
        """Subscribe ``node`` to ``topic``; returns the topic's group id."""
        group_id = self._topic_to_group.get(topic)
        if group_id is None:
            group_id = self.membership.create_group([node])
            self._topic_to_group[topic] = group_id
            self._group_to_topic[group_id] = topic
        else:
            self.membership.join(group_id, node)
        return group_id

    def unsubscribe(self, node: int, topic: str) -> None:
        """Remove ``node``'s subscription; deletes the group if emptied."""
        group_id = self._topic_to_group.get(topic)
        if group_id is None:
            raise MembershipError(f"no such topic {topic!r}")
        self.membership.leave(group_id, node)
        if not self.membership.has_group(group_id):
            del self._topic_to_group[topic]
            del self._group_to_topic[group_id]

    def group_for(self, topic: str) -> int:
        """Group id for a topic; raises ``MembershipError`` if unknown."""
        try:
            return self._topic_to_group[topic]
        except KeyError:
            raise MembershipError(f"no such topic {topic!r}") from None

    def topic_for(self, group_id: int) -> str:
        """Topic string backing a group id."""
        try:
            return self._group_to_topic[group_id]
        except KeyError:
            raise MembershipError(f"group {group_id} has no topic") from None

    def topics(self) -> Dict[str, int]:
        """Copy of the topic -> group mapping."""
        return dict(self._topic_to_group)

    def subscribers(self, topic: str) -> FrozenSet[int]:
        """Current subscribers of a topic."""
        return self.membership.members(self.group_for(topic))
