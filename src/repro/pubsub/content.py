"""Content-based subscriptions on top of the group model.

The paper positions its ordering layer for content-based pub/sub systems
(Siena, Hermes, Gryphon — its refs [25–27]), where subscribers register
*filters* over event attributes and "a group is formed of all subscribers
that share a common subscription".  This module provides that mapping:

* a :class:`Filter` is a conjunction of attribute :class:`Constraint`\\ s
  with a canonical form, so syntactically equal subscriptions land in the
  same group;
* a :class:`ContentIndex` matches events to the filters they satisfy
  (attribute-indexed for equality constraints, linear for the rest);
* :class:`ContentLayer` glues filters to an :class:`~repro.core.api.
  OrderedPubSub`: subscribing to a filter joins its group, publishing an
  event sends one ordered message per matching group.

Consumers whose filters both match a pair of events therefore observe
them in the same order — the stock-ticker consistency story, generalized
beyond fixed topics.
"""

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, FrozenSet, Iterable, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - avoids a circular import at runtime
    from repro.core.api import OrderedPubSub

#: Supported constraint operators.
OPS = ("eq", "ne", "lt", "le", "gt", "ge", "prefix")


@dataclass(frozen=True, order=True)
class Constraint:
    """One attribute test, e.g. ``Constraint("price", "lt", 100)``."""

    attribute: str
    op: str
    value: Any

    def __post_init__(self):
        if self.op not in OPS:
            raise ValueError(f"unknown op {self.op!r}; expected one of {OPS}")

    def matches(self, event: Dict[str, Any]) -> bool:
        """Whether an event satisfies this constraint.

        Missing attributes never match; type mismatches (e.g. ordering a
        str against an int) are treated as non-matches rather than errors,
        matching content-based-router practice.
        """
        if self.attribute not in event:
            return False
        actual = event[self.attribute]
        try:
            if self.op == "eq":
                return actual == self.value
            if self.op == "ne":
                return actual != self.value
            if self.op == "lt":
                return actual < self.value
            if self.op == "le":
                return actual <= self.value
            if self.op == "gt":
                return actual > self.value
            if self.op == "ge":
                return actual >= self.value
            return isinstance(actual, str) and actual.startswith(str(self.value))
        except TypeError:
            return False


@dataclass(frozen=True)
class Filter:
    """A conjunction of constraints with a canonical identity.

    Two filters constructed from the same constraints (in any order)
    compare equal and hash equal — they denote the same subscription and
    therefore the same group.
    """

    constraints: Tuple[Constraint, ...]

    def __init__(self, constraints: Iterable[Constraint]):
        object.__setattr__(self, "constraints", tuple(sorted(constraints)))

    @classmethod
    def where(cls, **equals: Any) -> "Filter":
        """Shorthand for pure-equality filters: ``Filter.where(sector="tech")``."""
        return cls(Constraint(k, "eq", v) for k, v in sorted(equals.items()))

    def matches(self, event: Dict[str, Any]) -> bool:
        """Conjunction semantics: every constraint must hold."""
        return all(c.matches(event) for c in self.constraints)

    def covers(self, other: "Filter") -> bool:
        """Conservative covering test: every event matching ``other`` matches us.

        Sound but incomplete: returns True only when every one of our
        constraints is implied by one of ``other``'s (equality implies
        looser ranges; tighter ranges imply looser ones on the same
        attribute).  False negatives only.
        """
        return all(
            any(_implies(theirs, mine) for theirs in other.constraints)
            for mine in self.constraints
        )

    def describe(self) -> str:
        """Stable human-readable form (also the topic key)."""
        if not self.constraints:
            return "<match-all>"
        return " & ".join(
            f"{c.attribute} {c.op} {c.value!r}" for c in self.constraints
        )

    def __repr__(self) -> str:
        return f"Filter({self.describe()})"


def _implies(premise: Constraint, conclusion: Constraint) -> bool:
    """Whether satisfying ``premise`` guarantees ``conclusion``."""
    if premise.attribute != conclusion.attribute:
        return False
    if premise == conclusion:
        return True
    try:
        if premise.op == "eq":
            # A fixed value implies any constraint that value satisfies.
            return conclusion.matches({premise.attribute: premise.value})
        if premise.op in ("lt", "le") and conclusion.op in ("lt", "le"):
            if conclusion.op == "lt":
                return (
                    premise.value < conclusion.value
                    if premise.op == "le"
                    else premise.value <= conclusion.value
                )
            return premise.value <= conclusion.value
        if premise.op in ("gt", "ge") and conclusion.op in ("gt", "ge"):
            if conclusion.op == "gt":
                return (
                    premise.value > conclusion.value
                    if premise.op == "ge"
                    else premise.value >= conclusion.value
                )
            return premise.value >= conclusion.value
        if premise.op == "prefix" and conclusion.op == "prefix":
            return str(premise.value).startswith(str(conclusion.value))
    except TypeError:
        return False
    return False


class ContentIndex:
    """Match events against a set of registered filters.

    Filters with at least one equality constraint are indexed by one of
    their (attribute, value) pairs; the rest are scanned linearly.  For
    the population sizes of this project (tens of filters) this is plenty;
    the interface is what matters for the substrate.
    """

    def __init__(self) -> None:
        self._filters: Dict[Filter, int] = {}
        self._eq_index: Dict[Tuple[str, Any], List[Filter]] = {}
        self._scan: List[Filter] = []

    def add(self, filter_: Filter, key: int) -> None:
        """Register a filter under an opaque key (its group id)."""
        if filter_ in self._filters:
            raise ValueError(f"filter already registered: {filter_}")
        self._filters[filter_] = key
        eq = next((c for c in filter_.constraints if c.op == "eq"), None)
        if eq is not None:
            self._eq_index.setdefault((eq.attribute, eq.value), []).append(filter_)
        else:
            self._scan.append(filter_)

    def remove(self, filter_: Filter) -> None:
        """Unregister a filter."""
        self._filters.pop(filter_)
        for bucket in self._eq_index.values():
            if filter_ in bucket:
                bucket.remove(filter_)
                return
        if filter_ in self._scan:
            self._scan.remove(filter_)

    def key_of(self, filter_: Filter) -> int:
        """The key a filter was registered under."""
        return self._filters[filter_]

    def matching(self, event: Dict[str, Any]) -> List[int]:
        """Keys of all filters the event satisfies, sorted."""
        candidates: List[Filter] = list(self._scan)
        for attribute, value in event.items():
            candidates.extend(self._eq_index.get((attribute, value), ()))
        return sorted(
            self._filters[f] for f in candidates if f.matches(event)
        )

    def __len__(self) -> int:
        return len(self._filters)


class ContentLayer:
    """Content-based subscriptions over an :class:`OrderedPubSub`.

    Each distinct filter maps to one topic (its canonical description),
    hence one group; publishing an event sends one ordered message to
    every matching group.  Subscribers sharing several filters see common
    events in a consistent order — the ordering layer's guarantee carried
    up to the content-based API.
    """

    def __init__(self, bus: "OrderedPubSub"):
        self.bus = bus
        self.index = ContentIndex()

    def subscribe(self, node: int, filter_: Filter) -> int:
        """Subscribe a node to a filter; returns the filter's group id."""
        topic = "content/" + filter_.describe()
        group = self.bus.subscribe(node, topic)
        if filter_ not in self.index._filters:
            self.index.add(filter_, group)
        return group

    def unsubscribe(self, node: int, filter_: Filter) -> None:
        """Drop a node's filter subscription; deregisters empty filters."""
        topic = "content/" + filter_.describe()
        self.bus.unsubscribe(node, topic)
        group = self.index.key_of(filter_)
        if not self.bus.membership.has_group(group):
            self.index.remove(filter_)

    def publish(self, sender: int, event: Dict[str, Any]) -> List[int]:
        """Send ``event`` to every matching filter group; returns msg ids.

        For causal ordering the sender should subscribe to the matching
        filters (the bus enforces its ``enforce_causal_sends`` policy per
        group).
        """
        msg_ids = []
        for group in self.index.matching(event):
            msg_ids.append(self.bus.publish(sender, group, dict(event)))
        return msg_ids

    def subscribers_matching(self, event: Dict[str, Any]) -> FrozenSet[int]:
        """Union of members over all groups the event matches."""
        members: set = set()
        for group in self.index.matching(event):
            members.update(self.bus.membership.members(group))
        return frozenset(members)
