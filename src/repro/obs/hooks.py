"""Attach a :class:`~repro.obs.registry.MetricsRegistry` to running code.

Two complementary mechanisms keep the hot path cheap:

* **Live hooks** update instruments as events happen — the per-host
  hold-back occupancy gauges (via :attr:`DeliveryState.on_occupancy`) and
  the delivery-latency histogram / per-kind record counters (via a trace
  subscriber).  These fire only when a real registry is attached.
* **Pull collectors** mirror counters the simulation already maintains
  (per-link bytes, queue high-water marks, atom work counts, event-loop
  stats) into instruments at :meth:`MetricsRegistry.collect` time — i.e.
  at export, costing the hot path nothing.

``instrument_fabric`` is called by :class:`~repro.core.protocol.
OrderingFabric` itself when constructed with a ``registry``; call it
directly only for fabrics built before a registry existed.
"""

from typing import TYPE_CHECKING, Dict

from repro.obs.registry import Gauge, MetricsRegistry, log_buckets

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.protocol import OrderingFabric
    from repro.runtime.interfaces import NodeHandle


def _process_label(name: object) -> str:
    """Render a process name tuple like ``("host", 3)`` as ``host:3``."""
    if isinstance(name, tuple):
        return ":".join(str(part) for part in name)
    return str(name)


def _occupancy_observer(current: Gauge, high_water: Gauge):
    def observe(depth: int) -> None:
        current.set(depth)
        high_water.set_max(depth)

    return observe


def instrument_fabric(fabric: "OrderingFabric", registry: MetricsRegistry) -> None:
    """Wire live hooks and a pull collector between ``fabric`` and ``registry``.

    Safe to call with a disabled registry (everything degrades to no-ops).
    The collector holds a reference to the fabric; when one registry spans
    many fabrics (e.g. a figure sweep), instruments with identical labels
    reflect the most recently collected fabric.
    """
    if not registry.enabled:
        return

    # Live per-host hold-back occupancy — the paper's Figure 8 quantity,
    # updated on every buffer change instead of scanned after the run.
    for host_id, process in fabric.host_processes.items():
        process.delivery.on_occupancy = _occupancy_observer(
            registry.gauge(
                "repro_holdback_occupancy",
                "messages currently buffered awaiting predecessors",
                host=host_id,
            ),
            registry.gauge(
                "repro_holdback_high_water",
                "peak hold-back buffer occupancy",
                host=host_id,
            ),
        )

    # Live delivery-latency histogram + per-kind record counters, fed by
    # the trace subscriber stream (active only while tracing is enabled).
    latency = registry.histogram(
        "repro_delivery_latency_ms",
        "publish-to-deliver latency per delivered message copy",
        buckets=log_buckets(),
    )
    kind_counters: Dict[str, object] = {}

    def on_record(record) -> None:
        counter = kind_counters.get(record.kind)
        if counter is None:
            counter = registry.counter(
                "repro_trace_records", "trace records by kind", kind=record.kind
            )
            kind_counters[record.kind] = counter
        counter.inc()
        if record.kind == "deliver":
            latency.observe(record.time - record.data["publish_time"])

    fabric.trace.subscribe(on_record)
    registry.register_collector(_fabric_collector(fabric))


def _fabric_collector(fabric: "OrderingFabric"):
    """Build the pull collector mirroring fabric state into instruments."""

    def collect(registry: MetricsRegistry) -> None:
        for (src, dst), channel in fabric.network.channels.items():
            labels = {"src": _process_label(src), "dst": _process_label(dst)}
            registry.counter(
                "repro_link_bytes_sent", "wire bytes per directed link", **labels
            ).set_total(channel.bytes_sent)
            registry.counter(
                "repro_link_sends", "packet transmissions per link", **labels
            ).set_total(channel.sends)
            registry.counter(
                "repro_link_drops",
                "packets dropped per link, by cause",
                cause="loss",
                **labels,
            ).set_total(channel.loss_drops)
            registry.counter(
                "repro_link_drops",
                "packets dropped per link, by cause",
                cause="outage",
                **labels,
            ).set_total(channel.outage_drops)
            registry.gauge(
                "repro_link_in_flight_high_water",
                "peak packets concurrently on the wire",
                **labels,
            ).set_max(channel.in_flight_high_water)
        for host_id, process in fabric.host_processes.items():
            registry.counter(
                "repro_host_delivered", "messages delivered to the app", host=host_id
            ).set_total(process.delivery.delivered_count)
            # Covers fabrics whose live observer was attached late (or
            # never): the post-hoc high-water is authoritative either way.
            registry.gauge(
                "repro_holdback_high_water",
                "peak hold-back buffer occupancy",
                host=host_id,
            ).set_max(process.delivery.buffered_high_water)
        for node_id, process in fabric.node_processes.items():
            registry.counter(
                "repro_node_messages_handled",
                "distinct message visits per sequencing node",
                node=node_id,
            ).set_total(process.messages_handled)
            registry.gauge(
                "repro_node_queue_high_water",
                "peak service queue depth (service-time model)",
                node=node_id,
            ).set_max(process.queue_high_water)
            for atom_id, runtime in process.atom_runtimes.items():
                atom_labels = {"atom": repr(atom_id), "node": node_id}
                registry.counter(
                    "repro_atom_stamps_issued",
                    "messages stamped by this atom",
                    **atom_labels,
                ).set_total(runtime.messages_sequenced)
                registry.counter(
                    "repro_atom_pass_through",
                    "messages forwarded without stamping",
                    **atom_labels,
                ).set_total(runtime.messages_passed_through)
        registry.counter(
            "repro_messages_published", "messages injected into the fabric"
        ).set_total(len(fabric.published))
        registry.counter(
            "repro_retransmissions", "reliable-link retransmissions"
        ).set_total(fabric.retransmissions)
        for cause in sorted(fabric.retransmissions_by_cause):
            registry.counter(
                "repro_retransmissions_by_cause",
                "retransmissions attributed to why the copy vanished",
                cause=cause,
            ).set_total(fabric.retransmissions_by_cause[cause])
        for (src, dst) in sorted(fabric.retransmits_by_link, key=repr):
            registry.counter(
                "repro_link_retransmits",
                "retransmission attempts per directed link",
                src=_process_label(src),
                dst=_process_label(dst),
            ).set_total(fabric.retransmits_by_link[(src, dst)])
        registry.counter(
            "repro_acks_sent", "reliable-link acknowledgments sent"
        ).set_total(fabric.acks_sent)
        registry.counter(
            "repro_link_failures",
            "packets abandoned after exhausting the retransmit budget",
        ).set_total(len(fabric.link_failures))
        registry.counter(
            "repro_failovers", "live sequencing-node relocations"
        ).set_total(len(fabric.failovers))
        _collect_simulator(fabric.sim, registry)

    return collect


def _collect_simulator(sim: "NodeHandle", registry: MetricsRegistry) -> None:
    """Mirror event-loop statistics into the registry.

    Works on any runtime node handle — the simulator and the asyncio
    scheduler expose the same statistics surface (``events_executed``,
    ``pending``, ``heap_high_water``, sampling counters), so the metric
    names stay identical across backends; only their source differs
    (virtual-time heap vs. live event-loop timers).
    """
    registry.counter(
        "repro_sim_events_executed", "events executed by the event loop"
    ).set_total(sim.events_executed)
    registry.gauge(
        "repro_sim_pending_events", "live events currently queued"
    ).set(sim.pending)
    registry.gauge(
        "repro_sim_heap_high_water", "peak event-queue depth"
    ).set_max(getattr(sim, "heap_high_water", 0))
    registry.counter(
        "repro_sim_callbacks_sampled", "callbacks timed with perf_counter"
    ).set_total(getattr(sim, "callbacks_sampled", 0))
    registry.counter(
        "repro_sim_callback_wall_seconds",
        "wall-clock seconds inside sampled callbacks",
    ).set_total(getattr(sim, "callback_wall_time", 0.0))


def instrument_simulator(sim: "NodeHandle", registry: MetricsRegistry) -> None:
    """Register a collector for a bare scheduler (no fabric)."""
    if not registry.enabled:
        return
    registry.register_collector(lambda reg: _collect_simulator(sim, reg))


def profiler_to_registry(profiler, registry: MetricsRegistry) -> None:
    """Mirror a :class:`~repro.obs.profiler.PhaseProfiler` into ``registry``.

    Registers a pull collector (nothing touches the hot path) exporting
    per-phase exclusive wall time and entry counts, per-kind dispatch
    counts, and the profiler's own measured cost — so ``repro trace run
    --profile --metrics`` ships the phase breakdown in the same
    Prometheus text as everything else.
    """
    if not registry.enabled:
        return

    def collect(reg: MetricsRegistry) -> None:
        for phase, seconds in profiler.phase_exclusive_s.items():
            reg.counter(
                "repro_profile_phase_seconds",
                "exclusive wall seconds attributed to a hot-path phase",
                phase=phase,
            ).set_total(seconds)
            reg.counter(
                "repro_profile_phase_entries",
                "times the phase was entered",
                phase=phase,
            ).set_total(profiler.phase_counts.get(phase, 0))
        for kind, count in profiler.dispatch_by_kind.items():
            reg.counter(
                "repro_profile_dispatches",
                "event-loop callbacks executed, by callback qualname",
                kind=kind,
            ).set_total(count)
        reg.counter(
            "repro_profile_clock_pairs",
            "enter/exit clock-read pairs the profiler performed",
        ).set_total(profiler.clock_pairs)
        reg.gauge(
            "repro_profile_overhead_seconds",
            "calibrated estimate of the profiler's own wall-time cost",
        ).set(profiler.estimated_overhead_s())

    registry.register_collector(collect)
