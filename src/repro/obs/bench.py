"""``repro bench`` — fixed-seed performance suites with a JSON trajectory.

A *workload* is a named, seeded unit of work (a figure reproduction, a
chaos campaign, a hold-back microbenchmark); a *suite* is an ordered
list of workloads.  :func:`run_suite` executes each workload ``warmup +
runs`` times, keeps the timed repetitions' wall clocks, and emits a
schema-versioned report (``repro-bench/1``) suitable for committing as
``BENCH_<suite>.json`` and diffing over time with :func:`compare`.

Two properties make the reports comparable at all:

* **Deterministic counts.**  Every workload reports the exact event,
  message, and work counts it produced; the harness re-checks them
  across repetitions and raises :class:`BenchDeterminismError` on any
  drift.  Counts from two same-seed runs — on different machines, weeks
  apart — must match; only wall times may differ.
* **Normalized timing comparison.**  Machines differ in absolute speed,
  so :func:`compare` divides each workload's new/old wall-time ratio by
  the *median* ratio across workloads: a uniformly slower CI runner
  cancels out, while a single genuinely regressed workload stands out.
  ``normalize=False`` compares raw ratios (same-machine A/B runs).

When profiling is on (the default), each timed repetition runs under a
fresh :class:`~repro.obs.profiler.PhaseProfiler`, and the report carries
the per-phase exclusive wall-time breakdown (dispatch / sequencing /
delivery / trace) plus the profiler's own measured overhead.  The
``obs_overhead`` workload goes further and times the same traffic bare
and fully instrumented, reporting the ratio — the price of
:mod:`repro.obs` in one number.

This module is inside simlint's simulation-critical scope: all wall
clock reads flow through the profiler's sampling shim
(:func:`~repro.obs.profiler.read_wall_clock`), never the host clock
directly.
"""

import json
import pathlib
import platform
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.delivery import DeliveryState
from repro.core.messages import AtomId, Stamp
from repro.obs.profiler import PhaseProfiler, read_wall_clock
from repro.obs.registry import MetricsRegistry
from repro.obs.resources import GcPauseSampler, peak_rss_bytes
from repro.workloads.zipf import zipf_membership

#: Version tag of the report layout; bump on incompatible change.
SCHEMA = "repro-bench/1"

#: Default fractional slowdown treated as a regression by :func:`compare`.
DEFAULT_THRESHOLD = 0.25

PathLike = Union[str, pathlib.Path]


class BenchDeterminismError(RuntimeError):
    """A workload's deterministic counts drifted between repetitions.

    Raised by :func:`run_suite` when two same-seed repetitions disagree
    on any count field — which means the simulation is no longer a pure
    function of its seed and every figure in the repo is suspect.
    """


@dataclass(frozen=True)
class Workload:
    """One named, seeded unit of benchmarked work.

    ``fn(seed, profiler)`` performs the work and returns a dict with
    ``events`` (simulator events executed), ``messages`` (messages
    published/processed), ``counts`` (a JSON-able dict of further
    deterministic counts), and optionally ``extra`` (JSON-able,
    *non*-deterministic metadata such as sub-phase wall times).
    ``profiler`` is a fresh :class:`PhaseProfiler` or ``None``.
    """

    name: str
    description: str
    fn: Callable[[int, Optional[PhaseProfiler]], Dict[str, Any]]


# ---------------------------------------------------------------------------
# Workload definitions
# ---------------------------------------------------------------------------


def _fig3_workload(n_hosts: int, group_counts: Tuple[int, ...]) -> Workload:
    """The paper's latency workload: one message per (member, group)."""

    def run(seed: int, profiler: Optional[PhaseProfiler]) -> Dict[str, Any]:
        from repro.experiments.common import ExperimentEnv
        from repro.metrics.stretch import latency_stretch_by_destination

        env = ExperimentEnv(n_hosts=n_hosts, seed=seed)
        env.profiler = profiler
        events = messages = destinations = 0
        for n_groups in group_counts:
            snapshot = zipf_membership(
                n_hosts, n_groups, rng=random.Random(seed + n_groups)
            )
            membership = env.membership_from(snapshot)
            fabric = env.build_fabric(membership, seed=seed, trace=False)
            messages += env.run_one_message_per_membership(fabric)
            events += fabric.sim.events_executed
            destinations += len(latency_stretch_by_destination(fabric))
        return {
            "events": events,
            "messages": messages,
            "counts": {"destinations": destinations},
        }

    return Workload(
        "fig3_latency_stretch",
        f"Figure 3 latency/stretch: {n_hosts} hosts, "
        f"groups {'/'.join(str(g) for g in group_counts)}",
        run,
    )


def _fig6_workload(
    group_counts: Tuple[int, ...], runs_per_count: int, n_hosts: int = 128
) -> Workload:
    """Figure 6 stress: pure graph/placement construction, no simulation."""

    def run(seed: int, profiler: Optional[PhaseProfiler]) -> Dict[str, Any]:
        from repro.experiments.common import ExperimentEnv
        from repro.experiments.fig6_stress import run_fig6

        env = ExperimentEnv(n_hosts=n_hosts, seed=seed)
        results = run_fig6(
            env, group_counts=group_counts, runs=runs_per_count, seed=seed
        )
        return {
            "events": 0,
            "messages": 0,
            "counts": {
                "nodes_sampled": sum(len(v) for v in results.values()),
                "group_counts": len(results),
            },
        }

    return Workload(
        "fig6_stress",
        f"Figure 6 stress: {runs_per_count} runs x "
        f"{len(group_counts)} group counts, {n_hosts} hosts",
        run,
    )


def _chaos_workload(
    hosts: int, groups: int, events: int, horizon: float
) -> Workload:
    """One seeded chaos campaign: faults, failover, verification."""

    def run(seed: int, profiler: Optional[PhaseProfiler]) -> Dict[str, Any]:
        from repro.faults.campaign import ChaosConfig, execute_campaign

        config = ChaosConfig(
            hosts=hosts, groups=groups, events=events, seed=seed, horizon=horizon
        )
        report = execute_campaign(config, profiler=profiler).report
        return {
            "events": report["events"],
            "messages": report["published"],
            "counts": {
                "delivered": report["delivered"],
                "retransmissions": report["retransmissions"]["total"],
                "failovers": len(report["failovers"]),
                "findings": len(report["findings"]),
                "quiescent": report["quiescent"],
            },
        }

    return Workload(
        "chaos_campaign",
        f"chaos campaign: {hosts} hosts, {groups} groups, {events} events",
        run,
    )


def _holdback_workload(n_messages: int, batch: int) -> Workload:
    """Deliver-or-buffer microbenchmark on a bare :class:`DeliveryState`.

    Group-local sequence numbers arrive in per-batch shuffled order, so
    most arrivals buffer and each batch drains in one cascade when its
    lowest number lands — exercising exactly the hot deliver/buffer/drain
    code path, with no network or event loop around it.
    """

    def run(seed: int, profiler: Optional[PhaseProfiler]) -> Dict[str, Any]:
        atom = AtomId.overlap(0, 1)
        state = DeliveryState(host_id=0, groups=(0,), relevant_atoms=(atom,))
        rng = random.Random(seed)
        order: List[int] = []
        for start in range(1, n_messages + 1, batch):
            chunk = list(range(start, min(start + batch, n_messages + 1)))
            rng.shuffle(chunk)
            order.extend(chunk)
        delivered = 0
        if profiler is not None and profiler.enabled:
            profiler.enter("delivery")
        for seq in order:
            stamp = Stamp(group=0, group_seq=seq, atom_seqs=((atom, seq),))
            delivered += len(state.on_receive(stamp))
        if profiler is not None and profiler.enabled:
            profiler.exit()
        return {
            "events": 0,
            "messages": n_messages,
            "counts": {
                "delivered": delivered,
                "buffered_high_water": state.buffered_high_water,
                "pending": state.pending,
            },
        }

    return Workload(
        "holdback_micro",
        f"hold-back microbenchmark: {n_messages} stamps in "
        f"shuffled batches of {batch}",
        run,
    )


def _obs_overhead_workload(hosts: int, groups: int, events: int) -> Workload:
    """Same traffic twice — bare, then fully instrumented — and the ratio.

    Doubles as the outcome-invariance gate: if tracing, metrics, or the
    profiler change the executed-event or published-message counts, the
    workload raises :class:`BenchDeterminismError` on the spot.
    """

    def run(seed: int, profiler: Optional[PhaseProfiler]) -> Dict[str, Any]:
        from repro.experiments.common import ExperimentEnv
        from repro.obs.live import LiveMonitor

        rng = random.Random(seed)
        snapshot = zipf_membership(hosts, groups, rng=rng)
        group_list = sorted(snapshot)
        schedule = []
        for _ in range(events):
            group = rng.choice(group_list)
            schedule.append((rng.choice(sorted(snapshot[group])), group))

        monitor: Optional[LiveMonitor] = None

        def one(instrumented: bool) -> Any:
            nonlocal monitor
            env = ExperimentEnv(n_hosts=hosts, seed=seed)
            membership = env.membership_from(snapshot)
            if instrumented:
                fabric = env.build_fabric(
                    membership,
                    seed=seed,
                    trace=True,
                    registry=MetricsRegistry(),
                    profiler=profiler,
                )
                # The full telemetry plane rides along: the streaming
                # monitors are trace subscribers only, so the determinism
                # gate below also proves they cannot change outcomes.
                monitor = LiveMonitor(node="bench", retain_audit=False)
                monitor.attach(fabric)
            else:
                fabric = env.build_fabric(membership, seed=seed, trace=False)
            for sender, group in schedule:
                fabric.publish(sender, group)
            fabric.run()
            return fabric

        begin = read_wall_clock()
        bare = one(False)
        mid = read_wall_clock()
        instrumented = one(True)
        bare_s = mid - begin
        instrumented_s = read_wall_clock() - mid
        if bare.sim.events_executed != instrumented.sim.events_executed or len(
            bare.published
        ) != len(instrumented.published):
            raise BenchDeterminismError(
                "instrumentation changed simulation outcomes: bare run "
                f"executed {bare.sim.events_executed} events / published "
                f"{len(bare.published)}, instrumented run "
                f"{instrumented.sim.events_executed} / "
                f"{len(instrumented.published)}"
            )
        return {
            "events": bare.sim.events_executed + instrumented.sim.events_executed,
            "messages": len(bare.published) + len(instrumented.published),
            "counts": {
                "events_per_run": bare.sim.events_executed,
                "trace_records": len(instrumented.trace),
            },
            "extra": {
                "bare_s": bare_s,
                "instrumented_s": instrumented_s,
                "overhead_ratio": (
                    instrumented_s / bare_s if bare_s > 0 else None
                ),
                # Percentile summaries (virtual ms, deterministic) ride
                # in `extra`, which the regression gate never compares.
                "monitor_violations": (
                    monitor.violations if monitor is not None else None
                ),
                "phase_latency_ms": (
                    monitor.latency.summary() if monitor is not None else None
                ),
            },
        }

    return Workload(
        "obs_overhead",
        f"observability overhead: bare vs instrumented, {hosts} hosts, "
        f"{events} messages",
        run,
    )


#: Named suites, cheapest first.  ``smoke`` exists for the test suite
#: (sub-second); ``quick`` is the CI gate; ``full`` is the paper-shaped
#: workload mix for deliberate before/after measurements.
SUITES: Dict[str, Tuple[Workload, ...]] = {
    "smoke": (
        _holdback_workload(400, 32),
        _chaos_workload(12, 4, 20, 150.0),
    ),
    "quick": (
        _fig3_workload(64, (8, 16)),
        _fig6_workload((4, 16, 64), 20),
        _chaos_workload(24, 8, 80, 400.0),
        _holdback_workload(2000, 64),
        _obs_overhead_workload(32, 8, 120),
    ),
    "full": (
        _fig3_workload(128, (8, 16, 32, 64)),
        _fig6_workload((2, 4, 8, 12, 16, 20, 24, 28, 32, 40, 48, 56, 64), 100),
        _chaos_workload(32, 12, 160, 600.0),
        _holdback_workload(8000, 128),
        _obs_overhead_workload(64, 16, 400),
    ),
}


def list_suites() -> str:
    """Human-readable catalog of suites and their workloads."""
    lines: List[str] = []
    for name in sorted(SUITES):
        lines.append(f"{name}:")
        for workload in SUITES[name]:
            lines.append(f"  {workload.name:<22} {workload.description}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------


def _deterministic_slice(
    result: Dict[str, Any], profiler: Optional[PhaseProfiler]
) -> Dict[str, Any]:
    """The fields two same-seed repetitions must agree on exactly."""
    counts = dict(result.get("counts", {}))
    if profiler is not None:
        counts["profile"] = profiler.counts()
    return {
        "events": result["events"],
        "messages": result["messages"],
        "counts": counts,
    }


def run_workload(
    workload: Workload,
    runs: int = 3,
    warmup: int = 1,
    seed: int = 0,
    profile: bool = True,
    sample_every: int = 4096,
) -> Dict[str, Any]:
    """Execute one workload ``warmup + runs`` times; return its report.

    Every timed repetition gets a fresh profiler (when ``profile``); the
    reported breakdown is the last repetition's.  Deterministic counts
    are checked for equality across all timed repetitions.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    for _ in range(warmup):
        workload.fn(seed, PhaseProfiler(sample_every=sample_every) if profile else None)
    wall: List[float] = []
    reference: Optional[Dict[str, Any]] = None
    breakdown: Optional[Dict[str, Any]] = None
    extra: Optional[Dict[str, Any]] = None
    sampler = GcPauseSampler()
    with sampler:
        for rep in range(runs):
            profiler = PhaseProfiler(sample_every=sample_every) if profile else None
            begin = read_wall_clock()
            result = workload.fn(seed, profiler)
            wall.append(read_wall_clock() - begin)
            deterministic = _deterministic_slice(result, profiler)
            if reference is None:
                reference = deterministic
            elif deterministic != reference:
                raise BenchDeterminismError(
                    f"workload {workload.name!r} (seed {seed}) produced "
                    f"different counts on repetition {rep + 1}: "
                    f"{deterministic!r} != {reference!r}"
                )
            if profiler is not None:
                breakdown = profiler.breakdown()
            extra = result.get("extra", extra)
    assert reference is not None
    best = min(wall)
    report: Dict[str, Any] = {
        "description": workload.description,
        "wall_s": {
            "reps": wall,
            "min": best,
            "mean": sum(wall) / len(wall),
        },
        "events": reference["events"],
        "messages": reference["messages"],
        "events_per_s": reference["events"] / best if best > 0 else None,
        "messages_per_s": reference["messages"] / best if best > 0 else None,
        "counts": reference["counts"],
        "gc": sampler.to_dict(),
        "peak_rss_bytes": peak_rss_bytes(),
    }
    if breakdown is not None:
        report["breakdown"] = breakdown
    if extra is not None:
        report["extra"] = extra
    return report


def run_suite(
    suite: str = "quick",
    runs: int = 3,
    warmup: int = 1,
    seed: int = 0,
    profile: bool = True,
    sample_every: int = 4096,
) -> Dict[str, Any]:
    """Run a named suite; return the full ``repro-bench/1`` report."""
    workloads = SUITES.get(suite)
    if workloads is None:
        raise KeyError(
            f"unknown suite {suite!r}; known: {', '.join(sorted(SUITES))}"
        )
    results: Dict[str, Any] = {}
    for workload in workloads:
        results[workload.name] = run_workload(
            workload,
            runs=runs,
            warmup=warmup,
            seed=seed,
            profile=profile,
            sample_every=sample_every,
        )
    return {
        "schema": SCHEMA,
        "suite": suite,
        "config": {
            "runs": runs,
            "warmup": warmup,
            "seed": seed,
            "profile": profile,
            "sample_every": sample_every,
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.system().lower(),
        },
        "workloads": results,
        "totals": {
            "wall_s": sum(w["wall_s"]["min"] for w in results.values()),
            "events": sum(w["events"] for w in results.values()),
            "messages": sum(w["messages"] for w in results.values()),
        },
        "peak_rss_bytes": peak_rss_bytes(),
    }


def write_report(report: Dict[str, Any], path: PathLike) -> pathlib.Path:
    """Write a suite report as stable, indented JSON."""
    resolved = pathlib.Path(path)
    if resolved.parent != pathlib.Path(""):
        resolved.parent.mkdir(parents=True, exist_ok=True)
    resolved.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return resolved


def read_report(path: PathLike) -> Dict[str, Any]:
    """Load a ``BENCH_*.json`` report, validating its schema tag."""
    report = json.loads(pathlib.Path(path).read_text())
    schema = report.get("schema")
    if schema != SCHEMA:
        raise ValueError(
            f"{path}: unsupported bench schema {schema!r} (expected {SCHEMA!r})"
        )
    return report


def render_report(report: Dict[str, Any]) -> str:
    """Text summary of a suite report (the default CLI output)."""
    from repro.experiments.common import format_table

    rows = []
    for name in sorted(report["workloads"]):
        workload = report["workloads"][name]
        rows.append(
            [
                name,
                workload["wall_s"]["min"],
                workload["wall_s"]["mean"],
                workload["events"],
                workload["messages"],
                (
                    f"{workload['events_per_s']:.0f}"
                    if workload.get("events_per_s")
                    else "-"
                ),
            ]
        )
    lines = [
        format_table(
            ["workload", "min_s", "mean_s", "events", "messages", "events/s"],
            rows,
            title=(
                f"bench suite {report['suite']!r}: "
                f"{report['config']['runs']} run(s) after "
                f"{report['config']['warmup']} warmup, seed "
                f"{report['config']['seed']}"
            ),
        )
    ]
    for name in sorted(report["workloads"]):
        breakdown = report["workloads"][name].get("breakdown")
        if not breakdown:
            continue
        phases = breakdown["phase_exclusive_s"]
        total = sum(phases.values())
        if total <= 0:
            continue
        shares = "  ".join(
            f"{phase}={seconds / total:.0%}" for phase, seconds in phases.items()
        )
        overhead = breakdown["overhead"]["estimated_s"]
        lines.append(f"{name}: {shares}  (profiler overhead ~{overhead:.4f}s)")
    rss = report.get("peak_rss_bytes")
    if rss:
        lines.append(f"peak RSS: {rss / (1024 * 1024):.1f} MiB")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Baseline history
# ---------------------------------------------------------------------------

#: Schema tag on every ``BENCH_history.jsonl`` record.
HISTORY_FORMAT = "repro-bench-history/1"


def history_record(
    report: Dict[str, Any], commit: str = ""
) -> Dict[str, Any]:
    """Project one suite report to a compact history line.

    One record per refreshed baseline: suite identity, the commit it was
    measured at, throughput, and the per-workload wall/phase breakdown —
    enough to chart performance over the repo's history without keeping
    every full report.  Deliberately carries no wall-clock timestamp; the
    commit is the time axis.
    """
    totals = report["totals"]
    wall_s = totals["wall_s"]
    workloads: Dict[str, Any] = {}
    for name in sorted(report["workloads"]):
        workload = report["workloads"][name]
        entry: Dict[str, Any] = {
            "wall_s": workload["wall_s"]["min"],
            "events_per_s": workload.get("events_per_s"),
        }
        breakdown = workload.get("breakdown")
        if breakdown:
            phases = breakdown["phase_exclusive_s"]
            total = sum(phases.values())
            if total > 0:
                entry["phase_share"] = {
                    phase: seconds / total
                    for phase, seconds in phases.items()
                }
        workloads[name] = entry
    return {
        "format": HISTORY_FORMAT,
        "suite": report["suite"],
        "seed": report["config"]["seed"],
        "commit": commit,
        "wall_s": wall_s,
        "events": totals["events"],
        "messages": totals["messages"],
        "events_per_s": totals["events"] / wall_s if wall_s > 0 else None,
        "workloads": workloads,
    }


def append_history(
    report: Dict[str, Any], path: PathLike, commit: str = ""
) -> pathlib.Path:
    """Append :func:`history_record` for ``report`` to a JSONL file."""
    resolved = pathlib.Path(path)
    if resolved.parent != pathlib.Path(""):
        resolved.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(history_record(report, commit=commit), sort_keys=True)
    with open(resolved, "a", encoding="utf-8") as handle:
        handle.write(line + "\n")
    return resolved


def read_history(path: PathLike) -> List[Dict[str, Any]]:
    """Load a ``BENCH_history.jsonl`` file, validating record tags."""
    records: List[Dict[str, Any]] = []
    for index, line in enumerate(
        pathlib.Path(path).read_text().splitlines(), start=1
    ):
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if record.get("format") != HISTORY_FORMAT:
            raise ValueError(
                f"{path}:{index}: unsupported history record format "
                f"{record.get('format')!r} (expected {HISTORY_FORMAT!r})"
            )
        records.append(record)
    return records


def render_history(records: List[Dict[str, Any]]) -> str:
    """Text table of baseline history, oldest first."""
    from repro.experiments.common import format_table

    rows = []
    for record in records:
        rows.append(
            [
                record.get("commit", "")[:12] or "-",
                record["suite"],
                record["wall_s"],
                record["events"],
                (
                    f"{record['events_per_s']:.0f}"
                    if record.get("events_per_s")
                    else "-"
                ),
            ]
        )
    return format_table(
        ["commit", "suite", "wall_s", "events", "events/s"],
        rows,
        title=f"{len(records)} baseline record(s), oldest first",
    )


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _count_drift(
    name: str, old: Dict[str, Any], new: Dict[str, Any]
) -> List[str]:
    """Human-readable descriptions of count differences for one workload."""
    drift: List[str] = []
    for field in ("events", "messages"):
        if old.get(field) != new.get(field):
            drift.append(
                f"{name}: {field} changed {old.get(field)} -> {new.get(field)}"
            )
    if old.get("counts") != new.get("counts"):
        old_counts = old.get("counts") or {}
        new_counts = new.get("counts") or {}
        keys = sorted(set(old_counts) | set(new_counts))
        changed = [
            f"{key}: {old_counts.get(key)!r} -> {new_counts.get(key)!r}"
            for key in keys
            if old_counts.get(key) != new_counts.get(key)
        ]
        drift.append(f"{name}: counts changed ({'; '.join(changed)})")
    return drift


def compare(
    old: Dict[str, Any],
    new: Dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
    normalize: bool = True,
) -> Dict[str, Any]:
    """Diff two suite reports; flag per-workload wall-time regressions.

    A workload regresses when its (optionally median-normalized) ratio of
    ``new min / old min`` wall time exceeds ``1 + threshold``.  Count
    drift — the same seed producing different work — is reported as a
    warning, never a regression: determinism has its own gates, and a
    deliberate protocol change legitimately shifts counts together with
    times.

    The result is JSON-able: ``ok`` (no regressions), ``regressions``,
    ``warnings``, ``median_ratio``, and a per-workload table of raw and
    normalized ratios.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    old_workloads = old.get("workloads", {})
    new_workloads = new.get("workloads", {})
    shared = [name for name in old_workloads if name in new_workloads]
    warnings: List[str] = []
    for name in sorted(set(old_workloads) - set(new_workloads)):
        warnings.append(f"workload {name!r} missing from the new report")
    for name in sorted(set(new_workloads) - set(old_workloads)):
        warnings.append(f"workload {name!r} is new (no baseline)")
    if old.get("suite") != new.get("suite"):
        warnings.append(
            f"comparing different suites: {old.get('suite')!r} vs "
            f"{new.get('suite')!r}"
        )

    ratios: Dict[str, float] = {}
    for name in shared:
        old_min = old_workloads[name]["wall_s"]["min"]
        new_min = new_workloads[name]["wall_s"]["min"]
        if old_min <= 0:
            warnings.append(f"{name}: baseline wall time is zero; skipped")
            continue
        ratios[name] = new_min / old_min
        warnings.extend(_count_drift(name, old_workloads[name], new_workloads[name]))

    median_ratio = _median(list(ratios.values())) if ratios else 1.0
    scale = median_ratio if (normalize and median_ratio > 0) else 1.0
    table: Dict[str, Any] = {}
    regressions: List[str] = []
    for name in sorted(ratios):
        ratio = ratios[name]
        normalized = ratio / scale
        effective = normalized if normalize else ratio
        regressed = effective > 1.0 + threshold
        table[name] = {
            "old_min_s": old_workloads[name]["wall_s"]["min"],
            "new_min_s": new_workloads[name]["wall_s"]["min"],
            "ratio": ratio,
            "normalized_ratio": normalized,
            "regressed": regressed,
        }
        if regressed:
            regressions.append(
                f"{name}: {effective:.2f}x slower "
                f"({'normalized' if normalize else 'raw'}; threshold "
                f"{1.0 + threshold:.2f}x)"
            )
    return {
        "schema": SCHEMA,
        "threshold": threshold,
        "normalize": normalize,
        "median_ratio": median_ratio,
        "workloads": table,
        "warnings": warnings,
        "regressions": regressions,
        "ok": not regressions,
    }


def render_compare(result: Dict[str, Any]) -> str:
    """Text rendering of a :func:`compare` result."""
    from repro.experiments.common import format_table

    rows = []
    for name in sorted(result["workloads"]):
        entry = result["workloads"][name]
        rows.append(
            [
                name,
                entry["old_min_s"],
                entry["new_min_s"],
                entry["ratio"],
                entry["normalized_ratio"],
                "REGRESSED" if entry["regressed"] else "ok",
            ]
        )
    mode = "normalized" if result["normalize"] else "raw"
    lines = [
        format_table(
            ["workload", "old_min_s", "new_min_s", "ratio", "norm_ratio", "verdict"],
            rows,
            title=(
                f"bench comparison ({mode} ratios, threshold "
                f"+{result['threshold']:.0%}, median ratio "
                f"{result['median_ratio']:.3f})"
            ),
        )
    ]
    for warning in result["warnings"]:
        lines.append(f"warning: {warning}")
    for regression in result["regressions"]:
        lines.append(f"REGRESSION: {regression}")
    lines.append("ok" if result["ok"] else "FAILED: wall-time regression")
    return "\n".join(lines)


__all__ = [
    "BenchDeterminismError",
    "DEFAULT_THRESHOLD",
    "SCHEMA",
    "SUITES",
    "Workload",
    "compare",
    "list_suites",
    "read_report",
    "render_compare",
    "render_report",
    "run_suite",
    "run_workload",
    "write_report",
]
