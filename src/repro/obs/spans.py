"""Per-message lifecycle spans reconstructed from trace records.

A message's life has three phases (paper Section 3.1's pipeline):

* **ingress** — publish until the first sequencing-node visit,
* **sequencing** — first node visit until the egress node starts
  distribution (covers every atom hop, including pass-throughs),
* **distribution** — distribution start until delivery at one member.

The reconstruction consumes the trace kinds the fabric emits:

==============  ==========================================================
kind            data fields
==============  ==========================================================
``publish``     ``msg``, ``group``, ``sender``
``seq_hop``     ``msg``, ``node``, ``atom`` (entry atom of the visit)
``distribute``  ``msg``, ``node``, ``members``
``deliver``     ``msg``, ``host``, ``group``, ``sender``, ``publish_time``
==============  ==========================================================

``seq_hop``/``distribute`` are only recorded while tracing is enabled, so
spans require a fabric built with ``trace=True`` (the default).  Baseline
implementations emit only ``publish``/``deliver``; their spans have no hops
and no phase breakdown, but delivery latency still works.

Spans are the coarse view; :mod:`repro.obs.forensics` consumes the finer
flight-recorder kinds (``atom_seq``/``atom_pass``/``buffer``/``drain``)
to additionally explain *why* a delivery waited in the hold-back buffer
and to split the distribution phase into wire time versus ordering wait.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.runtime.trace import Trace

#: Phase names, in pipeline order.
PHASES = ("ingress", "sequencing", "distribution")


@dataclass(frozen=True)
class SeqHop:
    """One sequencing-node visit (however many co-located atoms ran)."""

    node: int
    time: float
    atom: str = ""


@dataclass
class MessageSpan:
    """The reconstructed lifecycle of one published message."""

    msg_id: int
    group: int
    sender: int
    publish_time: float
    hops: List[SeqHop] = field(default_factory=list)
    distribute_time: Optional[float] = None
    distribute_node: Optional[int] = None
    #: ``{host: delivery time}`` per group member
    deliveries: Dict[int, float] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """Whether the span covers the full pipeline for at least one host."""
        return bool(self.hops) and self.distribute_time is not None and bool(
            self.deliveries
        )

    def delivery_latency(self, host: int) -> float:
        """Publish-to-deliver latency at ``host``."""
        return self.deliveries[host] - self.publish_time

    def phases(self, host: int) -> Dict[str, float]:
        """Per-phase latency breakdown for the copy delivered to ``host``.

        The three phase latencies sum to :meth:`delivery_latency` exactly
        (the phases partition the publish-to-deliver interval).
        """
        if not self.complete:
            raise ValueError(
                f"span for message {self.msg_id} is incomplete (hops="
                f"{len(self.hops)}, distributed={self.distribute_time is not None})"
            )
        first_hop = self.hops[0].time
        return {
            "ingress": first_hop - self.publish_time,
            "sequencing": self.distribute_time - first_hop,
            "distribution": self.deliveries[host] - self.distribute_time,
        }


def build_spans(trace: Trace) -> Dict[int, MessageSpan]:
    """Reconstruct ``{msg_id: MessageSpan}`` from a trace.

    Uses the trace's per-kind index, so cost is proportional to the number
    of relevant records, not the whole trace.
    """
    spans: Dict[int, MessageSpan] = {}
    for record in trace.iter_select("publish"):
        data = record.data
        spans[data["msg"]] = MessageSpan(
            msg_id=data["msg"],
            group=data["group"],
            sender=data["sender"],
            publish_time=record.time,
        )
    for record in trace.iter_select("seq_hop"):
        span = spans.get(record.data["msg"])
        if span is not None:
            span.hops.append(
                SeqHop(record.data["node"], record.time, record.data.get("atom", ""))
            )
    for record in trace.iter_select("distribute"):
        span = spans.get(record.data["msg"])
        if span is not None:
            span.distribute_time = record.time
            span.distribute_node = record.data["node"]
    for record in trace.iter_select("deliver"):
        span = spans.get(record.data["msg"])
        if span is not None:
            span.deliveries[record.data["host"]] = record.time
    return spans


def phase_breakdown_by_group(
    spans: Dict[int, MessageSpan]
) -> Dict[int, Dict[str, float]]:
    """Mean per-phase latency per group, over all delivered message copies.

    Incomplete spans (undelivered messages, baseline traces without hop
    records) are skipped.
    """
    sums: Dict[int, Dict[str, float]] = {}
    counts: Dict[int, int] = {}
    for span in spans.values():
        if not span.complete:
            continue
        for host in span.deliveries:
            phases = span.phases(host)
            bucket = sums.setdefault(span.group, dict.fromkeys(PHASES, 0.0))
            for phase in PHASES:
                bucket[phase] += phases[phase]
            counts[span.group] = counts.get(span.group, 0) + 1
    return {
        group: {phase: total[phase] / counts[group] for phase in PHASES}
        for group, total in sums.items()
    }


def hop_intervals(span: MessageSpan) -> List[Tuple[int, float, float]]:
    """``(node, start, end)`` per sequencing-node visit of one message.

    A visit ends when the message reaches the next node (or distribution
    starts); the intervals tile the sequencing phase, which is what the
    Chrome-trace exporter renders as one slice per hop.
    """
    if not span.hops:
        return []
    ends = [hop.time for hop in span.hops[1:]]
    ends.append(
        span.distribute_time if span.distribute_time is not None else span.hops[-1].time
    )
    return [
        (hop.node, hop.time, end) for hop, end in zip(span.hops, ends)
    ]


def render_phase_table(breakdown: Dict[int, Dict[str, float]]) -> str:
    """Aligned text table of the per-group phase breakdown."""
    headers = ["group"] + [f"{phase}_ms" for phase in PHASES] + ["total_ms"]
    widths = [max(10, len(h)) for h in headers]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for group in sorted(breakdown):
        phases = breakdown[group]
        cells = [str(group)] + [f"{phases[p]:.3f}" for p in PHASES]
        cells.append(f"{sum(phases.values()):.3f}")
        lines.append("  ".join(c.ljust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)
